#!/usr/bin/env python
"""CI smoke test: mobile-terminal mode gates.

Three gates protect mobility (trajectories, obstruction shadowing
and handover-episode analysis):

1. **Stationary bit-identity, digest-pinned.** The quick-config ping
   campaign with a speed-0 drive trajectory must reproduce the
   classic fixed-terminal dataset byte for byte — serially and under
   the work-stealing sharded executor — and both must match the
   digest pinned below. Mobility is strictly additive: the pin
   catches any drift in the classic pipeline.

2. **Drive-trace campaign end-to-end.** A dense-ping urban-canyon
   drive must complete, rerun digest-identically, and produce a
   mobility report whose per-episode attribution *conserves* the
   pooled episode count, with at least one obstruction-attributed
   episode that recovered.

3. **Handover-attributed outage detection and recovery.** With every
   gateway down for four slots mid-drive (maintenance injection) the
   analytic ping series must show an outage episode starting at the
   service-change boundary, attributed to the handover, and
   recovered once service resumes.

Run from the repository root (CI job ``mobility-smoke``)::

    PYTHONPATH=src python scripts/mobility_smoke.py
"""

from __future__ import annotations

import math
import random
import sys

import numpy as np

from repro.core.availability import analyze_availability, analyze_mobility
from repro.core.campaign import Campaign, CampaignConfig, quick_config
from repro.core.datasets import CampaignDatasets, PingDataset
from repro.errors import ConfigurationError
from repro.leo.access import StarlinkPathModel
from repro.leo.ground import STARLINK_GATEWAYS
from repro.leo.mobility import drive_trajectory
from repro.testing.digest import digest_value

#: Digest of ``Campaign(quick_config(0)).run_pings()`` before mobile-
#: terminal mode existed. Both the stationary default and a speed-0
#: drive must reproduce it. Re-record only for a deliberate, explained
#: change to the classic pipeline.
CLASSIC_QUICK_PINGS_DIGEST = (
    "52511c7f0911799a38f90c61c5b16e6d"
    "dbe8fcb68551d3df6e9ac93e57676fa8")

#: Gate 3 maintenance window: every gateway out over these slots.
GW_OUT_SLOTS = (30, 34)
GATE3_HORIZON_S = 900.0


def parked_config() -> CampaignConfig:
    config = quick_config(seed=0)
    config.trajectory = "drive"
    config.speed_kmh = 0.0
    return config


def drive_config() -> CampaignConfig:
    """Dense-ping urban-canyon drive (~29 min at 90 km/h)."""
    return CampaignConfig(
        seed=1,
        ping_days=0.02, ping_interval_s=45.0, pings_per_round=2,
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1,
        trajectory="drive", speed_kmh=90.0,
        obstruction="urban_canyon", drive_duration_s=1728.0)


def gate3_mobility_report():
    """Analytic drive with an all-gateway maintenance window."""
    model = StarlinkPathModel(
        seed=0, trajectory=drive_trajectory(seed=0, speed_kmh=90.0))
    for gw in STARLINK_GATEWAYS:
        model.scheduler.add_gateway_outage(gw.name, *GW_OUT_SLOTS)
    rng = random.Random(7)
    times = np.arange(0.0, GATE3_HORIZON_S, 15.0)
    rtts = []
    for t in times:
        try:
            rtts.append(model.idle_rtt(float(t), rng))
        except ConfigurationError:
            rtts.append(math.nan)
    pings = PingDataset(series={"anchor": (times, np.array(rtts))})
    availability = analyze_availability(CampaignDatasets(pings=pings))
    events = model.scheduler.handover_events(0.0, GATE3_HORIZON_S)
    return analyze_mobility(availability, events,
                            window_s=GATE3_HORIZON_S,
                            trajectory="drive")


def main() -> int:
    failures: list[str] = []

    # Gate 1: speed-0 drive == classic pinned digest, every exec mode.
    serial = digest_value(Campaign(parked_config()).run_pings())
    print(f"parked serial:  digest {serial[:16]}...")
    if serial != CLASSIC_QUICK_PINGS_DIGEST:
        failures.append(
            f"speed-0 drive serial digest {serial} does not match "
            f"the classic pin {CLASSIC_QUICK_PINGS_DIGEST} — "
            "mobility stopped being digest-neutral")
    sharded = digest_value(Campaign(parked_config()).run_pings(
        workers=2, granularity=4))
    print(f"parked sharded: digest {sharded[:16]}...")
    if sharded != CLASSIC_QUICK_PINGS_DIGEST:
        failures.append(
            f"speed-0 drive sharded digest {sharded} does not match "
            f"the classic pin — mobility state leaked across shards")

    # Gate 2: the drive campaign completes, reruns identically, and
    # its attribution reconciles with the pooled availability.
    campaign = Campaign(drive_config())
    pings = campaign.run_pings()
    first = digest_value(pings)
    print(f"drive serial:   digest {first[:16]}...")
    again = digest_value(Campaign(drive_config()).run_pings())
    if again != first:
        failures.append(
            f"drive campaign reruns diverged ({first} vs {again}) — "
            "the moving-terminal pipeline is not deterministic")
    report = campaign.mobility_report(CampaignDatasets(pings=pings))
    episodes = report.availability.episodes
    print(f"drive report:   {len(episodes)} episode(s), "
          f"{report.handover_count} path change(s), causes "
          f"{report.cause_counts}")
    if sum(report.cause_counts.values()) != len(episodes):
        failures.append(
            "attribution does not conserve the episode count: "
            f"{report.cause_counts} vs {len(episodes)} episodes")
    if report.cause_counts.get("obstruction", 0) < 1:
        failures.append(
            "urban-canyon drive produced no obstruction-attributed "
            f"episode (causes {report.cause_counts})")
    if not any(e.recovered for e in episodes):
        failures.append("no drive outage episode ever recovered")
    if report.handover_count < 1:
        failures.append("drive campaign recorded no path changes")

    # Gate 3: handover-attributed outage detected and recovered.
    mob = gate3_mobility_report()
    eps = mob.availability.episodes
    print(f"gate3 report:   {len(eps)} episode(s), causes "
          f"{mob.cause_counts}, mttr "
          f"{mob.mean_time_to_recovery_s:.0f}s")
    if mob.cause_counts.get("handover", 0) < 1:
        failures.append(
            "all-gateway maintenance produced no handover-attributed "
            f"episode (causes {mob.cause_counts})")
    handover_eps = [e for e, c in zip(eps, mob.episode_causes)
                    if c == "handover"]
    if not all(e.recovered for e in handover_eps):
        failures.append(
            "a handover-attributed episode never recovered after "
            "the maintenance window closed")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("mobility-smoke: OK — stationary pinned bit-identity, "
          "drive campaign deterministic with conserved attribution, "
          "handover outages detected and recovered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
