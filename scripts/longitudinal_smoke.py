#!/usr/bin/env python
"""CI smoke test: the month-scale streaming campaign under a hard
address-space limit.

Three gates, cheapest first:

1. **Digest identity** — the sharded streaming ping pipeline
   reconstructs the batch pipeline bit for bit across scenarios
   (clear_sky and rain_fade) while it stays exact.
2. **Month under a memory ceiling** — a 30-day ``wet_month``
   availability run through the CLI, inside a child process whose
   address space is capped with ``RLIMIT_AS``. The governed run must
   finish with exit status 0, print the availability report, and
   record the full PARTIAL-PRECISION ladder its 0.5 MiB sample budget
   forces (STREAMING -> SHRUNK_RESERVOIRS -> SPILLED).
3. **Raise policy escalates** — the same month with
   ``--resource-policy raise`` must refuse to degrade and exit with
   status 3.

Run from the repository root (CI job ``longitudinal-smoke``)::

    PYTHONPATH=src python scripts/longitudinal_smoke.py
"""

from __future__ import annotations

import os
import resource
import subprocess
import sys

from repro.core.campaign import Campaign, CampaignConfig
from repro.testing.digest import digest_dataset
from repro.units import minutes

#: Address-space cap for the month-scale child. Generous against the
#: interpreter + numpy baseline, tiny against an un-governed 30-day
#: campaign that hoards raw series — the cap catches regressions to
#: unbounded buffering, not ordinary allocator noise.
ADDRESS_SPACE_CAP_BYTES = 2 << 30

MONTH_ARGS = ["availability", "--streaming", "--scenario", "wet_month",
              "--duration-days", "30", "--memory-budget-mb", "0.5"]

LADDER = ("STREAMING", "SHRUNK_RESERVOIRS", "SPILLED")


def smoke_config(scenario: str) -> CampaignConfig:
    return CampaignConfig(
        seed=0, scenario=scenario,
        ping_days=1.0, ping_interval_s=minutes(120),
        ping_shard_rounds=3,
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


def _capped_month(extra: list[str]) -> subprocess.CompletedProcess:
    def cap_address_space() -> None:
        resource.setrlimit(resource.RLIMIT_AS,
                           (ADDRESS_SPACE_CAP_BYTES,
                            ADDRESS_SPACE_CAP_BYTES))

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        [sys.executable, "-m", "repro", *MONTH_ARGS, *extra],
        capture_output=True, text=True, timeout=600, env=env,
        preexec_fn=cap_address_space)


def main() -> int:
    # Gate 1: streaming == batch, bit for bit, across scenarios.
    for scenario in ("clear_sky", "rain_fade"):
        batch = digest_dataset(
            Campaign(smoke_config(scenario)).run_pings())
        streamed = Campaign(smoke_config(scenario)).run_pings_streaming(
            workers=2, granularity=3)
        if digest_dataset(streamed.to_ping_dataset()) != batch:
            print(f"FAIL: streaming digest diverged from batch "
                  f"under {scenario!r}")
            return 1

    # Gate 2: a 30-day wet month under the address-space cap.
    month = _capped_month([])
    if month.returncode != 0:
        print(f"FAIL: month-scale run exited "
              f"{month.returncode}, expected 0")
        print(month.stdout[-2000:])
        print(month.stderr[-2000:])
        return 1
    if "Availability report" not in month.stdout:
        print("FAIL: month-scale run printed no availability report")
        print(month.stdout[-2000:])
        return 1
    missing = [stage for stage in LADDER
               if f"entered {stage}" not in month.stdout]
    if missing:
        print(f"FAIL: precision notes missing ladder stages "
              f"{missing}")
        print(month.stdout[-2000:])
        return 1

    # Gate 3: the raise policy refuses to degrade and exits 3.
    raised = _capped_month(["--resource-policy", "raise"])
    if raised.returncode != 3:
        print(f"FAIL: raise-policy run exited {raised.returncode}, "
              f"expected 3")
        print(raised.stdout[-2000:])
        print(raised.stderr[-2000:])
        return 1
    if "memory budget exhausted" not in raised.stderr:
        print("FAIL: raise-policy run did not report the exhausted "
              "budget on stderr")
        print(raised.stderr[-2000:])
        return 1

    print(f"longitudinal-smoke: OK — streaming digest-identical on "
          f"2 scenarios; 30-day wet_month governed under a "
          f"{ADDRESS_SPACE_CAP_BYTES >> 20} MiB address-space cap "
          f"with the full ladder recorded; raise policy exited 3")
    return 0


if __name__ == "__main__":
    sys.exit(main())
