#!/usr/bin/env python
"""CI smoke test: fleet scheduling gates.

Two gates protect the vectorized fleet layer:

1. **T=1 bit-identity, digest-pinned.** A single-terminal
   :class:`FleetScheduler` walked over 400 slots (with a satellite
   outage and a gateway outage in the middle) must produce exactly
   the snapshot sequence of a scalar ``SatelliteScheduler`` with the
   same seed — and both must match the digest pinned below. The pin
   catches silent drift in *either* path: the vectorized kernels and
   the scalar reference cannot move, even together, without a
   deliberate re-record.

2. **T=16 fleet campaign determinism.** A 16-terminal fleet campaign
   run twice serially must be digest-identical, and a sharded run
   (``workers=2, granularity=3``) must reproduce the serial dataset
   byte for byte — the contended-capacity coupling between terminals
   (shared ``FleetScheduler``, per-satellite user counts) survives
   the work-stealing executor.

Run from the repository root (CI job ``fleet-smoke``)::

    PYTHONPATH=src python scripts/fleet_smoke.py
"""

from __future__ import annotations

import sys

from repro.core.campaign import Campaign, quick_config
from repro.errors import ConfigurationError
from repro.leo.constellation import Constellation
from repro.leo.fleet import (
    FleetScheduler,
    FleetSpec,
    build_fleet_terminals,
    fleet_seeds,
)
from repro.leo.ground import STARLINK_GATEWAYS
from repro.leo.scheduling import SLOT_DURATION, SatelliteScheduler
from repro.testing.digest import digest_value

#: Snapshot-sequence digest for gate 1 (seed 0, 400 slots, satellite
#: 700 out over slots [40, 80), gateway ``gw-ghlin`` out over
#: [120, 160)). Recorded from the *scalar* scheduler; the fleet path
#: must reproduce it bit for bit. Re-record only for a deliberate,
#: explained change to selection semantics.
T1_PINNED = (
    "ca73fa596d9c2d9849942eae4554cb97"
    "f7b8aea12efd63074101fd503da396bc"
)

N_SLOTS = 400
SAT_OUT = (700, 40, 80)
GW_OUT = (STARLINK_GATEWAYS[2].name, 120, 160)


def walk(snapshot_fn) -> str:
    """Digest of 400 slots of snapshots (errors fold in by message)."""
    entries = []
    for slot in range(N_SLOTS):
        try:
            entries.append(snapshot_fn(slot * SLOT_DURATION))
        except ConfigurationError as exc:
            entries.append(("error", str(exc)))
    return digest_value(tuple(entries))


def t1_digests() -> tuple[str, str]:
    spec = FleetSpec(terminals=1, lat_bands=((50.0, 51.5),), seed=0)
    uts = build_fleet_terminals(spec)
    seeds = fleet_seeds(0, 1)
    fleet = FleetScheduler(Constellation(), uts, STARLINK_GATEWAYS,
                           seeds=seeds)
    scalar = SatelliteScheduler(Constellation(), uts[0],
                                STARLINK_GATEWAYS, seed=seeds[0])
    for sched_add, gw_add in ((fleet.add_outage,
                               fleet.add_gateway_outage),
                              (scalar.add_outage,
                               scalar.add_gateway_outage)):
        sched_add(*SAT_OUT)
        gw_add(*GW_OUT)
    return (walk(lambda t: fleet.snapshot_at(0, t)),
            walk(scalar.snapshot))


def fleet_campaign_config():
    config = quick_config(seed=1)
    config.ping_days = 1.0
    config.fleet_terminals = 16
    config.fleet_speedtest_epochs = 0
    return config


def main() -> int:
    failures: list[str] = []

    # Gate 1: T=1 fleet == scalar == pinned digest over 400 slots.
    fleet_digest, scalar_digest = t1_digests()
    print(f"t1 fleet:  digest {fleet_digest[:16]}...")
    print(f"t1 scalar: digest {scalar_digest[:16]}...")
    if fleet_digest != scalar_digest:
        failures.append(
            f"T=1: fleet snapshots ({fleet_digest}) diverged from "
            f"the scalar scheduler ({scalar_digest}) — the "
            "vectorized path lost bit-identity")
    if scalar_digest != T1_PINNED:
        failures.append(
            f"T=1: scalar snapshot digest {scalar_digest} does not "
            f"match the pin {T1_PINNED} — selection semantics moved "
            "without a re-record")

    # Gate 2: T=16 campaign — rerun-stable and shard-invariant.
    first = Campaign(fleet_campaign_config()).run_fleet()
    first_digest = digest_value(first)
    print(f"t16 serial: digest {first_digest[:16]}...")
    again_digest = digest_value(
        Campaign(fleet_campaign_config()).run_fleet())
    if again_digest != first_digest:
        failures.append(
            f"T=16: two serial runs diverged ({first_digest} vs "
            f"{again_digest}) — the fleet campaign is not "
            "deterministic")
    sharded_digest = digest_value(
        Campaign(fleet_campaign_config()).run_fleet(workers=2,
                                                    granularity=3))
    print(f"t16 sharded: digest {sharded_digest[:16]}...")
    if sharded_digest != first_digest:
        failures.append(
            f"T=16: sharded run ({sharded_digest}) diverged from "
            f"serial ({first_digest}) — terminal coupling broke "
            "under the work-stealing executor")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("fleet-smoke: OK — T=1 pinned bit-identity over "
          f"{N_SLOTS} slots, T=16 campaign deterministic and "
          "shard-invariant")
    return 0


if __name__ == "__main__":
    sys.exit(main())
