#!/usr/bin/env python
"""CI smoke test: miniature campaigns across disruption scenarios.

Runs the micro campaign under ``clear_sky``, ``rain_fade`` and
``sat_outage``, pins each scenario's dataset digest (the determinism
gate for the disruption subsystem: schedules, installers and hardened
apps must all stay bit-reproducible), writes every availability
report into an output directory (uploaded as a CI artifact), and
asserts the ``sat_outage`` run detects a *recovered* outage episode.

Run from the repository root (CI job ``scenario-matrix-smoke``)::

    PYTHONPATH=src python scripts/scenario_matrix_smoke.py --out DIR
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.core.availability import analyze_availability
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.reporting import render_availability
from repro.testing.digest import digest_dataset
from repro.units import minutes

#: Scenario -> expected dataset digest for :func:`smoke_config`,
#: seed 0, serial run. A mismatch means a disruption code path (or
#: anything under it) stopped being deterministic, or changed
#: behaviour without updating the pin. Re-recorded when work units
#: became splittable: per-atom RNG derivation (ping chunks, speedtest
#: connections, bulk segments) is a deliberate dataset-byte change.
#: Re-recorded again for the HyStart bugfixes of the CC-matrix PR:
#: QUIC now feeds the controller the *latest* RTT sample instead of
#: the smoothed EWMA, and loss/RTO clears stale HyStart round state,
#: both of which legitimately move slow-start exit timing (clear_sky
#: and sat_outage changed; rain_fade exits slow start via loss before
#: HyStart matters, so its bytes were untouched).
PINNED = {
    "clear_sky": "acb2885431d2921e10c1ccad93fa213e"
                 "993ba69ce63f7bc313948292ba364fad",
    "rain_fade": "5e2d8c7bcc290c0996105055e6dd200a"
                 "6b0d0b58e38e3e5feae37357b8177c68",
    "sat_outage": "8820a1f8f10b460f59fb9925a8e2163c"
                  "9dd65856964e1ff90e05031629a8a9a6",
}


def smoke_config(scenario: str) -> CampaignConfig:
    return CampaignConfig(
        seed=0, scenario=scenario,
        ping_days=1.0, ping_interval_s=minutes(60),
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="scenario-reports",
                        help="directory for the availability reports")
    args = parser.parse_args()
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    failures: list[str] = []
    reports = {}
    for scenario, pinned in PINNED.items():
        data = Campaign(smoke_config(scenario)).run_all()
        digest = digest_dataset(data)
        report = analyze_availability(data, scenario=scenario)
        reports[scenario] = report
        (out / f"availability_{scenario}.txt").write_text(
            render_availability(report) + "\n")
        ok = digest == pinned
        print(f"{scenario}: digest {digest[:16]}... "
              f"{'ok' if ok else 'MISMATCH'}; availability "
              f"{report.availability_pct:.2f}%, "
              f"{len(report.episodes)} episode(s)")
        if not ok:
            failures.append(f"{scenario}: digest {digest} != pinned "
                            f"{pinned}")

    recovered = [ep for ep in reports["sat_outage"].episodes
                 if ep.recovered]
    if not recovered:
        failures.append("sat_outage: expected at least one recovered "
                        "outage episode, found none")
    else:
        ep = recovered[0]
        print(f"sat_outage episode: start t+{ep.start_t:.0f}s, "
              f"span {ep.duration_s:.0f}s, time to recovery "
              f"{ep.time_to_recovery_s:.0f}s")
    if reports["clear_sky"].episodes:
        failures.append("clear_sky: detected outage episodes on an "
                        "undisrupted campaign")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"scenario-matrix-smoke: OK — {len(PINNED)} scenarios, "
          f"reports in {out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
