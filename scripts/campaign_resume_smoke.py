#!/usr/bin/env python
"""CI smoke test: SIGKILL a campaign mid-run, resume, compare digests.

The harshest crash the journal must survive is the driver process
itself dying with ``kill -9`` — no exception handlers, no atexit, no
flush. This script spawns a child process that runs the tiny ping
campaign serially with a journal while the chaos harness SIGKILLs the
process partway through, then resumes the campaign in the parent from
the half-written journal directory and asserts the result is
bit-identical to an uninterrupted reference run.

Run from the repository root (CI job ``campaign-resume-smoke``)::

    PYTHONPATH=src python scripts/campaign_resume_smoke.py
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core.campaign import Campaign, CampaignConfig
from repro.exec import Journal, execute_units
from repro.testing.chaos import ChaosSpec, wrap_units
from repro.testing.digest import digest_value
from repro.units import minutes


def smoke_config() -> CampaignConfig:
    return CampaignConfig(
        seed=0,
        ping_days=0.5, ping_interval_s=minutes(120),
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


def child(journal_dir: str, state_dir: str) -> None:
    """Run the campaign serially; chaos SIGKILLs this very process."""
    units = Campaign(smoke_config()).ping_units()
    victim = units[len(units) // 2].label
    wrapped = wrap_units(units, state_dir,
                         {victim: ChaosSpec(kill_on=(1,))})
    execute_units(wrapped, workers=1, journal=Journal(journal_dir))
    raise SystemExit("chaos kill never fired")   # pragma: no cover


def main() -> int:
    if len(sys.argv) == 4 and sys.argv[1] == "--child":
        child(sys.argv[2], sys.argv[3])
        return 0

    units = Campaign(smoke_config()).ping_units()
    reference = digest_value(execute_units(units, workers=1))

    with tempfile.TemporaryDirectory() as tmp:
        journal_dir = str(Path(tmp) / "journal")
        state_dir = str(Path(tmp) / "chaos")
        proc = subprocess.run(
            [sys.executable, __file__, "--child", journal_dir,
             state_dir],
            timeout=600)
        if proc.returncode != -signal.SIGKILL:
            print(f"FAIL: child exited {proc.returncode}, expected "
                  f"SIGKILL ({-signal.SIGKILL})")
            return 1

        journal = Journal(journal_dir)
        done = len(journal)
        if not 0 < done < len(units):
            print(f"FAIL: expected a partial journal, found {done} of "
                  f"{len(units)} entries")
            return 1

        resumed = digest_value(
            execute_units(units, workers=1, journal=journal))
        if resumed != reference:
            print("FAIL: resumed digest differs from the "
                  "uninterrupted reference")
            print(f"  reference {reference}")
            print(f"  resumed   {resumed}")
            return 1
        if len(journal) != len(units):
            print(f"FAIL: journal incomplete after resume "
                  f"({len(journal)}/{len(units)})")
            return 1

    print(f"campaign-resume-smoke: OK — child SIGKILLed after "
          f"{done}/{len(units)} units, resume digest-identical "
          f"({reference[:16]}...)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
