#!/usr/bin/env python
"""CI smoke test: congestion-control matrix gates.

Two gates protect the CC x scenario work:

1. **Byte-neutral plumbing.** A micro campaign with ``cc="cubic"``
   set *explicitly* must produce exactly the digest pinned for the
   default-config campaign in ``scenario_matrix_smoke.PINNED`` — the
   end-to-end CC selection path (``CampaignConfig.cc`` → work units
   → app configs → transport → controller factory) must be invisible
   when it selects what was already the default. Checked for every
   pinned scenario.

2. **BBR rides out rain fade.** A ``cc="bbr"`` micro campaign under
   ``rain_fade`` must complete and stay deterministic across two
   runs, and BBR must beat Cubic's mean download goodput on a pair
   of fixed-seed rain-fade speedtest cells — the qualitative result
   of "Unveiling TCP BBR Dominance in Starlink Internet" at smoke
   scale. (The goodput cells use a 4 s window: inside the micro
   campaign's 0.5 s one, the fade's 18 % loss stalls *every*
   controller to zero and the ordering is unmeasurable.)

Run from the repository root (CI job ``cc-matrix-smoke``)::

    PYTHONPATH=src python scripts/cc_matrix_smoke.py
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from scenario_matrix_smoke import PINNED, smoke_config  # noqa: E402

from repro.core.campaign import Campaign, CampaignConfig  # noqa: E402
from repro.exec.units import SpeedtestUnit  # noqa: E402
from repro.testing.digest import digest_dataset  # noqa: E402
from repro.units import minutes  # noqa: E402


def run_digest(scenario: str, cc: str) -> tuple[str, object]:
    config = dataclasses.replace(smoke_config(scenario), cc=cc)
    data = Campaign(config).run_all()
    return digest_dataset(data), data


def fade_goodput_mbps(cc: str) -> float:
    """Mean rain-fade download goodput over two fixed seeds."""
    config = CampaignConfig(
        seed=0, scenario="rain_fade", cc=cc,
        ping_days=1.0, ping_interval_s=minutes(60),
        speedtest_epochs=1, speedtest_connections=2,
        speedtest_measure_s=4.0, speedtest_warmup_s=1.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)
    values = [SpeedtestUnit(config, "starlink", "down", 3600.0,
                            1000 + seed).run().throughput_mbps
              for seed in (0, 1)]
    return sum(values) / len(values)


def main() -> int:
    failures: list[str] = []

    # Gate 1: explicit cc=cubic is byte-identical to the default pin.
    for scenario, pinned in PINNED.items():
        digest, _ = run_digest(scenario, "cubic")
        ok = digest == pinned
        print(f"cubic/{scenario}: digest {digest[:16]}... "
              f"{'ok' if ok else 'MISMATCH'}")
        if not ok:
            failures.append(
                f"cubic/{scenario}: explicit cc='cubic' produced "
                f"{digest}, pinned default is {pinned} — the CC "
                f"plumbing is no longer byte-neutral")

    # Gate 2: BBR under rain fade — deterministic, completes, and
    # sustains more goodput than Cubic under the same fade.
    bbr_digest, _ = run_digest("rain_fade", "bbr")
    bbr_again, _ = run_digest("rain_fade", "bbr")
    print(f"bbr/rain_fade: digest {bbr_digest[:16]}...")
    if bbr_digest != bbr_again:
        failures.append("bbr/rain_fade: two identical runs produced "
                        f"different digests ({bbr_digest} vs "
                        f"{bbr_again})")
    bbr_mbps = fade_goodput_mbps("bbr")
    cubic_mbps = fade_goodput_mbps("cubic")
    print(f"rain_fade goodput: bbr {bbr_mbps:.3f} Mbit/s vs "
          f"cubic {cubic_mbps:.3f} Mbit/s")
    if not bbr_mbps > cubic_mbps:
        failures.append(
            f"rain_fade: bbr mean speedtest goodput {bbr_mbps:.3f} "
            f"Mbit/s did not beat cubic's {cubic_mbps:.3f} Mbit/s")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("cc-matrix-smoke: OK — cubic plumbing byte-neutral on "
          f"{len(PINNED)} scenarios, bbr beats cubic under rain_fade")
    return 0


if __name__ == "__main__":
    sys.exit(main())
