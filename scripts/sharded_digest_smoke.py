#!/usr/bin/env python
"""CI gate: sharded pool runs must be digest-identical to serial.

Runs the tiny campaign once serially (workers=1, whole units), writes
the dataset digest to an artifact file, then reruns it with a 4-worker
pool at two shard granularities and asserts every digest matches the
serial one bit for bit. This is the executable form of the sharding
contract ``sharded(N, g) == serial``: any scheduler, merge or RNG
regression that slips past the unit suites fails this gate on the
full campaign path (``Campaign.run_all``) instead of a synthetic unit.

Run from the repository root (CI job ``sharded-digest-gate``)::

    PYTHONPATH=src python scripts/sharded_digest_smoke.py \\
        --artifact serial_digest.txt
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.campaign import Campaign, CampaignConfig
from repro.testing.digest import digest_dataset
from repro.units import minutes

WORKERS = 4
GRANULARITIES = (3, 8)


def smoke_config() -> CampaignConfig:
    return CampaignConfig(
        seed=0,
        ping_days=1.0, ping_interval_s=minutes(60),
        ping_shard_rounds=4,
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        speedtest_connections=3,
        bulk_per_direction=1, bulk_bytes=900_000,
        bulk_segment_bytes=400_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=4, web_visits_per_site=1)


def campaign_digest(workers: int, granularity: int) -> str:
    campaign = Campaign(smoke_config())
    return digest_dataset(campaign.run_all(workers=workers,
                                           granularity=granularity))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", type=Path, default=None,
                        help="write the serial reference digest here")
    args = parser.parse_args()

    serial = campaign_digest(workers=1, granularity=1)
    if args.artifact is not None:
        args.artifact.write_text(serial + "\n")
    print(f"serial digest: {serial}")

    failed = False
    for granularity in GRANULARITIES:
        sharded = campaign_digest(workers=WORKERS,
                                  granularity=granularity)
        ok = sharded == serial
        print(f"workers={WORKERS} granularity={granularity}: "
              f"{sharded}  {'OK' if ok else 'MISMATCH'}")
        failed |= not ok
    if failed:
        print("FAIL: sharded campaign diverged from the serial "
              "dataset", file=sys.stderr)
        return 1
    print(f"sharded-digest-gate: OK — workers={WORKERS}, "
          f"granularities {GRANULARITIES} all bit-identical to serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
