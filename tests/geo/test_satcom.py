"""Tests for the GEO SatCom access and the split-TCP PEP."""

import random

import pytest

from repro.geo import GeoPathModel, GeoSatComAccess, PepPolicy
from repro.leo.geometry import GeoPoint
from repro.transport.tcp import TcpServer, tcp_connect
from repro.units import mb, to_ms

BRUSSELS = GeoPoint(50.85, 4.35)


def test_geo_propagation_is_geostationary():
    model = GeoPathModel()
    # Two ~38 000 km slant legs: ~250-260 ms one way.
    assert 240 <= to_ms(model.propagation_one_way) <= 270


def test_geo_idle_rtt_around_600ms():
    model = GeoPathModel(seed=1)
    rng = random.Random(2)
    samples = [to_ms(model.idle_rtt(i * 97.0, rng, remote_rtt_s=0.004))
               for i in range(300)]
    samples.sort()
    assert 520 <= samples[0] <= 600
    assert 540 <= samples[len(samples) // 2] <= 640


def test_access_has_pep_by_default():
    access = GeoSatComAccess(seed=1)
    assert access.has_pep
    assert "pep" in access.net.nodes


def test_access_without_pep():
    access = GeoSatComAccess(seed=1, pep_enabled=False)
    assert not access.has_pep
    assert "pep" not in access.net.nodes


def _download(access, nbytes, until):
    server = access.add_remote_host("srv", "62.4.0.10", BRUSSELS)
    access.finalize()

    def serve(conn):
        conn.on_established = lambda: conn.send(nbytes, fin=True)

    TcpServer(server, 8080, on_connection=serve)
    client = tcp_connect(access.client, "62.4.0.10", 8080)
    done = {}
    client.on_fin = lambda t: done.setdefault("t", t)
    start = access.sim.now
    access.run(until)
    return client, done, start


def test_split_pep_download_moves_data():
    access = GeoSatComAccess(seed=3)
    client, done, start = _download(access, mb(20), 60.0)
    assert "t" in done
    goodput_mbps = mb(20) * 8 / (done["t"] - start) / 1e6
    # The PEP-paced space segment sustains tens of Mbit/s.
    assert goodput_mbps > 15
    pep = access.net.nodes["pep"]
    assert pep.tcp_flows_touched >= 1
    assert pep.flows


def test_no_pep_download_is_much_slower():
    """The PEP ablation: raw Cubic over 560 ms RTT crawls."""
    with_pep = GeoSatComAccess(seed=3)
    _, done_pep, start_pep = _download(with_pep, mb(8), 60.0)
    without = GeoSatComAccess(seed=3, pep_enabled=False)
    _, done_raw, start_raw = _download(without, mb(8), 60.0)
    assert "t" in done_pep
    t_pep = done_pep["t"] - start_pep
    if "t" in done_raw:
        assert done_raw["t"] - start_raw > 1.3 * t_pep
    # else: did not even finish -- an even stronger signal.


def test_handshake_rtt_is_geo_scale():
    access = GeoSatComAccess(seed=4)
    client, done, _ = _download(access, 10_000, 30.0)
    assert client.stats.handshake_rtt is not None
    assert 0.5 <= client.stats.handshake_rtt <= 0.9


def test_upload_limited_by_bod_uplink():
    access = GeoSatComAccess(seed=5)
    server = access.add_remote_host("srv", "62.4.0.10", BRUSSELS)
    access.finalize()
    received = {"n": 0}

    def on_conn(conn):
        conn.on_bytes_delivered = (
            lambda n: received.__setitem__("n", received["n"] + n))

    TcpServer(server, 8080, on_connection=on_conn)
    client = tcp_connect(access.client, "62.4.0.10", 8080)
    client.on_established = lambda: client.send(mb(30), fin=True)
    access.run(20.0)
    rate_mbps = received["n"] * 8 / 20.0 / 1e6
    assert rate_mbps < 10.0  # the plan's ceiling


def test_pep_policy_defaults():
    policy = PepPolicy()
    assert policy.split_tcp
    assert policy.accelerates_handshake
    assert not policy.accelerates_tls
