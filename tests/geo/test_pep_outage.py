"""Split-TCP PEP behaviour across a satellite-leg outage.

The PEP terminates the subscriber's TCP connection and relays bytes
over its own connection to the server, so a blackhole on the space
segment strands in-flight data on both sides of the split. These
tests pin the two properties that matter: a transient outage must not
deadlock the relay (the transfer resumes and completes), and even a
permanent blackhole must leave the simulation drivable to its bound.
"""

from repro.geo.satcom import GeoSatComAccess
from repro.leo.geometry import GeoPoint
from repro.testing.faults import FaultPlan
from repro.transport.tcp import TcpServer, tcp_connect
from repro.units import mb

BRUSSELS = GeoPoint(50.85, 4.35)


def _download(access, nbytes):
    """Start a PEP-split download; returns (client conn, fin box)."""
    server = access.add_remote_host("srv", "62.4.0.10", BRUSSELS)
    access.finalize()

    def serve(conn):
        conn.on_established = lambda: conn.send(nbytes, fin=True)

    TcpServer(server, 8080, on_connection=serve)
    client = tcp_connect(access.client, "62.4.0.10", 8080)
    done = {}
    client.on_fin = lambda t: done.setdefault("t", t)
    return client, done


def test_pep_transfer_survives_space_leg_flap():
    access = GeoSatComAccess(seed=7)
    client, done = _download(access, mb(5))
    # Blackhole the satellite leg for 2 s mid-transfer (both pipes).
    FaultPlan(seed=1).inject_link_flap(
        access.space_link, at=3.0, duration=2.0).arm(access.sim)
    access.run(120.0)
    # The split connections retransmit through the gap: no deadlock,
    # the transfer completes after the flap clears.
    assert "t" in done
    assert done["t"] > 5.0  # finished after the outage window
    pep = access.net.nodes["pep"]
    assert pep.tcp_flows_touched >= 1


def test_pep_no_deadlock_under_permanent_blackhole():
    access = GeoSatComAccess(seed=8)
    delivered = {"n": 0}
    client, done = _download(access, mb(5))
    client.on_bytes_delivered = (
        lambda n: delivered.__setitem__("n", delivered["n"] + n))
    FaultPlan(seed=2).inject_link_flap(
        access.space_link, at=2.0, duration=1e6).arm(access.sim)
    # Bounded drive must return: retransmission back-off may keep
    # timers alive, but nothing may spin or raise.
    access.run(60.0)
    assert "t" not in done
    assert delivered["n"] < mb(5)
    assert access.sim.now >= 60.0


def test_raw_tcp_without_pep_also_survives_flap():
    """The ablation path (pep_enabled=False) must ride out the same
    flap -- end-to-end Cubic over 560 ms RTT is slow, not stuck."""
    access = GeoSatComAccess(seed=9, pep_enabled=False)
    client, done = _download(access, mb(1))
    FaultPlan(seed=3).inject_link_flap(
        access.space_link, at=3.0, duration=2.0).arm(access.sim)
    access.run(300.0)
    assert "t" in done
