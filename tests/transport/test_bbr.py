"""Unit tests for the BBR congestion controller.

The tests drive the controller with synthetic
:class:`DeliveryRateSample` streams modelling a path of known
bandwidth and RTT: the delivered counter advances at the path rate,
each ACKed packet's ``prior_delivered`` is the counter one RTT ago, so
every sample measures exactly the true rate and rounds advance once
per RTT — the same shape the real transports produce.
"""

import math

import pytest

from repro.transport.cc import BBRController, DeliveryRateSample

MSS = 1400


def feed(cc, bw_bps, rtt, n_acks, start=0.0, app_limited=False):
    """ACK ``n_acks`` MSS-sized packets delivered at ``bw_bps``."""
    dt = cc.mss * 8.0 / bw_bps        # ACK spacing at the path rate
    byps = bw_bps / 8.0
    t = start
    for _ in range(n_acks):
        t += dt
        sample = DeliveryRateSample(
            delivered=int(byps * t),
            delivered_time=t,
            prior_delivered=max(0, int(byps * (t - rtt))),
            prior_delivered_time=max(0.0, t - rtt),
            in_flight=int(byps * rtt),
            app_limited=app_limited)
        cc.on_ack(cc.mss, now=t, rtt=rtt, sample=sample)
    return t


BW = 20e6        # 20 Mbit/s
RTT = 0.040      # 40 ms — Starlink-ish


def converged(bw_bps=BW, rtt=RTT):
    cc = BBRController(MSS)
    t = feed(cc, bw_bps, rtt, 2000)
    return cc, t


def test_startup_drain_probe_bw_progression():
    cc, _ = converged()
    assert cc.filled_pipe
    assert cc.state == "PROBE_BW"
    assert cc.bottleneck_bw_bps == pytest.approx(BW, rel=0.10)
    assert cc.min_rtt_s == pytest.approx(RTT)
    assert cc.pacing_gain in BBRController.PROBE_BW_GAINS


def test_model_properties_before_any_sample():
    cc = BBRController(MSS)
    assert cc.bottleneck_bw_bps == 0.0
    assert cc.min_rtt_s is None
    assert cc.bdp_bytes == 0.0
    assert cc.pacing_rate_bps is None
    assert cc.in_slow_start


def test_sampleless_acks_grow_like_slow_start():
    """Generic drivers that never pass samples still get a usable
    window: with no model the window grows by the ACKed bytes."""
    cc = BBRController(MSS)
    start = cc.cwnd
    for _ in range(10):
        cc.on_ack(MSS, now=0.01, rtt=0.001)
    assert cc.cwnd == start + 10 * MSS
    assert cc.pacing_rate_bps is None


def test_pacing_rate_is_gain_times_bw():
    cc, _ = converged()
    assert cc.pacing_rate_bps == pytest.approx(
        cc.pacing_gain * cc.bottleneck_bw_bps)


def test_cwnd_tracks_cwnd_gain_times_bdp():
    cc, _ = converged()
    bdp = BW / 8.0 * RTT
    assert cc.bdp_bytes == pytest.approx(bdp, rel=0.10)
    assert cc.cwnd <= BBRController.CWND_GAIN * cc.bdp_bytes + MSS
    assert cc.cwnd >= cc.bdp_bytes


def test_loss_does_not_shrink_the_window():
    """BBR v1's defining trait: loss is counted, not acted on."""
    cc, t = converged()
    before = cc.cwnd
    cc.on_congestion_event(now=t)
    assert cc.cwnd == before
    assert cc.congestion_events == 1


def test_recovery_window_suppresses_repeat_counts():
    cc, t = converged()
    cc.on_congestion_event(now=t)
    cc.set_recovery(until=t + 1.0)
    cc.on_congestion_event(now=t + 0.5)
    assert cc.congestion_events == 1
    cc.on_congestion_event(now=t + 1.5)
    assert cc.congestion_events == 2


def test_timeout_collapses_to_min_cwnd_then_recovers():
    cc, t = converged()
    before = cc.cwnd
    cc.on_timeout(now=t)
    assert cc.cwnd == BBRController.MIN_CWND_SEGMENTS * MSS
    # The model survives the RTO, so the window climbs straight back
    # to the BDP target instead of re-probing from scratch.
    feed(cc, BW, RTT, 500, start=t)
    assert cc.cwnd == pytest.approx(before, rel=0.15)


def test_probe_bw_gain_cycle_advances_and_averages_to_one():
    assert sum(BBRController.PROBE_BW_GAINS) == pytest.approx(
        len(BBRController.PROBE_BW_GAINS) * 1.0, rel=0.07)
    cc, t = converged()
    # Observe the gain after every ACK — sampling at coarser intervals
    # can alias with the phase period.
    seen = set()
    for _ in range(5000):
        t = feed(cc, BW, RTT, 1, start=t)
        seen.add(cc.pacing_gain)
    assert {1.25, 0.75, 1.0} <= seen


def test_probe_rtt_visited_when_estimate_goes_stale():
    cc, t = converged()
    states = set()
    # The floor rises (queue or path change): the old 40 ms minimum can
    # only age out via PROBE_RTT once the 10 s window expires.
    rtt = RTT + 0.02
    for _ in range(260):
        # Chunks shorter than PROBE_RTT_DURATION_S so the dip is
        # always observable at a chunk boundary.
        t = feed(cc, BW, rtt, 100, start=t)
        states.add(cc.state)
        if "PROBE_RTT" in states and cc.state == "PROBE_BW":
            break
    assert "PROBE_RTT" in states
    assert cc.min_rtt_s == pytest.approx(rtt)
    # And it left PROBE_RTT for PROBE_BW with a restored window.
    assert cc.state == "PROBE_BW"
    assert cc.cwnd > BBRController.MIN_CWND_SEGMENTS * MSS


def test_app_limited_samples_never_lower_the_estimate():
    cc, t = converged()
    bw = cc.bottleneck_bw_bps
    feed(cc, BW / 4.0, RTT, 1000, start=t, app_limited=True)
    assert cc.bottleneck_bw_bps == bw


def test_non_app_limited_slowdown_ages_out_of_the_filter():
    cc, t = converged()
    feed(cc, BW / 4.0, RTT, 2000, start=t)
    assert cc.bottleneck_bw_bps == pytest.approx(BW / 4.0, rel=0.10)


def test_startup_gain_constant():
    assert BBRController.STARTUP_GAIN == pytest.approx(2.0 / math.log(2.0))
    assert BBRController.DRAIN_GAIN == pytest.approx(math.log(2.0) / 2.0)


def test_delivery_rate_sample_math():
    s = DeliveryRateSample(
        delivered=200_000, delivered_time=1.5,
        prior_delivered=100_000, prior_delivered_time=1.0,
        in_flight=50_000)
    assert s.interval_s == pytest.approx(0.5)
    assert s.delivery_rate_bps == pytest.approx(100_000 * 8 / 0.5)
    degenerate = DeliveryRateSample(
        delivered=1, delivered_time=1.0,
        prior_delivered=0, prior_delivered_time=1.0,
        in_flight=0)
    assert degenerate.delivery_rate_bps == 0.0


def test_ack_compression_does_not_inflate_delivery_rate():
    # A scheduler that batches ACKs (Starlink's 15 ms frames) can
    # deliver a whole flight's ACKs microseconds apart. The sample
    # must fall back to the send-side span (tcp_rate.c's
    # max(snd_interval, ack_interval)) instead of reporting an
    # absurd instantaneous rate that would latch into BBR's
    # windowed-max filter.
    compressed = DeliveryRateSample(
        delivered=200_000, delivered_time=1.0001,
        prior_delivered=100_000, prior_delivered_time=1.0,
        in_flight=50_000,
        sent_time=0.96, first_sent_time=0.5)
    assert compressed.interval_s == pytest.approx(0.46)
    assert compressed.delivery_rate_bps == pytest.approx(
        100_000 * 8 / 0.46)
    # With no send-side stamps (defaults), the ACK span still rules.
    plain = DeliveryRateSample(
        delivered=200_000, delivered_time=1.5,
        prior_delivered=100_000, prior_delivered_time=1.0,
        in_flight=50_000)
    assert plain.interval_s == pytest.approx(0.5)


def test_bbr_survives_ack_compressed_feed():
    # Feed a BBR whose ACKs arrive in slot-aligned bursts: rates
    # derived from send-side spans must keep the bw estimate near the
    # true rate rather than the burst rate.
    cc = BBRController(mss=MSS)
    bw = 20e6
    byps = bw / 8.0
    rtt = 0.040
    slot = 0.015
    t, sent_t = 0.0, -rtt
    for burst in range(400):
        t += slot
        # One slot's worth of data, acked as a single burst of
        # samples 1 us apart.
        n = max(1, int(byps * slot / MSS))
        for k in range(n):
            ack_t = t + k * 1e-6
            sample = DeliveryRateSample(
                delivered=int(byps * ack_t),
                delivered_time=ack_t,
                prior_delivered=max(0, int(byps * (ack_t - rtt))),
                prior_delivered_time=max(0.0, ack_t - rtt),
                in_flight=int(byps * rtt),
                sent_time=ack_t - rtt,
                first_sent_time=ack_t - rtt - slot)
            cc.on_ack(MSS, now=ack_t, rtt=rtt, sample=sample)
    assert cc.bottleneck_bw_bps < bw * 1.6
