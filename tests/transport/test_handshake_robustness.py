"""Handshake robustness under adverse conditions."""

from repro.netsim import Network
from repro.netsim.loss import OutageSchedule
from repro.transport.quic import H3Client, H3Server
from repro.transport.tcp import TcpServer, tcp_connect
from repro.units import mbps, ms


def outage_net(outage_end: float):
    """Link fully down until ``outage_end``."""
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    loss = OutageSchedule([(0.0, outage_end)])
    net.connect("client", "server", rate_ab=mbps(50), rate_ba=mbps(50),
                delay=ms(10), loss_ab=loss)
    net.finalize()
    return net


def test_tcp_syn_retries_through_outage():
    net = outage_net(2.5)
    client = tcp_connect(net.host("client"), "10.0.1.1", 5001)
    TcpServer(net.host("server"), 5001)
    net.sim.run(until=10.0)
    assert client.established
    # SYN retried roughly once per second during the outage.
    assert client.stats.handshake_rtt > 2.0


def test_quic_hello_retries_through_outage():
    net = outage_net(2.5)
    H3Server(net.host("server"), 443, resource_bytes=10_000)
    client = H3Client(net.host("client"), "10.0.1.1", 443)
    result = client.get(10_000)
    net.sim.run(until=30.0)
    assert result.complete
    assert client.connection.established


def test_quic_data_survives_mid_transfer_outage():
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    loss = OutageSchedule([(0.5, 1.2)])   # 1.2 s blackout mid-flow
    net.connect("client", "server", rate_ab=mbps(50), rate_ba=mbps(50),
                delay=ms(10), loss_ab=loss, loss_ba=OutageSchedule(
                    [(0.5, 1.2)]))
    net.finalize()
    H3Server(net.host("server"), 443, resource_bytes=5_000_000)
    client = H3Client(net.host("client"), "10.0.1.1", 443)
    result = client.get(5_000_000)
    net.sim.run(until=60.0)
    assert result.complete
    # The blackout shows up as a long receiver-side loss event.
    gaps = client.connection.received_pns.gap_runs()
    assert gaps
