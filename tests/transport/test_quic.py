"""Integration tests for the QUIC stack over the simulator."""

import pytest

from repro.netsim import Network
from repro.netsim.loss import BernoulliLoss
from repro.netsim.queues import DropTailQueue
from repro.transport.quic import (
    H3Client,
    H3Server,
    QuicConfig,
    QuicServer,
    open_connection,
)
from repro.units import mb, mbps, ms


def make_net(rate=mbps(100), delay=ms(10), qbytes=None, loss=None):
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    queue_a = DropTailQueue(capacity_bytes=qbytes) if qbytes else None
    queue_b = DropTailQueue(capacity_bytes=qbytes) if qbytes else None
    net.connect("client", "server", rate_ab=rate, rate_ba=rate,
                delay=delay, queue_ab=queue_a, queue_ba=queue_b,
                loss_ab=loss, loss_ba=loss)
    net.finalize()
    return net


def test_handshake_takes_one_rtt():
    net = make_net(delay=ms(30))
    srv = H3Server(net.host("server"), 443, resource_bytes=1000)
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.get(1000)
    net.sim.run(until=5.0)
    assert result.complete
    assert cli.connection.stats.handshake_rtt == pytest.approx(
        0.06, rel=0.05)


def test_download_delivers_and_completes():
    net = make_net()
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(5))
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.get(mb(5))
    net.sim.run(until=30.0)
    assert result.complete
    assert result.goodput_bps() > 0.6 * mbps(100)


def test_upload_completes_with_server_response():
    net = make_net()
    srv = H3Server(net.host("server"), 443)
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.post(mb(2))
    net.sim.run(until=30.0)
    assert result.complete
    assert srv.requests_served == 1


def test_lossless_link_means_no_missing_pns():
    net = make_net()
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(2))
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.get(mb(2))
    net.sim.run(until=30.0)
    assert result.complete
    assert cli.connection.receiver_lost_pns() == []
    assert cli.connection.receiver_loss_ratio() == 0.0


def test_receiver_sees_exact_losses_under_random_loss():
    """The paper's method: missing packet numbers == lost packets."""
    net = make_net(rate=mbps(30), loss=BernoulliLoss(0.02))
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(2))
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.get(mb(2))
    net.sim.run(until=120.0)
    assert result.complete         # all data recovered...
    missing = cli.connection.receiver_lost_pns()
    assert missing                 # ...yet losses remain visible
    ratio = cli.connection.receiver_loss_ratio()
    assert 0.005 <= ratio <= 0.06


def test_retransmission_uses_new_packet_numbers():
    net = make_net(rate=mbps(30), loss=BernoulliLoss(0.02))
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(1))
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.get(mb(1))
    net.sim.run(until=60.0)
    assert result.complete
    server_conn = next(iter(srv.connections.values()))
    # Sender counted losses; packets sent exceed the data packets a
    # lossless run would need.
    assert server_conn.stats.lost_pns
    gaps = cli.connection.received_pns.gap_runs()
    assert len(gaps) >= 1


def test_recovers_from_queue_overflow():
    net = make_net(rate=mbps(50), delay=ms(20), qbytes=80_000)
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(4))
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.get(mb(4))
    net.sim.run(until=60.0)
    assert result.complete


def test_flow_control_window_autotunes():
    net = make_net(rate=mbps(400), delay=ms(20))
    config = QuicConfig(initial_max_data=mb(10))
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(30),
                   config=config)
    cli = H3Client(net.host("client"), "10.0.1.1", 443, config=config)
    result = cli.get(mb(30))
    net.sim.run(until=30.0)
    assert result.complete
    assert cli.connection.local_max_data > mb(10)


def test_flow_control_blocks_without_autotune():
    net = make_net(rate=mbps(400), delay=ms(20))
    config = QuicConfig(initial_max_data=mb(1), autotune=False)
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(5),
                   config=config)
    cli = H3Client(net.host("client"), "10.0.1.1", 443, config=config)
    result = cli.get(mb(5))
    net.sim.run(until=10.0)
    # Sender respects max_data: at most 1 MB of stream data arrives.
    assert not result.complete
    assert cli.connection.data_received <= mb(1)


def test_many_small_streams_all_complete():
    """The messages workload shape: stream per message."""
    net = make_net(delay=ms(15))
    completions = []

    def on_server_conn(conn):
        conn.on_stream_complete = (
            lambda sid, nbytes, now: completions.append((sid, nbytes)))

    server = QuicServer(net.host("server"), 4433,
                        on_connection=on_server_conn)
    client = open_connection(net.host("client"), "10.0.1.1", 4433)
    client.connect()
    net.sim.run(until=1.0)
    sizes = [5000, 12000, 25000, 800]
    for size in sizes:
        sid = client.open_stream()
        client.stream_write(sid, size, fin=True)
    net.sim.run(until=10.0)
    assert sorted(n for _, n in completions) == sorted(sizes)


def test_per_packet_rtt_samples_match_path():
    net = make_net(delay=ms(40))
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(1))
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.get(mb(1))
    net.sim.run(until=20.0)
    assert result.complete
    server_conn = next(iter(srv.connections.values()))
    samples = [rtt for _, rtt in server_conn.stats.acked_packet_rtts]
    assert samples
    # Base path RTT is 80 ms; samples sit above it but below 3x.
    assert min(samples) >= 0.08 - 1e-9
    assert max(samples) < 0.24


def test_stats_counters_consistent():
    net = make_net()
    srv = H3Server(net.host("server"), 443, resource_bytes=mb(1))
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    result = cli.get(mb(1))
    net.sim.run(until=20.0)
    assert result.complete
    server_conn = next(iter(srv.connections.values()))
    stats = server_conn.stats
    assert stats.packets_sent >= stats.ack_eliciting_sent
    assert stats.acked_packets <= stats.ack_eliciting_sent
    assert stats.bytes_sent > mb(1)
