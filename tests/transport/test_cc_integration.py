"""Congestion-control plumbing through the real transports.

Regression coverage for the CC-matrix PR: the config knobs
(``cc``/``initial_window``/``hystart``) must actually reach the
controller on both stacks, the controllers must be fed the *latest*
RTT sample plus a live delivery-rate sample, and BBR must complete
transfers end to end.
"""

import pytest

from repro.netsim import Network
from repro.netsim.loss import BernoulliLoss
from repro.netsim.queues import DropTailQueue
from repro.rng import make_rng
from repro.transport.quic import (
    H3Client,
    H3Server,
    QuicConfig,
    open_connection,
)
from repro.transport.tcp import TcpConfig, TcpServer, tcp_connect
from repro.units import mb, mbps, ms


def make_net(rate=mbps(100), delay=ms(10), qbytes=None, loss=None):
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    queue_a = DropTailQueue(capacity_bytes=qbytes) if qbytes else None
    queue_b = DropTailQueue(capacity_bytes=qbytes) if qbytes else None
    net.connect("client", "server", rate_ab=rate, rate_ba=rate,
                delay=delay, queue_ab=queue_a, queue_ba=queue_b,
                loss_ab=loss, loss_ba=loss)
    net.finalize()
    return net


# -- config knobs reach the controller ---------------------------------


def test_tcp_config_knobs_reach_controller():
    net = make_net()
    TcpServer(net.host("server"), 5001)
    conn = tcp_connect(
        net.host("client"), "10.0.1.1", 5001,
        config=TcpConfig(cc="cubic", initial_window=42_000,
                         hystart=False))
    assert conn.cc.name == "cubic"
    assert conn.cc.cwnd == 42_000
    assert conn.cc.hystart is False


def test_quic_config_knobs_reach_controller():
    """Regression: QUIC used to ignore ``initial_window`` entirely
    (and there was no ``hystart`` knob to drop)."""
    net = make_net()
    conn = open_connection(
        net.host("client"), "10.0.1.1", 443,
        config=QuicConfig(cc="cubic", initial_window=42_000,
                          hystart=False))
    assert conn.cc.name == "cubic"
    assert conn.cc.cwnd == 42_000
    assert conn.cc.hystart is False


@pytest.mark.parametrize("kind", ["cubic", "newreno", "bbr"])
def test_every_cc_kind_instantiates_on_both_stacks(kind):
    net = make_net()
    TcpServer(net.host("server"), 5001)
    tconn = tcp_connect(net.host("client"), "10.0.1.1", 5001,
                        config=TcpConfig(cc=kind))
    qconn = open_connection(net.host("client"), "10.0.1.1", 443,
                            config=QuicConfig(cc=kind))
    assert tconn.cc.name == kind
    assert qconn.cc.name == kind


# -- what the controllers are fed --------------------------------------


def _spy_on_ack(conn):
    calls = []
    orig = conn.cc.on_ack

    def spy(bytes_acked, now, rtt, sample=None, in_flight=0):
        calls.append({"rtt": rtt,
                      "latest": conn.rtt.latest,
                      "smoothed": conn.rtt.smoothed,
                      "sample": sample,
                      "in_flight": in_flight})
        return orig(bytes_acked, now, rtt,
                    sample=sample, in_flight=in_flight)

    conn.cc.on_ack = spy
    return calls


def test_tcp_feeds_latest_rtt_and_delivery_samples():
    net = make_net(rate=mbps(20), qbytes=60_000)
    received = {"n": 0}

    def on_conn(conn):
        conn.on_bytes_delivered = (
            lambda n: received.__setitem__("n", received["n"] + n))

    TcpServer(net.host("server"), 5001, on_connection=on_conn)
    client = tcp_connect(net.host("client"), "10.0.1.1", 5001)
    calls = _spy_on_ack(client)
    client.on_established = lambda: client.send(mb(2), fin=True)
    net.sim.run(until=30.0)
    assert received["n"] == mb(2)
    assert calls
    for c in calls:
        assert c["rtt"] == c["latest"]
    # The queue makes the RTT move, so latest and smoothed genuinely
    # differ somewhere — i.e. the assertion above discriminates.
    assert any(c["latest"] != c["smoothed"] for c in calls)
    samples = [c["sample"] for c in calls if c["sample"] is not None]
    assert samples
    assert any(s.delivery_rate_bps > 0 for s in samples)
    assert all(s.interval_s > 0 for s in samples)


def test_quic_feeds_latest_rtt_and_delivery_samples():
    """Regression: the QUIC ACK path used to hand ``rtt.smoothed`` to
    the controller, so HyStart saw pre-averaged delay and reacted a
    round late (or not at all)."""
    net = make_net(rate=mbps(20), qbytes=60_000)
    H3Server(net.host("server"), 443)
    cli = H3Client(net.host("client"), "10.0.1.1", 443)
    # Upload: the client connection is the bulk *sender*, so its
    # controller is the one fed data ACKs.
    calls = _spy_on_ack(cli.connection)
    result = cli.post(mb(2))
    net.sim.run(until=30.0)
    assert result.complete
    assert calls
    for c in calls:
        assert c["rtt"] == c["latest"]
    assert any(c["latest"] != c["smoothed"] for c in calls)
    samples = [c["sample"] for c in calls if c["sample"] is not None]
    assert samples
    assert any(s.delivery_rate_bps > 0 for s in samples)


# -- BBR end to end ----------------------------------------------------


def test_tcp_bbr_transfer_completes_and_builds_model():
    net = make_net(rate=mbps(50), delay=ms(20))
    received = {"n": 0}

    def on_conn(conn):
        conn.on_bytes_delivered = (
            lambda n: received.__setitem__("n", received["n"] + n))

    TcpServer(net.host("server"), 5001, on_connection=on_conn)
    client = tcp_connect(net.host("client"), "10.0.1.1", 5001,
                         config=TcpConfig(cc="bbr"))
    client.on_established = lambda: client.send(mb(4), fin=True)
    net.sim.run(until=30.0)
    assert received["n"] == mb(4)
    assert client.cc.bottleneck_bw_bps == pytest.approx(
        mbps(50), rel=0.25)
    assert client.cc.min_rtt_s == pytest.approx(0.04, rel=0.15)
    assert client.cc.pacing_rate_bps is not None


def test_quic_bbr_transfer_completes_and_builds_model():
    net = make_net(rate=mbps(50), delay=ms(20))
    H3Server(net.host("server"), 443, resource_bytes=mb(4))
    cli = H3Client(net.host("client"), "10.0.1.1", 443,
                   config=QuicConfig(cc="bbr"))
    result = cli.get(mb(4))
    net.sim.run(until=30.0)
    assert result.complete
    assert result.goodput_bps() > 0.5 * mbps(50)


def test_bbr_rides_out_random_loss_better_than_cubic():
    """The acceptance-shaping micro-version of the BBR-dominance
    claim: under ~2% random loss the loss-blind model keeps the pipe
    full while Cubic's multiplicative decreases starve it."""
    goodput = {}
    for kind in ("cubic", "bbr"):
        net = make_net(
            rate=mbps(40), delay=ms(20),
            loss=BernoulliLoss(0.02, rng=make_rng(("ccmx", kind))))
        received = {"n": 0}
        done = {}

        def on_conn(conn):
            conn.on_bytes_delivered = (
                lambda n: received.__setitem__("n", received["n"] + n))
            conn.on_fin = lambda t: done.setdefault("t", t)

        TcpServer(net.host("server"), 5001, on_connection=on_conn)
        client = tcp_connect(net.host("client"), "10.0.1.1", 5001,
                             config=TcpConfig(cc=kind))
        client.on_established = lambda: client.send(mb(3), fin=True)
        net.sim.run(until=60.0)
        assert received["n"] == mb(3)
        goodput[kind] = received["n"] / done["t"]
    assert goodput["bbr"] > goodput["cubic"]


def test_bbr_pacing_overrides_static_rate():
    """Once BBR has a bandwidth estimate, its model-driven pacing rate
    takes precedence over the configured static rate."""
    net = make_net(rate=mbps(50), delay=ms(20))
    done = {}

    def on_conn(conn):
        conn.on_fin = lambda t: done.setdefault("t", t)

    TcpServer(net.host("server"), 5001, on_connection=on_conn)
    client = tcp_connect(
        net.host("client"), "10.0.1.1", 5001,
        config=TcpConfig(cc="bbr", pacing_rate_bps=mbps(1)))
    client.on_established = lambda: client.send(mb(2), fin=True)
    net.sim.run(until=30.0)
    # At a static 1 Mbit/s pace 2 MB would need >16 s; the model pace
    # must have taken over for the transfer to finish sooner.
    assert done.get("t") is not None
    assert done["t"] < 10.0
