"""Property-based reliability tests for both transports.

Whatever the loss pattern, a finite transfer over a finite-loss link
must eventually deliver every byte exactly once. These are the
invariants the whole measurement pipeline rests on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import Network
from repro.netsim.loss import BernoulliLoss
from repro.rng import make_rng
from repro.transport.quic import H3Client, H3Server
from repro.transport.tcp import TcpServer, tcp_connect
from repro.units import mbps, ms


def lossy_net(loss_prob: float, seed: int):
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    net.connect(
        "client", "server", rate_ab=mbps(20), rate_ba=mbps(20),
        delay=ms(8),
        loss_ab=BernoulliLoss(loss_prob, rng=make_rng(("p", seed, 1))),
        loss_ba=BernoulliLoss(loss_prob, rng=make_rng(("p", seed, 2))))
    net.finalize()
    return net


@settings(max_examples=8, deadline=None)
@given(loss=st.floats(min_value=0.0, max_value=0.06),
       nbytes=st.integers(min_value=1, max_value=400_000),
       seed=st.integers(min_value=0, max_value=10_000))
def test_property_tcp_delivers_exactly_once(loss, nbytes, seed):
    net = lossy_net(loss, seed)
    received = {"n": 0}
    fin = {}

    def on_conn(conn):
        conn.on_bytes_delivered = (
            lambda n: received.__setitem__("n", received["n"] + n))
        conn.on_fin = lambda t: fin.setdefault("t", t)

    TcpServer(net.host("server"), 5001, on_connection=on_conn)
    client = tcp_connect(net.host("client"), "10.0.1.1", 5001)
    client.on_established = lambda: client.send(nbytes, fin=True)
    net.sim.run(until=120.0)
    assert "t" in fin
    assert received["n"] == nbytes


@settings(max_examples=8, deadline=None)
@given(loss=st.floats(min_value=0.0, max_value=0.06),
       nbytes=st.integers(min_value=1, max_value=400_000),
       seed=st.integers(min_value=0, max_value=10_000))
def test_property_quic_delivers_exactly_once(loss, nbytes, seed):
    net = lossy_net(loss, seed)
    H3Server(net.host("server"), 443, resource_bytes=nbytes)
    client = H3Client(net.host("client"), "10.0.1.1", 443)
    result = client.get(nbytes)
    net.sim.run(until=120.0)
    assert result.complete
    # Stream bytes received exactly match (header block + resource).
    streams = client.connection.recv_streams
    assert sum(s.received.total for s in streams.values()) == \
        nbytes + 100  # RESPONSE_HEADER_BYTES
