"""Tests for socket plumbing and HTTP/3 semantics."""

import pytest

from repro.errors import ConfigurationError, TransportError
from repro.netsim import Network
from repro.netsim.packet import Protocol
from repro.transport.base import DatagramSocket, SharedSocket
from repro.transport.quic import H3Client, H3Server
from repro.transport.quic.connection import QuicConnection
from repro.transport.quic.h3 import (
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    TransferResult,
)
from repro.units import mb, mbps, ms


def two_hosts():
    net = Network()
    net.add_host("a", "10.0.0.1")
    net.add_host("b", "10.0.0.2")
    net.connect("a", "b", rate_ab=mbps(100), rate_ba=mbps(100),
                delay=ms(5))
    net.finalize()
    return net


def test_datagram_socket_allocates_unique_ports():
    net = two_hosts()
    s1 = DatagramSocket(net.host("a"))
    s2 = DatagramSocket(net.host("a"))
    assert s1.port != s2.port


def test_datagram_socket_double_bind_rejected():
    net = two_hosts()
    DatagramSocket(net.host("a"), port=5000)
    with pytest.raises(ConfigurationError):
        DatagramSocket(net.host("a"), port=5000)


def test_datagram_socket_close_releases_port():
    net = two_hosts()
    sock = DatagramSocket(net.host("a"), port=5000)
    sock.close()
    sock.close()  # idempotent
    DatagramSocket(net.host("a"), port=5000)  # rebindable


def test_datagram_roundtrip():
    net = two_hosts()
    rx = DatagramSocket(net.host("b"), port=7000)
    got = []
    rx.on_receive = got.append
    tx = DatagramSocket(net.host("a"))
    tx.sendto("10.0.0.2", 7000, 200, payload="hi")
    net.run()
    assert len(got) == 1
    assert got[0].payload == "hi"
    assert got[0].src_port == tx.port


def test_shared_socket_close_keeps_listener():
    net = two_hosts()
    listener = DatagramSocket(net.host("b"), port=7000)
    facade = SharedSocket(listener)
    facade.close()       # no-op
    assert facade.port == 7000
    got = []
    listener.on_receive = got.append
    facade.sendto("10.0.0.2", 7000, 100)  # loops back via host b
    net.run()
    assert got  # binding still alive


# -- H3 ------------------------------------------------------------------

def test_h3_responder_callable():
    net = two_hosts()
    sizes = {}

    def responder(stream_id, request_bytes):
        sizes[stream_id] = request_bytes
        return 50_000

    H3Server(net.host("b"), 443, responder=responder)
    client = H3Client(net.host("a"), "10.0.0.2", 443)
    result = client.get(50_000)
    net.sim.run(until=10.0)
    assert result.complete
    assert sizes  # responder consulted
    assert list(sizes.values())[0] == REQUEST_HEADER_BYTES


def test_h3_multiple_requests_one_connection():
    net = two_hosts()
    H3Server(net.host("b"), 443, resource_bytes=20_000)
    client = H3Client(net.host("a"), "10.0.0.2", 443)
    results = [client.get(20_000) for _ in range(3)]
    net.sim.run(until=10.0)
    assert all(r.complete for r in results)
    # One connection, one handshake.
    assert client.connection.stats.handshake_rtt is not None


def test_transfer_result_guards():
    result = TransferResult(request_bytes=100, response_bytes=0,
                            start_time=0.0)
    assert not result.complete
    with pytest.raises(ValueError):
        _ = result.duration


def test_upload_response_header_size():
    net = two_hosts()
    server = H3Server(net.host("b"), 443)
    client = H3Client(net.host("a"), "10.0.0.2", 443)
    result = client.post(10_000)
    net.sim.run(until=10.0)
    assert result.complete
    server_conn = next(iter(server.connections.values()))
    # The server's only send is the response header block.
    assert server_conn.data_sent == RESPONSE_HEADER_BYTES


def test_quic_connection_role_validation():
    net = two_hosts()
    sock = DatagramSocket(net.host("a"))
    with pytest.raises(TransportError):
        QuicConnection(net.sim, sock, "10.0.0.2", 443,
                       role="middlebox")


def test_stream_write_validation():
    net = two_hosts()
    sock = DatagramSocket(net.host("a"))
    conn = QuicConnection(net.sim, sock, "10.0.0.2", 443,
                          role="client")
    sid = conn.open_stream()
    with pytest.raises(TransportError):
        conn.stream_write(sid, -5)
    conn.stream_write(sid, 10, fin=True)
    with pytest.raises(TransportError):
        conn.stream_write(sid, 10)   # after FIN
    conn.close()
    with pytest.raises(TransportError):
        conn.stream_write(sid, 10)   # after close
