"""Tests for RFC 6298/9002 RTT estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.transport.rtt import RttEstimator


def test_initial_state():
    est = RttEstimator()
    assert est.srtt is None
    assert est.smoothed == RttEstimator.INITIAL_RTT
    assert est.samples == 0


def test_first_sample_initialises():
    est = RttEstimator()
    est.update(0.1)
    assert est.srtt == pytest.approx(0.1)
    assert est.rttvar == pytest.approx(0.05)
    assert est.min_rtt == pytest.approx(0.1)


def test_ewma_smoothing():
    est = RttEstimator()
    est.update(0.1)
    est.update(0.2)
    assert est.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)


def test_min_rtt_tracks_smallest():
    est = RttEstimator()
    for sample in (0.2, 0.15, 0.3, 0.12, 0.5):
        est.update(sample)
    assert est.min_rtt == pytest.approx(0.12)


def test_ack_delay_subtracted_when_safe():
    est = RttEstimator()
    est.update(0.1)               # min_rtt = 0.1
    adjusted = est.update(0.15, ack_delay=0.02)
    assert adjusted == pytest.approx(0.13)


def test_ack_delay_not_below_min():
    est = RttEstimator()
    est.update(0.1)
    adjusted = est.update(0.105, ack_delay=0.02)
    # 0.105 - 0.02 < min_rtt, so the raw sample is used.
    assert adjusted == pytest.approx(0.105)


def test_negative_sample_rejected():
    est = RttEstimator()
    with pytest.raises(ValueError):
        est.update(-0.01)


def test_rto_clamped():
    est = RttEstimator()
    est.update(0.001)
    assert est.rto(min_rto=0.2) == 0.2
    est2 = RttEstimator()
    est2.update(100.0)
    assert est2.rto(max_rto=60.0) == 60.0


def test_pto_exceeds_srtt():
    est = RttEstimator()
    est.update(0.05)
    assert est.pto() > est.smoothed


@given(st.lists(st.floats(min_value=1e-4, max_value=10.0),
                min_size=1, max_size=100))
def test_property_srtt_within_sample_range(samples):
    est = RttEstimator()
    for sample in samples:
        est.update(sample)
    assert min(samples) <= est.smoothed <= max(samples)
    assert est.min_rtt == pytest.approx(min(samples))
    assert est.samples == len(samples)
