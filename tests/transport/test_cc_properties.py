"""Property-based invariants over all congestion controllers.

Random operation sequences against every controller kind: whatever
the interleaving of ACKs, losses and RTOs, a controller must keep a
positive, finite window above its floor; loss-free ACK streams must
never shrink the window; and leaving slow start must be permanent for
the loss-based controllers.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.transport.cc import CC_KINDS, make_controller

MSS = 1400

_ack = st.tuples(st.just("ack"),
                 st.integers(min_value=1, max_value=4 * MSS),
                 st.floats(min_value=1e-4, max_value=1.0))
_loss = st.tuples(st.just("loss"))
_timeout = st.tuples(st.just("timeout"))


@settings(max_examples=60, deadline=None)
@given(kind=st.sampled_from(CC_KINDS),
       ops=st.lists(st.one_of(_ack, _loss, _timeout), max_size=60),
       gap=st.floats(min_value=1e-4, max_value=0.05))
def test_property_cwnd_stays_positive_finite_and_floored(kind, ops, gap):
    cc = make_controller(kind, MSS)
    floor = 4 * MSS if kind == "bbr" else MSS
    t = 0.0
    for op in ops:
        t += gap
        if op[0] == "ack":
            cc.on_ack(op[1], now=t, rtt=op[2])
        elif op[0] == "loss":
            cc.on_congestion_event(now=t)
        else:
            cc.on_timeout(now=t)
        assert math.isfinite(cc.cwnd)
        assert cc.cwnd >= floor


@settings(max_examples=60, deadline=None)
@given(kind=st.sampled_from(CC_KINDS),
       acks=st.lists(
           st.tuples(st.integers(min_value=1, max_value=4 * MSS),
                     st.floats(min_value=1e-4, max_value=1.0)),
           max_size=80))
def test_property_loss_free_acks_never_shrink_cwnd(kind, acks):
    cc = make_controller(kind, MSS)
    t, prev = 0.0, cc.cwnd
    for nbytes, rtt in acks:
        t += 0.001
        cc.on_ack(nbytes, now=t, rtt=rtt)
        assert cc.cwnd >= prev
        prev = cc.cwnd


@settings(max_examples=40, deadline=None)
@given(kind=st.sampled_from(["cubic", "newreno"]),
       pre=st.integers(min_value=0, max_value=200),
       post=st.integers(min_value=1, max_value=200))
def test_property_slow_start_exit_is_permanent(kind, pre, post):
    cc = make_controller(kind, MSS)
    t = 0.0
    for _ in range(pre):
        t += 0.001
        cc.on_ack(MSS, now=t, rtt=0.001)
    t += 0.001
    cc.on_congestion_event(now=t)
    assert not cc.in_slow_start
    t += 1.0
    for _ in range(post):
        t += 0.001
        cc.on_ack(MSS, now=t, rtt=0.001)
        assert not cc.in_slow_start


@settings(max_examples=40, deadline=None)
@given(kind=st.sampled_from(CC_KINDS),
       n=st.integers(min_value=2, max_value=10))
def test_property_loss_burst_decreases_at_most_once(kind, n):
    cc = make_controller(kind, MSS)
    t = 0.0
    for _ in range(50):
        t += 0.001
        cc.on_ack(MSS, now=t, rtt=0.001)
    cc.on_congestion_event(now=t)
    after = cc.cwnd
    cc.set_recovery(until=t + 1.0)
    for _ in range(n):
        cc.on_congestion_event(now=t + 0.5)
    assert cc.cwnd == after
    assert cc.congestion_events == 1
