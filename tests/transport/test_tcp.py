"""Integration tests for the TCP stack over the simulator."""

import pytest

from repro.errors import TransportError
from repro.netsim import Network
from repro.netsim.loss import BernoulliLoss
from repro.netsim.queues import DropTailQueue
from repro.transport.tcp import TcpConfig, TcpServer, tcp_connect
from repro.units import mb, mbps, ms


def make_net(rate=mbps(100), delay=ms(10), qbytes=None, loss=None):
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    queue_a = DropTailQueue(capacity_bytes=qbytes) if qbytes else None
    queue_b = DropTailQueue(capacity_bytes=qbytes) if qbytes else None
    net.connect("client", "server", rate_ab=rate, rate_ba=rate,
                delay=delay, queue_ab=queue_a, queue_ba=queue_b,
                loss_ab=loss, loss_ba=loss)
    net.finalize()
    return net


def upload(net, nbytes, config=None, until=60.0):
    done = {}
    received = {"n": 0}

    def on_conn(conn):
        conn.on_fin = lambda t: done.setdefault("t", t)
        conn.on_bytes_delivered = (
            lambda n: received.__setitem__("n", received["n"] + n))

    server = TcpServer(net.host("server"), 5001, on_connection=on_conn)
    client = tcp_connect(net.host("client"), "10.0.1.1", 5001,
                         config=config)
    client.on_established = lambda: client.send(nbytes, fin=True)
    net.sim.run(until=until)
    return client, server, done, received


def test_handshake_completes_and_measures_rtt():
    net = make_net(delay=ms(25))
    client, _, _, _ = upload(net, 0)
    assert client.established
    assert client.stats.handshake_rtt == pytest.approx(0.05, rel=0.01)


def test_lossless_transfer_delivers_every_byte():
    net = make_net()
    _, _, done, received = upload(net, mb(5))
    assert "t" in done
    assert received["n"] == mb(5)


def test_pure_fin_after_empty_send_completes():
    net = make_net()
    client, _, done, _ = upload(net, 0)
    assert "t" in done       # FIN consumed a sequence number
    assert client.snd_una == 1


def test_send_after_fin_rejected():
    net = make_net()
    client, _, _, _ = upload(net, 1000)
    with pytest.raises(TransportError):
        client.send(10)


def test_throughput_near_link_rate():
    net = make_net(rate=mbps(50), delay=ms(10))
    _, _, done, _ = upload(net, mb(10))
    assert "t" in done
    goodput = mb(10) * 8 / done["t"]
    assert goodput > 0.75 * mbps(50)


def test_recovers_from_random_loss():
    net = make_net(rate=mbps(20), delay=ms(10),
                   loss=BernoulliLoss(0.01))
    client, _, done, received = upload(net, mb(3), until=120.0)
    assert "t" in done
    assert received["n"] == mb(3)
    assert client.stats.retransmissions > 0


def test_recovers_from_queue_overflow():
    net = make_net(rate=mbps(50), delay=ms(30), qbytes=60_000)
    client, _, done, received = upload(net, mb(5), until=120.0)
    assert "t" in done
    assert received["n"] == mb(5)


def test_receive_window_autotunes_up():
    net = make_net(rate=mbps(200), delay=ms(50))
    _, server, done, _ = upload(net, mb(20), until=60.0)
    assert "t" in done
    conn = next(iter(server.connections.values()))
    assert conn.rwnd > TcpConfig().rwnd_default


def test_autotune_disabled_keeps_default_window():
    net = make_net(rate=mbps(200), delay=ms(50))
    done = {}

    def on_conn(conn):
        conn.config.autotune = False
        conn.on_fin = lambda t: done.setdefault("t", t)

    server = TcpServer(net.host("server"), 5001, on_connection=on_conn)
    client = tcp_connect(net.host("client"), "10.0.1.1", 5001)
    client.on_established = lambda: client.send(mb(5), fin=True)
    net.sim.run(until=60.0)
    assert "t" in done
    # Window-limited: ~131072 B per 100 ms RTT ~ 10.5 Mbit/s.
    goodput = mb(5) * 8 / done["t"]
    assert goodput < mbps(14)


def test_rwnd_caps_at_linux_maximum():
    net = make_net(rate=mbps(900), delay=ms(150))
    _, server, _, _ = upload(net, mb(60), until=20.0)
    conn = next(iter(server.connections.values()))
    assert conn.rwnd <= TcpConfig().rwnd_max


def test_pacing_spreads_transmissions():
    net = make_net(rate=mbps(100), delay=ms(5))
    config = TcpConfig(pacing_rate_bps=mbps(10),
                       initial_window=mb(4))
    _, _, done, received = upload(net, mb(2), config=config,
                                  until=10.0)
    # Paced at 10 Mbit/s: 2 MB takes ~1.6 s despite the huge window.
    assert "t" in done
    assert done["t"] == pytest.approx(1.6, rel=0.25)


def test_rtt_samples_skip_retransmissions():
    net = make_net(rate=mbps(20), delay=ms(10),
                   loss=BernoulliLoss(0.02))
    client, _, done, _ = upload(net, mb(2), until=120.0)
    assert "t" in done
    # Karn's algorithm: every sample close to the true RTT (20 ms),
    # never inflated by a retransmission ambiguity.
    assert client.stats.rtt_samples
    for _, sample in client.stats.rtt_samples:
        assert sample < 0.5


def test_server_demuxes_parallel_clients():
    net = make_net()
    received = {"n": 0}

    def on_conn(conn):
        conn.on_bytes_delivered = (
            lambda n: received.__setitem__("n", received["n"] + n))

    server = TcpServer(net.host("server"), 5001, on_connection=on_conn)
    clients = []
    for _ in range(3):
        conn = tcp_connect(net.host("client"), "10.0.1.1", 5001)
        conn.on_established = (lambda conn=conn:
                               conn.send(100_000, fin=True))
        clients.append(conn)
    net.sim.run(until=30.0)
    assert len(server.connections) == 3
    assert received["n"] == 300_000


def test_download_direction_works():
    net = make_net()
    done = {}

    def on_conn(conn):
        conn.on_established = lambda: conn.send(mb(1), fin=True)

    TcpServer(net.host("server"), 5001, on_connection=on_conn)
    client = tcp_connect(net.host("client"), "10.0.1.1", 5001)
    client.on_fin = lambda t: done.setdefault("t", t)
    net.sim.run(until=30.0)
    assert "t" in done
    assert client.delivered == mb(1)
