"""Tests for the interval bookkeeping (RangeSet)."""

import pytest
from hypothesis import given, strategies as st

from repro.transport.rangeset import RangeSet


def test_empty_rangeset():
    rs = RangeSet()
    assert not rs
    assert len(rs) == 0
    assert rs.max_value is None
    assert rs.min_value is None
    assert rs.total == 0
    assert rs.first_missing(0) == 0


def test_single_value_add():
    rs = RangeSet()
    rs.add(5)
    assert rs.contains(5)
    assert not rs.contains(4)
    assert not rs.contains(6)
    assert rs.total == 1
    assert rs.max_value == 5
    assert rs.min_value == 5


def test_adjacent_ranges_coalesce():
    rs = RangeSet()
    rs.add(0, 5)
    rs.add(5, 10)
    assert len(rs) == 1
    assert list(rs) == [(0, 10)]


def test_overlapping_ranges_coalesce():
    rs = RangeSet()
    rs.add(0, 6)
    rs.add(4, 10)
    assert list(rs) == [(0, 10)]


def test_disjoint_ranges_stay_separate():
    rs = RangeSet()
    rs.add(0, 3)
    rs.add(7, 9)
    assert list(rs) == [(0, 3), (7, 9)]
    assert rs.total == 5


def test_bridge_range_merges_neighbours():
    rs = RangeSet()
    rs.add(0, 3)
    rs.add(7, 9)
    rs.add(3, 7)
    assert list(rs) == [(0, 9)]


def test_empty_range_rejected():
    rs = RangeSet()
    with pytest.raises(ValueError):
        rs.add(5, 5)
    with pytest.raises(ValueError):
        rs.add(5, 3)


def test_first_missing_tracks_cumulative_point():
    rs = RangeSet()
    rs.add(0, 10)
    rs.add(12, 15)
    assert rs.first_missing(0) == 10
    rs.add(10, 12)
    assert rs.first_missing(0) == 15


def test_first_missing_with_floor():
    rs = RangeSet()
    rs.add(5, 10)
    assert rs.first_missing(0) == 0
    assert rs.first_missing(5) == 10
    assert rs.first_missing(7) == 10
    assert rs.first_missing(11) == 11


def test_missing_below_max():
    rs = RangeSet()
    for pn in (0, 1, 2, 5, 6, 9):
        rs.add(pn)
    assert rs.missing_below_max() == [3, 4, 7, 8]


def test_gap_runs():
    rs = RangeSet()
    rs.add(0, 3)
    rs.add(5, 8)
    rs.add(20, 21)
    assert rs.gap_runs() == [(3, 2), (8, 12)]


def test_ranges_descending_with_limit():
    rs = RangeSet()
    rs.add(0, 2)
    rs.add(4, 6)
    rs.add(8, 10)
    assert rs.ranges_descending() == [(8, 10), (4, 6), (0, 2)]
    assert rs.ranges_descending(limit=2) == [(8, 10), (4, 6)]


def test_duplicate_adds_are_idempotent():
    rs = RangeSet()
    rs.add(3, 8)
    rs.add(3, 8)
    rs.add(4, 7)
    assert list(rs) == [(3, 8)]
    assert rs.total == 5


@given(st.lists(st.integers(min_value=0, max_value=300),
                min_size=1, max_size=200))
def test_property_matches_python_set(values):
    """RangeSet behaves exactly like a set of integers."""
    rs = RangeSet()
    reference = set()
    for value in values:
        rs.add(value)
        reference.add(value)
    assert rs.total == len(reference)
    assert rs.max_value == max(reference)
    assert rs.min_value == min(reference)
    for probe in range(0, 301):
        assert rs.contains(probe) == (probe in reference)
    expected_missing = [x for x in range(min(reference), max(reference))
                        if x not in reference]
    assert rs.missing_below_max() == expected_missing
    # Ranges are sorted, disjoint and non-adjacent.
    pairs = list(rs)
    for (s1, e1), (s2, _) in zip(pairs, pairs[1:]):
        assert e1 < s2


@given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 30)),
                min_size=1, max_size=60))
def test_property_range_adds_match_set(ranges):
    rs = RangeSet()
    reference = set()
    for start, length in ranges:
        rs.add(start, start + length)
        reference.update(range(start, start + length))
    assert rs.total == len(reference)
    assert rs.first_missing(0) == next(
        x for x in range(600) if x not in reference)


def test_prefix_end_empty_and_nonzero_start():
    rs = RangeSet()
    assert rs.prefix_end() == 0
    rs.add(3, 9)
    assert rs.prefix_end() == 0  # nothing covers 0 yet
    rs.add(0, 3)
    assert rs.prefix_end() == 9


def test_in_order_adds_extend_last_range_in_place():
    rs = RangeSet()
    rs.add(0, 5)
    rs.add(5, 10)      # adjacent: tail fast path extends
    assert list(rs) == [(0, 10)]
    rs.add(2, 7)       # fully covered: no-op
    assert list(rs) == [(0, 10)]
    rs.add(10)         # single value, still in order
    assert list(rs) == [(0, 11)]


@given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 25)),
                min_size=1, max_size=50))
def test_property_prefix_end_matches_first_missing(ranges):
    """prefix_end() is first_missing(0), checked against a reference
    after every add (so the in-order tail fast path and the general
    bisect path both stay consistent with the covered set)."""
    rs = RangeSet()
    reference = set()
    for start, length in ranges:
        rs.add(start, start + length)
        reference.update(range(start, start + length))
        expected = next(x for x in range(len(reference) + 1)
                        if x not in reference)
        assert rs.prefix_end() == expected
        assert rs.prefix_end() == rs.first_missing(0)
        # Representation invariants the fast path must preserve:
        pairs = list(rs)
        assert rs.total == len(reference)
        for (s1, e1), (s2, _) in zip(pairs, pairs[1:]):
            assert e1 < s2


@given(st.integers(0, 50), st.lists(st.integers(0, 80), min_size=1,
                                    max_size=80))
def test_property_sequential_then_random_adds(base, extras):
    """In-order segments followed by out-of-order ones (TCP reassembly
    shape) keep prefix_end consistent."""
    rs = RangeSet()
    reference = set()
    for i in range(base):      # sequential prefix, tail fast path
        rs.add(i)
        reference.add(i)
    for value in extras:       # arbitrary out-of-order arrivals
        rs.add(value)
        reference.add(value)
    expected = 0
    while expected in reference:
        expected += 1
    assert rs.prefix_end() == expected
    assert rs.total == len(reference)
