"""Tests for the congestion controllers."""

import pytest

from repro.errors import ConfigurationError
from repro.transport.cc import (
    BBRController,
    CubicController,
    NewRenoController,
    make_controller,
)

MSS = 1400
LOW_RTT = 0.001   # fast path: never triggers HyStart


def test_factory():
    assert make_controller("cubic", MSS).name == "cubic"
    assert make_controller("newreno", MSS).name == "newreno"
    assert make_controller("bbr", MSS).name == "bbr"
    with pytest.raises(ConfigurationError):
        make_controller("vegas", MSS)
    with pytest.raises(ConfigurationError):
        make_controller("cubic", 0)


def test_factory_threads_hystart_flag():
    """Regression: the factory used to drop the ``hystart`` knob, so
    HyStart could never be disabled from TcpConfig/QuicConfig."""
    assert make_controller("cubic", MSS).hystart is True
    assert make_controller("cubic", MSS, hystart=False).hystart is False
    # Controllers without the heuristic accept and ignore the knob.
    make_controller("newreno", MSS, hystart=False)
    make_controller("bbr", MSS, hystart=False)


def test_factory_passes_initial_window_to_every_kind():
    for kind in ("cubic", "newreno", "bbr"):
        assert make_controller(kind, MSS, 77_777).cwnd == 77_777


def test_initial_window_default_and_custom():
    assert CubicController(MSS).cwnd == 10 * MSS
    assert CubicController(MSS, initial_window=123_456).cwnd == 123_456


@pytest.mark.parametrize("cls", [CubicController, NewRenoController])
def test_slow_start_doubles_per_window(cls):
    cc = cls(MSS)
    start = cc.cwnd
    # Ack a full window at a constant tiny RTT (no delay rise).
    for _ in range(10):
        cc.on_ack(MSS, now=0.01, rtt=LOW_RTT)
    assert cc.cwnd == pytest.approx(start + 10 * MSS)
    assert cc.in_slow_start


@pytest.mark.parametrize("cls", [CubicController, NewRenoController])
def test_congestion_event_shrinks_window(cls):
    cc = cls(MSS)
    for _ in range(100):
        cc.on_ack(MSS, now=0.01, rtt=LOW_RTT)
    before = cc.cwnd
    cc.on_congestion_event(now=1.0)
    assert cc.cwnd < before
    assert cc.cwnd >= 2 * MSS
    assert cc.congestion_events == 1


def test_cubic_beta_is_point_seven():
    cc = CubicController(MSS, hystart=False)
    for _ in range(200):
        cc.on_ack(MSS, now=0.01, rtt=LOW_RTT)
    before = cc.cwnd
    cc.on_congestion_event(now=1.0)
    assert cc.cwnd == pytest.approx(0.7 * before)


def test_newreno_halves():
    cc = NewRenoController(MSS)
    for _ in range(200):
        cc.on_ack(MSS, now=0.01, rtt=LOW_RTT)
    before = cc.cwnd
    cc.on_congestion_event(now=1.0)
    assert cc.cwnd == pytest.approx(before / 2.0)


@pytest.mark.parametrize("cls", [CubicController, NewRenoController])
def test_timeout_collapses_to_one_segment(cls):
    cc = cls(MSS)
    for _ in range(50):
        cc.on_ack(MSS, now=0.01, rtt=LOW_RTT)
    cc.on_timeout(now=2.0)
    assert cc.cwnd == MSS


def test_cubic_grows_after_loss():
    cc = CubicController(MSS, hystart=False)
    for _ in range(300):
        cc.on_ack(MSS, now=0.01, rtt=LOW_RTT)
    cc.on_congestion_event(now=1.0)
    after_loss = cc.cwnd
    t = 1.05
    for _ in range(3000):
        cc.on_ack(MSS, now=t, rtt=0.05)
        t += 0.002
    assert cc.cwnd > after_loss


def test_cubic_reconverges_toward_wmax():
    """Cubic plateaus near the pre-loss window."""
    cc = CubicController(MSS, hystart=False)
    for _ in range(300):
        cc.on_ack(MSS, now=0.01, rtt=LOW_RTT)
    w_max = cc.cwnd
    cc.on_congestion_event(now=1.0)
    t = 1.05
    for _ in range(20000):
        cc.on_ack(MSS, now=t, rtt=0.05)
        t += 0.001
    assert cc.cwnd > 0.8 * w_max


def test_hystart_exits_on_sustained_delay_rise():
    cc = CubicController(MSS)
    t = 0.0
    # Establish a low min RTT.
    for _ in range(30):
        cc.on_ack(MSS, now=t, rtt=0.040)
        t += 0.005
    assert cc.in_slow_start
    # Sustained +40 ms rise: queue build-up.
    for _ in range(200):
        cc.on_ack(MSS, now=t, rtt=0.080)
        t += 0.005
        if not cc.in_slow_start:
            break
    assert not cc.in_slow_start


def test_hystart_ignores_single_jitter_spike():
    cc = CubicController(MSS)
    t = 0.0
    for _ in range(30):
        cc.on_ack(MSS, now=t, rtt=0.040)
        t += 0.005
    # One spike, then back to normal, repeatedly: no exit.
    for cycle in range(20):
        cc.on_ack(MSS, now=t, rtt=0.075)
        t += 0.005
        for _ in range(10):
            cc.on_ack(MSS, now=t, rtt=0.041)
            t += 0.005
    assert cc.in_slow_start


def _flag_hystart_round(cc, t=0.0):
    """Drive the controller until the current HyStart round is flagged
    (one bad round on the books, awaiting confirmation)."""
    for _ in range(30):
        cc.on_ack(MSS, now=t, rtt=0.040)
        t += 0.005
    # Sustained +60 ms inside fresh rounds: first spends the remainder
    # of the low-RTT round, then flags the next one.
    for _ in range(30):
        cc.on_ack(MSS, now=t, rtt=0.100)
        t += 0.001
        if cc._round_flagged:
            break
    assert cc._round_flagged and cc._bad_rounds == 1
    assert cc.in_slow_start
    return t


@pytest.mark.parametrize("trigger", ["on_timeout", "on_congestion_event"])
def test_hystart_round_state_cleared_on_loss_and_rto(trigger):
    """Regression: loss/RTO used to leave the in-progress HyStart round
    (and its ``_bad_rounds`` streak) intact, so slow start re-entered
    after an RTO could exit immediately off stale pre-loss delay
    evidence."""
    cc = CubicController(MSS)
    t = _flag_hystart_round(cc)
    getattr(cc, trigger)(now=t)
    assert cc._bad_rounds == 0
    assert not cc._round_flagged
    assert cc._round_min == float("inf")
    assert cc._round_samples == 0
    assert cc._round_end == 0.0


def test_post_rto_slow_start_not_poisoned_by_stale_round():
    """Behavioural face of the same bug: after an RTO, one flagged
    round must not complete a pre-RTO confirmation streak and exit
    slow start a full round early."""
    cc = CubicController(MSS)
    t = _flag_hystart_round(cc)
    cc.on_timeout(now=t)
    assert cc.in_slow_start
    # Idle past any stale round boundary, then ack densely enough that
    # everything below lands inside a single fresh round.
    t += 1.0
    for _ in range(80):
        cc.on_ack(MSS, now=t, rtt=0.100)
        t += 0.0005
    # That single round may flag (the RTT genuinely rose), but a lone
    # flagged round is not confirmation: exit takes
    # HYSTART_CONFIRM_ROUNDS rounds counted from the RTO.
    assert cc._bad_rounds <= 1
    assert cc.in_slow_start


def test_recovery_window_suppresses_repeat_decreases():
    cc = CubicController(MSS, hystart=False)
    for _ in range(100):
        cc.on_ack(MSS, now=0.01, rtt=LOW_RTT)
    cc.on_congestion_event(now=1.0)
    after_first = cc.cwnd
    cc.set_recovery(until=2.0)
    cc.on_congestion_event(now=1.5)   # same loss burst
    assert cc.cwnd == after_first
    cc.on_congestion_event(now=2.5)   # new epoch
    assert cc.cwnd < after_first
