"""Suite-wide fixtures: opt-in (or global) invariant checking.

Two ways to run tests under the :mod:`repro.testing.invariants`
checkers:

* **per test** -- request the ``invariants`` fixture and watch the
  objects you build::

      def test_transfer(invariants):
          access = StarlinkAccess(seed=1)
          invariants(access)
          ...

* **whole suite** -- set ``REPRO_INVARIANTS=1`` (CI does this): an
  autouse fixture transparently watches every simulator, pipe and
  queue constructed during each test and verifies packet conservation
  and queue consistency at test end. The suite must stay green under
  this mode; that is the acceptance bar for engine refactors.

Tests that *deliberately* corrupt simulator state (the mutation smoke
tests) mark themselves ``@pytest.mark.no_global_invariants`` so the
suite-wide checker does not re-report the planted bug at teardown.
"""

from __future__ import annotations

import os

import pytest

from repro.testing.invariants import (
    InvariantChecker,
    global_checking,
)

GLOBAL_INVARIANTS = os.environ.get("REPRO_INVARIANTS", "") not in ("", "0")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_global_invariants: skip suite-wide invariant checking for "
        "tests that plant deliberate invariant violations or assert "
        "that the (watch-disabled) fast path actually engages")


@pytest.fixture(autouse=True)
def _suite_invariants(request):
    """Global checking for every test when REPRO_INVARIANTS=1."""
    if (not GLOBAL_INVARIANTS
            or request.node.get_closest_marker("no_global_invariants")):
        yield None
        return
    with global_checking() as checker:
        yield checker


@pytest.fixture
def invariants():
    """Factory fixture: watch objects explicitly inside one test.

    Returns a callable ``watch(*objects) -> InvariantChecker``;
    verification and detachment happen automatically at teardown.
    """
    checker = InvariantChecker()

    def watch(*objects) -> InvariantChecker:
        for obj in objects:
            checker.watch(obj)
        return checker

    try:
        yield watch
        checker.verify()
    finally:
        checker.detach()
