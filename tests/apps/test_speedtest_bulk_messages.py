"""Tests for the speedtest, bulk-transfer and messages workloads."""

import pytest

from repro.apps.bulk import run_bulk_transfer
from repro.apps.messages import run_messages_workload
from repro.apps.speedtest import run_speedtest
from repro.netsim import Network
from repro.netsim.loss import BernoulliLoss
from repro.units import mb, mbps, ms


def make_net(rate=mbps(80), delay=ms(15), loss=None):
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    net.connect("client", "server", rate_ab=rate, rate_ba=rate,
                delay=delay, loss_ab=loss, loss_ba=loss)
    net.finalize()
    return net


def test_speedtest_reads_near_link_rate():
    net = make_net(rate=mbps(80))
    result = run_speedtest(net.host("client"), net.host("server"),
                           "down", connections=4, warmup_s=1.5,
                           measure_s=3.0)
    assert result.direction == "down"
    assert result.connections == 4
    assert 0.75 * 80 <= result.throughput_mbps <= 80
    assert len(result.handshake_rtts) == 4


def test_speedtest_upload_direction():
    net = make_net(rate=mbps(40))
    result = run_speedtest(net.host("client"), net.host("server"),
                           "up", connections=2, warmup_s=1.5,
                           measure_s=3.0)
    assert 0.7 * 40 <= result.throughput_mbps <= 40


def test_speedtest_rejects_bad_direction():
    net = make_net()
    with pytest.raises(ValueError):
        run_speedtest(net.host("client"), net.host("server"),
                      "sideways")


def test_bulk_download_result_fields():
    net = make_net()
    result = run_bulk_transfer(net.host("client"), net.host("server"),
                               "down", payload_bytes=mb(3))
    assert result.completed
    assert result.direction == "down"
    assert result.payload_bytes == mb(3)
    assert result.duration_s > 0
    assert result.goodput_mbps > 10
    assert result.handshake_rtt_s == pytest.approx(0.03, rel=0.1)
    assert result.rtt_samples
    assert result.loss_ratio == 0.0


def test_bulk_upload_and_loss_extraction():
    net = make_net(rate=mbps(30), loss=BernoulliLoss(0.01))
    result = run_bulk_transfer(net.host("client"), net.host("server"),
                               "up", payload_bytes=mb(2))
    assert result.completed
    assert result.receiver_lost_pns
    assert result.loss_burst_lengths
    assert 0.001 <= result.loss_ratio <= 0.05
    # Burst bookkeeping is self-consistent.
    assert sum(result.loss_burst_lengths) == len(
        result.receiver_lost_pns)
    # Event durations exist for bracketable gaps and are positive.
    assert all(d > 0 for d in result.loss_event_durations_s)


def test_bulk_rejects_bad_direction():
    net = make_net()
    with pytest.raises(ValueError):
        run_bulk_transfer(net.host("client"), net.host("server"),
                          "both")


def test_messages_workload_down():
    net = make_net()
    result = run_messages_workload(net.host("client"),
                                   net.host("server"), "down",
                                   duration_s=4.0, seed=1)
    assert result.direction == "down"
    assert result.messages_sent >= 90       # ~25/s for 4 s
    assert result.messages_completed >= 0.9 * result.messages_sent
    assert 1.0 <= result.average_bitrate_mbps <= 6.0
    assert result.message_latencies_s
    # One-way small-message latency ~ RTT scale.
    assert min(result.message_latencies_s) < 0.2


def test_messages_workload_up_with_loss():
    net = make_net(rate=mbps(20), loss=BernoulliLoss(0.005))
    result = run_messages_workload(net.host("client"),
                                   net.host("server"), "up",
                                   duration_s=4.0, seed=2)
    assert result.messages_completed >= 0.9 * result.messages_sent
    assert result.loss_ratio >= 0.0
    assert result.rtt_samples


def test_messages_rejects_bad_direction():
    net = make_net()
    with pytest.raises(ValueError):
        run_messages_workload(net.host("client"), net.host("server"),
                              "sideways")
