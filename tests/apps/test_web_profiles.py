"""Tests for the access profiles feeding the browser engine."""

import random

import pytest

from repro.apps.web.profiles import (
    SERVER_EXTRA_RTT,
    satcom_profile,
    starlink_profile,
    wired_profile,
)
from repro.units import days, to_ms


@pytest.mark.parametrize("maker,name", [
    (starlink_profile, "starlink"),
    (satcom_profile, "satcom"),
    (wired_profile, "wired"),
])
def test_profile_names_and_samplers(maker, name):
    profile = maker(epoch_t=days(20), seed=1)
    assert profile.name == name
    rng = random.Random(3)
    rtts = [profile.rtt_sampler(rng) for _ in range(50)]
    bws = [profile.bandwidth_sampler(rng) for _ in range(50)]
    assert all(r > 0 for r in rtts)
    assert all(b > 1e5 for b in bws)


def test_rtt_ordering_across_technologies():
    rng = random.Random(3)
    epoch = days(20)
    med = {}
    for maker, name in ((starlink_profile, "starlink"),
                        (satcom_profile, "satcom"),
                        (wired_profile, "wired")):
        profile = maker(epoch_t=epoch, seed=1)
        samples = sorted(profile.rtt_sampler(rng) for _ in range(200))
        med[name] = samples[100]
    assert med["wired"] < med["starlink"] < med["satcom"]
    assert to_ms(med["satcom"]) > 500
    assert to_ms(med["starlink"]) < 80
    assert to_ms(med["wired"]) < 20


def test_pep_flags():
    assert not starlink_profile(0.0).has_pep
    assert satcom_profile(0.0).has_pep
    assert not satcom_profile(0.0, pep=False).has_pep
    assert not wired_profile(0.0).has_pep


def test_satcom_uses_legacy_tls():
    assert satcom_profile(0.0).tls_rtts > starlink_profile(0.0).tls_rtts


def test_starlink_capacity_step_in_profiles():
    from repro.leo.events import CampaignTimeline

    timeline = CampaignTimeline()
    rng = random.Random(5)
    early = starlink_profile(days(10), seed=2)
    late = starlink_profile(timeline.capacity_step_t + days(2), seed=2)
    early_bw = sum(early.bandwidth_sampler(rng) for _ in range(60))
    late_bw = sum(late.bandwidth_sampler(rng) for _ in range(60))
    assert late_bw > early_bw
