"""Hardened-app behaviour under disruptions: structured outcomes,
bounded execution, and no leaked engine state (the apps must let the
simulator go idle even when the network never answers)."""

import pytest

from repro.apps.bulk import run_bulk_transfer
from repro.apps.messages import run_messages_workload
from repro.apps.outcome import OK, OUTCOME_STATUSES, MeasurementOutcome
from repro.apps.ping import ping
from repro.apps.speedtest import run_speedtest
from repro.apps.traceroute import traceroute_probe
from repro.apps.web.browser import AccessProfile, BrowserEngine
from repro.apps.web.corpus import build_page
from repro.disrupt.apply import apply_to_access
from repro.disrupt.schedule import DisruptionSchedule, DisruptionWindow
from repro.leo.access import StarlinkAccess
from repro.leo.geometry import GeoPoint
from repro.units import mbps

BRUSSELS = GeoPoint(50.85, 4.35)
SERVER = "130.104.1.1"

#: A blackout that outlives every test: the worst case the apps must
#: absorb without hanging or leaking.
FOREVER = DisruptionSchedule("forever", (
    DisruptionWindow("blackout", 0.0, 1e9),))

#: Service comes up, then dies mid-measurement and never returns.
DIES_AT_2S = DisruptionSchedule("dies", (
    DisruptionWindow("blackout", 2.0, 1e9),))


def _access(seed, schedule=None):
    access = StarlinkAccess(seed=seed)
    server = access.add_remote_host("server", SERVER, BRUSSELS)
    access.finalize()
    if schedule is not None:
        apply_to_access(access, schedule)
    return access, server


# -- MeasurementOutcome -------------------------------------------------

def test_outcome_rejects_unknown_status():
    with pytest.raises(ValueError, match="outcome status"):
        MeasurementOutcome("exploded")


def test_outcome_defaults_ok():
    assert OK.status == "ok"
    assert MeasurementOutcome().status == "ok"
    assert set(OUTCOME_STATUSES) == {
        "ok", "timed_out", "stalled", "unreachable"}


# -- ping / traceroute (the leaked-callback regression) -----------------

def test_ping_under_permanent_outage_reports_and_goes_idle():
    access, _ = _access(seed=10, schedule=FOREVER)
    result = ping(access.client, SERVER, count=3)
    assert result.outcome.status == "unreachable"
    assert result.sent == 3 and result.received == 0
    # Regression: the ICMP listener must be released even when no
    # reply ever arrives, and the engine must drain to idle (a leaked
    # binding used to keep late-reply handlers reachable forever).
    assert not access.client._icmp_listeners
    access.sim.run_until_idle(max_events=100_000)


def test_traceroute_under_link_blackout_stops_at_the_dish():
    access, _ = _access(seed=11, schedule=FOREVER)
    result = traceroute_probe(access.client, SERVER, max_ttl=6,
                              probe_timeout=2.0)
    # The dish router answers TTL=1 before the dead space link.
    assert [h.address for h in result.hops] == ["192.168.1.1"]
    assert result.outcome.status == "timed_out"
    assert not access.client._icmp_listeners
    access.sim.run_until_idle(max_events=100_000)


def test_traceroute_distinguishes_route_withdrawal_from_link_loss():
    schedule = DisruptionSchedule("maint", (
        DisruptionWindow("blackout", 0.0, 1e9, target="route"),))
    access, _ = _access(seed=12, schedule=schedule)
    result = traceroute_probe(access.client, SERVER, max_ttl=6,
                              probe_timeout=2.0)
    # Routes withdrawn *behind* the access: both NATs still answer.
    assert [h.address for h in result.hops] == \
        ["192.168.1.1", "100.64.0.1"]
    assert result.outcome.status == "timed_out"
    access.sim.run_until_idle(max_events=100_000)


# -- speedtest ----------------------------------------------------------

def test_speedtest_under_permanent_outage_is_unreachable():
    access, server = _access(seed=13, schedule=FOREVER)
    result = run_speedtest(access.client, server, "down",
                           connections=2, warmup_s=1.0, measure_s=1.0)
    assert result.outcome.status == "unreachable"
    assert result.measured_bytes == 0
    assert result.handshake_rtts == []


# -- bulk ---------------------------------------------------------------

def test_bulk_stalls_when_the_link_dies_mid_transfer():
    access, server = _access(seed=14, schedule=DIES_AT_2S)
    result = run_bulk_transfer(access.client, server, "down",
                               payload_bytes=50_000_000,
                               timeout_s=60.0, stall_timeout_s=5.0)
    assert result.outcome.status == "stalled"
    assert not result.completed
    assert result.handshake_rtt_s is not None
    assert result.outcome.elapsed_s < 60.0  # gave up well before


def test_bulk_unreachable_when_handshake_never_completes():
    access, server = _access(seed=15, schedule=FOREVER)
    result = run_bulk_transfer(access.client, server, "down",
                               payload_bytes=100_000,
                               timeout_s=5.0, stall_timeout_s=None)
    assert result.outcome.status == "unreachable"
    assert result.handshake_rtt_s is None


def test_bulk_times_out_without_stall_detection():
    access, server = _access(seed=16, schedule=DIES_AT_2S)
    result = run_bulk_transfer(access.client, server, "down",
                               payload_bytes=500_000_000,
                               timeout_s=8.0, stall_timeout_s=None)
    assert result.outcome.status == "timed_out"
    assert result.outcome.elapsed_s == pytest.approx(8.0)


# -- messages -----------------------------------------------------------

def test_messages_unreachable_when_connection_never_establishes():
    access, server = _access(seed=17, schedule=FOREVER)
    result = run_messages_workload(access.client, server, "up",
                                   duration_s=2.0, rate_per_s=5)
    assert result.outcome.status == "unreachable"
    assert result.messages_sent == 0


# -- browser ------------------------------------------------------------

def _profile(rtt_s, bw):
    return AccessProfile(
        name="flat", rtt_sampler=lambda rng: rtt_s,
        bandwidth_sampler=lambda rng: bw, uplink_bps=bw,
        has_pep=False, visit_rtt_sigma=0.0)


def test_visit_deadline_classifies_slow_pages():
    page = build_page(1, seed=2)
    engine = BrowserEngine(_profile(0.6, mbps(2)), seed=1,
                           visit_deadline_s=0.5)
    result = engine.visit(page)
    assert result.outcome.status == "timed_out"
    assert result.outcome.elapsed_s == pytest.approx(0.5)


def test_visit_without_deadline_is_ok():
    page = build_page(1, seed=2)
    engine = BrowserEngine(_profile(0.05, mbps(100)), seed=1)
    result = engine.visit(page)
    assert result.outcome.status == "ok"
