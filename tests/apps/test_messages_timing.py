"""Timing-sensitive behaviour of the messages workload."""

import numpy as np

from repro.apps.messages import (
    MESSAGE_MAX_BYTES,
    MESSAGE_MIN_BYTES,
    run_messages_workload,
)
from repro.netsim import Network
from repro.units import mbps, ms


def make_net(up_rate=mbps(18), down_rate=mbps(200)):
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    net.connect("client", "server", rate_ab=up_rate, rate_ba=down_rate,
                delay=ms(22))
    net.finalize()
    return net


def test_message_sizes_in_paper_band():
    assert MESSAGE_MIN_BYTES == 5000
    assert MESSAGE_MAX_BYTES == 25000


def test_bitrate_close_to_three_mbps():
    net = make_net()
    result = run_messages_workload(net.host("client"),
                                   net.host("server"), "up",
                                   duration_s=6.0, seed=4)
    # 25 msg/s x ~15 kB avg ~ 3 Mbit/s (paper Sec. 2).
    assert 2.0 <= result.average_bitrate_mbps <= 4.5


def test_upload_bursts_inflate_latency_on_slow_uplink():
    """A 25 kB message is ~19 packets; at 18 Mbit/s the burst takes
    ~11 ms to serialise, so upload completion latency exceeds the
    symmetric-download case (the paper's no-pacing observation)."""
    net_up = make_net()
    up = run_messages_workload(net_up.host("client"),
                               net_up.host("server"), "up",
                               duration_s=6.0, seed=5)
    net_down = make_net()
    down = run_messages_workload(net_down.host("client"),
                                 net_down.host("server"), "down",
                                 duration_s=6.0, seed=5)
    up_med = float(np.median(up.message_latencies_s))
    down_med = float(np.median(down.message_latencies_s))
    assert up_med > down_med


def test_deterministic_for_seed():
    net1, net2 = make_net(), make_net()
    r1 = run_messages_workload(net1.host("client"),
                               net1.host("server"), "up",
                               duration_s=3.0, seed=9)
    r2 = run_messages_workload(net2.host("client"),
                               net2.host("server"), "up",
                               duration_s=3.0, seed=9)
    assert r1.bytes_sent == r2.bytes_sent
    assert r1.messages_sent == r2.messages_sent
