"""Tests for the Wehe traffic-discrimination detector."""

import pytest

from repro.apps.wehe import SERVICE_TRACES, run_wehe_test
from repro.netsim import Network
from repro.units import mbps, ms


def neutral_net():
    net = Network()
    net.add_host("client", "10.1.0.1")
    net.add_router("r", "10.1.0.254")
    net.add_host("server", "10.2.0.1")
    net.connect("client", "r", rate_ab=mbps(100), rate_ba=mbps(100),
                delay=ms(10))
    net.connect("r", "server", rate_ab=mbps(1000), rate_ba=mbps(1000),
                delay=ms(2))
    net.finalize()
    return net


def throttling_net(rate):
    net = Network()
    net.add_host("client", "10.1.0.1")
    net.add_shaper("td", "10.1.0.254",
                   classifier=lambda p: p.headers.get("service"),
                   class_rates={"netflix": rate}, burst_bytes=20_000)
    net.add_host("server", "10.2.0.1")
    net.connect("client", "td", rate_ab=mbps(100), rate_ba=mbps(100),
                delay=ms(10))
    net.connect("td", "server", rate_ab=mbps(1000), rate_ba=mbps(1000),
                delay=ms(2))
    net.finalize()
    return net


def test_neutral_network_shows_no_differentiation():
    net = neutral_net()
    result = run_wehe_test(net.host("client"), net.host("server"),
                           "zoom")
    assert not result.differentiation_detected
    ratio = (result.original.throughput_bps
             / result.randomized.throughput_bps)
    assert ratio == pytest.approx(1.0, rel=0.05)


def test_throttled_service_is_detected():
    net = throttling_net(mbps(2))
    result = run_wehe_test(net.host("client"), net.host("server"),
                           "netflix")
    assert result.differentiation_detected
    assert result.original.throughput_bps < \
        0.5 * result.randomized.throughput_bps


def test_unknown_service_rejected():
    net = neutral_net()
    with pytest.raises(ValueError):
        run_wehe_test(net.host("client"), net.host("server"),
                      "myspace")


def test_trace_rates_are_realistic():
    for service, (size, count, duration) in SERVICE_TRACES.items():
        rate = size * 8 * count / duration / 1e6
        assert 1.0 <= rate <= 20.0, service
