"""Tests for ping, traceroute and Tracebox over simulated paths."""

import pytest

from repro.apps.ping import ping
from repro.apps.tracebox import tracebox
from repro.apps.traceroute import traceroute
from repro.geo.satcom import GeoSatComAccess
from repro.leo.access import StarlinkAccess
from repro.leo.geometry import GeoPoint
from repro.netsim import Network
from repro.transport.tcp import TcpServer
from repro.units import ms

BRUSSELS = GeoPoint(50.85, 4.35)


@pytest.fixture()
def simple_net():
    net = Network()
    net.add_host("client", "10.1.0.1")
    net.add_router("r1", "10.1.0.254")
    net.add_router("r2", "10.2.0.254")
    net.add_host("server", "10.2.0.1")
    net.connect("client", "r1", delay=ms(2))
    net.connect("r1", "r2", delay=ms(3))
    net.connect("r2", "server", delay=ms(1))
    net.finalize()
    return net


def test_ping_counts_and_rtt(simple_net):
    result = ping(simple_net.host("client"), "10.2.0.1", count=3)
    assert result.sent == 3
    assert result.received == 3
    assert result.loss_ratio == 0.0
    assert result.min_rtt == pytest.approx(0.012)
    assert result.avg_rtt == pytest.approx(0.012)


def test_ping_to_router(simple_net):
    result = ping(simple_net.host("client"), "10.1.0.254", count=2)
    assert result.received == 2
    assert result.min_rtt == pytest.approx(0.004)


def test_traceroute_lists_hops_in_order(simple_net):
    hops = traceroute(simple_net.host("client"), "10.2.0.1")
    addresses = [hop.address for hop in hops]
    assert addresses == ["10.1.0.254", "10.2.0.254", "10.2.0.1"]
    assert hops[-1].reached_destination
    assert hops[0].rtt < hops[1].rtt < hops[2].rtt


def test_traceroute_on_starlink_shows_the_two_nats():
    access = StarlinkAccess(seed=1)
    access.add_remote_host("server", "130.104.1.1", BRUSSELS)
    access.finalize()
    hops = traceroute(access.client, "130.104.1.1")
    addresses = [hop.address for hop in hops]
    assert addresses[0] == "192.168.1.1"
    assert addresses[1] == "100.64.0.1"
    assert addresses[-1] == "130.104.1.1"


def test_tracebox_transparent_path(simple_net):
    server = simple_net.host("server")
    listener = TcpServer(server, 80)
    report = tracebox(simple_net.host("client"), "10.2.0.1",
                      target_port=80)
    listener.close()
    assert report.nat_levels == 0
    assert not report.pep_detected
    assert report.syn_ack_from_destination
    assert all(f.transparent for f in report.findings)


def test_tracebox_starlink_finds_nats_but_no_pep():
    access = StarlinkAccess(seed=2)
    server = access.add_remote_host("server", "130.104.1.1", BRUSSELS)
    access.finalize()
    listener = TcpServer(server, 80)
    report = tracebox(access.client, "130.104.1.1", target_port=80)
    listener.close()
    assert report.nat_levels == 2
    assert not report.pep_detected
    # Only checksums change (paper Sec. 3.5).
    for finding in report.findings:
        assert set(finding.modified_fields) <= {"checksum"}


def test_tracebox_satcom_detects_pep():
    access = GeoSatComAccess(seed=2)
    server = access.add_remote_host("server", "62.4.0.10", BRUSSELS)
    access.finalize()
    listener = TcpServer(server, 80)
    report = tracebox(access.client, "62.4.0.10", target_port=80,
                      probe_timeout=8.0)
    listener.close()
    assert report.pep_detected
