"""Tests for the web corpus, page model and browser engine."""

import numpy as np
import pytest

from repro.apps.web.browser import AccessProfile, BrowserEngine
from repro.apps.web.corpus import build_corpus, build_page, top_sites
from repro.apps.web.page import ObjectKind
from repro.apps.web.profiles import (
    satcom_profile,
    starlink_profile,
    wired_profile,
)
from repro.units import days, mbps


def test_corpus_is_deterministic():
    a = build_corpus(10, seed=3)
    b = build_corpus(10, seed=3)
    assert [p.total_bytes for p in a] == [p.total_bytes for p in b]
    c = build_corpus(10, seed=4)
    assert [p.total_bytes for p in a] != [p.total_bytes for p in c]


def test_corpus_statistics_plausible():
    corpus = build_corpus(120, seed=1)
    weights = np.array([p.total_bytes for p in corpus])
    objects = np.array([p.object_count for p in corpus])
    assert 1e6 <= np.median(weights) <= 5e6
    assert 25 <= np.median(objects) <= 120
    assert all(3 <= len(p.domains) <= 25 for p in corpus)


def test_page_structure():
    page = build_page(1, seed=2)
    assert page.objects[0].kind is ObjectKind.HTML
    assert page.objects[0].wave == 1
    assert page.max_wave == 3
    assert page.wave_objects(2)
    assert page.wave_objects(3)
    assert page.total_bytes == sum(o.size_bytes for o in page.objects)


def test_top_sites_naming():
    sites = top_sites(5)
    assert len(sites) == 5
    assert sites[0] == "site001.example.be"


def _flat_profile(rtt_s: float, bw: float, pep=False) -> AccessProfile:
    return AccessProfile(
        name=f"flat-{rtt_s}", rtt_sampler=lambda rng: rtt_s,
        bandwidth_sampler=lambda rng: bw, uplink_bps=bw,
        has_pep=pep, visit_rtt_sigma=0.0)


def test_visit_deterministic_per_id():
    page = build_page(2, seed=2)
    engine = BrowserEngine(_flat_profile(0.05, mbps(100)), seed=1)
    a = engine.visit(page, visit_id=0)
    b = engine.visit(page, visit_id=0)
    c = engine.visit(page, visit_id=1)
    assert a.onload_s == b.onload_s
    assert a.onload_s != c.onload_s


def test_higher_rtt_means_slower_page():
    page = build_page(2, seed=2)
    fast = BrowserEngine(_flat_profile(0.02, mbps(100)), seed=1)
    slow = BrowserEngine(_flat_profile(0.6, mbps(100)), seed=1)
    assert slow.visit(page).onload_s > 2 * fast.visit(page).onload_s


def test_more_bandwidth_helps():
    page = build_page(1, seed=2)
    narrow = BrowserEngine(_flat_profile(0.05, mbps(4)), seed=1)
    wide = BrowserEngine(_flat_profile(0.05, mbps(200)), seed=1)
    assert narrow.visit(page).onload_s > wide.visit(page).onload_s


def test_pep_accelerates_high_rtt_page():
    page = build_page(1, seed=2)
    raw = BrowserEngine(_flat_profile(0.6, mbps(80), pep=False),
                        seed=1)
    pep = BrowserEngine(_flat_profile(0.6, mbps(80), pep=True), seed=1)
    assert pep.visit(page).onload_s < raw.visit(page).onload_s


def test_metrics_invariants():
    page = build_page(3, seed=2)
    engine = BrowserEngine(_flat_profile(0.05, mbps(100)), seed=1)
    result = engine.visit(page)
    assert result.speed_index_s <= result.onload_s
    assert result.first_paint_s <= result.onload_s
    assert result.n_connections >= len(page.domains)
    assert result.connection_setup_s
    # Setup = TCP + 1.5x TLS at 50 ms plus overhead.
    assert min(result.connection_setup_s) >= 0.12


def test_profile_ordering_matches_paper():
    corpus = build_corpus(15, seed=5)
    epoch = days(40)
    onloads = {}
    for name, maker in (("starlink", starlink_profile),
                        ("satcom", satcom_profile),
                        ("wired", wired_profile)):
        engine = BrowserEngine(maker(epoch, seed=2), seed=3)
        onloads[name] = np.median(
            [engine.visit(p).onload_s for p in corpus])
    assert onloads["wired"] < onloads["starlink"] < onloads["satcom"]
    assert onloads["satcom"] > 3 * onloads["starlink"]
