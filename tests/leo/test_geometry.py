"""Tests for spherical geometry helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.leo.geometry import (
    GeoPoint,
    ecef,
    elevation_angle,
    fiber_path_delay,
    great_circle_distance,
    propagation_delay,
    slant_range,
)
from repro.units import EARTH_RADIUS, SPEED_OF_LIGHT, km


def test_ecef_on_equator_prime_meridian():
    pos = ecef(0.0, 0.0)
    assert pos == pytest.approx([EARTH_RADIUS, 0.0, 0.0])


def test_ecef_north_pole():
    pos = ecef(90.0, 0.0)
    assert pos[2] == pytest.approx(EARTH_RADIUS)
    assert abs(pos[0]) < 1.0


def test_ecef_altitude_adds_radially():
    ground = ecef(45.0, 10.0)
    high = ecef(45.0, 10.0, alt_m=km(550))
    assert np.linalg.norm(high) == pytest.approx(
        EARTH_RADIUS + km(550))
    assert np.linalg.norm(high - ground) == pytest.approx(km(550))


def test_slant_range_zenith():
    ground = ecef(50.0, 4.0)
    sat = ecef(50.0, 4.0, alt_m=km(550))
    assert slant_range(ground, sat) == pytest.approx(km(550))


def test_slant_range_vectorised():
    ground = ecef(50.0, 4.0)
    sats = np.array([ecef(50.0, 4.0, km(550)),
                     ecef(51.0, 5.0, km(550))])
    ranges = slant_range(ground, sats)
    assert ranges.shape == (2,)
    assert ranges[0] == pytest.approx(km(550))
    assert ranges[1] > ranges[0]


def test_elevation_at_zenith_is_90():
    ground = ecef(50.0, 4.0)
    sat = ecef(50.0, 4.0, km(550))
    assert elevation_angle(ground, sat) == pytest.approx(90.0)


def test_elevation_below_horizon_negative():
    ground = ecef(50.0, 4.0)
    antipode_sat = ecef(-50.0, -176.0, km(550))
    assert elevation_angle(ground, antipode_sat) < 0


def test_elevation_vectorised_matches_scalar():
    ground = ecef(50.0, 4.0)
    sats = np.array([ecef(52.0, 8.0, km(550)),
                     ecef(40.0, -20.0, km(550))])
    vector = elevation_angle(ground, sats)
    for i in range(2):
        assert vector[i] == pytest.approx(
            elevation_angle(ground, sats[i]))


def test_great_circle_known_distance():
    brussels = GeoPoint(50.85, 4.35)
    paris = GeoPoint(48.86, 2.35)
    distance = great_circle_distance(brussels, paris)
    assert distance == pytest.approx(264_000, rel=0.05)


def test_great_circle_zero_for_same_point():
    p = GeoPoint(10.0, 20.0)
    assert great_circle_distance(p, p) == pytest.approx(0.0)


def test_propagation_delay():
    assert propagation_delay(SPEED_OF_LIGHT) == pytest.approx(1.0)


def test_fiber_delay_slower_than_vacuum_and_stretched():
    a, b = GeoPoint(50.0, 4.0), GeoPoint(52.0, 13.0)
    straight = great_circle_distance(a, b) / SPEED_OF_LIGHT
    assert fiber_path_delay(a, b) > 2.0 * straight


@given(lat=st.floats(-90, 90), lon=st.floats(-180, 180))
def test_property_ecef_magnitude_is_radius(lat, lon):
    assert np.linalg.norm(ecef(lat, lon)) == pytest.approx(
        EARTH_RADIUS, rel=1e-12)


@given(lat1=st.floats(-89, 89), lon1=st.floats(-179, 179),
       lat2=st.floats(-89, 89), lon2=st.floats(-179, 179))
def test_property_great_circle_symmetric_and_bounded(lat1, lon1,
                                                     lat2, lon2):
    a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
    d_ab = great_circle_distance(a, b)
    d_ba = great_circle_distance(b, a)
    assert d_ab == pytest.approx(d_ba, abs=1.0)
    assert 0 <= d_ab <= np.pi * EARTH_RADIUS + 1.0


def test_elevation_up_param_is_bit_identical():
    """Passing the precomputed unit-up changes nothing, bitwise."""
    from repro.leo.geometry import unit_up

    ground = ecef(50.0, 4.0)
    up = unit_up(ground)
    sats = np.array([ecef(50.0 + d, 4.0 + d, km(550))
                     for d in (0.0, 2.0, 7.0, 15.0)])
    for sat in sats:
        assert elevation_angle(ground, sat, up=up) == \
            elevation_angle(ground, sat)
    assert np.array_equal(elevation_angle(ground, sats, up=up),
                          elevation_angle(ground, sats))


def test_elevation_and_range_matches_separate_calls():
    """The fused pass returns exactly what two passes would."""
    from repro.leo.geometry import elevation_and_range, unit_up

    ground = ecef(51.0, 5.0)
    up = unit_up(ground)
    sats = np.array([ecef(51.0 + d, 5.0 - d, km(550 + 20 * d))
                     for d in (0.0, 1.0, 4.0, 12.0)])
    elev, rng = elevation_and_range(ground, sats, up)
    assert np.array_equal(elev, elevation_angle(ground, sats, up=up))
    assert np.array_equal(rng, slant_range(ground, sats))


def test_scalar_ops_match_row_subsets_bitwise():
    """Scalar calls equal the vectorised rows, bit for bit -- the
    invariant the fleet scheduler's bit-identity rests on."""
    ground = ecef(50.668, 4.611)
    sats = np.array([ecef(50.0 + d, 4.0 + 2 * d, km(540 + 5 * d))
                     for d in range(8)])
    vec_elev = elevation_angle(ground, sats)
    vec_rng = slant_range(ground, sats)
    for i in range(len(sats)):
        assert elevation_angle(ground, sats[i]) == vec_elev[i]
        assert slant_range(ground, sats[i]) == vec_rng[i]
