"""Tests for the satellite scheduler and the channel processes."""

import pytest

from repro.errors import ConfigurationError
from repro.leo.channel import CapacityProcess, StarlinkChannel
from repro.leo.constellation import Constellation
from repro.leo.ground import STARLINK_GATEWAYS, default_terminal
from repro.leo.scheduling import SLOT_DURATION, SatelliteScheduler
from repro.units import mbps, ms, to_ms


@pytest.fixture(scope="module")
def scheduler():
    return SatelliteScheduler(Constellation(), default_terminal(),
                              STARLINK_GATEWAYS, seed=3)


def test_snapshot_stable_within_slot(scheduler):
    slot_start = 7 * SLOT_DURATION
    snap_a = scheduler.snapshot(slot_start)
    snap_b = scheduler.snapshot(slot_start + SLOT_DURATION - 0.01)
    assert snap_a.sat_index == snap_b.sat_index
    assert snap_a is snap_b  # cached


def test_snapshot_deterministic_across_instances():
    a = SatelliteScheduler(Constellation(), default_terminal(),
                           STARLINK_GATEWAYS, seed=3)
    b = SatelliteScheduler(Constellation(), default_terminal(),
                           STARLINK_GATEWAYS, seed=3)
    for t in (0.0, 31.0, 1000.0):
        assert a.snapshot(t).sat_index == b.snapshot(t).sat_index
        assert a.snapshot(t).gateway.name == b.snapshot(t).gateway.name


def test_snapshot_changes_with_seed():
    a = SatelliteScheduler(Constellation(), default_terminal(),
                           STARLINK_GATEWAYS, seed=3)
    b = SatelliteScheduler(Constellation(), default_terminal(),
                           STARLINK_GATEWAYS, seed=4)
    picks_a = [a.snapshot(t * SLOT_DURATION).sat_index
               for t in range(30)]
    picks_b = [b.snapshot(t * SLOT_DURATION).sat_index
               for t in range(30)]
    assert picks_a != picks_b


def test_propagation_delay_in_leo_band(scheduler):
    for t in (0.0, 600.0, 7200.0):
        snap = scheduler.snapshot(t)
        # Bent pipe: two slant legs of 550-1300 km each.
        assert 3.0 <= to_ms(snap.one_way_propagation) <= 10.0
        assert snap.elevation_deg >= 25.0


def test_handovers_happen(scheduler):
    times = scheduler.handover_times(0.0, 1800.0)
    assert times, "no handover in 30 minutes is implausible"
    for t in times:
        assert t % SLOT_DURATION == pytest.approx(0.0)


def test_requires_gateways():
    with pytest.raises(ConfigurationError):
        SatelliteScheduler(Constellation(), default_terminal(), [])


# -- capacity processes -------------------------------------------------

def test_capacity_deterministic_and_query_order_independent():
    a = CapacityProcess(mbps(200), seed=5)
    b = CapacityProcess(mbps(200), seed=5)
    times = [0.0, 100.0, 3.3, 50.0, 0.0]
    assert [a.rate_at(t) for t in times] == \
        [b.rate_at(t) for t in reversed(times)][::-1]


def test_capacity_respects_bounds():
    proc = CapacityProcess(mbps(200), slot_cv=0.8, seed=1,
                           min_rate=mbps(50), max_rate=mbps(300))
    rates = [proc.rate_at(t * 3.7) for t in range(2000)]
    assert min(rates) >= mbps(50)
    assert max(rates) <= mbps(300)


def test_capacity_mean_near_target():
    proc = CapacityProcess(mbps(200), seed=2)
    rates = [proc.rate_at(t * 15.0) for t in range(3000)]
    mean = sum(rates) / len(rates)
    assert mean == pytest.approx(mbps(200), rel=0.1)


def test_capacity_varies_between_slots():
    proc = CapacityProcess(mbps(200), seed=2)
    rates = {proc.rate_at(t * 15.0) for t in range(50)}
    assert len(rates) > 10


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        CapacityProcess(0.0)
    with pytest.raises(ConfigurationError):
        CapacityProcess(mbps(100), fast_rho=1.0)


def test_channel_loss_models_are_fresh_instances():
    channel = StarlinkChannel(seed=1)
    a = channel.make_loss_model("down")
    b = channel.make_loss_model("down")
    assert a is not b
    with pytest.raises(ConfigurationError):
        channel.make_loss_model("sideways")


def test_channel_loss_rate_in_band():
    """Medium loss alone sits near the messages loss ratio (~0.4 %)."""
    channel = StarlinkChannel(seed=3)
    model = channel.make_loss_model("down")
    n = 60_000
    # 3 Mbit/s message stream: ~280 packets/s for ~3.5 minutes.
    losses = sum(model.is_lost(i / 280.0) for i in range(n))
    assert 0.0005 <= losses / n <= 0.03


def test_snapshot_cache_is_bounded_lru():
    sched = SatelliteScheduler(Constellation(), default_terminal(),
                               STARLINK_GATEWAYS, seed=1)
    sched.snapshot_cache_slots = 6
    for slot in range(20):
        sched.snapshot(slot * SLOT_DURATION)
    assert len(sched._cache) <= 6
    # LRU, not wholesale clear: recent slots are still cached.
    assert 19 in sched._cache and 0 not in sched._cache


def test_outage_interval_index_matches_linear_scan():
    sched = SatelliteScheduler(Constellation(), default_terminal(),
                               STARLINK_GATEWAYS, seed=1)
    sched.add_outage(7, 2, 6)
    sched.add_outage(8, 4, 9)
    sched.add_gateway_outage(STARLINK_GATEWAYS[1].name, 3, 5)
    for slot in range(12):
        expected_sats = frozenset(
            s for s, a, b in sched._outages if a <= slot < b)
        assert sched.out_sats_at(slot) == expected_sats
        assert sched._is_out(7, slot) == (2 <= slot < 6)
    assert sched._gw_is_out(1, 3) and not sched._gw_is_out(1, 5)


def test_pathological_outage_window_falls_back_to_scan():
    from repro.leo.scheduling import (
        MAX_INDEXED_OUTAGE_SLOTS,
        build_outage_index,
    )

    huge = [(3, 0, MAX_INDEXED_OUTAGE_SLOTS + 1)]
    assert build_outage_index(huge) is None
    sched = SatelliteScheduler(Constellation(), default_terminal(),
                               STARLINK_GATEWAYS, seed=1)
    sched.add_outage(3, 0, MAX_INDEXED_OUTAGE_SLOTS + 1)
    # Membership still answers correctly through the linear scan.
    assert sched._is_out(3, 123_456)
    assert not sched._is_out(4, 123_456)
