"""Additional properties of the ISL path model."""

import pytest

from repro.leo.geometry import GeoPoint
from repro.leo.isl import (
    SATELLITE_PROCESSING_S,
    IslPath,
    IslRouter,
    bent_pipe_vs_isl,
)
from repro.units import SPEED_OF_LIGHT


def test_isl_path_delay_decomposition():
    path = IslPath(satellite_hops=(1, 2, 3), distance_m=3_000_000.0)
    expected = 3_000_000.0 / SPEED_OF_LIGHT + 3 * SATELLITE_PROCESSING_S
    assert path.one_way_delay == pytest.approx(expected)
    assert path.rtt == pytest.approx(2 * expected)
    assert path.hop_count == 3


def test_comparison_dict_fields():
    router = IslRouter()
    result = bent_pipe_vs_isl(GeoPoint(50.67, 4.61),
                              GeoPoint(52.37, 4.90),
                              bent_pipe_rtt_s=0.047, router=router)
    assert set(result) == {"bent_pipe_rtt_s", "isl_rtt_s",
                           "improvement_s", "speedup"}
    assert result["bent_pipe_rtt_s"] == pytest.approx(0.047)
    assert result["improvement_s"] == pytest.approx(
        0.047 - result["isl_rtt_s"])


def test_sky_path_lower_bound_is_geodesic():
    """No route can beat straight-line light travel."""
    router = IslRouter()
    from repro.leo.geometry import great_circle_distance

    src, dst = GeoPoint(50.67, 4.61), GeoPoint(1.35, 103.82)
    path = router.path(src, dst, t=0.0)
    geodesic = great_circle_distance(src, dst)
    assert path.distance_m > geodesic
    assert path.rtt > 2 * geodesic / SPEED_OF_LIGHT
