"""Shape tests for the medium-loss process (Fig. 4 mechanics)."""

import numpy as np

from repro.netsim.loss import TimedGilbertElliottLoss
from repro.rng import make_rng


def _bursts(outcomes):
    bursts, current = [], 0
    for lost in outcomes:
        if lost:
            current += 1
        elif current:
            bursts.append(current)
            current = 0
    if current:
        bursts.append(current)
    return bursts


def test_burst_length_scales_with_packet_rate():
    """The same fade costs a fast flow many more packets than a slow
    one -- the time-based channel is what makes H3 and message
    transfers see different burst-length distributions (paper
    Sec. 3.2)."""

    def run(packets_per_second: float, seed: int):
        model = TimedGilbertElliottLoss(
            mean_good_s=2.0, mean_bad_s=0.04,
            rng=make_rng(("shape", seed)))
        n = int(120 * packets_per_second)
        outcomes = [model.is_lost(i / packets_per_second)
                    for i in range(n)]
        return _bursts(outcomes)

    slow_bursts = []
    fast_bursts = []
    for seed in range(5):
        slow_bursts += run(280.0, seed)        # ~3 Mbit/s messages
        fast_bursts += run(12_000.0, seed)     # ~130 Mbit/s bulk
    assert slow_bursts and fast_bursts
    assert np.mean(fast_bursts) > 5 * np.mean(slow_bursts)


def test_fraction_of_time_bad_matches_formula():
    model = TimedGilbertElliottLoss(mean_good_s=6.5, mean_bad_s=0.025)
    assert abs(model.fraction_bad() - 0.025 / 6.525) < 1e-9
