"""Tests for the campaign timeline and the assembled Starlink access."""

import random

import pytest

from repro.leo.access import StarlinkAccess, StarlinkPathModel
from repro.leo.events import (
    CAMPAIGN_START,
    CampaignTimeline,
    date_to_t,
    t_to_date,
)
from repro.leo.geometry import GeoPoint
from repro.netsim.packet import IcmpMessage, IcmpType
from repro.units import days, ms, to_ms

from datetime import datetime


def test_date_round_trip():
    when = datetime(2022, 2, 11, 12, 0)
    assert t_to_date(date_to_t(when)) == when
    assert date_to_t(CAMPAIGN_START) == 0.0


def test_timeline_fleet_step_reduces_latency():
    timeline = CampaignTimeline()
    before = timeline.extra_latency(timeline.fleet_improvement_t - 10)
    after = timeline.extra_latency(timeline.fleet_improvement_t + 10)
    assert before > after


def test_timeline_load_window_raises_latency():
    timeline = CampaignTimeline()
    inside = timeline.extra_latency(timeline.load_window_start_t + 10)
    outside = timeline.extra_latency(timeline.load_window_start_t - 10)
    assert inside > outside


def test_timeline_capacity_step():
    timeline = CampaignTimeline()
    assert timeline.capacity_scale(timeline.capacity_step_t - 1) == 1.0
    assert timeline.capacity_scale(timeline.capacity_step_t + 1) > 1.0


def test_timeline_in_campaign():
    timeline = CampaignTimeline()
    assert timeline.in_campaign(days(10))
    assert not timeline.in_campaign(-1.0)
    assert not timeline.in_campaign(days(400))


# -- path model ----------------------------------------------------------

@pytest.fixture(scope="module")
def model():
    return StarlinkPathModel(seed=2)


def test_idle_rtt_in_starlink_band(model):
    rng = random.Random(1)
    samples = [to_ms(model.idle_rtt(t * 311.0, rng))
               for t in range(400)]
    samples.sort()
    median = samples[len(samples) // 2]
    assert 30 <= median <= 55
    assert samples[0] >= 15
    assert samples[int(0.95 * len(samples))] <= 80


def test_jitter_is_frame_correlated(model):
    """Two packets in the same 15 ms frame share the jitter draw."""
    rng = random.Random(1)
    a = model.jitter(rng, "down", t=1000.000)
    b = model.jitter(rng, "down", t=1000.001)
    c = model.jitter(rng, "down", t=1000.100)  # a later frame
    dither = model.params.jitter_dither_s
    assert abs(a - b) <= dither
    assert abs(a - c) > 1e-9


def test_base_one_way_includes_timeline(model):
    timeline = model.timeline
    before = model.base_one_way(timeline.fleet_improvement_t - 60)
    after = model.base_one_way(timeline.fleet_improvement_t + 60)
    # The step is half the RTT gain per direction, modulo geometry.
    assert before - after == pytest.approx(
        timeline.fleet_improvement_gain_s / 2, abs=ms(3))


def test_pop_is_one_of_the_two_paper_exits(model):
    pops = {model.pop_name(t * 900.0) for t in range(100)}
    assert pops <= {"pop-frankfurt", "pop-amsterdam", "pop-london"}
    assert {"pop-frankfurt", "pop-amsterdam"} & pops


# -- assembled access -----------------------------------------------------

def test_access_topology_addresses():
    access = StarlinkAccess(seed=1)
    assert access.client.address == "192.168.1.10"
    assert access.net.node("dish").address == "192.168.1.1"
    assert access.net.node("cgnat").address == "100.64.0.1"


def test_access_ping_round_trip():
    access = StarlinkAccess(seed=1)
    access.add_remote_host("anchor", "203.0.113.9",
                           GeoPoint(50.85, 4.35))
    access.finalize()
    client = access.client
    reply_times = []
    client.bind_icmp(7, lambda pkt: reply_times.append(access.sim.now))
    message = IcmpMessage(IcmpType.ECHO_REQUEST, ident=7, seq=0)
    client.send_icmp(IcmpType.ECHO_REQUEST, "203.0.113.9", message)
    access.run(5.0)
    assert len(reply_times) == 1
    rtt = reply_times[0] - access.epoch_t
    # One Starlink RTT plus the Belgian anchor legs.
    assert 0.02 <= rtt <= 0.15


def test_access_epoch_sets_clock():
    access = StarlinkAccess(seed=1, epoch_t=days(30))
    assert access.sim.now == days(30)


def test_capacity_step_applied_to_downlink():
    timeline = StarlinkAccess(seed=1).timeline
    late = StarlinkAccess(seed=1, epoch_t=timeline.capacity_step_t
                          + days(1))
    early = StarlinkAccess(seed=1, epoch_t=days(10))
    assert late.channel.downlink.scale > early.channel.downlink.scale
