"""Tests for orbit propagation and the Walker constellation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.leo.constellation import Constellation, WalkerShell
from repro.leo.geometry import elevation_angle
from repro.leo.ground import default_terminal
from repro.leo.orbits import (
    OrbitalElements,
    propagate_ecef,
    single_position_ecef,
)
from repro.units import EARTH_RADIUS, km


def test_orbital_period_for_starlink_altitude():
    elements = OrbitalElements(km(550), 53.0, 0.0, 0.0)
    # ~95.6 minutes for a 550 km orbit.
    assert elements.period == pytest.approx(95.6 * 60, rel=0.01)


def test_position_magnitude_constant():
    elements = OrbitalElements(km(550), 53.0, 30.0, 45.0)
    for t in (0.0, 500.0, 3000.0, 9000.0):
        pos = single_position_ecef(elements, t)
        assert np.linalg.norm(pos) == pytest.approx(
            EARTH_RADIUS + km(550), rel=1e-9)


def test_latitude_bounded_by_inclination():
    elements = OrbitalElements(km(550), 53.0, 0.0, 0.0)
    max_lat = 0.0
    for t in np.arange(0, 6000, 30.0):
        pos = single_position_ecef(elements, t)
        lat = np.degrees(np.arcsin(pos[2] / np.linalg.norm(pos)))
        max_lat = max(max_lat, abs(lat))
    assert max_lat == pytest.approx(53.0, abs=1.0)


def test_satellite_moves():
    elements = OrbitalElements(km(550), 53.0, 0.0, 0.0)
    p0 = single_position_ecef(elements, 0.0)
    p1 = single_position_ecef(elements, 60.0)
    # ~7.6 km/s orbital speed => ~450 km per minute.
    assert np.linalg.norm(p1 - p0) == pytest.approx(km(450), rel=0.1)


def test_vectorised_propagation_matches_scalar():
    shells = WalkerShell(planes=4, sats_per_plane=3, phasing=1)
    alts, incs, raans, arg_lats = shells.element_arrays()
    positions = propagate_ecef(alts, incs, raans, arg_lats, 1234.0)
    assert positions.shape == (12, 3)
    for i in range(12):
        single = propagate_ecef(alts[i:i + 1], incs[i:i + 1],
                                raans[i:i + 1], arg_lats[i:i + 1],
                                1234.0)[0]
        assert positions[i] == pytest.approx(single)


def test_walker_shell_defaults_are_starlink_shell1():
    shell = WalkerShell()
    assert shell.total_satellites == 1584
    assert shell.inclination_deg == 53.0


def test_walker_shell_validation():
    with pytest.raises(ConfigurationError):
        WalkerShell(planes=0)
    with pytest.raises(ConfigurationError):
        WalkerShell(phasing=99)


def test_constellation_visibility_from_belgium():
    constellation = Constellation()
    ut = default_terminal().ecef()
    for t in (0.0, 3600.0, 40_000.0):
        indices, elevations, ranges = constellation.visible_from(ut, t)
        # Shell 1 keeps 10-40 satellites above 25 deg at 50 N.
        assert 5 <= len(indices) <= 60
        assert np.all(elevations >= 25.0)
        assert np.all(np.diff(elevations) <= 1e-9)  # sorted descending
        # Slant range bounds: 550 km (zenith) to ~1100 km at 25 deg.
        assert ranges.min() >= km(549)
        assert ranges.max() <= km(1300)


def test_visibility_elevations_consistent_with_geometry():
    constellation = Constellation()
    ut = default_terminal().ecef()
    indices, elevations, _ = constellation.visible_from(ut, 500.0)
    positions = constellation.positions(500.0)
    for idx, elev in zip(indices[:5], elevations[:5]):
        assert elevation_angle(ut, positions[idx]) == pytest.approx(
            float(elev))


def test_positions_cache_per_time():
    constellation = Constellation()
    p1 = constellation.positions(100.0)
    p2 = constellation.positions(100.0)
    assert p1 is p2
    p3 = constellation.positions(101.0)
    assert p3 is not p1


def test_range_to_single_satellite():
    constellation = Constellation()
    ut = default_terminal().ecef()
    indices, _, ranges = constellation.visible_from(ut, 0.0)
    assert constellation.range_to(ut, int(indices[0]), 0.0) == \
        pytest.approx(float(ranges[0]))
