"""Tests for the ground-segment site database."""

from repro.leo.geometry import great_circle_distance
from repro.leo.ground import (
    LOUVAIN_LA_NEUVE,
    STARLINK_GATEWAYS,
    STARLINK_POPS,
    default_terminal,
)
from repro.units import km


def test_every_gateway_maps_to_a_known_pop():
    for gateway in STARLINK_GATEWAYS:
        assert gateway.pop in STARLINK_POPS


def test_paper_exit_pops_present():
    # The paper observed one exit in the Netherlands and one in
    # Germany (Frankfurt serves the German exit in our model).
    assert "pop-amsterdam" in STARLINK_POPS
    assert "pop-frankfurt" in STARLINK_POPS


def test_gateways_within_bent_pipe_reach_of_belgium():
    """A 550 km satellite covers ~a 1000 km ground radius; every
    gateway a Belgian terminal may be served through must be
    reachable by a satellite that also sees the dish."""
    for gateway in STARLINK_GATEWAYS:
        distance = great_circle_distance(LOUVAIN_LA_NEUVE,
                                         gateway.location)
        assert distance < km(1200), gateway.name


def test_default_terminal_is_the_papers_vantage_point():
    terminal = default_terminal()
    assert terminal.location == LOUVAIN_LA_NEUVE
    assert 50 < terminal.location.lat_deg < 51


def test_ecef_helpers():
    for gateway in STARLINK_GATEWAYS:
        pos = gateway.ecef()
        assert pos.shape == (3,)
    assert default_terminal().ecef().shape == (3,)
