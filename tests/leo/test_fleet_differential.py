"""Differential suite: FleetScheduler == per-terminal scalar scheduler.

The fleet layer's load-bearing claim is *bit-identity*: terminal ``i``
of a :class:`FleetScheduler` produces exactly the snapshot a scalar
``SatelliteScheduler(seed=seeds[i])`` would — same satellite, same
gateway, same floats byte for byte — across seeds, latitudes,
candidate-pool sizes and outage windows, with the prefilter on or
off. Hypothesis explores the space; any drift shrinks to a minimal
counterexample.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.leo.constellation import Constellation
from repro.leo.fleet import (
    FleetScheduler,
    FleetSpec,
    build_fleet_terminals,
    fleet_seeds,
)
from repro.leo.geometry import GeoPoint
from repro.leo.ground import STARLINK_GATEWAYS, GroundStation
from repro.leo.scheduling import SLOT_DURATION, SatelliteScheduler

N_SLOTS = 8


def _gateways_for(lat: float) -> list[GroundStation]:
    """Gateways near a latitude band, so paths exist at any latitude
    the strategy generates (the real Benelux gateways only serve
    mid-latitude terminals)."""
    return [
        GroundStation(f"gw-a-{lat:.0f}", GeoPoint(lat, 6.5), pop="p1"),
        GroundStation(f"gw-b-{lat:.0f}", GeoPoint(lat + 1.5, 2.5),
                      pop="p2"),
        GroundStation(f"gw-c-{lat:.0f}", GeoPoint(max(lat - 2.0, -60.0),
                                                  4.0), pop="p1"),
    ]


def _compare(fleet: FleetScheduler,
             scalars: list[SatelliteScheduler]) -> None:
    for slot in range(N_SLOTS):
        t = slot * SLOT_DURATION
        for i, scalar in enumerate(scalars):
            try:
                expected = scalar.snapshot(t)
            except ConfigurationError as exc:
                with pytest.raises(ConfigurationError) as info:
                    fleet.snapshot_at(i, t)
                assert str(info.value) == str(exc)
                continue
            got = fleet.snapshot_at(i, t)
            # Dataclass equality covers every float field exactly —
            # bit-identity, not approximate agreement.
            assert got == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**20),
       terminals=st.integers(1, 5),
       base_lat=st.floats(0.0, 58.0),
       pool=st.integers(1, 6),
       prefilter=st.booleans())
def test_fleet_matches_scalar(seed, terminals, base_lat, pool,
                              prefilter):
    spec = FleetSpec(terminals=terminals,
                     lat_bands=((base_lat, base_lat + 2.0),),
                     seed=seed)
    uts = build_fleet_terminals(spec)
    seeds = fleet_seeds(seed, terminals)
    gateways = _gateways_for(base_lat)
    fleet = FleetScheduler(Constellation(), uts, gateways,
                           seeds=seeds, candidate_pool=pool,
                           prefilter=prefilter)
    scalars = [SatelliteScheduler(Constellation(), uts[i], gateways,
                                  seed=seeds[i], candidate_pool=pool)
               for i in range(terminals)]
    _compare(fleet, scalars)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**20),
       terminals=st.integers(1, 4),
       base_lat=st.floats(35.0, 55.0),
       sat_index=st.integers(0, 1583),
       start=st.integers(0, 4),
       length=st.integers(1, 6),
       gw_start=st.integers(0, 4),
       gw_length=st.integers(1, 6),
       prefilter=st.booleans())
def test_fleet_matches_scalar_under_outages(seed, terminals, base_lat,
                                            sat_index, start, length,
                                            gw_start, gw_length,
                                            prefilter):
    spec = FleetSpec(terminals=terminals,
                     lat_bands=((base_lat, base_lat + 2.0),),
                     seed=seed)
    uts = build_fleet_terminals(spec)
    seeds = fleet_seeds(seed, terminals)
    gateways = _gateways_for(base_lat)
    fleet = FleetScheduler(Constellation(), uts, gateways,
                           seeds=seeds, prefilter=prefilter)
    scalars = [SatelliteScheduler(Constellation(), uts[i], gateways,
                                  seed=seeds[i])
               for i in range(terminals)]
    fleet.add_outage(sat_index, start, start + length)
    fleet.add_gateway_outage(gateways[0].name, gw_start,
                             gw_start + gw_length)
    for scalar in scalars:
        scalar.add_outage(sat_index, start, start + length)
        scalar.add_gateway_outage(gateways[0].name, gw_start,
                                  gw_start + gw_length)
    _compare(fleet, scalars)


def test_fleet_matches_scalar_real_gateways():
    """T=1 at the paper's vantage point against the real gateways."""
    spec = FleetSpec(terminals=1, lat_bands=((50.0, 51.5),), seed=7)
    uts = build_fleet_terminals(spec)
    seeds = fleet_seeds(7, 1)
    fleet = FleetScheduler(Constellation(), uts, STARLINK_GATEWAYS,
                           seeds=seeds)
    scalar = SatelliteScheduler(Constellation(), uts[0],
                                STARLINK_GATEWAYS, seed=seeds[0])
    for slot in range(40):
        t = slot * SLOT_DURATION
        assert fleet.snapshot_at(0, t) == scalar.snapshot(t)


def test_prefilter_is_a_superset_of_visibility():
    """Every satellite the exact pass keeps survives the prefilter."""
    spec = FleetSpec(terminals=6, lat_bands=((30.0, 58.0),), seed=11)
    uts = build_fleet_terminals(spec)
    const = Constellation()
    fleet = FleetScheduler(const, uts, STARLINK_GATEWAYS, seed=11)
    for slot in (0, 3, 17):
        t = slot * SLOT_DURATION
        positions = const.positions(t)
        sat_units = positions * fleet._inv_radii[:, None]
        cos_angles = fleet._ut_units @ sat_units.T
        keep = cos_angles >= fleet._thresholds(
            const.min_elevation_deg)[:, None]
        for i, ut in enumerate(uts):
            visible, _, _ = const.visible_from(ut.ecef(), t)
            kept = set(np.nonzero(keep[i])[0].tolist())
            assert set(visible.tolist()) <= kept
