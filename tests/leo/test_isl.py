"""Tests for the ISL-routing extension (the paper's future work)."""

import pytest

from repro.leo.constellation import Constellation, WalkerShell
from repro.leo.geometry import GeoPoint
from repro.leo.isl import IslRouter, bent_pipe_vs_isl
from repro.units import to_ms

BELGIUM = GeoPoint(50.67, 4.61)
SINGAPORE = GeoPoint(1.35, 103.82)
FREMONT = GeoPoint(37.55, -121.99)
AMSTERDAM = GeoPoint(52.37, 4.90)


@pytest.fixture(scope="module")
def router():
    return IslRouter(Constellation())


def test_grid_neighbours_are_four(router):
    for index in (0, 17, 1583):
        neighbors = router._neighbors(index)
        assert len(set(neighbors)) == 4
        assert index not in neighbors


def test_graph_is_connected(router):
    graph = router.graph_at(0.0)
    assert graph.number_of_nodes() == 1584
    # +grid: 2 undirected edges per satellite.
    assert graph.number_of_edges() == 2 * 1584
    import networkx as nx
    assert nx.is_connected(graph)


def test_nearby_destination_uses_few_hops(router):
    path = router.path(BELGIUM, AMSTERDAM, t=0.0)
    assert path.hop_count <= 3
    assert to_ms(path.rtt) < 25


def test_long_haul_rtt_below_bent_pipe(router):
    """ISL to Singapore beats the paper's 270 ms bent-pipe median."""
    path = router.path(BELGIUM, SINGAPORE, t=0.0)
    assert path.hop_count >= 5          # genuinely multi-hop
    assert 60 <= to_ms(path.rtt) <= 200
    comparison = bent_pipe_vs_isl(BELGIUM, SINGAPORE,
                                  bent_pipe_rtt_s=0.270,
                                  router=router)
    assert comparison["improvement_s"] > 0.05
    assert comparison["speedup"] > 1.3


def test_fremont_isl_rtt(router):
    """Fremont: ~8800 km great circle -> sky RTT well under the
    measured 184 ms."""
    rtt = router.rtt_estimate(BELGIUM, FREMONT, t=0.0)
    assert 0.06 <= rtt <= 0.17


def test_rtt_varies_with_time(router):
    samples = {round(router.rtt_estimate(BELGIUM, SINGAPORE,
                                         t=t * 120.0), 6)
               for t in range(4)}
    assert len(samples) > 1
