"""Tests for mobile-terminal mode: trajectories, obstruction
shadowing and the handover-kind bookkeeping they feed."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.leo.constellation import Constellation
from repro.leo.geometry import (
    GeoPoint,
    azimuth_angle,
    elevation_and_range,
    great_circle_distance,
    unit_up,
)
from repro.leo.ground import (
    LOUVAIN_LA_NEUVE,
    STARLINK_GATEWAYS,
    default_terminal,
)
from repro.leo.mobility import (
    FULL_SKY_MASK,
    ObstructionTrace,
    SkyMask,
    SkySector,
    StationaryTrajectory,
    WaypointTrajectory,
    build_mobility,
    build_obstruction,
    build_trajectory,
    drive_trajectory,
)
from repro.leo.scheduling import (
    HANDOVER_KINDS,
    SLOT_DURATION,
    SatelliteScheduler,
)
from repro.testing.digest import digest_value


def make_scheduler(seed=3, **kwargs):
    return SatelliteScheduler(Constellation(), default_terminal(),
                              STARLINK_GATEWAYS, seed=seed, **kwargs)


def snapshot_digest(scheduler, slots=120):
    picks = []
    for k in range(slots):
        snap = scheduler.snapshot(k * SLOT_DURATION)
        picks.append((snap.sat_index, snap.gateway.name, snap.pop,
                      snap.one_way_propagation, snap.elevation_deg))
    return digest_value(picks)


# -- azimuth geometry ---------------------------------------------------

def test_azimuth_cardinal_directions():
    ground = LOUVAIN_LA_NEUVE.to_ecef()
    for d_lat, d_lon, expected in ((1.0, 0.0, 0.0),      # north
                                   (0.0, 1.0, 90.0),     # east
                                   (-1.0, 0.0, 180.0),   # south
                                   (0.0, -1.0, 270.0)):  # west
        target = GeoPoint(LOUVAIN_LA_NEUVE.lat_deg + d_lat,
                          LOUVAIN_LA_NEUVE.lon_deg + d_lon,
                          550_000.0).to_ecef()
        az = azimuth_angle(ground, target)
        assert az == pytest.approx(expected, abs=2.0), (d_lat, d_lon)


def test_azimuth_in_range_for_overhead_pass():
    ground = LOUVAIN_LA_NEUVE.to_ecef()
    sat = GeoPoint(51.0, 5.0, 550_000.0).to_ecef()
    az = azimuth_angle(ground, sat)
    assert 0.0 <= az < 360.0
    elevs, _ = elevation_and_range(ground, sat.reshape(1, 3),
                                   unit_up(ground))
    assert elevs[0] > 0.0


# -- trajectories -------------------------------------------------------

def test_stationary_trajectory_matches_fixed_terminal_digest():
    classic = make_scheduler()
    mobile = make_scheduler(
        trajectory=StationaryTrajectory(location=LOUVAIN_LA_NEUVE))
    assert snapshot_digest(classic) == snapshot_digest(mobile)


def test_speed_zero_drive_matches_fixed_terminal_digest():
    classic = make_scheduler()
    parked = make_scheduler(
        trajectory=drive_trajectory(seed=3, speed_kmh=0.0))
    assert snapshot_digest(classic) == snapshot_digest(parked)


def test_waypoint_interpolation_midpoint():
    a = GeoPoint(50.0, 4.0)
    b = GeoPoint(51.0, 4.0)    # due north, ~111 km
    leg = great_circle_distance(a, b)
    speed_kmh = 100.0
    traj = WaypointTrajectory(waypoints=(a, b), speed_kmh=speed_kmh)
    half_t = (leg / 2) / (speed_kmh / 3.6)
    mid = traj.position_at(half_t)
    assert mid.lat_deg == pytest.approx(50.5, abs=1e-6)
    assert mid.lon_deg == pytest.approx(4.0)


def test_waypoint_trajectory_parks_at_final_waypoint():
    a, b = GeoPoint(50.0, 4.0), GeoPoint(50.1, 4.0)
    traj = WaypointTrajectory(waypoints=(a, b), speed_kmh=60.0)
    done = traj.parked_after_s
    end = traj.position_at(done * 10)
    assert (end.lat_deg, end.lon_deg) == (b.lat_deg, b.lon_deg)


def test_waypoint_trajectory_before_start_stays_at_origin():
    a, b = GeoPoint(50.0, 4.0), GeoPoint(50.1, 4.0)
    traj = WaypointTrajectory(waypoints=(a, b), speed_kmh=60.0,
                              start_t=100.0)
    assert traj.position_at(0.0) == a
    assert traj.position_at(100.0) == a


def test_waypoint_trajectory_rejects_bad_inputs():
    with pytest.raises(ConfigurationError):
        WaypointTrajectory(waypoints=(), speed_kmh=10.0)
    with pytest.raises(ConfigurationError):
        WaypointTrajectory(waypoints=(GeoPoint(50.0, 4.0),),
                           speed_kmh=-1.0)
    with pytest.raises(ConfigurationError):
        WaypointTrajectory(waypoints=(GeoPoint(50.0, 4.0),),
                           speed_kmh=math.nan)


def test_drive_trajectory_deterministic_and_seed_sensitive():
    a = drive_trajectory(seed=7, speed_kmh=90.0)
    b = drive_trajectory(seed=7, speed_kmh=90.0)
    c = drive_trajectory(seed=8, speed_kmh=90.0)
    assert a.waypoints == b.waypoints
    assert a.waypoints != c.waypoints


def test_drive_trajectory_moves_roughly_at_speed():
    traj = drive_trajectory(seed=1, speed_kmh=90.0,
                            duration_s=3600.0)
    start = traj.position_at(0.0)
    end = traj.position_at(3600.0)
    travelled = great_circle_distance(start, end)
    # A meandering walk covers less straight-line ground than the
    # odometer, but a 90 km/h hour should displace tens of km.
    assert 10_000.0 < travelled < 95_000.0


# -- sky masks and obstruction traces -----------------------------------

def test_sky_sector_wraps_through_north():
    sector = SkySector(az_start_deg=350.0, width_deg=20.0,
                       max_elevation_deg=40.0)
    assert sector.blocks(355.0, 30.0)
    assert sector.blocks(5.0, 30.0)      # wrapped past north
    assert not sector.blocks(20.0, 30.0)
    assert not sector.blocks(355.0, 50.0)  # above the roofline


def test_full_sky_mask_blocks_everything():
    assert FULL_SKY_MASK.full_sky
    for az in (0.0, 90.0, 180.0, 270.0):
        assert FULL_SKY_MASK.blocks(az, 89.0)
    partial = SkyMask(sectors=(
        SkySector(az_start_deg=0.0, width_deg=180.0,
                  max_elevation_deg=90.0),))
    assert not partial.full_sky


def test_obstruction_trace_query_order_independent():
    a = ObstructionTrace(seed=5, profile="roadside")
    b = ObstructionTrace(seed=5, profile="roadside")
    slots = [40, 3, 17, 3, 0, 29]
    masks_a = [a.mask_at(s) for s in slots]
    masks_b = [b.mask_at(s) for s in reversed(slots)][::-1]
    assert masks_a == masks_b


def test_obstruction_trace_bounded_window_clears_outside():
    trace = ObstructionTrace(seed=5, profile="urban_canyon",
                             end_slot=20,
                             obstructed_at_start=True)
    assert trace.mask_at(0) is not None
    assert trace.mask_at(20) is None
    assert trace.mask_at(10_000) is None


def test_obstruction_trace_obstructed_windows_align_to_slots():
    trace = ObstructionTrace(seed=5, profile="urban_canyon",
                             end_slot=100)
    windows = trace.obstructed_windows(0.0, 100 * SLOT_DURATION)
    assert windows, "urban canyon should shadow some slots in 100"
    for start, end in windows:
        assert start < end
        assert start % SLOT_DURATION == 0.0
        assert end % SLOT_DURATION == 0.0
        # Every slot inside the window really is obstructed.
        k = int(start // SLOT_DURATION)
        assert trace.mask_at(k) is not None


def test_obstruction_trace_rejects_bad_config():
    with pytest.raises(ConfigurationError):
        ObstructionTrace(seed=0, profile="nope")
    with pytest.raises(ConfigurationError):
        ObstructionTrace(seed=0, end_slot=0)
    with pytest.raises(ConfigurationError):
        ObstructionTrace(seed=0,
                         end_slot=ObstructionTrace.MAX_TRACE_SLOTS + 1)


def test_obstruction_makes_some_slots_unservable():
    sched = make_scheduler(
        obstruction=ObstructionTrace(seed=5, profile="urban_canyon",
                                     obstructed_at_start=True))
    outcomes = []
    for k in range(200):
        try:
            sched.snapshot(k * SLOT_DURATION)
            outcomes.append(True)
        except ConfigurationError:
            outcomes.append(False)
    assert not outcomes[0] or not all(outcomes)
    assert any(outcomes), "a whole urban canyon never clearing is " \
                          "implausible in 200 slots"
    assert not all(outcomes), "shadowing never costing a slot is " \
                              "implausible in 200 slots"


# -- cache-epoch guards -------------------------------------------------

def test_set_trajectory_bumps_epoch_and_version():
    sched = make_scheduler()
    epoch, version = sched.mobility_epoch, sched.version
    sched.snapshot(0.0)
    sched.set_trajectory(drive_trajectory(seed=3, speed_kmh=90.0))
    assert sched.mobility_epoch == epoch + 1
    assert sched.version == version + 1
    sched.snapshot(0.0)   # recomputes under the new trajectory


def test_direct_trajectory_assignment_trips_guard():
    sched = make_scheduler(
        trajectory=drive_trajectory(seed=3, speed_kmh=90.0))
    sched.snapshot(0.0)
    sched.trajectory = None   # bypasses set_trajectory()
    with pytest.raises(AssertionError):
        sched.snapshot(10 * SLOT_DURATION)


def test_direct_obstruction_assignment_trips_guard():
    sched = make_scheduler()
    sched.snapshot(0.0)
    sched.obstruction = ObstructionTrace(seed=5)
    with pytest.raises(AssertionError):
        sched.snapshot(10 * SLOT_DURATION)


def test_moving_terminal_changes_selection_digest():
    classic = make_scheduler()
    moving = make_scheduler(
        trajectory=drive_trajectory(seed=3, speed_kmh=500.0))
    assert snapshot_digest(classic) != snapshot_digest(moving)


# -- handover kinds (the handover_times bugfix) -------------------------

def test_handover_events_report_all_change_kinds():
    sched = make_scheduler()
    events = sched.handover_events(0.0, 400 * SLOT_DURATION)
    kinds = set()
    for event in events:
        assert event.kinds <= set(HANDOVER_KINDS)
        kinds |= event.kinds
    assert {"satellite", "gateway", "pop"} <= kinds


def test_handover_times_include_gateway_only_changes():
    """Pre-fix failure: handover_times diffed only sat_index.

    With seed 3 the serving satellite stays 1311 across the slot-68
    boundary (t=1020 s) while the gateway hops gravelines->turnhout
    and the PoP frankfurt->amsterdam; the sat_index-only diff missed
    this boundary entirely.
    """
    sched = make_scheduler(seed=3)
    before = sched.snapshot(67 * SLOT_DURATION)
    after = sched.snapshot(68 * SLOT_DURATION)
    assert before.sat_index == after.sat_index
    assert (before.gateway.name, before.pop) \
        != (after.gateway.name, after.pop)
    t = 68 * SLOT_DURATION
    assert t in sched.handover_times(0.0, 80 * SLOT_DURATION)
    (event,) = [e for e in
                sched.handover_events(0.0, 80 * SLOT_DURATION)
                if e.t == t]
    assert "satellite" not in event.kinds
    assert "gateway" in event.kinds
    assert "pop" in event.kinds


def test_service_transitions_reported_as_handovers():
    sched = make_scheduler(
        obstruction=ObstructionTrace(seed=5, profile="urban_canyon",
                                     obstructed_at_start=True))
    events = sched.handover_events(0.0, 400 * SLOT_DURATION)
    service = [e for e in events if "service" in e.kinds]
    assert service, "an urban canyon with no service transition in " \
                    "400 slots is implausible"


# -- config builders ----------------------------------------------------

def test_build_trajectory_mapping():
    assert build_trajectory("stationary", seed=0, speed_kmh=0.0) \
        is None
    drive = build_trajectory("drive", seed=0, speed_kmh=80.0)
    assert isinstance(drive, WaypointTrajectory)
    with pytest.raises(ConfigurationError):
        build_trajectory("teleport", seed=0, speed_kmh=0.0)


def test_build_obstruction_mapping():
    assert build_obstruction("none", seed=0) is None
    trace = build_obstruction("roadside", seed=0, end_slot=10)
    assert isinstance(trace, ObstructionTrace)
    assert trace.end_slot == 10
    with pytest.raises(ConfigurationError):
        build_obstruction("fog", seed=0)


def test_build_mobility_bounds_obstruction_to_drive_window():
    class Cfg:
        trajectory = "drive"
        obstruction = "roadside"
        speed_kmh = 60.0
        drive_duration_s = 300.0
        seed = 1

    trajectory, obstruction = build_mobility(Cfg())
    assert trajectory is not None
    assert obstruction.end_slot == 20   # ceil(300 / 15)
