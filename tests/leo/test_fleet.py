"""Unit tests for the fleet scheduling layer and its caches."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.leo.access import StarlinkPathModel
from repro.leo.constellation import Constellation
from repro.leo.fleet import (
    FleetScheduler,
    FleetSpec,
    FleetTerminalView,
    build_fleet_terminals,
    fleet_seeds,
)
from repro.leo.ground import STARLINK_GATEWAYS, default_terminal
from repro.leo.scheduling import SLOT_DURATION
from repro.rng import make_rng


def _fleet(terminals=4, seed=0, **kwargs):
    spec = FleetSpec(terminals=terminals, seed=seed)
    uts = build_fleet_terminals(spec)
    return FleetScheduler(Constellation(), uts, STARLINK_GATEWAYS,
                          seed=seed, **kwargs)


# -- placement ---------------------------------------------------------


def test_fleet_spec_validation():
    with pytest.raises(ConfigurationError):
        FleetSpec(terminals=0)
    with pytest.raises(ConfigurationError):
        FleetSpec(terminals=2, lat_bands=())
    with pytest.raises(ConfigurationError):
        FleetSpec(terminals=2, lat_bands=((55.0, 50.0),))
    with pytest.raises(ConfigurationError):
        FleetSpec(terminals=2, lon_range=(7.0, 2.0))


def test_placement_is_deterministic_and_prefix_stable():
    small = build_fleet_terminals(FleetSpec(terminals=4, seed=3))
    again = build_fleet_terminals(FleetSpec(terminals=4, seed=3))
    grown = build_fleet_terminals(FleetSpec(terminals=9, seed=3))
    assert small == again
    # Growing the fleet never moves an existing terminal.
    assert grown[:4] == small


def test_placement_round_robins_bands():
    bands = ((40.0, 42.0), (50.0, 52.0))
    uts = build_fleet_terminals(
        FleetSpec(terminals=4, lat_bands=bands))
    for i, ut in enumerate(uts):
        lo, hi = bands[i % 2]
        assert lo <= ut.location.lat_deg <= hi


def test_fleet_seeds_are_distinct():
    seeds = fleet_seeds(0, 32)
    assert len(set(seeds)) == 32


def test_fleet_constructor_validation():
    uts = build_fleet_terminals(FleetSpec(terminals=2))
    with pytest.raises(ConfigurationError):
        FleetScheduler(Constellation(), [], STARLINK_GATEWAYS)
    with pytest.raises(ConfigurationError):
        FleetScheduler(Constellation(), uts, [])
    with pytest.raises(ConfigurationError):
        FleetScheduler(Constellation(), uts, STARLINK_GATEWAYS,
                       seeds=[1])


# -- caches ------------------------------------------------------------


def test_slot_cache_is_bounded_lru():
    fleet = _fleet(terminals=2)
    fleet.slot_cache_slots = 8
    for slot in range(30):
        fleet.snapshot_at(0, slot * SLOT_DURATION)
    assert len(fleet._slot_cache) <= 8
    # Most-recent slots survive; ancient ones were evicted.
    assert 29 in fleet._slot_cache
    assert 0 not in fleet._slot_cache


def test_position_cache_lru_and_counters():
    const = Constellation(position_cache_size=4)
    for k in range(6):
        const.positions(k * SLOT_DURATION)
    assert len(const._position_cache) == 4
    assert const.position_cache_misses == 6
    before = const.position_cache_hits
    const.positions(5 * SLOT_DURATION)
    assert const.position_cache_hits == before + 1
    # Evicted time is recomputed (a miss), not served stale.
    const.positions(0.0)
    assert const.position_cache_misses == 7


def test_outage_injection_invalidates_cached_slots():
    fleet = _fleet(terminals=2)
    first = fleet.snapshot_at(0, 0.0)
    fleet.add_outage(first.sat_index, 0, 1)
    after = fleet.snapshot_at(0, 0.0)
    assert after.sat_index != first.sat_index
    assert fleet.version == 1


def test_outage_window_validation():
    fleet = _fleet(terminals=1)
    with pytest.raises(ConfigurationError):
        fleet.add_outage(5, 3, 3)
    with pytest.raises(ConfigurationError):
        fleet.add_gateway_outage("nope", 0, 2)
    with pytest.raises(ConfigurationError):
        fleet.add_gateway_outage(STARLINK_GATEWAYS[0].name, 4, 2)


def test_out_sets_match_linear_scan():
    fleet = _fleet(terminals=1)
    fleet.add_outage(10, 2, 5)
    fleet.add_outage(11, 4, 6)
    fleet.add_gateway_outage(STARLINK_GATEWAYS[0].name, 3, 4)
    for slot in range(8):
        expected = frozenset(
            sat for sat, start, end in fleet._outages
            if start <= slot < end)
        assert fleet.out_sats_at(slot) == expected
    assert fleet.out_gateways_at(3) == frozenset({0})
    assert fleet.out_gateways_at(4) == frozenset()


# -- fleet-level queries ----------------------------------------------


def test_user_counts_and_capacity_share():
    fleet = _fleet(terminals=8)
    counts = fleet.user_counts(0.0)
    assert sum(counts.values()) == 8
    for i in range(8):
        snap = fleet.snapshot_at(i, 0.0)
        assert fleet.capacity_share(i, 0.0) == \
            1.0 / counts[snap.sat_index]


def test_snapshots_returns_one_entry_per_terminal():
    fleet = _fleet(terminals=5)
    snaps = fleet.snapshots(0.0)
    assert len(snaps) == 5
    assert all(s is not None for s in snaps)


# -- the scheduler-shaped view ----------------------------------------


def test_view_index_validation():
    fleet = _fleet(terminals=2)
    with pytest.raises(ConfigurationError):
        FleetTerminalView(fleet, 2)


def test_view_delegates_to_fleet():
    fleet = _fleet(terminals=3)
    view = FleetTerminalView(fleet, 1)
    assert view.terminal is fleet.terminals[1]
    assert view.seed == fleet.seeds[1]
    assert view.snapshot(0.0) == fleet.snapshot_at(1, 0.0)
    assert view.slot_of(31.0) == 2
    view.add_outage(700, 0, 2)
    assert view.version == fleet.version == 1


def test_path_model_with_injected_view_matches_classic():
    """A T=1 fleet behind StarlinkPathModel reproduces the classic
    single-dish model sample for sample."""
    terminal = default_terminal()
    seed = 5
    fleet = FleetScheduler(Constellation(), [terminal],
                           STARLINK_GATEWAYS, seeds=[seed])
    injected = StarlinkPathModel(
        seed=seed, scheduler=FleetTerminalView(fleet, 0))
    classic = StarlinkPathModel(terminal=terminal, seed=seed)
    assert injected.terminal is terminal
    rng_a = make_rng((seed, "probe"))
    rng_b = make_rng((seed, "probe"))
    for k in range(200):
        t = k * 7.5
        assert injected.idle_rtt(t, rng_a) == \
            classic.idle_rtt(t, rng_b)


def test_view_handover_times_match_scalar():
    from repro.leo.scheduling import SatelliteScheduler

    terminal = default_terminal()
    fleet = FleetScheduler(Constellation(), [terminal],
                           STARLINK_GATEWAYS, seeds=[9])
    scalar = SatelliteScheduler(Constellation(), terminal,
                                STARLINK_GATEWAYS, seed=9)
    view = FleetTerminalView(fleet, 0)
    assert view.handover_times(0.0, 600.0) == \
        scalar.handover_times(0.0, 600.0)


def test_prefilter_counters_accumulate():
    fleet = _fleet(terminals=4)
    fleet.snapshot_at(0, 0.0)
    assert fleet.prefilter_total == 4 * fleet.constellation.size
    assert 0 < fleet.prefilter_kept < fleet.prefilter_total
