"""Shard-level crash safety: kill a shard, resume, same bytes.

Extends the chaos harness coverage of PRs 2/4 down to shard
granularity: a worker SIGKILLed mid-shard (or a driver Ctrl-C) must
leave a journal from which the campaign resumes digest-identically
*without re-running any completed shard* — attempt markers claimed
under shard labels prove the no-re-run half exactly.
"""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.errors import UnitExecutionError
from repro.exec import Journal, execute_units, shard_label
from repro.testing.chaos import ChaosSpec, attempts_made, wrap_units
from repro.testing.digest import digest_value
from repro.units import minutes


def ping_config(seed: int = 0) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=1.0, ping_interval_s=minutes(60),
        ping_shard_rounds=4,   # 24 rounds -> 6 atoms per series
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


GRANULARITY = 3


def shard_labels_for(unit, granularity: int = GRANULARITY) -> list[str]:
    n = unit.n_atoms()
    k = min(granularity, n)
    return [shard_label(unit.label, j * n // k, (j + 1) * n // k)
            for j in range(k)]


def test_sigkill_mid_shard_then_resume_is_digest_identical(tmp_path):
    """Acceptance: SIGKILL one shard's worker, resume, same digest —
    and no shard journaled before the crash ever runs again."""
    units = Campaign(ping_config(seed=0)).ping_units()[:3]
    reference = digest_value(execute_units(units, workers=1))

    victim_unit = units[1]
    victim = shard_labels_for(victim_unit)[1]
    chaos_dir = tmp_path / "chaos"
    wrapped = wrap_units(
        units, chaos_dir,
        shard_specs={victim_unit.label: {victim: ChaosSpec(kill_on=(1,))}})
    journal = Journal(tmp_path / "journal")
    with pytest.raises(UnitExecutionError, match="WorkerCrash"):
        execute_units(wrapped, workers=2, granularity=GRANULARITY,
                      journal=journal)
    total_shards = sum(len(shard_labels_for(u)) for u in units)
    assert 0 < len(journal) < total_shards
    survivors = journal.labels()
    assert victim not in survivors
    before = {label: attempts_made(chaos_dir, label)
              for label in survivors}

    calm = wrap_units(units, chaos_dir)
    resumed = execute_units(calm, workers=2, granularity=GRANULARITY,
                            journal=journal)
    assert digest_value(resumed) == reference
    assert len(journal) == total_shards
    # Completed shards were loaded, never re-executed: their attempt
    # markers did not move. The killed shard was charged exactly one
    # fresh attempt on resume.
    for label, attempts in before.items():
        assert attempts_made(chaos_dir, label) == attempts, \
            f"journaled shard {label!r} was re-run on resume"
    assert attempts_made(chaos_dir, victim) == 2


def test_raise_names_parent_unit_and_shard(tmp_path):
    units = Campaign(ping_config(seed=1)).ping_units()[:1]
    victim = shard_labels_for(units[0])[2]
    wrapped = wrap_units(
        units, tmp_path,
        shard_specs={units[0].label: {victim: ChaosSpec(raise_on=(1,))}})
    with pytest.raises(UnitExecutionError,
                       match=rf"unit '{units[0].label}' shard 3/3"):
        execute_units(wrapped, workers=1, granularity=GRANULARITY)


def test_shard_retry_is_charged_to_the_shard_alone(tmp_path):
    units = Campaign(ping_config(seed=2)).ping_units()[:2]
    victim = shard_labels_for(units[0])[0]
    chaos_dir = tmp_path / "chaos"
    wrapped = wrap_units(
        units, chaos_dir,
        shard_specs={units[0].label: {victim: ChaosSpec(raise_on=(1,))}})
    reference = digest_value(execute_units(units, workers=1))
    resumed = execute_units(wrapped, workers=1, retries=1,
                            granularity=GRANULARITY)
    assert digest_value(resumed) == reference
    assert attempts_made(chaos_dir, victim) == 2
    for label in shard_labels_for(units[1]):
        assert attempts_made(chaos_dir, label) == 1


def test_interrupt_mid_shard_then_resume_serial(tmp_path):
    units = Campaign(ping_config(seed=3)).ping_units()[:2]
    reference = digest_value(execute_units(units, workers=1))
    victim = shard_labels_for(units[1])[0]
    chaos_dir = tmp_path / "chaos"
    wrapped = wrap_units(
        units, chaos_dir,
        shard_specs={units[1].label:
                     {victim: ChaosSpec(interrupt_on=(1,))}})
    journal = Journal(tmp_path / "journal")
    with pytest.raises(KeyboardInterrupt):
        execute_units(wrapped, workers=1, granularity=GRANULARITY,
                      journal=journal)
    # Every shard of the first unit completed before the interrupt.
    assert set(shard_labels_for(units[0])) <= set(journal.labels())
    resumed = execute_units(units, workers=1,
                            granularity=GRANULARITY, journal=journal)
    assert digest_value(resumed) == reference


def test_degrade_reports_shard_attribution(tmp_path):
    units = Campaign(ping_config(seed=4)).ping_units()[:2]
    victim_unit = units[0]
    victim = shard_labels_for(victim_unit)[1]
    wrapped = wrap_units(
        units, tmp_path,
        shard_specs={victim_unit.label:
                     {victim: ChaosSpec(raise_on=(1, 2))}})
    failures = []
    payloads = execute_units(wrapped, workers=1, retries=1,
                             granularity=GRANULARITY,
                             failure_policy="degrade",
                             failures=failures)
    [failure] = failures
    assert failure.label == victim_unit.label   # parent, not shard
    assert failure.shard_index == 1
    assert failure.n_shards == 3
    assert failure.shard_label == victim
    assert failure.attempts == 2
    assert payloads[0] is failure
    # The calm unit still merged normally.
    assert digest_value([payloads[1]]) == digest_value(
        execute_units([units[1]], workers=1))

    from repro.core.reporting import render_degradation
    from repro.exec import DegradationReport
    report = render_degradation(DegradationReport(
        total_units=2, completed_units=1, failures=failures,
        coverage={"pings": (1, 2)}))
    assert f"{victim_unit.label} [shard 2/3: {victim}]" in report
