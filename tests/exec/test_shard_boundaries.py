"""Shard-boundary regression tests: pin the RNG derivations.

The atoms contract only reproduces serial bytes because each atom
draws from a seed derived from the *unit's* seed tuple plus the atom
index — never from a stream threaded across atoms. These tests pin
those derivations explicitly (so a refactor that quietly re-threads an
RNG across a boundary fails here, not in a distant digest mismatch)
and check stream continuity: ``run_atoms(a, b) + run_atoms(b, c)``
must equal ``run_atoms(a, c)`` for every cut point.
"""

import pytest

import repro.exec.units as units_mod
from repro.core.campaign import Campaign, CampaignConfig
from repro.rng import make_rng, stable_seed
from repro.testing.digest import digest_value
from repro.units import minutes


def small_config(seed: int = 0) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=1.0, ping_interval_s=minutes(120),
        ping_shard_rounds=3,
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        speedtest_connections=3,
        bulk_per_direction=1, bulk_bytes=900_000,
        bulk_segment_bytes=400_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=4, web_visits_per_site=1)


# -- derivation pins --------------------------------------------------------


def test_ping_chunk_rng_is_seeded_by_unit_tuple_plus_chunk(monkeypatch):
    unit = Campaign(small_config(seed=7)).ping_units()[0]
    seen = []
    real = units_mod.make_rng

    def spy(key):
        seen.append(key)
        return real(key)

    monkeypatch.setattr(units_mod, "make_rng", spy)
    unit.run_atoms(2, 4)
    chunk_keys = [k for k in seen if "ping-campaign" in k]
    assert chunk_keys == [
        (7, "ping-campaign", unit.anchor_name, "chunk", 2),
        (7, "ping-campaign", unit.anchor_name, "chunk", 3),
    ]


def test_speedtest_connection_seed_and_fair_share(monkeypatch):
    campaign = Campaign(small_config(seed=1))
    unit = next(u for u in campaign.speedtest_units()
                if u.network == "starlink")
    calls = []
    real = units_mod._starlink_access

    def spy(config, epoch, run_seed, capacity_share=1.0):
        calls.append((run_seed, capacity_share))
        return real(config, epoch, run_seed,
                    capacity_share=capacity_share)

    monkeypatch.setattr(units_mod, "_starlink_access", spy)
    unit.run_atoms(1, 3)
    assert calls == [
        (stable_seed(unit.run_seed, "st-conn", 1), pytest.approx(1 / 3)),
        (stable_seed(unit.run_seed, "st-conn", 2), pytest.approx(1 / 3)),
    ]


def test_satcom_connection_seed_and_fair_share(monkeypatch):
    campaign = Campaign(small_config(seed=1))
    unit = next(u for u in campaign.speedtest_units()
                if u.network == "satcom")
    built = []
    real = units_mod.GeoSatComAccess

    class Spy(real):
        def __init__(self, *, seed, epoch_t, capacity_share=1.0):
            built.append((seed, capacity_share))
            super().__init__(seed=seed, epoch_t=epoch_t,
                             capacity_share=capacity_share)

    monkeypatch.setattr(units_mod, "GeoSatComAccess", Spy)
    unit.run_atoms(0, 2)
    assert built == [
        (stable_seed(unit.run_seed, "st-conn", 0), pytest.approx(1 / 3)),
        (stable_seed(unit.run_seed, "st-conn", 1), pytest.approx(1 / 3)),
    ]


def test_bulk_segment_seed_derivation(monkeypatch):
    unit = Campaign(small_config(seed=2)).bulk_units()[0]
    calls = []
    real = units_mod._starlink_access

    def spy(config, epoch, run_seed, capacity_share=1.0):
        calls.append(run_seed)
        return real(config, epoch, run_seed,
                    capacity_share=capacity_share)

    monkeypatch.setattr(units_mod, "_starlink_access", spy)
    unit.run_atoms(0, unit.n_atoms())
    assert calls == [stable_seed(unit.run_seed, "bulk-seg", seg)
                     for seg in range(unit.n_atoms())]


def test_bulk_segment_sizes_cover_payload_exactly():
    unit = Campaign(small_config(seed=2)).bulk_units()[0]
    sizes = unit._segment_sizes()
    assert len(sizes) == unit.n_atoms() == 3
    assert sizes == [400_000, 400_000, 100_000]
    assert sum(sizes) == unit.config.bulk_bytes


def test_ping_chunk_stream_is_independent_of_call_order():
    """Chunk k's draws depend only on its own seed tuple, not on which
    chunks ran before it in the same process."""
    unit = Campaign(small_config(seed=3)).ping_units()[0]
    alone = unit.run_atoms(3, 4)
    after_others = unit.run_atoms(0, unit.n_atoms())[3:4]
    assert digest_value(alone) == digest_value(after_others)
    assert make_rng((3, "ping-campaign", unit.anchor_name, "chunk", 3)
                    ).random() \
        != make_rng((3, "ping-campaign", unit.anchor_name, "chunk", 2)
                    ).random()


# -- stream continuity across every cut point --------------------------------


def _continuity_unit_cases():
    campaign = Campaign(small_config(seed=5))
    starlink = [u for u in campaign.speedtest_units()
                if u.network == "starlink"]
    return [
        pytest.param(campaign.ping_units()[0], id="ping"),
        pytest.param(starlink[0], id="speedtest"),
        pytest.param(campaign.bulk_units()[0], id="bulk"),
        pytest.param(campaign.web_units()[0], id="web"),
    ]


@pytest.mark.parametrize("unit", _continuity_unit_cases())
def test_atoms_concatenate_across_every_cut_point(unit):
    n = unit.n_atoms()
    assert n >= 2, "test needs a splittable unit"
    whole = unit.run_atoms(0, n)
    for cut in range(1, n):
        parts = unit.run_atoms(0, cut) + unit.run_atoms(cut, n)
        assert digest_value(parts) == digest_value(whole), \
            f"cut at atom {cut} changed the payload bytes"
    assert digest_value(unit.merge_atoms(whole)) \
        == digest_value(unit.run())
