"""Streaming (arrival-order) reduce: digest identity and resume.

The acceptance bar of the streaming executor path: a campaign reduced
through constant-memory sinks must be **digest-identical** to the
batch path for every worker count and granularity, resume from a
journal without replaying already-aggregated slices, and fold shard
payloads strictly in shard order no matter how the pool schedules
them. A synthetic streaming unit pins the reduce mechanics in
isolation; real :class:`StreamingPingUnit` runs pin the end-to-end
equivalence against :class:`PingSeriesUnit`.
"""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig
from repro.exec import (
    Journal,
    PingSeriesUnit,
    StreamingPingUnit,
    execute_units,
    is_streaming_unit,
    render_timings,
)
from repro.testing.chaos import (
    ChaosSpec,
    attempts_made,
    wrap_units,
)
from repro.testing.digest import digest_value
from repro.units import minutes


def micro_config(seed: int = 0) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=1.0, ping_interval_s=minutes(120),
        ping_shard_rounds=3,   # 12 rounds -> 4 atoms per series
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


ANCHOR = "be-brussels"


def batch_reference(cfg: CampaignConfig):
    _, times, rtts, outcome = PingSeriesUnit(cfg, ANCHOR).run()
    return times, rtts, outcome


# -- synthetic reduce mechanics --------------------------------------------


@dataclass
class RecordingStreamUnit:
    """Returns atom indices; records the order shards were folded."""

    atoms: int = 8
    merged: list = field(default_factory=list)

    kind = "recording"
    streaming = True
    label = "recording:unit"

    def n_atoms(self) -> int:
        return self.atoms

    def run_atoms(self, start: int, stop: int) -> list[int]:
        return list(range(start, stop))

    def init_partial(self) -> list[int]:
        return []

    def merge_partial(self, acc, shard_payload):
        self.merged.append(tuple(shard_payload))
        acc.extend(shard_payload)
        return acc

    def finalize(self, acc) -> list[int]:
        return acc

    def merge_atoms(self, payloads):
        return self.finalize(self.merge_partial(self.init_partial(),
                                                list(payloads)))

    def run(self) -> list[int]:
        return self.merge_atoms(self.run_atoms(0, self.atoms))


def test_is_streaming_unit_requires_flag_and_hooks():
    assert is_streaming_unit(RecordingStreamUnit())
    assert not is_streaming_unit(object())
    assert not is_streaming_unit(
        PingSeriesUnit(micro_config(), ANCHOR))


@pytest.mark.parametrize("workers", [1, 3])
def test_shards_fold_in_shard_order(workers):
    unit = RecordingStreamUnit(atoms=8)
    [result] = execute_units([unit], workers=workers, granularity=4)
    assert result == list(range(8))
    # Folds happened strictly in shard order regardless of which
    # worker finished first: each folded tuple starts exactly where
    # the previous one ended.
    flat = [a for chunk in unit.merged for a in chunk]
    assert flat == list(range(8))


def test_granularity_one_uses_plain_run_path():
    unit = RecordingStreamUnit(atoms=6)
    [result] = execute_units([unit], workers=1, granularity=1)
    assert result == list(range(6))


# -- StreamingPingUnit == PingSeriesUnit -----------------------------------


def test_streaming_unit_run_matches_batch_bitwise():
    cfg = micro_config(seed=3)
    times, rtts, outcome = batch_reference(cfg)
    sink = StreamingPingUnit(cfg, ANCHOR).run()
    assert sink.exact
    s_times, s_rtts = sink.to_series()
    assert np.array_equal(s_times, times)
    assert np.array_equal(s_rtts, rtts, equal_nan=True)
    assert sink.outcome.status == outcome.status
    assert digest_value((s_times, s_rtts)) == digest_value((times, rtts))


@pytest.mark.parametrize("workers,granularity", [(1, 3), (2, 3), (2, 1)])
def test_streamed_executor_digest_identical(workers, granularity):
    cfg = micro_config(seed=5)
    reference = digest_value(batch_reference(cfg)[:2])
    [sink] = execute_units([StreamingPingUnit(cfg, ANCHOR)],
                           workers=workers, granularity=granularity)
    assert digest_value(sink.to_series()) == reference


def test_reservoir_is_independent_of_sharding():
    cfg = micro_config(seed=7)
    samples = []
    for workers, granularity in [(1, 1), (1, 4), (2, 3)]:
        [sink] = execute_units([StreamingPingUnit(cfg, ANCHOR,
                                                  reservoir_k=16)],
                               workers=workers, granularity=granularity)
        samples.append(sink.reservoir.sample())
    for times, values in samples[1:]:
        assert np.array_equal(times, samples[0][0])
        assert np.array_equal(values, samples[0][1])


def test_streamed_availability_matches_batch_counts():
    cfg = micro_config(seed=2)
    times, rtts, _ = batch_reference(cfg)
    [sink] = execute_units([StreamingPingUnit(cfg, ANCHOR)],
                           workers=1, granularity=4)
    assert sink.total_probes == rtts.size
    assert sink.lost_probes == int(np.isnan(rtts).sum())


# -- journal resume ---------------------------------------------------------


def test_streaming_resume_does_not_replay_aggregated_slices(tmp_path):
    cfg = micro_config(seed=4)
    reference = digest_value(batch_reference(cfg)[:2])

    journal = Journal(tmp_path / "j")
    unit = StreamingPingUnit(cfg, ANCHOR)
    shard = f"{unit.label}#s2-3"
    wrapped = wrap_units([unit], tmp_path / "chaos", shard_specs={
        unit.label: {shard: ChaosSpec(interrupt_on=(1,))}})
    with pytest.raises(KeyboardInterrupt):
        execute_units(wrapped, workers=1, granularity=4,
                      journal=journal)
    # The run died partway: earlier shards are checkpointed.
    assert 0 < len(journal) < 4

    wrapped = wrap_units([unit], tmp_path / "chaos", shard_specs={
        unit.label: {shard: ChaosSpec()}})
    [sink] = execute_units(wrapped, workers=1, granularity=4,
                           journal=journal)
    assert digest_value(sink.to_series()) == reference
    # Aggregated slices fed the reducer straight from the journal:
    # shard 0 was executed exactly once, on the first (killed) run.
    assert attempts_made(tmp_path / "chaos", f"{unit.label}#s0-1") == 1


def test_fully_journaled_streaming_run_is_a_pure_replay(tmp_path):
    cfg = micro_config(seed=6)
    journal = Journal(tmp_path / "j")
    unit = StreamingPingUnit(cfg, ANCHOR)
    [first] = execute_units([unit], workers=1, granularity=4,
                            journal=journal)
    # Chaos that raises on every attempt proves nothing re-executed.
    wrapped = wrap_units([unit], tmp_path / "chaos",
                         default=ChaosSpec(raise_on=(1, 2, 3)))
    [second] = execute_units(wrapped, workers=1, granularity=4,
                             journal=journal)
    assert digest_value(second.to_series()) == digest_value(
        first.to_series())
    assert attempts_made(tmp_path / "chaos", f"{unit.label}#s0-1") == 0


# -- per-unit memory tracking -----------------------------------------------


def test_track_memory_records_peaks_and_renders_column():
    cfg = micro_config(seed=1)
    timings: list = []
    execute_units([StreamingPingUnit(cfg, ANCHOR)], workers=1,
                  granularity=2, timings=timings, track_memory=True)
    assert timings and all(t.peak_kb > 0.0 for t in timings)
    assert "peak" in render_timings(timings)

    untracked: list = []
    execute_units([StreamingPingUnit(cfg, ANCHOR)], workers=1,
                  granularity=2, timings=untracked)
    assert all(t.peak_kb == 0.0 for t in untracked)
    assert "peak" not in render_timings(untracked)
