"""Failure isolation in the executor: retry, timeout, degrade.

Every recovery path of :func:`repro.exec.execute_units` is pinned with
the chaos harness (:mod:`repro.testing.chaos`): transient exceptions
are retried to success, worker deaths and hangs are charged and
re-dispatched, exhausted units either abort the run
(``failure_policy="raise"``) or become :class:`UnitFailure` records in
a completed partial run (``"degrade"``). The units here are cheap
synthetic ones defined at module top level so they pickle under the
fork start method; the digest-level acceptance tests on real campaign
units live in ``test_journal_resume.py``.
"""

import multiprocessing
import time
from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError, UnitExecutionError
from repro.exec import UnitFailure, execute_units
from repro.exec.runner import _backoff_s, _profile_stem
from repro.testing.chaos import (
    ChaosSpec,
    attempts_made,
    seeded_chaos,
    wrap_units,
)


@dataclass(frozen=True)
class SquareUnit:
    """Minimal work unit: deterministic, instant, picklable."""

    value: int

    kind = "square"

    @property
    def label(self) -> str:
        return f"square:{self.value}"

    def run(self) -> int:
        return self.value * self.value


@dataclass(frozen=True)
class NamedUnit:
    """Unit with an arbitrary label, for profile-stem tests."""

    name: str

    kind = "named"

    @property
    def label(self) -> str:
        return self.name

    def run(self) -> str:
        return self.name.upper()


UNITS = [SquareUnit(v) for v in range(5)]
EXPECTED = [v * v for v in range(5)]


def test_transient_raise_is_retried_to_success(tmp_path):
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:2": ChaosSpec(raise_on=(1,))})
    failures = []
    payloads = execute_units(wrapped, workers=1, retries=1,
                             failures=failures)
    assert payloads == EXPECTED
    assert failures == []
    assert attempts_made(tmp_path, "square:2") == 2
    assert attempts_made(tmp_path, "square:0") == 1


def test_exhausted_retries_raise_unit_execution_error(tmp_path):
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:2": ChaosSpec(raise_on=(1, 2))})
    with pytest.raises(UnitExecutionError,
                       match=r"'square:2' failed after 2 attempt"):
        execute_units(wrapped, workers=1, retries=1)


def test_exhausted_retries_degrade_to_unit_failure(tmp_path):
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:2": ChaosSpec(raise_on=(1, 2))})
    failures = []
    payloads = execute_units(wrapped, workers=1, retries=1,
                             failure_policy="degrade",
                             failures=failures)
    # The lost unit's slot holds its UnitFailure; the rest are intact.
    assert payloads[:2] == EXPECTED[:2]
    assert payloads[3:] == EXPECTED[3:]
    failure = payloads[2]
    assert isinstance(failure, UnitFailure)
    assert failures == [failure]
    assert failure.label == "square:2"
    assert failure.kind == "square"
    assert failure.error_type == "ChaosError"
    assert failure.attempts == 2
    assert "ChaosError" in failure.traceback


def test_worker_death_is_retried_in_pool(tmp_path):
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:3": ChaosSpec(kill_on=(1,))})
    payloads = execute_units(wrapped, workers=2, retries=1)
    assert payloads == EXPECTED


def test_worker_death_degrades_deterministically(tmp_path):
    # workers=1 keeps exactly one unit in flight, so the crash is
    # attributed to the chaos unit alone; unit_timeout forces the pool
    # path (a SIGKILL in-process would kill the test runner).
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:1": ChaosSpec(kill_on=(1,))})
    failures = []
    payloads = execute_units(wrapped, workers=1, unit_timeout=60.0,
                             failure_policy="degrade",
                             failures=failures)
    assert [f.label for f in failures] == ["square:1"]
    assert failures[0].error_type == "WorkerCrash"
    assert failures[0].attempts == 1
    assert [p for p in payloads if not isinstance(p, UnitFailure)] \
        == [0, 4, 9, 16]


def test_hang_is_timed_out_and_redispatched(tmp_path):
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:0": ChaosSpec(hang_on=(1,),
                                                hang_s=60.0)})
    began = time.monotonic()
    payloads = execute_units(wrapped, workers=1, retries=1,
                             unit_timeout=0.75)
    assert payloads == EXPECTED
    # The hung attempt was abandoned at the timeout, not waited out.
    assert time.monotonic() - began < 30.0
    assert attempts_made(tmp_path, "square:0") == 2


def test_hang_exhausts_into_unit_timeout_failure(tmp_path):
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:0": ChaosSpec(hang_on=(1, 2),
                                                hang_s=60.0)})
    failures = []
    execute_units(wrapped, workers=1, retries=1, unit_timeout=0.5,
                  failure_policy="degrade", failures=failures)
    assert [f.error_type for f in failures] == ["UnitTimeout"]
    assert failures[0].attempts == 2
    assert "0.5s wall-clock budget" in failures[0].message


def test_degrade_report_matches_injected_faults(tmp_path):
    units = [SquareUnit(v) for v in range(10)]
    wrapped, injections = seeded_chaos(units, tmp_path, seed=7,
                                       p_raise=0.5)
    assert injections  # seed 7 must actually sabotage something
    assert all(inj.fault == "raise" for inj in injections)
    failures = []
    payloads = execute_units(wrapped, workers=1,
                             failure_policy="degrade",
                             failures=failures)
    # The failure report lists exactly the injected faults -- nothing
    # invented, nothing swallowed -- and every calm unit completed.
    assert sorted(f.label for f in failures) \
        == sorted(inj.label for inj in injections)
    assert all(f.error_type == "ChaosError" for f in failures)
    sabotaged = {inj.label for inj in injections}
    for unit, payload in zip(units, payloads):
        if unit.label in sabotaged:
            assert isinstance(payload, UnitFailure)
        else:
            assert payload == unit.value ** 2


def test_seeded_chaos_is_deterministic(tmp_path):
    units = [SquareUnit(v) for v in range(10)]
    _, first = seeded_chaos(units, tmp_path / "a", seed=7, p_raise=0.5)
    _, second = seeded_chaos(units, tmp_path / "b", seed=7, p_raise=0.5)
    assert first == second


def test_pool_interrupt_cancels_and_reaps_workers(tmp_path):
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:2": ChaosSpec(interrupt_on=(1,))})
    with pytest.raises(KeyboardInterrupt):
        execute_units(wrapped, workers=2)
    # No orphaned pool workers: every child is reaped promptly.
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children():
        assert time.monotonic() < deadline, \
            f"orphans: {multiprocessing.active_children()}"
        time.sleep(0.05)


def test_timings_cover_only_successes_in_input_order(tmp_path):
    wrapped = wrap_units(UNITS, tmp_path,
                         {"square:1": ChaosSpec(raise_on=(1,))})
    timings = []
    execute_units(wrapped, workers=1, failure_policy="degrade",
                  timings=timings)
    assert [t.label for t in timings] \
        == ["square:0", "square:2", "square:3", "square:4"]


def test_backoff_schedule_is_deterministic_and_exponential():
    assert _backoff_s(0.5, 1) == 0.5
    assert _backoff_s(0.5, 2) == 1.0
    assert _backoff_s(0.5, 3) == 2.0
    assert _backoff_s(0.0, 5) == 0.0


def test_invalid_crash_safety_parameters_rejected():
    with pytest.raises(ConfigurationError, match="retries"):
        execute_units(UNITS, retries=-1)
    with pytest.raises(ConfigurationError, match="retry_backoff_s"):
        execute_units(UNITS, retry_backoff_s=-0.1)
    with pytest.raises(ConfigurationError, match="unit_timeout"):
        execute_units(UNITS, unit_timeout=0.0)
    with pytest.raises(ConfigurationError, match="failure_policy"):
        execute_units(UNITS, failure_policy="retry-forever")


def test_profile_stems_do_not_collide(tmp_path):
    # Both labels sanitize to the stem "probe_one"; the unit index
    # prefix keeps their dumps apart (regression: the second dump used
    # to silently overwrite the first).
    units = [NamedUnit("probe one"), NamedUnit("probe/one")]
    assert _profile_stem(units[0].label) == _profile_stem(units[1].label)
    prof = tmp_path / "prof"
    execute_units(units, workers=1, profile_dir=str(prof))
    dumps = sorted(p.name for p in prof.glob("*.pstats"))
    assert dumps == ["0000-probe_one.pstats", "0001-probe_one.pstats"]
