"""Differential sharding suite: any split plan reproduces serial.

The sharded executor's load-bearing claim is ``sharded(N, g) ==
serial`` for every worker count N, granularity g and steal order.
Hypothesis generates shard plans — random atom counts, granularities
and dispatch permutations — and every one must merge to the exact
serial payloads (shrinking then hands back the minimal failing plan).
Real campaign units (ping chunks, speedtest connections, bulk
segments, web pages) are pinned the same way at the digest level.
"""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import Campaign, CampaignConfig
from repro.errors import ConfigurationError
from repro.exec import (
    UnitShard,
    atom_count,
    execute_units,
    plan_shards,
    shard_label,
)
from repro.rng import make_rng
from repro.testing.digest import digest_value
from repro.units import minutes


@dataclass(frozen=True)
class SeriesUnit:
    """Synthetic splittable unit: one derived RNG draw per atom."""

    seed: int
    n: int

    kind = "series"

    @property
    def label(self) -> str:
        return f"series:{self.seed}:{self.n}"

    def n_atoms(self) -> int:
        return self.n

    def run_atoms(self, start: int, stop: int) -> list[float]:
        return [make_rng((self.seed, "atom", i)).random()
                for i in range(start, stop)]

    def merge_atoms(self, payloads) -> list[float]:
        return list(payloads)

    def run(self) -> list[float]:
        return self.merge_atoms(self.run_atoms(0, self.n_atoms()))


def micro_config(seed: int = 0) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=1.0, ping_interval_s=minutes(120),
        ping_shard_rounds=3,
        speedtest_epochs=1, speedtest_measure_s=1.0,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        speedtest_connections=3,
        bulk_per_direction=1, bulk_bytes=900_000,
        bulk_segment_bytes=400_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=4, web_visits_per_site=1)


def micro_units(seed: int = 0) -> list:
    campaign = Campaign(micro_config(seed))
    return (campaign.ping_units()[:2]
            + [u for u in campaign.speedtest_units()
               if u.network == "starlink"][:2]
            + campaign.bulk_units()[:1]
            + campaign.web_units()[:1]
            + campaign.messages_units()[:1])


# -- property: any plan, any steal order ------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 9)),
                min_size=1, max_size=5),
       st.integers(1, 12),
       st.randoms(use_true_random=False))
def test_any_plan_and_steal_order_merges_to_serial(unit_params,
                                                   granularity,
                                                   steal_rng):
    units = [SeriesUnit(seed, n) for seed, n in unit_params]
    serial = [unit.run() for unit in units]

    plan = plan_shards(units, granularity)
    tasks = [(i, runnable) for i, group in enumerate(plan)
             for runnable in group]
    # An arbitrary steal order: run shards in a random permutation,
    # exactly what a racing pool produces.
    steal_rng.shuffle(tasks)
    by_unit: dict[int, dict[int, object]] = {}
    for i, runnable in tasks:
        index = (runnable.shard_index
                 if isinstance(runnable, UnitShard) else 0)
        by_unit.setdefault(i, {})[index] = runnable.run()
    merged = []
    for i, unit in enumerate(units):
        shards = by_unit[i]
        if not isinstance(plan[i][0], UnitShard):
            merged.append(shards[0])
            continue
        atoms: list = []
        for index in sorted(shards):
            atoms.extend(shards[index])
        merged.append(unit.merge_atoms(atoms))
    assert digest_value(merged) == digest_value(serial)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 12), st.integers(0, 3))
def test_executor_granularity_is_digest_invariant(granularity, seed):
    units = [SeriesUnit(seed, 7), SeriesUnit(seed + 1, 1),
             SeriesUnit(seed + 2, 4)]
    serial = execute_units(units, workers=1)
    sharded = execute_units(units, workers=1, granularity=granularity)
    assert digest_value(sharded) == digest_value(serial)


@settings(max_examples=8, deadline=None)
@given(st.integers(1, 6))
def test_ping_units_shard_digest_invariant(granularity):
    campaign = Campaign(micro_config(seed=1))
    units = campaign.ping_units()[:2]
    serial = execute_units(units, workers=1)
    sharded = execute_units(units, workers=1, granularity=granularity)
    assert digest_value(sharded) == digest_value(serial)


# -- real campaign units, serial and pool -----------------------------------


def test_micro_campaign_sharded_serial_is_digest_identical():
    units = micro_units(seed=3)
    reference = digest_value(execute_units(units, workers=1))
    for granularity in (2, 5):
        sharded = execute_units(units, workers=1,
                                granularity=granularity)
        assert digest_value(sharded) == reference, \
            f"granularity={granularity} diverged from serial"


def test_micro_campaign_sharded_pool_is_digest_identical():
    units = micro_units(seed=3)
    reference = digest_value(execute_units(units, workers=1))
    sharded = execute_units(units, workers=3, granularity=4)
    assert digest_value(sharded) == reference


def test_unit_timings_stay_per_unit_and_shards_are_labelled():
    units = micro_units(seed=3)[:3]
    timings, shard_timings = [], []
    execute_units(units, workers=1, granularity=3, timings=timings,
                  shard_timings=shard_timings)
    assert [t.label for t in timings] == [u.label for u in units]
    assert len(shard_timings) >= len(timings)
    for timing in shard_timings:
        assert timing.label.count("#s") <= 1
    # Every split unit's wall clock is the sum of its shard clocks.
    for unit, timing in zip(units, timings):
        mine = [s.elapsed_s for s in shard_timings
                if s.label == unit.label
                or s.label.startswith(unit.label + "#s")]
        assert timing.elapsed_s == pytest.approx(sum(mine))


# -- plan mechanics ---------------------------------------------------------


def test_plan_shards_is_balanced_and_contiguous():
    unit = SeriesUnit(seed=0, n=10)
    [shards] = plan_shards([unit], 4)
    assert [(s.start, s.stop) for s in shards] \
        == [(0, 2), (2, 5), (5, 7), (7, 10)]
    assert all(s.n_shards == 4 for s in shards)
    assert [s.label for s in shards] \
        == [shard_label(unit.label, s.start, s.stop) for s in shards]
    assert all(s.kind == "series" for s in shards)
    assert all(s.parent_label == unit.label for s in shards)


def test_plan_passthrough_for_unsplittable_and_g1():
    splittable = SeriesUnit(seed=0, n=6)

    @dataclass(frozen=True)
    class Opaque:
        kind = "opaque"
        label = "opaque:0"

        def run(self) -> int:
            return 42

    opaque = Opaque()
    assert atom_count(opaque) == 1
    assert plan_shards([splittable, opaque], 1) \
        == [[splittable], [opaque]]
    plan = plan_shards([splittable, opaque], 3)
    assert len(plan[0]) == 3
    assert plan[1] == [opaque]


def test_granularity_validation():
    with pytest.raises(ConfigurationError, match="granularity"):
        plan_shards([SeriesUnit(0, 3)], 0)
    with pytest.raises(ConfigurationError, match="granularity"):
        execute_units([SeriesUnit(0, 3)], granularity=0)
