"""Checkpoint journal and kill-and-resume digest identity.

The acceptance bar of the crash-safety layer: a campaign killed at any
instant (``SIGKILL`` of a worker, Ctrl-C of the driver) and restarted
with the same journal produces a dataset bit-identical to an
uninterrupted run. The digest-level tests run real ping units across a
process boundary; the cheap synthetic tests pin the journal mechanics
(atomicity, corruption handling, keying) in isolation.
"""

import pickle
from dataclasses import dataclass

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.errors import JournalError, UnitExecutionError
from repro.exec import Journal, execute_units
from repro.testing.chaos import ChaosSpec, attempts_made, wrap_units
from repro.testing.digest import digest_value
from repro.units import minutes


def tiny_config(seed: int = 0) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=0.5, ping_interval_s=minutes(120),
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


@dataclass(frozen=True)
class SquareUnit:
    value: int

    kind = "square"

    @property
    def label(self) -> str:
        return f"square:{self.value}"

    def run(self) -> int:
        return self.value * self.value


UNITS = [SquareUnit(v) for v in range(5)]
EXPECTED = [v * v for v in range(5)]


# -- journal mechanics -----------------------------------------------------


def test_journal_roundtrip(tmp_path):
    journal = Journal(tmp_path / "j")
    key = journal.key_for(UNITS[0])
    assert not journal.has(key)
    assert journal.load(key) is None
    journal.store(key, {"x": 1.5}, elapsed_s=0.25, label="square:0")
    assert journal.has(key) and len(journal) == 1
    assert journal.load(key) == ({"x": 1.5}, 0.25)
    assert journal.labels() == ["square:0"]
    assert "entries=1" in repr(journal)


def test_journal_key_covers_label_kind_and_config(tmp_path):
    journal = Journal(tmp_path)
    campaign = Campaign(tiny_config(seed=0))
    units = campaign.ping_units()
    keys = [journal.key_for(u) for u in units]
    assert len(set(keys)) == len(keys)
    # Same unit identity -> same key; different seed -> different key,
    # so a journal can never feed stale payloads to a reconfigured run.
    again = Campaign(tiny_config(seed=0)).ping_units()
    assert journal.key_for(again[0]) == keys[0]
    other = Campaign(tiny_config(seed=1)).ping_units()
    assert journal.key_for(other[0]) != keys[0]


def test_corrupt_entry_is_discarded_and_rerun(tmp_path):
    journal = Journal(tmp_path)
    key = journal.key_for(UNITS[0])
    journal.store(key, 0, label="square:0")
    (tmp_path / f"{key}.pkl").write_bytes(b"torn write \x00\x01")
    assert journal.load(key) is None          # discarded, not fatal
    assert not (tmp_path / f"{key}.pkl").exists()
    payloads = execute_units(UNITS, journal=journal)
    assert payloads == EXPECTED               # unit simply re-ran
    assert len(journal) == 5


def test_mismatched_label_refuses_resume(tmp_path):
    journal = Journal(tmp_path)
    journal.store("deadbeef", 42, label="ping:de-frankfurt")
    with pytest.raises(JournalError, match="mismatched journal"):
        journal.load("deadbeef", label="ping:sg-singapore")


def test_fresh_journal_refuses_leftover_entries(tmp_path):
    journal = Journal(tmp_path / "j", resume=False)  # empty dir is fine
    journal.store("k", 1, label="square:1")
    with pytest.raises(JournalError, match="--resume"):
        Journal(tmp_path / "j", resume=False)
    assert len(Journal(tmp_path / "j", resume=True)) == 1


def test_stale_tmp_files_are_swept(tmp_path):
    (tmp_path / "k.tmp-12345").write_bytes(b"half a pickle")
    journal = Journal(tmp_path)
    assert list(tmp_path.glob("*.tmp-*")) == []
    assert len(journal) == 0


def test_journaled_units_are_not_rerun(tmp_path):
    journal = Journal(tmp_path / "j")
    first = execute_units(UNITS, journal=journal)
    # Re-running through chaos that raises on every first attempt
    # proves the units were loaded from the journal, not executed.
    wrapped = wrap_units(UNITS, tmp_path / "chaos",
                         default=ChaosSpec(raise_on=(1,)))
    second = execute_units(wrapped, journal=journal)
    assert first == second == EXPECTED
    assert attempts_made(tmp_path / "chaos", "square:0") == 0
    timings = []
    execute_units(UNITS, journal=journal, timings=timings)
    assert [t.label for t in timings] == [u.label for u in UNITS]


def test_journal_payloads_survive_pickle_digest_identically(tmp_path):
    units = Campaign(tiny_config()).ping_units()[:2]
    direct = execute_units(units)
    journal = Journal(tmp_path)
    execute_units(units, journal=journal)
    resumed = execute_units(units, journal=journal)
    assert digest_value(resumed) == digest_value(direct)
    clone = pickle.loads(pickle.dumps(direct))
    assert digest_value(clone) == digest_value(direct)


# -- kill-and-resume acceptance --------------------------------------------


def test_worker_kill_then_resume_is_digest_identical(tmp_path):
    """Acceptance: SIGKILL a worker mid-campaign, resume, same digest."""
    units = Campaign(tiny_config(seed=0)).ping_units()[:4]
    reference = digest_value(execute_units(units, workers=1))

    journal = Journal(tmp_path / "journal")
    wrapped = wrap_units(units, tmp_path / "chaos",
                         {units[2].label: ChaosSpec(kill_on=(1,))})
    with pytest.raises(UnitExecutionError, match="WorkerCrash"):
        execute_units(wrapped, workers=2, journal=journal)
    # The run died partway: some units journaled, not all.
    assert 0 < len(journal) < len(units)

    resumed = execute_units(units, workers=2, journal=journal)
    assert digest_value(resumed) == reference
    assert len(journal) == len(units)


def test_serial_interrupt_then_resume(tmp_path):
    journal = Journal(tmp_path / "j")
    wrapped = wrap_units(UNITS, tmp_path / "chaos",
                         {"square:2": ChaosSpec(interrupt_on=(1,))})
    with pytest.raises(KeyboardInterrupt):
        execute_units(wrapped, workers=1, journal=journal)
    # Everything completed before the interrupt is already flushed.
    assert journal.labels() == ["square:0", "square:1"]
    resumed = execute_units(UNITS, workers=1, journal=journal)
    assert resumed == EXPECTED
    assert len(journal) == 5


def test_campaign_interrupt_then_resume_is_digest_identical(tmp_path):
    reference = Campaign(tiny_config(seed=2)).run_pings()

    campaign = Campaign(tiny_config(seed=2))
    units = campaign.ping_units()
    wrapped = wrap_units(units, tmp_path / "chaos",
                         {units[5].label: ChaosSpec(interrupt_on=(1,))})
    campaign.ping_units = lambda: wrapped
    journal = Journal(tmp_path / "journal")
    with pytest.raises(KeyboardInterrupt):
        campaign.run_pings(journal=journal)
    assert 0 < len(journal) < len(units)

    # A fresh process (fresh Campaign) resumes from the same journal.
    resumed = Campaign(tiny_config(seed=2)).run_pings(journal=journal)
    assert digest_value(resumed.series) == digest_value(reference.series)
    # The journal now covers the full campaign: a third run is a no-op
    # load that still digests identically.
    again = Campaign(tiny_config(seed=2)).run_pings(journal=journal)
    assert digest_value(again.series) == digest_value(reference.series)
