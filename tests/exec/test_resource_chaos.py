"""Resource governance under chaos: allocation failures, allocation
pressure, the degradation ladder and the hard cap.

Pins the robustness story end to end: injected ``MemoryError``\\ s are
survivable faults like any other (retry, degrade, report), allocation
*pressure* is observable through the tracked per-unit peaks, the
dataset-level governor walks EXACT -> STREAMING -> SHRUNK_RESERVOIRS
-> SPILLED in exactly that order, and when the ladder is exhausted
the run dies with a clean :class:`MemoryBudgetError` whose journal
checkpoint makes the rerun a pure replay.
"""

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig
from repro.core.datasets import StreamingPingDataset
from repro.errors import MemoryBudgetError, ResourceError
from repro.exec import (
    Journal,
    ResourceBudget,
    StreamingPingUnit,
    UnitFailure,
    execute_units,
)
from repro.testing.chaos import (
    ChaosSpec,
    attempts_made,
    seeded_chaos,
    wrap_units,
)
from repro.testing.digest import digest_value
from repro.units import minutes


def micro_config(seed: int = 0) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=1.0, ping_interval_s=minutes(120),
        ping_shard_rounds=3,   # 12 rounds -> 4 atoms per series
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


ANCHOR = "be-brussels"


def synthetic_series(n: int = 100):
    """A deterministic exact-friendly probe series with keys."""
    from repro.core.stats import BottomKReservoir

    times = np.arange(n, dtype=float) * 60.0
    rtts = 0.04 + 0.001 * np.arange(n, dtype=float)
    keys = BottomKReservoir.keys_for(0, "chaos-ladder", count=n)
    return times, rtts, keys


# -- injected MemoryError is a survivable fault ------------------------------


def test_memerr_chaos_is_survivable_with_retries(tmp_path):
    cfg = micro_config(seed=3)
    unit = StreamingPingUnit(cfg, ANCHOR)
    reference = digest_value(unit.run().to_series())

    wrecked = StreamingPingUnit(cfg, ANCHOR)
    wrapped = wrap_units([wrecked], tmp_path / "chaos",
                         {wrecked.label: ChaosSpec(memerr_on=(1,))})
    [sink] = execute_units(wrapped, workers=1, retries=1)
    assert digest_value(sink.to_series()) == reference
    assert attempts_made(tmp_path / "chaos", wrecked.label) == 2


def test_memerr_without_retries_degrades_with_a_named_failure(tmp_path):
    unit = StreamingPingUnit(micro_config(), ANCHOR)
    wrapped = wrap_units([unit], tmp_path / "chaos",
                         {unit.label: ChaosSpec(memerr_on=(1,))})
    failures: list[UnitFailure] = []
    [payload] = execute_units(wrapped, workers=1,
                              failure_policy="degrade",
                              failures=failures)
    assert isinstance(payload, UnitFailure)
    [failure] = failures
    assert failure.error_type == "MemoryError"
    assert "injected allocation failure" in failure.message


def test_balloon_pressure_spikes_the_tracked_peak(tmp_path):
    cfg = micro_config(seed=5)
    calm: list = []
    [reference] = execute_units([StreamingPingUnit(cfg, ANCHOR)],
                                workers=1, timings=calm,
                                track_memory=True)

    pressured: list = []
    unit = StreamingPingUnit(cfg, ANCHOR)
    wrapped = wrap_units([unit], tmp_path / "chaos",
                         {unit.label: ChaosSpec(balloon_on=(1,),
                                                balloon_mb=8)})
    [sink] = execute_units(wrapped, workers=1, timings=pressured,
                           track_memory=True)
    # Pressure, not failure: the payload is untouched...
    assert digest_value(sink.to_series()) \
        == digest_value(reference.to_series())
    # ...but the held ballast dominates the measured peak.
    assert pressured[0].peak_kb > calm[0].peak_kb + 8 * 1024 * 0.9


def test_seeded_memerr_injections_replay_deterministically(tmp_path):
    cfg = micro_config(seed=7)
    units = [StreamingPingUnit(cfg, ANCHOR)]
    wrapped, injections = seeded_chaos(units, tmp_path / "a",
                                       seed=11, p_memerr=1.0)
    assert [i.fault for i in injections] == ["memerr"]
    _, replay = seeded_chaos(units, tmp_path / "b", seed=11,
                             p_memerr=1.0)
    assert replay == injections
    [sink] = execute_units(wrapped, workers=1, retries=1)
    assert sink.total_probes > 0


# -- the degradation ladder, stage by stage ----------------------------------


def test_governor_walks_the_ladder_in_order(tmp_path):
    budget = ResourceBudget(max_resident_samples=10)
    dataset = StreamingPingDataset(budget=budget,
                                   spill_dir=str(tmp_path / "spill"))
    times, rtts, keys = synthetic_series(100)
    dataset.add_series("anchor", times, rtts, keys=keys,
                       exact_threshold=10 ** 9, reservoir_k=64)
    assert [e.stage for e in budget.events] \
        == ["STREAMING", "SHRUNK_RESERVOIRS", "SPILLED"]
    assert budget.stage == "SPILLED"
    # Every stage recorded a consequence for the precision notes.
    notes = dataset.precision_notes()
    assert len(notes) == 3
    assert all("PARTIAL PRECISION" in note for note in notes)
    # Counts stayed exact; quantile queries still answer (the spilled
    # reservoir transparently reloads, shrunk to half its k).
    sink = dataset.sinks["anchor"]
    assert sink.total_probes == 100
    assert dataset.rtts("anchor").size == 32
    box = dataset.boxplot("anchor")
    assert rtts.min() <= box.median <= rtts.max()


def test_late_sinks_join_the_ladder_at_the_current_stage(tmp_path):
    budget = ResourceBudget(max_resident_samples=10)
    dataset = StreamingPingDataset(budget=budget,
                                   spill_dir=str(tmp_path / "spill"))
    times, rtts, keys = synthetic_series(100)
    dataset.add_series("first", times, rtts, keys=keys,
                       exact_threshold=10 ** 9, reservoir_k=64)
    assert budget.degraded
    dataset.add_series("second", times, rtts, keys=keys,
                       exact_threshold=10 ** 9, reservoir_k=64)
    assert dataset.sinks["second"].streaming
    assert dataset.sinks["second"].reservoir.k == 32


def test_raise_policy_refuses_to_degrade():
    budget = ResourceBudget(max_resident_samples=10, policy="raise")
    dataset = StreamingPingDataset(budget=budget)
    times, rtts, keys = synthetic_series(100)
    with pytest.raises(MemoryBudgetError, match="policy='raise'"):
        dataset.add_series("anchor", times, rtts, keys=keys,
                           exact_threshold=10 ** 9)
    assert not budget.degraded


def test_unknown_policy_and_bad_budgets_are_rejected():
    with pytest.raises(ResourceError, match="policy"):
        ResourceBudget(policy="panic")
    with pytest.raises(ResourceError, match="max_resident_samples"):
        ResourceBudget(max_resident_samples=0)


# -- the hard cap ------------------------------------------------------------


def test_memory_budget_error_is_catchable_as_memory_error():
    assert issubclass(MemoryBudgetError, MemoryError)


def test_exhausted_ladder_hits_the_hard_cap(tmp_path):
    # max_bytes=1 keeps the watchdog over budget at every stage, so
    # after SPILLED there is nothing left to shed.
    budget = ResourceBudget(max_bytes=1)
    dataset = StreamingPingDataset(budget=budget,
                                   spill_dir=str(tmp_path / "spill"))
    times, rtts, keys = synthetic_series(100)
    with pytest.raises(MemoryBudgetError, match="hard memory cap"):
        dataset.add_series("anchor", times, rtts, keys=keys,
                           exact_threshold=10 ** 9)
    # The ladder was fully walked before giving up.
    assert [e.stage for e in budget.events] \
        == ["STREAMING", "SHRUNK_RESERVOIRS", "SPILLED"]


def test_hard_cap_leaves_the_journal_checkpoint_usable(tmp_path):
    """Checkpoint-and-exit: the units a hard-capped run completed
    replay from the journal without re-execution."""
    cfg = micro_config(seed=4)
    unit = StreamingPingUnit(cfg, ANCHOR)
    reference = digest_value(unit.run().to_series())

    journal = Journal(tmp_path / "j")
    [sink] = execute_units([unit], workers=1, granularity=4,
                           journal=journal)
    doomed = StreamingPingDataset(
        budget=ResourceBudget(max_bytes=1),
        spill_dir=str(tmp_path / "spill"))
    with pytest.raises(MemoryBudgetError, match="checkpointed"):
        doomed.add_sink(sink)

    # Rerun under a sane budget: every shard comes from the journal
    # (chaos raising on all attempts proves nothing re-executed).
    wrapped = wrap_units([StreamingPingUnit(cfg, ANCHOR)],
                         tmp_path / "chaos",
                         default=ChaosSpec(raise_on=(1, 2, 3)))
    [replayed] = execute_units(wrapped, workers=1, granularity=4,
                               journal=journal)
    recovered = StreamingPingDataset()
    recovered.add_sink(replayed)
    assert digest_value(
        recovered.to_ping_dataset().series[ANCHOR]) == reference
    assert attempts_made(tmp_path / "chaos",
                         f"{unit.label}#s0-1") == 0
