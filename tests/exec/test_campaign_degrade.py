"""Graceful degradation at the campaign level.

``failure_policy="degrade"`` must complete the campaign with partial
datasets, report exactly which units each dataset lost, and keep the
whole reporting pipeline working on the partial data — a figure built
from degraded datasets states its unit coverage instead of silently
looking complete.
"""

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.reporting import (
    coverage_note,
    render_degradation,
    render_table1,
)
from repro.exec.runner import DegradationReport, UnitFailure
from repro.testing.chaos import ChaosSpec, wrap_units
from repro.units import minutes


def tiny_config(seed: int = 0) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=0.5, ping_interval_s=minutes(120),
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


def _sabotage(campaign: Campaign, state_dir, ping_label, web_label):
    spec = ChaosSpec(raise_on=(1,))
    ping_units, web_units = campaign.ping_units, campaign.web_units
    campaign.ping_units = lambda: wrap_units(
        ping_units(), state_dir / "pings", {ping_label: spec})
    campaign.web_units = lambda: wrap_units(
        web_units(), state_dir / "web", {web_label: spec})


def test_run_all_degrades_to_partial_datasets(tmp_path):
    campaign = Campaign(tiny_config())
    ping_label = campaign.ping_units()[3].label
    web_label = campaign.web_units()[0].label
    _sabotage(campaign, tmp_path, ping_label, web_label)

    data = campaign.run_all(failure_policy="degrade")
    report = campaign.degradation_report()

    assert report.degraded
    assert report.total_units == 11 + 4 + 4 + 2 + 3
    assert report.completed_units == report.total_units - 2
    assert report.coverage["pings"] == (10, 11)
    assert report.coverage["visits"] == (2, 3)
    assert report.coverage["speedtests"] == (4, 4)
    assert {f.label for f in report.failures} == {ping_label, web_label}
    assert report.coverage_fraction("pings") == 10 / 11
    assert report.coverage_fraction("bulk") == 1.0

    # The partial datasets are clean: lost units are skipped by the
    # merge, never leaked as UnitFailure placeholders.
    assert len(data.pings.anchors()) == 10
    assert ping_label.rsplit(":", 1)[-1] not in data.pings.anchors()
    assert not any(isinstance(s, UnitFailure)
                   for s in data.speedtests + data.bulk
                   + data.messages + data.visits)
    # And the reporting pipeline still works end to end on them.
    assert "Table 1" in render_table1(data.table1_rows())


def test_degradation_rendering_names_the_lost_units(tmp_path):
    campaign = Campaign(tiny_config())
    ping_label = campaign.ping_units()[3].label
    web_label = campaign.web_units()[0].label
    _sabotage(campaign, tmp_path, ping_label, web_label)
    campaign.run_all(failure_policy="degrade")
    report = campaign.degradation_report()

    text = render_degradation(report)
    assert "Degradation report: 22/24 work units completed." in text
    assert ping_label in text and web_label in text
    assert "ChaosError after 1 attempt(s)" in text
    assert "90.9%" in text           # pings 10/11

    note = coverage_note(report, ("pings", "bulk"))
    assert note == "[PARTIAL DATA: pings 10/11 units, bulk 4/4 units]"
    assert coverage_note(report, ("bulk",)) \
        == "[coverage: bulk 4/4 units]"
    assert coverage_note(report, ()) == ""
    assert coverage_note(None, ("pings",)) == ""


def test_clean_run_reports_full_coverage():
    campaign = Campaign(tiny_config())
    campaign.run_pings()
    report = campaign.degradation_report()
    assert not report.degraded
    assert report.completed_units == report.total_units == 11
    assert report.coverage == {"pings": (11, 11)}


def test_empty_report_is_benign():
    report = DegradationReport()
    assert not report.degraded
    assert report.coverage_fraction("anything") == 1.0
    assert "0/0" in render_degradation(report)
