"""Cross-technology integration checks (packet level).

These pin the paper's headline comparisons at the transport level,
independent of the flow-level browsing model: connection setup is an
order of magnitude slower on GEO, and the same QUIC client code runs
unchanged over all three accesses.
"""

import pytest

from repro.apps.bulk import run_bulk_transfer
from repro.core.campaign import CAMPUS_SERVER
from repro.geo.satcom import GeoSatComAccess
from repro.leo.access import StarlinkAccess
from repro.transport.tcp import TcpServer, tcp_connect
from repro.units import mb, to_ms
from repro.wired.access import WiredAccess


def _tcp_handshake_ms(access) -> float:
    server = access.add_remote_host("srv", "62.4.0.99", CAMPUS_SERVER)
    access.finalize()
    TcpServer(server, 8080)
    client = tcp_connect(access.client, "62.4.0.99", 8080)
    access.run(10.0)
    assert client.established
    return to_ms(client.stats.handshake_rtt)


def test_tcp_handshake_ordering_across_accesses():
    wired = _tcp_handshake_ms(WiredAccess(seed=1))
    starlink = _tcp_handshake_ms(StarlinkAccess(seed=1))
    satcom = _tcp_handshake_ms(GeoSatComAccess(seed=1))
    assert wired < starlink < satcom
    # Paper scale: tens of ms on Starlink, ~600 ms on GEO.
    assert 20 <= starlink <= 110
    assert satcom >= 500
    assert wired <= 20


@pytest.mark.parametrize("access_cls,seed", [
    (StarlinkAccess, 11), (WiredAccess, 11),
])
def test_quic_bulk_runs_on_every_access(access_cls, seed):
    access = access_cls(seed=seed)
    server = access.add_remote_host("srv", "62.4.0.99", CAMPUS_SERVER)
    access.finalize()
    result = run_bulk_transfer(access.client, server, "down",
                               payload_bytes=mb(3))
    assert result.completed
    assert result.goodput_mbps > 5


def test_quic_bulk_on_geo_is_pep_immune():
    """QUIC crosses the PEP untouched (it is UDP): the transfer works
    end to end and the PEP proxies zero QUIC flows."""
    access = GeoSatComAccess(seed=11)
    server = access.add_remote_host("srv", "62.4.0.99", CAMPUS_SERVER)
    access.finalize()
    result = run_bulk_transfer(access.client, server, "down",
                               payload_bytes=mb(2), timeout_s=180.0)
    assert result.completed
    pep = access.net.nodes["pep"]
    assert not pep.flows          # no split QUIC connections
    assert result.handshake_rtt_s > 0.5   # full GEO RTT, no shortcut
