"""FaultPlan tests: each fault kind fires deterministically."""

import pytest

from repro.errors import ConfigurationError
from repro.leo.constellation import Constellation
from repro.leo.ground import STARLINK_GATEWAYS, default_terminal
from repro.leo.scheduling import SLOT_DURATION, SatelliteScheduler
from repro.netsim.engine import Simulator
from repro.netsim.link import Pipe
from repro.netsim.packet import Packet, Protocol
from repro.netsim.queues import DropTailQueue
from repro.testing.faults import FaultPlan
from repro.testing.invariants import check_invariants


class Sink:
    def __init__(self):
        self.name = "sink"
        self.address = "10.9.9.9"
        self.times = []

    def receive(self, packet, pipe):
        self.times.append(pipe.sim.now)


def steady_traffic(sim, pipe, n=40, interval=0.1, size=500):
    for i in range(n):
        sim.at(i * interval, pipe.send,
               Packet(src="10.0.0.1", dst="10.9.9.9",
                      protocol=Protocol.UDP, size=size))


def test_link_flap_blacks_out_the_window_only():
    sim = Simulator()
    sink = Sink()
    pipe = Pipe(sim, sink, rate=1e6, delay=0.005, name="flappy")
    plan = FaultPlan(seed=1)
    plan.inject_link_flap(pipe, at=1.0, duration=1.0)
    plan.arm(sim)
    steady_traffic(sim, pipe)
    with check_invariants(sim, pipe):
        sim.run_until_idle()
    assert pipe.lost_medium == 10  # sends in [1.0, 2.0)
    assert all(t < 1.0 or t >= 2.0 for t in sink.times)
    assert len(sink.times) == 30


def test_link_flap_composes_with_existing_loss_model():
    sim = Simulator()
    sink = Sink()
    pipe = Pipe(sim, sink, rate=1e6, delay=0.005)
    before = pipe.loss
    FaultPlan(seed=1).inject_link_flap(pipe, at=0.5,
                                       duration=0.2).arm(sim)
    assert pipe.loss is not before
    assert before in pipe.loss.models


def test_queue_storm_overflows_the_queue():
    sim = Simulator()
    sink = Sink()
    pipe = Pipe(sim, sink, rate=64_000.0, delay=0.001,
                queue=DropTailQueue(capacity_packets=8), name="stormy")
    plan = FaultPlan(seed=2)
    plan.inject_queue_storm(pipe, at=0.5, packets=60, size=1200)
    plan.arm(sim)
    with check_invariants(sim, pipe):
        sim.run_until_idle()
    assert pipe.queue.drops > 0
    assert pipe.sent == 60


def test_cancellation_race_is_clean_on_correct_engine():
    sim = Simulator()
    plan = FaultPlan(seed=3)
    for at in (0.5, 1.0, 1.5):
        plan.inject_cancellation_race(at)
    plan.arm(sim)
    with check_invariants(sim):
        sim.run()
    plan.assert_cancellation_clean()
    # the cancellers fired, the victims never did
    assert sim.events_processed == 3


def test_assert_cancellation_clean_raises_when_victims_fire(monkeypatch):
    # Break cancellation on purpose: with Event.cancel a no-op, the
    # victim of every race fires, and the checker must say so instead
    # of silently passing (the failure mode is itself under test).
    from repro.netsim.engine import Event

    monkeypatch.setattr(Event, "cancel", lambda self: None)
    sim = Simulator()
    plan = FaultPlan(seed=5)
    plan.inject_cancellation_race(0.5)
    plan.inject_cancellation_race(1.0)
    plan.arm(sim)
    sim.run()
    with pytest.raises(AssertionError,
                       match=r"2 cancelled event\(s\) fired"):
        plan.assert_cancellation_clean()


def test_satellite_outage_forces_handover_at_boundary():
    scheduler = SatelliteScheduler(
        Constellation(), default_terminal(), STARLINK_GATEWAYS, seed=0)
    at = 100.0
    serving = scheduler.snapshot(at).sat_index
    boundary_slot = scheduler.slot_of(at) + 1
    plan = FaultPlan(seed=4)
    plan.inject_satellite_outage(scheduler, at=at, slots=3)
    plan.arm(Simulator())
    # the allocation in force is untouched...
    assert scheduler.snapshot(at).sat_index == serving
    # ...but the failed bird never serves inside the outage window
    for slot in range(boundary_slot, boundary_slot + 3):
        assert scheduler.snapshot(slot * SLOT_DURATION).sat_index != serving


def test_satellite_outage_is_deterministic():
    snaps = []
    for _ in range(2):
        scheduler = SatelliteScheduler(
            Constellation(), default_terminal(), STARLINK_GATEWAYS, seed=0)
        plan = FaultPlan(seed=4)
        plan.inject_satellite_outage(scheduler, at=100.0, slots=2)
        plan.arm(Simulator())
        snaps.append([scheduler.snapshot(t).sat_index
                      for t in (90.0, 105.0, 120.0, 135.0, 150.0)])
    assert snaps[0] == snaps[1]


def test_randomize_is_replayable():
    def build():
        sim = Simulator()
        pipes = [Pipe(sim, Sink(), rate=1e6, delay=0.01, name=f"p{i}")
                 for i in range(3)]
        return FaultPlan(seed=11).randomize(pipes, start=0.0,
                                            horizon=5.0, n_faults=6)

    first, second = build(), build()
    assert [f.kind for f in first.log] == [f.kind for f in second.log]
    assert [f.at for f in first.log] == [f.at for f in second.log]
    assert len(first.log) == 6


def test_invalid_fault_parameters_rejected():
    pipe = Pipe(Simulator(), Sink(), rate=1e6)
    with pytest.raises(ConfigurationError):
        FaultPlan().inject_link_flap(pipe, at=1.0, duration=0.0)
    with pytest.raises(ConfigurationError):
        FaultPlan().inject_link_flap("not-a-pipe", at=1.0, duration=1.0)
    with pytest.raises(ConfigurationError):
        FaultPlan().inject_queue_storm("not-a-pipe", at=1.0)
    with pytest.raises(ConfigurationError):
        FaultPlan().randomize([], start=0.0, horizon=1.0)
