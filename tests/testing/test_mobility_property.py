"""Property-based no-hang checks for the mobility product space.

Mobile-terminal mode widens the no-hang promise: under *any*
trajectory x obstruction x disruption composition every measurement
app terminates with a structured outcome and the engine drains to
idle — including the worst case of a full-sky obstruction in force
at t=0 (driving into a tunnel as the campaign starts).
"""

import pytest

from repro.apps.outcome import OUTCOME_STATUSES
from repro.apps.ping import ping
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.datasets import CampaignDatasets
from repro.disrupt.apply import apply_to_access
from repro.disrupt.scenarios import unregister_scenario
from repro.leo.access import StarlinkAccess
from repro.leo.geometry import GeoPoint
from repro.leo.mobility import FULL_SKY_MASK, ObstructionTrace
from repro.testing.scenarios import (
    random_disruption_schedule,
    random_obstruction_trace,
    random_trajectory,
    register_random_scenario,
)
from repro.units import days, minutes

BRUSSELS = GeoPoint(50.85, 4.35)
ANCHOR = "130.104.1.1"


def test_generators_are_deterministic_in_seed():
    for seed in range(30):
        a = random_trajectory(seed)
        b = random_trajectory(seed)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.position_at(100.0) == b.position_at(100.0)
        ta = random_obstruction_trace(seed)
        tb = random_obstruction_trace(seed)
        assert (ta is None) == (tb is None)
        if ta is not None:
            assert [ta.mask_at(k) for k in range(40)] \
                == [tb.mask_at(k) for k in range(40)]


def test_generators_cover_the_interesting_shapes():
    trajectories = [random_trajectory(s) for s in range(60)]
    assert any(t is None for t in trajectories)
    assert any(t is not None and t.is_stationary
               for t in trajectories)
    assert any(t is not None and not t.is_stationary
               for t in trajectories)
    traces = [random_obstruction_trace(s) for s in range(60)]
    assert any(t is None for t in traces)
    assert any(t is not None and t.obstructed_at_start
               for t in traces)


@pytest.mark.parametrize("seed", range(8))
def test_ping_terminates_under_any_mobility_composition(seed):
    access = StarlinkAccess(
        seed=seed,
        trajectory=random_trajectory(seed),
        obstruction=random_obstruction_trace(seed))
    access.add_remote_host("anchor", ANCHOR, BRUSSELS)
    access.finalize()
    apply_to_access(access,
                    random_disruption_schedule(seed, horizon_s=30.0))
    result = ping(access.client, ANCHOR, count=3)
    assert result.outcome.status in OUTCOME_STATUSES
    assert result.sent == 3
    assert not access.client._icmp_listeners
    access.sim.run_until_idle(max_events=500_000)


def test_ping_survives_full_sky_obstruction_at_t0():
    # Find a trace whose very first slot draws the full-sky mask —
    # the terminal starts the campaign under an overpass.
    trace = None
    for seed in range(300):
        candidate = ObstructionTrace(seed, profile="urban_canyon",
                                     obstructed_at_start=True)
        if candidate.mask_at(0) == FULL_SKY_MASK:
            trace = candidate
            break
    assert trace is not None, "no full-sky-at-slot-0 trace in 300 seeds"
    access = StarlinkAccess(seed=0, obstruction=trace)
    access.add_remote_host("anchor", ANCHOR, BRUSSELS)
    access.finalize()
    result = ping(access.client, ANCHOR, count=3)
    assert result.outcome.status in OUTCOME_STATUSES
    access.sim.run_until_idle(max_events=500_000)


def test_campaign_under_mobility_and_random_scenario_terminates():
    name = register_random_scenario(13, campaign_horizon_s=days(0.02))
    try:
        config = CampaignConfig(
            seed=13, scenario=name, ping_days=0.02,
            ping_interval_s=minutes(2), speedtest_epochs=1,
            speedtest_measure_s=0.5, speedtest_warmup_s=0.5,
            satcom_warmup_s=2.0, bulk_per_direction=1,
            bulk_bytes=500_000, messages_per_direction=1,
            messages_duration_s=1.5, web_sites=3,
            web_visits_per_site=1,
            trajectory="drive", speed_kmh=120.0,
            obstruction="urban_canyon", drive_duration_s=900.0)
        campaign = Campaign(config)
        data = campaign.run_all()
        statuses = [o.status for o in data.pings.outcomes.values()]
        statuses += [s.outcome.status for s in data.speedtests]
        statuses += [s.outcome.status for s in data.bulk]
        statuses += [s.outcome.status for s in data.messages]
        statuses += [s.outcome.status for s in data.visits]
        assert statuses
        assert all(s in OUTCOME_STATUSES for s in statuses)
        # The mobility analysis accepts whatever came out and its
        # attribution conserves the episode count.
        report = campaign.mobility_report(data)
        episodes = report.availability.episodes
        assert sum(report.cause_counts.values()) == len(episodes)
    finally:
        unregister_scenario(name)


def test_campaign_with_obstructed_start_completes():
    """Full-sky shadowing can cover the first slots of the campaign;
    the run must still complete with structured outcomes."""
    config = CampaignConfig(
        seed=29, ping_days=0.01, ping_interval_s=minutes(2),
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1,
        trajectory="drive", speed_kmh=60.0,
        obstruction="urban_canyon", drive_duration_s=600.0)
    campaign = Campaign(config)
    data = campaign.run_all()
    assert isinstance(data, CampaignDatasets)
    for outcome in data.pings.outcomes.values():
        assert outcome.status in OUTCOME_STATUSES
