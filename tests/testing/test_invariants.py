"""Invariant-checker tests, including the mutation smoke tests.

The mutation tests are the proof that the checkers actually bite:
each one plants a seeded bug (corrupted byte accounting, a packet
leak, an out-of-order delivery, a time-warped event) and asserts the
matching invariant raises. The same scenarios with the bug removed
run green.
"""

import pytest

from repro.errors import InvariantViolation
from repro.netsim.engine import Simulator
from repro.netsim.link import Pipe
from repro.netsim.packet import Packet, Protocol
from repro.netsim.queues import CoDelQueue, DropTailQueue
from repro.netsim.topology import Network
from repro.testing.invariants import (
    InvariantChecker,
    check_invariants,
    global_checking,
)


class Sink:
    """Minimal pipe destination."""

    def __init__(self, name="sink", address="10.9.9.9"):
        self.name = name
        self.address = address
        self.received = []

    def receive(self, packet, pipe):
        self.received.append(packet)

    def attach(self, neighbor_name, pipe):
        pass


def packet(size=1000, dst="10.9.9.9"):
    return Packet(src="10.0.0.1", dst=dst, protocol=Protocol.UDP,
                  size=size)


def make_pipe(sim, rate=80_000.0, queue=None, delay=0.01):
    sink = Sink()
    pipe = Pipe(sim, sink, rate=rate, delay=delay,
                queue=queue if queue is not None else DropTailQueue(),
                name="test-pipe")
    return pipe, sink


# -- happy paths ----------------------------------------------------------


def test_clean_run_passes_and_detaches():
    sim = Simulator()
    pipe, sink = make_pipe(sim)
    with check_invariants(sim, pipe) as checker:
        for _ in range(5):
            pipe.send(packet())
        sim.run()
        assert checker.watched_counts == {
            "sims": 1, "pipes": 1, "queues": 1}
    assert len(sink.received) == 5
    # wrappers removed: the instance attributes are gone again
    assert "send" not in vars(pipe)
    assert "at" not in vars(sim)
    assert "push" not in vars(pipe.queue)


def test_network_watch_covers_links_added_later():
    net = Network()
    net.add_host("a")
    net.add_router("r")
    net.connect("a", "r", rate_ab=1e6, rate_ba=1e6, delay=0.001)
    with check_invariants(net) as checker:
        net.add_host("c")
        net.connect("r", "c", rate_ab=1e6, rate_ba=1e6, delay=0.001)
        net.finalize()
        a, c = net.host("a"), net.host("c")
        for _ in range(4):
            a.send(Packet(src=a.address, dst=c.address,
                          protocol=Protocol.TCP, size=500, dst_port=9))
        net.sim.run_until_idle()
        assert checker.watched_counts["pipes"] == 4
    assert net.host("c").packets_received == 4


def test_codel_queue_runs_clean_under_checking():
    sim = Simulator()
    pipe, sink = make_pipe(
        sim, rate=400_000.0,
        queue=CoDelQueue(capacity_bytes=20_000, target_s=0.001,
                         interval_s=0.01))
    with check_invariants(sim, pipe):
        for i in range(60):
            sim.at(0.001 * i, pipe.send, packet())
        sim.run()
    conserved = (len(sink.received) + pipe.lost_medium
                 + pipe.queue.drops + len(pipe.queue))
    assert conserved == pipe.sent


def test_queue_drops_are_accounted_not_flagged():
    sim = Simulator()
    pipe, sink = make_pipe(
        sim, rate=8_000.0, queue=DropTailQueue(capacity_packets=2))
    with check_invariants(sim, pipe):
        for _ in range(10):
            pipe.send(packet())
        sim.run()
    assert pipe.queue.drops == 7  # 1 serialising + 2 queued survive
    assert len(sink.received) == 3


def test_global_checking_restores_constructors():
    orig_sim_init = Simulator.__init__
    orig_pipe_init = Pipe.__init__
    with global_checking() as checker:
        sim = Simulator()
        pipe, sink = make_pipe(sim)
        pipe.send(packet())
        sim.run()
        assert checker.watched_counts["sims"] == 1
        assert checker.watched_counts["pipes"] == 1
    assert Simulator.__init__ is orig_sim_init
    assert Pipe.__init__ is orig_pipe_init
    assert len(sink.received) == 1


def test_invariants_fixture_factory(invariants):
    sim = Simulator()
    pipe, sink = make_pipe(sim)
    invariants(sim, pipe)
    pipe.send(packet())
    sim.run()
    assert len(sink.received) == 1


# -- mutation smoke tests: the checkers must fire on seeded bugs ----------
#
# Marked no_global_invariants: each test leaves deliberately corrupted
# state behind, which the REPRO_INVARIANTS=1 suite-wide checker would
# (correctly) re-report at teardown.

mutation = pytest.mark.no_global_invariants


class ByteDriftQueue(DropTailQueue):
    """Seeded bug: byte accounting leaks one byte per accepted push."""

    def push(self, p):
        accepted = super().push(p)
        if accepted:
            self._bytes -= 1
        return accepted


class LeakyQueue(DropTailQueue):
    """Seeded bug: silently discards a second packet on every pop."""

    def pop(self):
        head = DropTailQueue.pop(self)
        if head is not None:
            DropTailQueue.pop(self)  # vanishes uncounted
        return head


@mutation
def test_mutation_byte_accounting_drift_is_caught():
    sim = Simulator()
    pipe, _ = make_pipe(sim, queue=ByteDriftQueue(capacity_bytes=100_000))
    with pytest.raises(InvariantViolation, match="byte accounting"):
        with check_invariants(sim, pipe):
            for _ in range(3):
                pipe.send(packet())
            sim.run()


@mutation
def test_mutation_packet_leak_breaks_conservation():
    sim = Simulator()
    pipe, _ = make_pipe(sim, queue=LeakyQueue())
    with pytest.raises(InvariantViolation, match="conservation"):
        with check_invariants(sim, pipe):
            for _ in range(6):
                pipe.send(packet())
            sim.run()


def test_mutation_fixed_queue_runs_green():
    """Same scenario as the leak test, bug removed: checker stays quiet."""
    sim = Simulator()
    pipe, sink = make_pipe(sim, queue=DropTailQueue())
    with check_invariants(sim, pipe):
        for _ in range(6):
            pipe.send(packet())
        sim.run()
    assert len(sink.received) == 6


@mutation
def test_mutation_out_of_order_delivery_is_caught():
    sim = Simulator()
    pipe, _ = make_pipe(sim, rate=None, delay=0.5)
    with pytest.raises(InvariantViolation, match="FIFO"):
        with check_invariants(sim, pipe):
            pipe.send(packet())
            second = packet()
            pipe.send(second)
            # Deliver the second packet ahead of the first, as a
            # broken jitter model that reorders frames would.
            pipe._deliver(second)


@mutation
def test_mutation_time_warped_event_is_caught():
    sim = Simulator()
    with check_invariants(sim):
        event = sim.at(5.0, lambda: None)
        # Corrupt the heap entry's timestamp key, as a buggy engine
        # that warps an event's firing time would. (Mutating
        # event.time alone is harmless now: the (time, seq) tuple in
        # the heap is the ordering key and sets the firing clock.)
        entry = sim._heap[0]
        assert entry[0] == event.time == 5.0
        sim._heap[0] = (3.0,) + entry[1:]
        with pytest.raises(InvariantViolation, match="fired at"):
            sim.run()


@mutation
def test_mutation_overstuffed_queue_is_caught():
    sim = Simulator()
    queue = DropTailQueue(capacity_packets=2)
    pipe, _ = make_pipe(sim, rate=8_000.0, queue=queue)
    with pytest.raises(InvariantViolation, match="capacity"):
        with check_invariants(sim, pipe):
            pipe.send(packet())  # serialising
            pipe.send(packet())
            pipe.send(packet())  # queue now at capacity 2
            # A buggy enqueue path that bypasses the capacity check:
            queue._queue.append(packet())
            queue._bytes += 1000
            queue.push(packet())
