"""Scenario-generator tests: bit-identical replay and shrinking."""

import dataclasses

import pytest

from repro.testing.invariants import check_invariants
from repro.testing.scenarios import (
    Scenario,
    arm_workload,
    build_network,
    random_scenario,
    replay_digests,
    run_and_digest,
    shrink,
)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_replay_is_bit_identical(seed):
    """Same scenario, two fresh runs, identical trace digests."""
    first, second = replay_digests(random_scenario(seed))
    assert first == second


def test_different_seeds_diverge():
    digests = {run_and_digest(random_scenario(seed)) for seed in range(4)}
    assert len(digests) == 4


def test_scenario_shape_is_seed_deterministic():
    assert random_scenario(7) == random_scenario(7)
    assert random_scenario(7) != random_scenario(8)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_scenarios_hold_invariants(seed):
    """Generated topologies + workloads run clean under checking."""
    sc = random_scenario(seed)
    net, tracers = build_network(sc)
    with check_invariants(net):
        arm_workload(net, sc)
        net.sim.run_until_idle()
    total_tx = sum(len(t.events("tx")) for t in tracers.values())
    assert total_tx > 0


def test_workload_reaches_destinations():
    sc = Scenario(seed=5, n_hosts=3, n_routers=1, n_extra_links=0,
                  n_packets=20)
    net, tracers = build_network(sc)
    arm_workload(net, sc)
    net.sim.run_until_idle()
    received = sum(n.packets_received for n in net.nodes.values())
    assert received > 0


def test_shrink_finds_minimal_counterexample():
    start = Scenario(seed=1, n_hosts=6, n_routers=3, n_extra_links=3,
                     n_packets=40, horizon_s=8.0)

    # Stand-in failure: reproduces whenever there are >= 4 packets.
    def fails(sc):
        return sc.n_packets >= 4

    small = shrink(start, fails)
    assert small.n_packets == 4
    assert small.n_hosts == 2
    assert small.n_routers == 0
    assert small.n_extra_links == 0
    assert fails(small)


def test_shrink_keeps_failing_scenario_when_stuck():
    sc = Scenario(seed=1, n_hosts=2, n_routers=0, n_extra_links=0,
                  n_packets=1, horizon_s=1.0)
    assert shrink(sc, lambda s: True) == sc


def test_shrink_on_replay_predicate_degenerates_to_original():
    """The engine is deterministic, so the replay predicate never
    fails and shrinking (vacuously) returns the scenario unchanged."""
    sc = random_scenario(2)

    def replay_fails(candidate):
        first, second = replay_digests(candidate)
        return first != second

    assert not replay_fails(sc)
    assert shrink(sc, replay_fails) == sc


def test_scenario_rejects_degenerate_shapes():
    with pytest.raises(ValueError):
        Scenario(seed=0, n_hosts=1)


def test_scenario_is_frozen():
    sc = random_scenario(0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        sc.seed = 1
