"""Property-based no-hang checks for random disruption schedules.

The hardened measurement apps promise: under *any* valid disruption
schedule the run terminates, reports a structured outcome, and leaves
the engine drainable to idle. These tests draw random schedules (via
:mod:`repro.testing.scenarios`) instead of spot-checking the five
named scenarios.
"""

import pytest

from repro.apps.outcome import OUTCOME_STATUSES
from repro.apps.ping import ping
from repro.core.availability import analyze_availability
from repro.core.campaign import Campaign, CampaignConfig
from repro.disrupt.apply import apply_to_access
from repro.disrupt.scenarios import unregister_scenario
from repro.disrupt.schedule import DisruptionSchedule
from repro.leo.access import StarlinkAccess
from repro.leo.geometry import GeoPoint
from repro.testing.scenarios import (
    random_disruption_schedule,
    random_disruption_windows,
    register_random_scenario,
)
from repro.units import days, minutes

BRUSSELS = GeoPoint(50.85, 4.35)
ANCHOR = "130.104.1.1"


def test_generated_windows_are_always_valid():
    # DisruptionWindow validates in __post_init__, so merely drawing
    # many schedules proves the generator only emits valid windows.
    for seed in range(50):
        windows = random_disruption_windows(seed, horizon_s=60.0)
        schedule = DisruptionSchedule(name=f"random-{seed}",
                                      windows=windows)
        for w in windows:
            assert w.end_t > w.start_t
            assert schedule.capacity_factor(w.start_t) > 0.0


def test_generator_is_deterministic_in_seed():
    a = random_disruption_windows(11, horizon_s=60.0)
    b = random_disruption_windows(11, horizon_s=60.0)
    assert a == b
    assert a != random_disruption_windows(12, horizon_s=60.0)


@pytest.mark.parametrize("seed", range(6))
def test_ping_terminates_under_any_random_schedule(seed):
    schedule = random_disruption_schedule(seed, horizon_s=30.0,
                                          max_windows=4)
    access = StarlinkAccess(seed=seed)
    access.add_remote_host("anchor", ANCHOR, BRUSSELS)
    access.finalize()
    apply_to_access(access, schedule)
    result = ping(access.client, ANCHOR, count=3)
    assert result.outcome.status in OUTCOME_STATUSES
    assert result.sent == 3
    # No leaked listener, and the engine drains (bounded): the no-hang
    # invariant at the packet level.
    assert not access.client._icmp_listeners
    access.sim.run_until_idle(max_events=500_000)


def test_campaign_under_random_scenario_terminates():
    name = register_random_scenario(7, campaign_horizon_s=days(0.5))
    try:
        config = CampaignConfig(
            seed=0, scenario=name, ping_days=0.5,
            ping_interval_s=minutes(120), speedtest_epochs=1,
            speedtest_measure_s=0.5, speedtest_warmup_s=0.5,
            satcom_warmup_s=2.0, bulk_per_direction=1,
            bulk_bytes=500_000, messages_per_direction=1,
            messages_duration_s=1.5, web_sites=3,
            web_visits_per_site=1)
        data = Campaign(config).run_all()
        statuses = [o.status for o in data.pings.outcomes.values()]
        statuses += [s.outcome.status for s in data.speedtests]
        statuses += [s.outcome.status for s in data.bulk]
        statuses += [s.outcome.status for s in data.messages]
        statuses += [s.outcome.status for s in data.visits]
        assert statuses
        assert all(s in OUTCOME_STATUSES for s in statuses)
        # The availability analysis must accept whatever came out.
        report = analyze_availability(data, scenario=name)
        assert 0.0 <= report.availability_pct <= 100.0
    finally:
        unregister_scenario(name)
