"""Chaos-harness tests: deterministic sabotage, exact attempt counts.

The executor tests in ``tests/exec/`` use the harness; these tests pin
the harness itself — marker-file attempt claiming is exact across
claimants, :class:`ChaosUnit` is transparent (label/kind/config/digest
of a calm run identical to the bare unit), and seeded injection is
replayable.
"""

import pickle
from dataclasses import dataclass

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.errors import ChaosError, ConfigurationError
from repro.testing.chaos import (
    ChaosInjection,
    ChaosSpec,
    ChaosUnit,
    attempts_made,
    claim_attempt,
    seeded_chaos,
    wrap_units,
)
from repro.units import minutes


@dataclass(frozen=True)
class EchoUnit:
    value: int

    kind = "echo"

    @property
    def label(self) -> str:
        return f"echo:{self.value}"

    def run(self) -> int:
        return self.value


def test_claim_attempt_is_exact_and_per_label(tmp_path):
    assert attempts_made(tmp_path, "a") == 0
    assert [claim_attempt(tmp_path, "a") for _ in range(3)] == [1, 2, 3]
    assert claim_attempt(tmp_path, "b") == 1
    assert attempts_made(tmp_path, "a") == 3
    assert attempts_made(tmp_path, "b") == 1


def test_chaos_unit_is_transparent_when_calm(tmp_path):
    unit = EchoUnit(7)
    calm = ChaosUnit(unit, ChaosSpec(), str(tmp_path))
    assert calm.label == unit.label
    assert calm.kind == unit.kind
    assert calm.run() == 7
    assert attempts_made(tmp_path, "echo:7") == 1


def test_chaos_unit_delegates_config_for_journal_keys(tmp_path):
    from repro.exec import Journal

    config = CampaignConfig(
        seed=0, ping_days=0.5, ping_interval_s=minutes(120),
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)
    unit = Campaign(config).ping_units()[0]
    wrapped = ChaosUnit(unit, ChaosSpec(), str(tmp_path))
    assert wrapped.config is unit.config
    journal = Journal(tmp_path / "j")
    assert journal.key_for(wrapped) == journal.key_for(unit)


def test_chaos_unit_is_picklable(tmp_path):
    unit = ChaosUnit(EchoUnit(3), ChaosSpec(raise_on=(2,)),
                     str(tmp_path))
    clone = pickle.loads(pickle.dumps(unit))
    assert clone == unit


def test_raise_strikes_only_chosen_attempts(tmp_path):
    unit = ChaosUnit(EchoUnit(1), ChaosSpec(raise_on=(1, 3)),
                     str(tmp_path))
    with pytest.raises(ChaosError, match="attempt 1"):
        unit.run()
    assert unit.run() == 1          # attempt 2 is calm
    with pytest.raises(ChaosError, match="attempt 3"):
        unit.run()


def test_interrupt_spec_raises_keyboard_interrupt(tmp_path):
    unit = ChaosUnit(EchoUnit(1), ChaosSpec(interrupt_on=(1,)),
                     str(tmp_path))
    with pytest.raises(KeyboardInterrupt):
        unit.run()
    assert unit.run() == 1


def test_wrap_units_applies_specs_by_label(tmp_path):
    units = [EchoUnit(v) for v in range(3)]
    noisy = ChaosSpec(raise_on=(1,))
    wrapped = wrap_units(units, tmp_path, {"echo:1": noisy})
    assert [w.inner for w in wrapped] == units
    assert wrapped[1].spec is noisy
    assert wrapped[0].spec == ChaosSpec() == wrapped[2].spec


def test_seeded_chaos_injections_are_replayable(tmp_path):
    units = [EchoUnit(v) for v in range(20)]
    _, first = seeded_chaos(units, tmp_path / "a", seed=3,
                            p_raise=0.3, p_hang=0.2, max_attempt=2)
    _, second = seeded_chaos(units, tmp_path / "b", seed=3,
                             p_raise=0.3, p_hang=0.2, max_attempt=2)
    assert first == second
    assert first and all(isinstance(i, ChaosInjection) for i in first)
    assert {i.fault for i in first} <= {"raise", "hang"}
    assert all(1 <= i.attempt <= 2 for i in first)
    wrapped, none = seeded_chaos(units, tmp_path / "c", seed=3)
    assert none == []               # zero probabilities: all calm
    assert all(w.spec == ChaosSpec() for w in wrapped)


def test_seeded_chaos_rejects_bad_parameters(tmp_path):
    with pytest.raises(ConfigurationError, match="probabilities"):
        seeded_chaos([], tmp_path, p_raise=0.8, p_kill=0.4)
    with pytest.raises(ConfigurationError, match="max_attempt"):
        seeded_chaos([], tmp_path, max_attempt=0)
