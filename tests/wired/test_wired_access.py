"""Tests for the wired campus baseline."""

import random

import pytest

from repro.apps.bulk import run_bulk_transfer
from repro.apps.ping import ping
from repro.leo.geometry import GeoPoint
from repro.units import mb, to_ms
from repro.wired.access import WiredAccess, WiredPathModel

BRUSSELS = GeoPoint(50.85, 4.35)


def test_wired_idle_rtt_few_ms():
    model = WiredPathModel(seed=1)
    rng = random.Random(2)
    samples = [to_ms(model.idle_rtt(i * 13.0, rng, remote_rtt_s=0.004))
               for i in range(200)]
    samples.sort()
    assert 4 <= samples[len(samples) // 2] <= 12
    assert samples[-1] < 25


def test_wired_has_no_pep():
    assert not WiredAccess(seed=1).has_pep


def test_wired_ping_round_trip():
    access = WiredAccess(seed=1)
    access.add_remote_host("srv", "62.4.0.10", BRUSSELS)
    access.finalize()
    result = ping(access.client, "62.4.0.10", count=3)
    assert result.received == 3
    assert to_ms(result.min_rtt) < 15


def test_wired_bulk_is_fast_and_lossless():
    access = WiredAccess(seed=2)
    server = access.add_remote_host("srv", "62.4.0.10", BRUSSELS)
    access.finalize()
    result = run_bulk_transfer(access.client, server, "down",
                               payload_bytes=mb(10))
    assert result.completed
    assert result.goodput_mbps > 200
    assert result.loss_ratio == 0.0
