"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    CampaignError,
    ConfigurationError,
    ConnectionClosedError,
    FlowControlError,
    HandshakeTimeoutError,
    ReproError,
    RoutingError,
    SimulationError,
    TransportError,
)


@pytest.mark.parametrize("exc", [
    SimulationError, ConfigurationError, RoutingError, TransportError,
    CampaignError, AnalysisError,
])
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


@pytest.mark.parametrize("exc", [
    ConnectionClosedError, FlowControlError, HandshakeTimeoutError,
])
def test_transport_sub_errors(exc):
    assert issubclass(exc, TransportError)


def test_catching_library_errors_does_not_mask_bugs():
    with pytest.raises(TypeError):
        try:
            raise TypeError("a programming error")
        except ReproError:  # pragma: no cover - must not trigger
            pytest.fail("ReproError must not catch TypeError")
