"""Tests for the named scenario builders and the registry."""

import pytest

from repro.core.campaign import CampaignConfig, quick_config
from repro.disrupt.scenarios import (
    Scenario,
    build_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.disrupt.schedule import DisruptionSchedule
from repro.errors import ConfigurationError, DisruptionError
from repro.leo.scheduling import SLOT_DURATION

BUILTINS = ("clear_sky", "rain_fade", "sat_outage", "gateway_flap",
            "storm")


def test_builtin_names_registered():
    names = scenario_names()
    for name in BUILTINS:
        assert name in names


def test_every_builtin_builds():
    config = quick_config(seed=0)
    for name in BUILTINS:
        scenario = build_scenario(name, config)
        assert scenario.name == name
        assert isinstance(scenario.campaign, DisruptionSchedule)


def test_clear_sky_disrupts_nothing():
    scenario = build_scenario("clear_sky", quick_config(seed=0))
    assert scenario.is_clear
    assert scenario.campaign.is_empty
    assert scenario.experiment_schedule(1234.5).is_empty


def test_sat_outage_overlay_spans_two_slots():
    scenario = build_scenario("sat_outage", quick_config(seed=0))
    (window,) = scenario.overlay
    assert window.kind == "blackout"
    assert window.duration_s >= 2 * SLOT_DURATION


def test_sat_outage_campaign_window_covers_probe_rounds():
    config = quick_config(seed=0)
    scenario = build_scenario("sat_outage", config)
    (window,) = scenario.campaign.windows
    # The blackout must swallow at least two whole probe rounds so the
    # episode detector has a well-defined start and end.
    assert window.duration_s > config.ping_interval_s


def test_experiment_schedule_shifts_to_epoch():
    scenario = build_scenario("sat_outage", quick_config(seed=0))
    base = scenario.overlay[0]
    shifted = scenario.experiment_schedule(1000.0).windows[0]
    assert shifted.start_t == pytest.approx(base.start_t + 1000.0)
    assert shifted.end_t == pytest.approx(base.end_t + 1000.0)


def test_register_duplicate_rejected():
    with pytest.raises(DisruptionError, match="already registered"):
        register_scenario("clear_sky", lambda config: None)


def test_unregister_builtin_rejected():
    with pytest.raises(DisruptionError, match="built-in"):
        unregister_scenario("sat_outage")


def test_register_and_unregister_custom():
    def build(config):
        return Scenario(name="custom",
                        campaign=DisruptionSchedule(name="custom"))

    register_scenario("custom", build)
    try:
        assert "custom" in scenario_names()
        assert build_scenario("custom", quick_config(seed=0)).is_clear
    finally:
        unregister_scenario("custom")
    assert "custom" not in scenario_names()


def test_unknown_scenario_rejected():
    with pytest.raises(DisruptionError, match="unknown scenario"):
        build_scenario("hurricane", quick_config(seed=0))


def test_config_validates_scenario_name():
    with pytest.raises(ConfigurationError):
        CampaignConfig(seed=0, scenario="hurricane")


def test_config_accepts_builtin_scenarios():
    for name in BUILTINS:
        assert CampaignConfig(seed=0, scenario=name).scenario == name
