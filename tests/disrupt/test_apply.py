"""Tests for installing disruption schedules into access networks."""

import pytest

from repro.apps.ping import ping
from repro.disrupt.apply import (
    ScheduledExtraLoss,
    apply_to_access,
    apply_to_scheduler,
)
from repro.disrupt.schedule import DisruptionSchedule, DisruptionWindow
from repro.leo.access import StarlinkAccess
from repro.leo.geometry import GeoPoint
from repro.netsim.loss import CompositeLoss
from repro.rng import make_rng

BRUSSELS = GeoPoint(50.85, 4.35)
ANCHOR = "130.104.1.1"


def _access(seed=0, schedule=None):
    access = StarlinkAccess(seed=seed)
    access.add_remote_host("anchor", ANCHOR, BRUSSELS)
    access.finalize()
    if schedule is not None:
        apply_to_access(access, schedule)
    return access


def test_empty_schedule_is_a_noop():
    access = StarlinkAccess(seed=1)
    loss_up = access.space_link.pipe_ab.loss
    loss_down = access.space_link.pipe_ba.loss
    apply_to_access(access, DisruptionSchedule(name="nothing"))
    assert access.channel.downlink.attenuation is None
    assert access.channel.uplink.attenuation is None
    assert access.space_link.pipe_ab.loss is loss_up
    assert access.space_link.pipe_ba.loss is loss_down


def test_fade_attenuates_capacity_inside_window_only():
    schedule = DisruptionSchedule("fade", (
        DisruptionWindow("fade", 10.0, 20.0, severity=0.5),))
    clear = StarlinkAccess(seed=2)
    faded = StarlinkAccess(seed=2)
    apply_to_access(faded, schedule)
    assert faded.channel.downlink.attenuation is not None
    # The capacity process is a pure function of t, so the attenuated
    # rate is exactly the clear-sky rate times the window factor.
    assert faded.channel.downlink.rate_at(15.0) == pytest.approx(
        0.5 * clear.channel.downlink.rate_at(15.0))
    assert faded.channel.downlink.rate_at(5.0) == pytest.approx(
        clear.channel.downlink.rate_at(5.0))


def test_scheduled_extra_loss_touches_no_rng_when_clear():
    schedule = DisruptionSchedule("fade", (
        DisruptionWindow("fade", 0.0, 10.0, severity=1.0),))
    rng = make_rng(("extra-loss-test", 0))
    extra = ScheduledExtraLoss(schedule, rng)
    state = rng.getstate()
    assert not extra.is_lost(20.0)
    assert rng.getstate() == state  # no draw outside the window
    lost = sum(extra.is_lost(5.0) for _ in range(2000))
    assert 0.25 < lost / 2000 < 0.35  # FADE_LOSS_COEFF * severity


def test_link_blackout_drops_pings_then_recovers():
    schedule = DisruptionSchedule("out", (
        DisruptionWindow("blackout", 0.0, 30.0),))
    access = _access(seed=3, schedule=schedule)
    assert isinstance(access.space_link.pipe_ab.loss, CompositeLoss)
    during = ping(access.client, ANCHOR, count=3)
    assert during.outcome.status == "unreachable"
    assert during.received == 0
    access.sim.run(until=35.0)
    after = ping(access.client, ANCHOR, count=3)
    assert after.outcome.status == "ok"
    assert after.received == 3


def test_route_blackout_blackholes_the_pop_then_restores():
    schedule = DisruptionSchedule("maint", (
        DisruptionWindow("blackout", 0.0, 30.0, target="route"),))
    access = _access(seed=4, schedule=schedule)
    pop = access.net.node("pop")
    assert pop.blackholed  # start_t <= now: withdrawn immediately
    during = ping(access.client, ANCHOR, count=3)
    assert during.outcome.status == "unreachable"
    assert pop.blackhole_drops > 0
    access.sim.run(until=31.0)  # restore event fires at t=30
    assert not pop.blackholed
    after = ping(access.client, ANCHOR, count=3)
    assert after.outcome.status == "ok"


def test_gateway_outage_replans_the_exit_gateway():
    access = StarlinkAccess(seed=5)
    scheduler = access.path_model.scheduler
    in_force = scheduler.snapshot(100.0).gateway.name
    version = scheduler.version
    schedule = DisruptionSchedule("maint", (
        DisruptionWindow("gateway_out", 90.0, 120.0, target=in_force),))
    apply_to_scheduler(scheduler, schedule)
    assert scheduler.version > version
    assert scheduler.snapshot(100.0).gateway.name != in_force
