"""Seeded Markov weather generator and the wet_month scenario."""

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig
from repro.disrupt import (
    DisruptionSchedule,
    DisruptionWindow,
    WeatherParams,
    WeatherScenario,
    build_scenario,
    build_wet_month,
    fade_windows_from_rain,
    generate_rain_trace,
    scenario_names,
    wet_fraction,
)
from repro.errors import DisruptionError
from repro.units import days, minutes


def month_config(seed: int = 0, ping_days: float = 30.0):
    return CampaignConfig(seed=seed, scenario="wet_month",
                          ping_days=ping_days,
                          ping_interval_s=minutes(15))


# -- rain trace -------------------------------------------------------------


def test_trace_is_deterministic_and_spans_duration():
    t1, r1 = generate_rain_trace(7, days(30.0))
    t2, r2 = generate_rain_trace(7, days(30.0))
    assert np.array_equal(t1, t2) and np.array_equal(r1, r2)
    params = WeatherParams()
    assert t1[0] == 0.0
    assert t1.size == int(np.ceil(days(30.0) / params.step_s))
    assert np.all(np.diff(t1) == params.step_s)


def test_different_seeds_give_different_weather():
    _, r1 = generate_rain_trace(0, days(30.0))
    _, r2 = generate_rain_trace(1, days(30.0))
    assert not np.array_equal(r1, r2)


def test_trace_statistics_look_like_weather():
    """Month of temperate weather: some rain, mostly dry, sane rates."""
    _, rates = generate_rain_trace(3, days(30.0))
    frac = wet_fraction(rates)
    assert 0.01 < frac < 0.5
    wet = rates[rates > 0.0]
    params = WeatherParams()
    assert wet.min() >= params.light_rate_mm_h[0]
    assert wet.max() <= params.heavy_rate_mm_h[1]


def test_invalid_durations_and_params_are_rejected():
    with pytest.raises(DisruptionError, match="duration"):
        generate_rain_trace(0, 0.0)
    with pytest.raises(DisruptionError, match="step_s"):
        WeatherParams(step_s=0.0)
    with pytest.raises(DisruptionError, match="exceed"):
        WeatherParams(p_light_to_dry=0.7, p_light_to_heavy=0.5)
    with pytest.raises(DisruptionError, match="max_severity"):
        WeatherParams(max_severity=1.5)


# -- fade windows -----------------------------------------------------------


def test_contiguous_wet_runs_coalesce_into_one_window():
    params = WeatherParams()
    step = params.step_s
    times = np.arange(8) * step
    rates = np.array([0.0, 2.0, 3.0, 0.0, 0.0, 10.0, 0.0, 1.0])
    windows = fade_windows_from_rain(times, rates, params)
    assert [w.kind for w in windows] == ["fade"] * 3
    assert (windows[0].start_t, windows[0].end_t) == (step, 3 * step)
    assert (windows[1].start_t, windows[1].end_t) == (5 * step, 6 * step)
    # A trailing wet run closes at the trace end.
    assert (windows[2].start_t, windows[2].end_t) == (7 * step, 8 * step)


def test_severity_tracks_mean_rain_rate():
    params = WeatherParams()
    step = params.step_s
    times = np.arange(2) * step
    drizzle = fade_windows_from_rain(times, np.array([1.0, 1.0]), params)
    burst = fade_windows_from_rain(times, np.array([25.0, 25.0]), params)
    assert drizzle[0].severity < burst[0].severity
    assert burst[0].severity <= params.max_severity
    assert drizzle[0].severity == pytest.approx(
        params.severity_for_rate(1.0))


def test_dry_trace_yields_no_windows():
    assert fade_windows_from_rain(np.arange(4) * 900.0,
                                  np.zeros(4)) == ()
    assert fade_windows_from_rain(np.array([]), np.array([])) == ()
    with pytest.raises(DisruptionError, match="align"):
        fade_windows_from_rain(np.zeros(3), np.zeros(2))


# -- the wet_month scenario -------------------------------------------------


def test_wet_month_is_registered_and_builds():
    assert "wet_month" in scenario_names()
    scenario = build_scenario("wet_month", month_config())
    assert isinstance(scenario, WeatherScenario)
    assert scenario.name == "wet_month"
    assert not scenario.is_clear
    assert all(w.kind == "fade" for w in scenario.campaign.windows)
    # Windows span the campaign, not one corner of it.
    last_end = max(w.end_t for w in scenario.campaign.windows)
    assert last_end > days(15.0)


def test_wet_month_windows_match_regenerated_trace():
    cfg = month_config(seed=11)
    scenario = build_wet_month(cfg)
    times, rates = generate_rain_trace(cfg.seed, days(cfg.ping_days))
    assert scenario.campaign.windows == fade_windows_from_rain(times,
                                                               rates)


def test_experiment_schedule_sees_overlapping_campaign_weather():
    step = 900.0
    windows = (DisruptionWindow("fade", 10 * step, 14 * step,
                                severity=0.4),)
    scenario = WeatherScenario(
        name="wet_month",
        campaign=DisruptionSchedule("wet_month", windows),
        experiment_horizon_s=2 * step)
    # Dry epoch: canonical empty schedule (clear-sky code path).
    assert scenario.experiment_schedule(0.0).is_empty
    # Epoch inside the storm: window clipped to the horizon and
    # translated to the experiment clock.
    sched = scenario.experiment_schedule(11 * step)
    [w] = sched.windows
    assert (w.start_t, w.end_t) == (0.0, 2 * step)
    assert w.severity == 0.4
    # Epoch straddling the storm's onset keeps the true start.
    [w] = scenario.experiment_schedule(9 * step).windows
    assert (w.start_t, w.end_t) == (step, 2 * step)


def test_weather_campaign_probes_feel_the_rain():
    """End to end: generated fade windows reach the analytic ping
    series and lose probes during the rain.

    Default temperate drizzle is (correctly) too gentle to assert on
    over a cheap micro-campaign, so the trace here is a day of
    continuous heavy rain run through the *same* coalescing +
    scenario plumbing ``wet_month`` uses.
    """
    from repro.disrupt import register_scenario, unregister_scenario
    from repro.exec import PingSeriesUnit

    params = WeatherParams()
    trace_times = np.arange(96) * params.step_s
    windows = fade_windows_from_rain(trace_times, np.full(96, 25.0),
                                     params)
    assert len(windows) == 1 and windows[0].severity > 0.7

    def _soaked(config):
        return WeatherScenario(
            name="soaked",
            campaign=DisruptionSchedule("soaked", windows))

    register_scenario("soaked", _soaked, replace=True)
    try:
        wet_cfg = CampaignConfig(seed=5, scenario="soaked",
                                 ping_days=1.0,
                                 ping_interval_s=minutes(30))
        clear_cfg = CampaignConfig(seed=5, scenario="clear_sky",
                                   ping_days=1.0,
                                   ping_interval_s=minutes(30))
        _, _, wet_rtts, _ = PingSeriesUnit(wet_cfg,
                                           "be-brussels").run()
        _, _, clear_rtts, _ = PingSeriesUnit(clear_cfg,
                                             "be-brussels").run()
        wet_loss = np.isnan(wet_rtts).mean()
        clear_loss = np.isnan(clear_rtts).mean()
        assert wet_loss > clear_loss + 0.05
    finally:
        unregister_scenario("soaked")
