"""Tests for disruption windows and schedules."""

import pytest

from repro.disrupt.schedule import (
    CAPACITY_FLOOR,
    CLEAR_SKY,
    FADE_LOSS_COEFF,
    SURGE_CAPACITY_COEFF,
    DisruptionSchedule,
    DisruptionWindow,
)
from repro.errors import DisruptionError, ReproError


# -- window validation --------------------------------------------------

def test_unknown_kind_rejected():
    with pytest.raises(DisruptionError, match="unknown disruption kind"):
        DisruptionWindow("hailstorm", 0.0, 1.0)


def test_empty_or_inverted_window_rejected():
    with pytest.raises(DisruptionError, match="empty or inverted"):
        DisruptionWindow("fade", 5.0, 5.0)
    with pytest.raises(DisruptionError, match="empty or inverted"):
        DisruptionWindow("fade", 5.0, 4.0)


def test_severity_bounds():
    with pytest.raises(DisruptionError, match="severity"):
        DisruptionWindow("fade", 0.0, 1.0, severity=0.0)
    with pytest.raises(DisruptionError, match="severity"):
        DisruptionWindow("fade", 0.0, 1.0, severity=1.5)
    # Endpoint 1.0 is valid.
    DisruptionWindow("fade", 0.0, 1.0, severity=1.0)


def test_gateway_out_needs_target():
    with pytest.raises(DisruptionError, match="gateway name"):
        DisruptionWindow("gateway_out", 0.0, 1.0)


def test_blackout_target_restricted():
    with pytest.raises(DisruptionError, match="blackout target"):
        DisruptionWindow("blackout", 0.0, 1.0, target="gw-aerzen-de")
    DisruptionWindow("blackout", 0.0, 1.0, target="route")
    DisruptionWindow("blackout", 0.0, 1.0)


def test_disruption_error_is_repro_error():
    with pytest.raises(ReproError):
        DisruptionWindow("nope", 0.0, 1.0)


def test_window_active_is_half_open():
    w = DisruptionWindow("fade", 2.0, 4.0, severity=0.5)
    assert not w.active(1.9)
    assert w.active(2.0)
    assert w.active(3.9)
    assert not w.active(4.0)
    assert w.duration_s == pytest.approx(2.0)


# -- schedule queries ---------------------------------------------------

def test_capacity_factor_fade_and_surge():
    sched = DisruptionSchedule("s", (
        DisruptionWindow("fade", 0.0, 10.0, severity=0.5),
        DisruptionWindow("surge", 5.0, 15.0, severity=1.0),
    ))
    assert sched.capacity_factor(2.0) == pytest.approx(0.5)
    # Overlap multiplies: 0.5 * (1 - 0.6).
    assert sched.capacity_factor(7.0) == pytest.approx(
        0.5 * (1.0 - SURGE_CAPACITY_COEFF))
    assert sched.capacity_factor(12.0) == pytest.approx(
        1.0 - SURGE_CAPACITY_COEFF)
    assert sched.capacity_factor(20.0) == 1.0


def test_capacity_factor_floored():
    sched = DisruptionSchedule("s", (
        DisruptionWindow("fade", 0.0, 10.0, severity=1.0),
        DisruptionWindow("fade", 0.0, 10.0, severity=1.0),
    ))
    assert sched.capacity_factor(1.0) == pytest.approx(CAPACITY_FLOOR)


def test_extra_loss_prob():
    sched = DisruptionSchedule("s", (
        DisruptionWindow("fade", 0.0, 10.0, severity=0.5),))
    assert sched.extra_loss_prob(1.0) == pytest.approx(
        FADE_LOSS_COEFF * 0.5)
    assert sched.extra_loss_prob(11.0) == 0.0


def test_overlapping_fades_compose_loss():
    sched = DisruptionSchedule("s", (
        DisruptionWindow("fade", 0.0, 10.0, severity=1.0),
        DisruptionWindow("fade", 0.0, 10.0, severity=1.0),
    ))
    # 1 - (1 - 0.3)^2, never above 1.
    assert sched.extra_loss_prob(1.0) == pytest.approx(
        1.0 - (1.0 - FADE_LOSS_COEFF) ** 2)


def test_blackout_at_covers_link_and_route():
    sched = DisruptionSchedule("s", (
        DisruptionWindow("blackout", 0.0, 5.0),
        DisruptionWindow("blackout", 10.0, 15.0, target="route"),
    ))
    assert sched.blackout_at(1.0)
    assert sched.blackout_at(12.0)
    assert not sched.blackout_at(7.0)


def test_window_extraction_for_installers():
    sched = DisruptionSchedule("s", (
        DisruptionWindow("blackout", 0.0, 5.0),
        DisruptionWindow("blackout", 10.0, 15.0, target="route"),
        DisruptionWindow("gateway_out", 20.0, 30.0,
                         target="gw-aerzen-de"),
        DisruptionWindow("fade", 0.0, 1.0, severity=0.2),
    ))
    assert sched.link_blackouts() == [(0.0, 5.0)]
    assert sched.route_blackouts() == [(10.0, 15.0)]
    assert sched.gateway_outages() == [("gw-aerzen-de", 20.0, 30.0)]
    assert sched.has_capacity_effects()
    assert sched.has_fades()


def test_shifted_translates_windows():
    sched = DisruptionSchedule("s", (
        DisruptionWindow("blackout", 1.0, 2.0),))
    moved = sched.shifted(100.0)
    assert moved.windows[0].start_t == pytest.approx(101.0)
    assert moved.windows[0].end_t == pytest.approx(102.0)
    # Empty schedules and zero shifts return the same object.
    assert CLEAR_SKY.shifted(50.0) is CLEAR_SKY
    assert sched.shifted(0.0) is sched


def test_overlapping_query():
    w = DisruptionWindow("fade", 5.0, 10.0, severity=0.3)
    sched = DisruptionSchedule("s", (w,))
    assert sched.overlapping(0.0, 6.0) == [w]
    assert sched.overlapping(9.0, 20.0) == [w]
    assert sched.overlapping(10.0, 20.0) == []


def test_clear_sky_is_empty_and_inert():
    assert CLEAR_SKY.is_empty
    assert CLEAR_SKY.capacity_factor(0.0) == 1.0
    assert CLEAR_SKY.extra_loss_prob(0.0) == 0.0
    assert not CLEAR_SKY.blackout_at(0.0)


def test_schedule_accepts_list_windows():
    sched = DisruptionSchedule(
        "s", [DisruptionWindow("fade", 0.0, 1.0, severity=0.1)])
    assert isinstance(sched.windows, tuple)
