"""Property-based tests for the Simulator itself.

Covers the determinism mechanisms every other layer leans on:
tie-breaking by insertion order, cancelled-event skipping, clock
monotonicity across arbitrary ``run(until=...)`` sequences, rejection
of past-scheduling, and the per-call semantics of the
``run_until_idle`` non-convergence backstop.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.netsim.engine import Simulator

times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
# A small value pool forces plenty of exact timestamp collisions.
tie_times = st.sampled_from([0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 7.0])


@given(st.lists(tie_times, min_size=1, max_size=40))
def test_property_ties_break_by_insertion_order(delays):
    sim = Simulator()
    fired = []
    for i, delay in enumerate(delays):
        sim.schedule(delay, fired.append, (delay, i))
    sim.run()
    assert fired == sorted(fired)  # time-major, insertion-minor
    assert len(fired) == len(delays)


@given(st.lists(times, min_size=1, max_size=40), st.data())
def test_property_cancelled_events_are_skipped(delays, data):
    sim = Simulator()
    fired = []
    events = [sim.schedule(d, fired.append, i)
              for i, d in enumerate(delays)]
    to_cancel = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(events) - 1)))
    for i in to_cancel:
        events[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(events))) - to_cancel
    assert sim.events_processed == len(events) - len(to_cancel)


@given(st.lists(times, min_size=1, max_size=20),
       st.lists(times, min_size=1, max_size=20))
def test_property_run_until_clock_is_monotonic(delays, untils):
    """Arbitrary (even decreasing) until sequences never rewind time."""
    sim = Simulator()
    for delay in delays:
        sim.schedule(delay, lambda: None)
    observed = [sim.now]
    for until in untils:
        sim.run(until=until)
        observed.append(sim.now)
    assert observed == sorted(observed)
    assert sim.now >= max(u for u in untils)


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
def test_property_past_scheduling_rejected(start, offset):
    sim = Simulator(start_time=start)
    with pytest.raises(SimulationError):
        sim.at(start - offset, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-offset, lambda: None)
    # the rejected calls must leave no residue
    assert sim.pending_events == 0


@given(st.lists(times, min_size=1, max_size=30))
def test_property_run_until_idle_drains_exactly(delays):
    sim = Simulator()
    for delay in delays:
        sim.schedule(delay, lambda: None)
    sim.run_until_idle()
    assert sim.pending_events == 0
    assert sim.events_processed == len(delays)


# -- run_until_idle regression tests (per-call bound semantics) -----------


def test_run_until_idle_bound_is_per_call_after_earlier_runs():
    """Events from earlier run() calls must not count against the
    backstop bound of a later run_until_idle() call."""
    sim = Simulator()
    for i in range(30):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 30
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    # 30 already processed >= bound 10, but only 5 remain: no raise.
    sim.run_until_idle(max_events=10)
    assert sim.pending_events == 0


def test_run_until_idle_raises_on_true_divergence():
    sim = Simulator()

    def tick():
        sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    with pytest.raises(SimulationError, match="did not converge"):
        sim.run_until_idle(max_events=25)


def test_run_until_idle_divergence_not_masked_by_cancelled_head():
    """A cancelled event sitting at the heap head must not hide a
    diverging chain behind it (the seed bug inspected heap[0] only)."""
    sim = Simulator()

    def tick():
        sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    # Cancelled event timed to be at the heap head when the bound
    # trips: ticks run at t=1..5, stopping with the head at t=5.5.
    sim.at(5.5, lambda: None).cancel()
    with pytest.raises(SimulationError, match="did not converge"):
        sim.run_until_idle(max_events=5)


def test_run_until_idle_tolerates_only_cancelled_leftovers():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i), lambda: None)
    leftover = sim.schedule(50.0, lambda: None)
    leftover.cancel()
    sim.run_until_idle(max_events=3)
    assert sim.events_processed == 3
