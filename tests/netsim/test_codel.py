"""Tests for the CoDel AQM queue."""

import pytest

from repro.errors import ConfigurationError
from repro.netsim import Network
from repro.netsim.queues import CoDelQueue, DropTailQueue
from repro.transport.tcp import TcpServer, tcp_connect
from repro.units import mb, mbps, ms


def test_codel_validation():
    with pytest.raises(ConfigurationError):
        CoDelQueue(target_s=0.0)
    with pytest.raises(ConfigurationError):
        CoDelQueue(interval_s=-1.0)


def test_codel_without_clock_degrades_to_droptail():
    queue = CoDelQueue(capacity_packets=5)
    from repro.netsim.packet import Packet, Protocol

    p = Packet(src="a", dst="b", protocol=Protocol.UDP, size=100)
    assert queue.push(p)
    assert queue.pop() is p
    assert queue.aqm_drops == 0


def _loaded_rtt(queue_factory, until=20.0):
    net = Network()
    net.add_host("client", "10.0.0.1")
    net.add_host("server", "10.0.1.1")
    net.connect("client", "server", rate_ab=mbps(20), rate_ba=mbps(20),
                delay=ms(20), queue_ab=queue_factory(),
                queue_ba=queue_factory())
    net.finalize()
    rtts = []

    def on_conn(conn):
        pass

    TcpServer(net.host("server"), 5001, on_connection=on_conn)
    client = tcp_connect(net.host("client"), "10.0.1.1", 5001)
    client.on_established = lambda: client.send(mb(60))
    net.sim.run(until=until)
    return [s for _, s in client.stats.rtt_samples[len(
        client.stats.rtt_samples) // 2:]]


def test_codel_bounds_standing_queue_delay():
    """The bufferbloat ablation: CoDel keeps loaded RTT near target
    while a deep drop-tail buffer lets it balloon."""
    deep = lambda: DropTailQueue(capacity_bytes=1_500_000)
    codel = lambda: CoDelQueue(capacity_bytes=1_500_000,
                               target_s=0.015, interval_s=0.1)
    droptail_rtts = _loaded_rtt(deep)
    codel_rtts = _loaded_rtt(codel)
    assert droptail_rtts and codel_rtts
    droptail_med = sorted(droptail_rtts)[len(droptail_rtts) // 2]
    codel_med = sorted(codel_rtts)[len(codel_rtts) // 2]
    # Deep FIFO: ~40 ms base + up to 600 ms of queue. CoDel: tens ms.
    assert codel_med < 0.5 * droptail_med
    assert codel_med < 0.12
