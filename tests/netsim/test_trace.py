"""Tests for packet capture (PipeTracer)."""

from repro.netsim import Network
from repro.netsim.loss import BernoulliLoss
from repro.netsim.packet import Packet, Protocol
from repro.netsim.trace import PipeTracer
from repro.units import mbps, ms


def build():
    net = Network()
    net.add_host("a", "10.0.0.1")
    net.add_host("b", "10.0.0.2")
    link = net.connect("a", "b", rate_ab=mbps(10), rate_ba=mbps(10),
                       delay=ms(5))
    net.finalize()
    return net, link


def send(net, n, size=500):
    for _ in range(n):
        net.host("a").send(Packet(
            src="10.0.0.1", dst="10.0.0.2", protocol=Protocol.UDP,
            size=size, dst_port=9))
    net.run()


def test_tracer_records_tx_and_rx():
    net, link = build()
    tracer = PipeTracer(link.pipe_ab)
    send(net, 3)
    assert len(tracer.events("tx")) == 3
    assert len(tracer.events("rx")) == 3
    assert tracer.loss_count() == 0
    rx = tracer.events("rx")[0]
    tx = tracer.events("tx")[0]
    assert rx.time - tx.time >= 0.005
    assert rx.uid == tx.uid
    assert rx.protocol == "udp"


def test_tracer_records_medium_losses():
    net, link = build()
    link.pipe_ab.loss = BernoulliLoss(1.0)
    tracer = PipeTracer(link.pipe_ab)
    send(net, 2)
    assert tracer.loss_count() == 2
    assert tracer.events("loss")[0].info == "medium"
    assert not tracer.events("rx")


def test_tracer_close_stops_capture():
    net, link = build()
    tracer = PipeTracer(link.pipe_ab)
    send(net, 1)
    tracer.close()
    send(net, 5)
    assert len(tracer.events("tx")) == 1
