"""Tests for packet construction and header bookkeeping."""

import pytest

from repro.netsim.packet import IcmpMessage, IcmpType, Packet, Protocol


def test_packet_requires_positive_size():
    with pytest.raises(ValueError):
        Packet(src="a", dst="b", protocol=Protocol.UDP, size=0)


def test_packet_gets_checksum_header():
    packet = Packet(src="10.0.0.1", dst="10.0.0.2",
                    protocol=Protocol.TCP, size=100,
                    src_port=1, dst_port=2)
    assert "checksum" in packet.headers


def test_checksum_changes_with_addressing():
    a = Packet(src="10.0.0.1", dst="10.0.0.2", protocol=Protocol.TCP,
               size=100, src_port=1, dst_port=2)
    b = Packet(src="10.0.0.9", dst="10.0.0.2", protocol=Protocol.TCP,
               size=100, src_port=1, dst_port=2)
    assert a.headers["checksum"] != b.headers["checksum"]


def test_refresh_checksum_after_rewrite():
    packet = Packet(src="10.0.0.1", dst="10.0.0.2",
                    protocol=Protocol.UDP, size=100)
    before = packet.headers["checksum"]
    packet.src = "99.0.0.1"
    packet.refresh_checksum()
    assert packet.headers["checksum"] != before


def test_uids_are_unique():
    uids = {Packet(src="a", dst="b", protocol=Protocol.UDP,
                   size=10).uid for _ in range(100)}
    assert len(uids) == 100


def test_copy_headers_is_snapshot():
    packet = Packet(src="a", dst="b", protocol=Protocol.UDP, size=10)
    snap = packet.copy_headers()
    packet.headers["extra"] = 1
    assert "extra" not in snap


def test_reply_to():
    packet = Packet(src="a", dst="b", protocol=Protocol.UDP, size=10,
                    src_port=42, dst_port=80)
    assert packet.reply_to() == ("a", 42)


def test_icmp_message_defaults():
    message = IcmpMessage(IcmpType.ECHO_REQUEST, ident=5, seq=2)
    assert message.quoted_headers is None
    assert message.origin == ""


def test_checksum_is_lazy_but_identical_after_rewrites():
    """Deferred checksum refresh must equal an eager recompute, even
    across multiple rewrite+refresh rounds without intervening reads."""
    packet = Packet(src="10.0.0.1", dst="10.0.0.2",
                    protocol=Protocol.UDP, size=100,
                    src_port=1, dst_port=2)
    packet.src = "99.0.0.1"
    packet.refresh_checksum()
    packet.dst_port = 8080
    packet.refresh_checksum()   # no header read in between
    eager = Packet(src="99.0.0.1", dst="10.0.0.2",
                   protocol=Protocol.UDP, size=100,
                   src_port=1, dst_port=8080)
    assert packet.headers["checksum"] == eager.headers["checksum"]


def test_constructor_headers_preserve_order_and_gain_checksum():
    packet = Packet(src="a", dst="b", protocol=Protocol.UDP, size=10,
                    headers={"n": 7, "probe_ident": 3})
    assert list(packet.headers) == ["n", "probe_ident", "checksum"]
    assert packet.headers["n"] == 7


def test_constructor_headers_with_checksum_are_trusted():
    """A pre-built headers dict that already carries a checksum (e.g.
    a forwarded packet) is not re-hashed behind the caller's back."""
    packet = Packet(src="a", dst="b", protocol=Protocol.UDP, size=10,
                    headers={"checksum": "sentinel"})
    assert packet.headers["checksum"] == "sentinel"
