"""Tests for hosts, routers, NAT, shapers and route installation."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.netsim.node import DEFAULT_ROUTE
from repro.netsim.packet import (
    IcmpMessage,
    IcmpType,
    Packet,
    Protocol,
)
from repro.netsim.topology import Network


def line_network():
    """client -- r1 -- r2 -- server, 1 ms per hop."""
    net = Network()
    net.add_host("client", "10.1.0.1")
    net.add_router("r1", "10.1.0.254")
    net.add_router("r2", "10.2.0.254")
    net.add_host("server", "10.2.0.1")
    net.connect("client", "r1", delay=0.001)
    net.connect("r1", "r2", delay=0.001)
    net.connect("r2", "server", delay=0.001)
    net.finalize()
    return net


def test_routes_installed_end_to_end():
    net = line_network()
    client = net.host("client")
    assert client.routes["10.2.0.1"] == "r1"
    assert net.node("r1").routes["10.2.0.1"] == "r2"


def test_udp_delivery_across_routers():
    net = line_network()
    received = []
    net.host("server").bind(Protocol.UDP, 5000, received.append)
    packet = Packet(src="10.1.0.1", dst="10.2.0.1", protocol=Protocol.UDP,
                    size=200, src_port=1234, dst_port=5000)
    net.host("client").send(packet)
    net.run()
    assert len(received) == 1
    assert received[0].ttl == 62  # two router hops


def test_unbound_port_drops_silently():
    net = line_network()
    packet = Packet(src="10.1.0.1", dst="10.2.0.1", protocol=Protocol.UDP,
                    size=200, dst_port=9)
    net.host("client").send(packet)
    net.run()  # no exception


def test_icmp_echo_reply_from_host():
    net = line_network()
    replies = []
    client = net.host("client")
    client.bind_icmp(77, replies.append)
    message = IcmpMessage(IcmpType.ECHO_REQUEST, ident=77, seq=1,
                          timestamp=net.sim.now)
    client.send_icmp(IcmpType.ECHO_REQUEST, "10.2.0.1", message)
    net.run()
    assert len(replies) == 1
    reply = replies[0].payload
    assert reply.icmp_type is IcmpType.ECHO_REPLY
    assert reply.seq == 1
    # RTT = 6 hops at 1 ms
    assert net.sim.now == pytest.approx(0.006)


def test_routers_reply_to_ping():
    net = line_network()
    replies = []
    client = net.host("client")
    client.bind_icmp(5, replies.append)
    message = IcmpMessage(IcmpType.ECHO_REQUEST, ident=5, seq=0)
    client.send_icmp(IcmpType.ECHO_REQUEST, "10.1.0.254", message)
    net.run()
    assert len(replies) == 1
    assert replies[0].src == "10.1.0.254"


def test_ttl_expiry_generates_time_exceeded():
    net = line_network()
    errors = []
    client = net.host("client")
    client.bind_icmp(4321, errors.append)
    packet = Packet(src="10.1.0.1", dst="10.2.0.1", protocol=Protocol.UDP,
                    size=60, src_port=4321, dst_port=33434, ttl=1,
                    headers={"probe_ident": 4321})
    client.send(packet)
    net.run()
    assert len(errors) == 1
    message = errors[0].payload
    assert message.icmp_type is IcmpType.TIME_EXCEEDED
    assert message.origin == "10.1.0.254"
    assert message.quoted_headers["dst"] == "10.2.0.1"


def test_loopback_delivery():
    net = line_network()
    received = []
    client = net.host("client")
    client.bind(Protocol.UDP, 8000, received.append)
    packet = Packet(src="10.1.0.1", dst="10.1.0.1", protocol=Protocol.UDP,
                    size=100, dst_port=8000)
    client.send(packet)
    net.run()
    assert len(received) == 1


def test_no_route_raises():
    net = Network()
    net.add_host("lonely", "10.9.0.1")
    with pytest.raises(RoutingError):
        net.host("lonely").send(
            Packet(src="10.9.0.1", dst="10.0.0.9",
                   protocol=Protocol.UDP, size=100))


def test_duplicate_node_name_rejected():
    net = Network()
    net.add_host("a")
    with pytest.raises(ConfigurationError):
        net.add_host("a")


def test_default_route_fallback():
    net = line_network()
    client = net.host("client")
    client.routes.clear()
    client.routes[DEFAULT_ROUTE] = "r1"
    received = []
    net.host("server").bind(Protocol.UDP, 5000, received.append)
    client.send(Packet(src="10.1.0.1", dst="10.2.0.1",
                       protocol=Protocol.UDP, size=100, dst_port=5000))
    net.run()
    assert len(received) == 1


# -- NAT ---------------------------------------------------------------

def nat_network():
    """client -- dishrouter(NAT) -- cgnat(NAT) -- core -- server.

    Mirrors the paper's finding: 192.168.1.1 then 100.64.0.1.
    """
    net = Network()
    net.add_host("client", "192.168.1.10")
    net.add_nat("dish", "192.168.1.1", inside_neighbor="client")
    net.add_nat("cgnat", "100.64.0.1", inside_neighbor="dish")
    net.add_router("core", "62.0.0.254")
    net.add_host("server", "62.0.0.1")
    net.connect("client", "dish", delay=0.001)
    net.connect("dish", "cgnat", delay=0.001)
    net.connect("cgnat", "core", delay=0.001)
    net.connect("core", "server", delay=0.001)
    net.finalize()
    # The NATs hide the client: the outside only routes to NAT addrs.
    return net


def test_nat_rewrites_source_and_checksum():
    net = nat_network()
    received = []
    net.host("server").bind(Protocol.UDP, 5000, received.append)
    packet = Packet(src="192.168.1.10", dst="62.0.0.1",
                    protocol=Protocol.UDP, size=100,
                    src_port=40000, dst_port=5000)
    original_checksum = packet.headers["checksum"]
    net.host("client").send(packet)
    net.run()
    assert len(received) == 1
    seen = received[0]
    assert seen.src == "100.64.0.1"  # outermost NAT address
    assert seen.src_port != 40000
    assert seen.headers["checksum"] != original_checksum


def test_nat_return_path_reaches_client():
    net = nat_network()
    client_received = []
    net.host("client").bind(Protocol.UDP, 40000, client_received.append)

    def reply(request):
        response = Packet(src="62.0.0.1", dst=request.src,
                          protocol=Protocol.UDP, size=100,
                          src_port=5000, dst_port=request.src_port)
        net.host("server").send(response)

    net.host("server").bind(Protocol.UDP, 5000, reply)
    net.host("client").send(
        Packet(src="192.168.1.10", dst="62.0.0.1", protocol=Protocol.UDP,
               size=100, src_port=40000, dst_port=5000))
    net.run()
    assert len(client_received) == 1


def test_ping_through_double_nat():
    net = nat_network()
    replies = []
    client = net.host("client")
    client.bind_icmp(99, replies.append)
    message = IcmpMessage(IcmpType.ECHO_REQUEST, ident=99, seq=3)
    client.send_icmp(IcmpType.ECHO_REQUEST, "62.0.0.1", message)
    net.run()
    assert len(replies) == 1
    assert replies[0].payload.ident == 99
    assert replies[0].payload.seq == 3


def test_traceroute_hops_through_nat_show_nat_addresses():
    net = nat_network()
    client = net.host("client")
    hops = {}

    def on_error(packet):
        hops[packet.payload.origin] = packet.payload

    client.bind_icmp(31337, on_error)
    for ttl in (1, 2, 3):
        client.send(Packet(
            src="192.168.1.10", dst="62.0.0.1", protocol=Protocol.UDP,
            size=60, src_port=31337, dst_port=33434, ttl=ttl,
            headers={"probe_ident": 31337}))
    net.run()
    assert "192.168.1.1" in hops
    assert "100.64.0.1" in hops
    assert "62.0.0.254" in hops


# -- shaper ------------------------------------------------------------

def test_shaper_polices_classified_traffic_only():
    net = Network()
    net.add_host("client", "10.1.0.1")
    net.add_shaper("td", "10.1.0.254",
                   classifier=lambda p: p.headers.get("service"),
                   class_rates={"video": 8_000.0},  # 1 kB/s
                   burst_bytes=2_400)
    net.add_host("server", "10.2.0.1")
    net.connect("client", "td", delay=0.0)
    net.connect("td", "server", delay=0.0)
    net.finalize()
    received = []
    net.host("server").bind(Protocol.UDP, 443, received.append)

    def blast(service):
        for _ in range(50):
            net.host("client").send(Packet(
                src="10.1.0.1", dst="10.2.0.1", protocol=Protocol.UDP,
                size=1200, dst_port=443,
                headers={"service": service} if service else {}))

    blast("video")
    net.run()
    policed = len(received)
    received.clear()
    blast(None)
    net.run()
    unpoliced = len(received)
    assert policed < unpoliced
    assert unpoliced == 50
    assert net.node("td").policed_drops > 0
