"""Cross-cutting netsim behaviours: FIFO guarantee, rate callables,
unreachable handling."""

import pytest

from repro.netsim import Network
from repro.netsim.packet import IcmpMessage, IcmpType, Packet, Protocol
from repro.rng import make_rng
from repro.units import mbps, ms


def test_fifo_preserved_under_random_delay():
    """Random per-packet delay components must never reorder."""
    net = Network()
    net.add_host("a", "10.0.0.1")
    net.add_host("b", "10.0.0.2")
    rng = make_rng("fifo-test")
    net.connect("a", "b", rate_ab=mbps(100),
                delay=lambda now: rng.uniform(0.001, 0.050))
    net.finalize()
    order = []
    net.host("b").bind(Protocol.UDP, 9,
                       lambda pkt: order.append(pkt.uid))
    uids = []
    for _ in range(60):
        packet = Packet(src="10.0.0.1", dst="10.0.0.2",
                        protocol=Protocol.UDP, size=500, dst_port=9)
        uids.append(packet.uid)
        net.host("a").send(packet)
    net.run()
    assert order == uids


def test_callable_rate_changes_serialisation():
    net = Network()
    net.add_host("a", "10.0.0.1")
    net.add_host("b", "10.0.0.2")
    # 1 Mbit/s before t=1, 10 Mbit/s after.
    net.connect("a", "b",
                rate_ab=lambda now: mbps(1) if now < 1.0 else mbps(10))
    net.finalize()
    times = []
    net.host("b").bind(Protocol.UDP, 9,
                       lambda pkt: times.append(net.sim.now))
    host = net.host("a")
    host.send(Packet(src="10.0.0.1", dst="10.0.0.2",
                     protocol=Protocol.UDP, size=1250, dst_port=9))
    net.sim.at(2.0, host.send, Packet(
        src="10.0.0.1", dst="10.0.0.2", protocol=Protocol.UDP,
        size=1250, dst_port=9))
    net.run()
    assert times[0] == pytest.approx(0.010)        # 10 ms at 1 Mbit/s
    assert times[1] == pytest.approx(2.001)        # 1 ms at 10 Mbit/s


def test_unbound_udp_triggers_port_unreachable():
    net = Network()
    net.add_host("a", "10.0.0.1")
    net.add_host("b", "10.0.0.2")
    net.connect("a", "b", delay=ms(1))
    net.finalize()
    errors = []
    net.host("a").bind_icmp(4242, errors.append)
    net.host("a").send(Packet(
        src="10.0.0.1", dst="10.0.0.2", protocol=Protocol.UDP,
        size=60, src_port=4242, dst_port=33999))
    net.run()
    assert len(errors) == 1
    assert errors[0].payload.icmp_type is IcmpType.DEST_UNREACHABLE


def test_bound_udp_does_not_trigger_unreachable():
    net = Network()
    net.add_host("a", "10.0.0.1")
    net.add_host("b", "10.0.0.2")
    net.connect("a", "b", delay=ms(1))
    net.finalize()
    errors = []
    net.host("a").bind_icmp(4242, errors.append)
    net.host("b").bind(Protocol.UDP, 33999, lambda pkt: None)
    net.host("a").send(Packet(
        src="10.0.0.1", dst="10.0.0.2", protocol=Protocol.UDP,
        size=60, src_port=4242, dst_port=33999))
    net.run()
    assert errors == []
