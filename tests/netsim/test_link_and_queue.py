"""Tests for links (serialisation, delay, queueing) and queues."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.netsim.engine import Simulator
from repro.netsim.link import Pipe
from repro.netsim.loss import BernoulliLoss
from repro.netsim.packet import Packet, Protocol
from repro.netsim.queues import DropTailQueue


class SinkNode:
    """Minimal receive target recording arrival times."""

    def __init__(self):
        self.arrivals = []

    def receive(self, packet, pipe):
        self.arrivals.append((packet.uid, packet))

    def __repr__(self):
        return "<Sink>"


def make_packet(size=1500):
    return Packet(src="10.0.0.1", dst="10.0.0.2",
                  protocol=Protocol.UDP, size=size)


def test_infinite_rate_pipe_delivers_after_delay():
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, sink, rate=None, delay=0.05)
    times = []
    pipe.on_deliver = lambda t, p: times.append(t)
    pipe.send(make_packet())
    sim.run()
    assert times == [pytest.approx(0.05)]
    assert len(sink.arrivals) == 1


def test_serialization_delay_matches_rate():
    sim = Simulator()
    sink = SinkNode()
    # 1500 B at 1 Mbit/s = 12 ms serialisation; no propagation.
    pipe = Pipe(sim, sink, rate=1e6, delay=0.0)
    times = []
    pipe.on_deliver = lambda t, p: times.append(t)
    pipe.send(make_packet(1500))
    sim.run()
    assert times == [pytest.approx(0.012)]


def test_back_to_back_packets_queue_behind_each_other():
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, sink, rate=1e6, delay=0.0)
    times = []
    pipe.on_deliver = lambda t, p: times.append(t)
    for _ in range(3):
        pipe.send(make_packet(1500))
    sim.run()
    assert times == [pytest.approx(0.012),
                     pytest.approx(0.024),
                     pytest.approx(0.036)]


def test_queue_overflow_drops_tail():
    sim = Simulator()
    sink = SinkNode()
    queue = DropTailQueue(capacity_packets=2)
    pipe = Pipe(sim, sink, rate=1e6, delay=0.0, queue=queue)
    for _ in range(5):  # 1 in flight + 2 queued + 2 dropped
        pipe.send(make_packet())
    sim.run()
    assert len(sink.arrivals) == 3
    assert queue.drops == 2


def test_queue_capacity_bytes():
    queue = DropTailQueue(capacity_bytes=3000)
    p1, p2, p3 = make_packet(1500), make_packet(1500), make_packet(1500)
    assert queue.push(p1) and queue.push(p2)
    assert not queue.push(p3)
    assert queue.bytes_queued == 3000
    assert queue.pop() is p1
    assert queue.bytes_queued == 1500


def test_queue_rejects_bad_capacity():
    with pytest.raises(ConfigurationError):
        DropTailQueue(capacity_bytes=0)
    with pytest.raises(ConfigurationError):
        DropTailQueue(capacity_packets=-1)


def test_pipe_rejects_bad_rate():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Pipe(sim, SinkNode(), rate=0.0)


def test_medium_loss_drops_packets():
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, sink, rate=None, delay=0.0,
                loss=BernoulliLoss(1.0))
    losses = []
    pipe.on_loss = lambda t, p, cause: losses.append(cause)
    pipe.send(make_packet())
    sim.run()
    assert not sink.arrivals
    assert losses == ["medium"]
    assert pipe.lost_medium == 1


def test_time_varying_delay_callable():
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, sink, rate=None,
                delay=lambda now: 0.010 if now < 1.0 else 0.020)
    times = []
    pipe.on_deliver = lambda t, p: times.append(t)
    pipe.send(make_packet())
    sim.schedule(2.0, pipe.send, make_packet())
    sim.run()
    assert times[0] == pytest.approx(0.010)
    assert times[1] == pytest.approx(2.020)


def test_set_rate_mid_flight_applies_to_next_packet():
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, sink, rate=1e6, delay=0.0)
    times = []
    pipe.on_deliver = lambda t, p: times.append(t)
    pipe.send(make_packet(1500))
    sim.schedule(0.012, pipe.set_rate, 2e6)
    sim.schedule(0.013, pipe.send, make_packet(1500))
    sim.run()
    assert times[0] == pytest.approx(0.012)
    assert times[1] == pytest.approx(0.019)  # 6 ms at 2 Mbit/s


@given(sizes=st.lists(st.integers(min_value=40, max_value=9000),
                      min_size=1, max_size=30),
       rate=st.floats(min_value=1e4, max_value=1e9))
def test_property_fifo_order_and_total_time(sizes, rate):
    """Packets leave in order; completion matches the sum of tx times."""
    sim = Simulator()
    sink = SinkNode()
    pipe = Pipe(sim, sink, rate=rate, delay=0.0)
    for size in sizes:
        pipe.send(make_packet(size))
    sim.run()
    uids = [uid for uid, _ in sink.arrivals]
    assert uids == sorted(uids)
    expected = sum(s * 8.0 / rate for s in sizes)
    assert sim.now == pytest.approx(expected, rel=1e-9)
