"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.netsim.engine import Simulator


def test_clock_starts_at_start_time():
    sim = Simulator(start_time=42.0)
    assert sim.now == 42.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == ["a", "b", "c"]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_at_in_the_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.at(9.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, True)
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, True)
    sim.run(until=2.5)
    assert sim.now == 2.5
    assert fired == []
    sim.run(until=10.0)
    assert fired == [True]
    assert sim.now == 10.0


def test_run_until_with_no_events_advances_clock():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(1.0, second)

    def second():
        seen.append(sim.now)

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [1.0, 2.0]


def test_max_events_bound():
    sim = Simulator()
    count = []

    def tick():
        count.append(1)
        sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run(max_events=10)
    assert len(count) == 10


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_property_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fire_times = []
    for delay in delays:
        sim.schedule(delay, lambda: fire_times.append(sim.now))
    sim.run()
    assert fire_times == sorted(fire_times)
    assert len(fire_times) == len(delays)
    assert sim.events_processed == len(delays)
