"""Per-layer digest equivalence for the simulation fast path.

The fast path's contract is *bit-identical* output: every optional
layer (packet-train link batching with inline fast dispatch, lazy heap
compaction, the LEO per-slot delay cache) must be free to turn off
without changing a single timestamp or byte of any result. These
tests pin that contract per layer:

* a hook-free bottleneck workload where the train/fast-dispatch layer
  actually engages (asserted via the event count, which it *should*
  change -- timestamps, never);
* an end-to-end Starlink ping run crossing handover slots for the LEO
  delay cache;
* random scenarios from :mod:`repro.testing.scenarios` for each layer;
* a miniature full campaign (the same pipeline that produces the
  benchmark's pinned dataset digest), re-digested with each layer
  individually disabled.
"""

import contextlib

import pytest

from repro.apps.ping import PingClient
from repro.core.campaign import Campaign, CampaignConfig
from repro.leo.access import StarlinkAccess, StarlinkPathModel
from repro.leo.geometry import GeoPoint
from repro.netsim.engine import Simulator
from repro.netsim.link import Pipe
from repro.netsim.node import Host
from repro.netsim.packet import Packet, Protocol
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network
from repro.testing.digest import digest_dataset, digest_value
from repro.testing.scenarios import random_scenario, run_and_digest
from repro.units import minutes

#: The process-wide fast-path layer toggles, all True by default.
TOGGLES = {
    "trains": (Pipe, "trains_enabled"),
    "compaction": (Simulator, "compaction_enabled"),
    "leo-cache": (StarlinkPathModel, "base_cache_enabled"),
}


@contextlib.contextmanager
def layer_disabled(name: str):
    cls, attr = TOGGLES[name]
    assert getattr(cls, attr) is True, f"{name} not at its default"
    setattr(cls, attr, False)
    try:
        yield
    finally:
        setattr(cls, attr, True)


# -- link trains + inline fast dispatch -------------------------------------


def _burst_run(queue_capacity, sizes=None, rate=2.1e6,
               burst_gap=0.00213):
    """Bursty one-bottleneck workload with no pipe hooks attached.

    Hook-free pipes with plain drop-tail queues are exactly what the
    train/fast-dispatch layer accelerates, so this is the workload
    where toggling it actually changes the executed event sequence.
    The default sizes, rate and burst spacing are deliberately
    irregular so no cumulative serialisation sum lands float-exactly
    on a send time (exact-tie collisions on bounded queues are the
    fast path's documented caveat, pinned separately below).
    Returns the delivery log (time, marker, size) and the event count.
    """
    if sizes is None:
        sizes = [181 + (i * 131) % 1173 for i in range(90)]
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.connect("a", "b", rate_ab=rate, rate_ba=rate, delay=0.01,
                queue_ab=DropTailQueue(capacity_packets=queue_capacity),
                queue_ba=DropTailQueue(capacity_packets=queue_capacity))
    net.finalize()
    a, b = net.nodes["a"], net.nodes["b"]
    log = []
    b.bind(Protocol.UDP, 7,
           lambda packet: log.append((net.sim.now,
                                      packet.headers["n"],
                                      packet.size)))
    for i, size in enumerate(sizes):
        packet = Packet(src=a.address, dst=b.address,
                        protocol=Protocol.UDP, size=size,
                        src_port=5000, dst_port=7,
                        created_at=0.0, headers={"n": i})
        # Bursts of ten back-to-back sends queue behind the
        # serialiser, so both the idle fast-dispatch path and the
        # multi-packet train path get exercised.
        net.sim.at(burst_gap * (i // 10), a.send, packet)
    net.sim.run_until_idle()
    return log, net.sim.events_processed


# no_global_invariants: watched pipes are train-ineligible by design
# (the checker must observe every per-packet method), so under
# REPRO_INVARIANTS=1 the engagement assertion below would be vacuously
# false. Watched-pipe eligibility is covered by test_invariants.py.
@pytest.mark.no_global_invariants
@pytest.mark.parametrize("capacity", [None, 4, 16])
def test_trains_layer_is_digest_transparent(capacity):
    with layer_disabled("trains"):
        slow_log, slow_events = _burst_run(capacity)
    fast_log, fast_events = _burst_run(capacity)
    assert fast_log == slow_log
    # The layer must change bookkeeping, never results: fewer events
    # proves the fast path actually engaged rather than passing
    # vacuously.
    assert fast_events < slow_events


def test_exact_tie_on_bounded_queue_is_the_documented_caveat():
    """Pin the boundary of the fast-path contract (see link.py).

    With decimal-aligned sizes and rate, a cumulative serialisation
    finish lands float-exactly on a send time (here ``2500 bytes *
    8 / 2e6 == 0.01`` meets the burst at ``0.002 * 5``); the
    per-packet path then breaks the pop-vs-push tie by event seq,
    which the collapsed path cannot reproduce, so *which* packet
    takes the last queue slot may differ. Conservation and counts
    must still hold; per-pipe disabling must restore bit-identity.
    This test exists so that any change to the documented caveat is
    a conscious one.
    """
    sizes = [200 + (i % 7) * 150 for i in range(90)]

    def run(trains_enabled):
        if trains_enabled:
            return _burst_run(16, sizes=sizes, rate=2e6,
                              burst_gap=0.002)
        with layer_disabled("trains"):
            return _burst_run(16, sizes=sizes, rate=2e6,
                              burst_gap=0.002)

    fast_log, _ = run(True)
    slow_log, _ = run(False)
    # Same number of deliveries either way -- one slot, one packet.
    assert len(fast_log) == len(slow_log)
    # Every delivered marker was actually sent, no duplicates.
    for log in (fast_log, slow_log):
        markers = [n for _, n, _ in log]
        assert len(set(markers)) == len(markers)
        assert set(markers) <= set(range(90))


# -- LEO per-slot delay cache -----------------------------------------------


def _starlink_ping_digest(seed: int) -> str:
    access = StarlinkAccess(seed=seed, epoch_t=0.0)
    server = access.add_remote_host("server", "130.104.1.1",
                                    GeoPoint(50.670, 4.615))
    access.finalize()
    pinger = PingClient(access.client, server.address)
    # 0.5 s spacing for 20 s spans one 15 s reconfiguration slot
    # boundary, so the cache is filled, hit and invalidated.
    for i in range(40):
        access.sim.schedule(0.5 * i, pinger.send_probe, i)
    access.sim.run_until_idle()
    result = pinger.result
    return digest_value((result.sent, result.received,
                         tuple(result.rtts)))


def test_leo_cache_layer_is_digest_transparent():
    with layer_disabled("leo-cache"):
        reference = _starlink_ping_digest(3)
    assert _starlink_ping_digest(3) == reference


# -- random scenarios, every layer ------------------------------------------


@pytest.mark.parametrize("name", sorted(TOGGLES))
@pytest.mark.parametrize("seed", [2, 11])
def test_property_scenario_digests_survive_each_layer(name, seed):
    scenario = random_scenario(seed)
    with layer_disabled(name):
        reference = run_and_digest(scenario)
    assert run_and_digest(scenario) == reference


# -- the full campaign pipeline, miniature ----------------------------------


def _mini_campaign_digest() -> str:
    config = CampaignConfig(
        seed=0,
        ping_days=0.5, ping_interval_s=minutes(240),
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=1.0,
        bulk_per_direction=1, bulk_bytes=300_000,
        messages_per_direction=1, messages_duration_s=1.0,
        web_sites=3, web_visits_per_site=1)
    return digest_dataset(Campaign(config).run_all(workers=1))


@pytest.fixture(scope="module")
def mini_campaign_reference():
    return _mini_campaign_digest()


@pytest.mark.parametrize("name", sorted(TOGGLES))
def test_campaign_digest_survives_each_layer(name,
                                             mini_campaign_reference):
    """The dataset pipeline behind the benchmark's pinned digest must
    re-digest identically with each fast-path layer individually off."""
    with layer_disabled(name):
        assert _mini_campaign_digest() == mini_campaign_reference
