"""Tests for the loss processes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.netsim.loss import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    NoLoss,
    OutageSchedule,
)


def test_no_loss_never_drops():
    model = NoLoss()
    assert not any(model.is_lost(t) for t in range(1000))


def test_bernoulli_extremes():
    assert not any(BernoulliLoss(0.0).is_lost(0) for _ in range(100))
    assert all(BernoulliLoss(1.0).is_lost(0) for _ in range(100))


def test_bernoulli_rate_close_to_probability():
    model = BernoulliLoss(0.2, rng=random.Random(7))
    n = 20_000
    losses = sum(model.is_lost(0) for _ in range(n))
    assert losses / n == pytest.approx(0.2, abs=0.01)


def test_bernoulli_rejects_bad_probability():
    with pytest.raises(ConfigurationError):
        BernoulliLoss(1.5)
    with pytest.raises(ConfigurationError):
        BernoulliLoss(-0.1)


def test_gilbert_elliott_is_bursty():
    """Losses cluster: mean burst length ~ 1 / p_bad_to_good."""
    model = GilbertElliottLoss(p_good_to_bad=0.001, p_bad_to_good=0.2,
                               loss_bad=1.0, rng=random.Random(3))
    outcomes = [model.is_lost(0) for _ in range(200_000)]
    bursts = []
    current = 0
    for lost in outcomes:
        if lost:
            current += 1
        elif current:
            bursts.append(current)
            current = 0
    if current:
        bursts.append(current)
    assert bursts, "expected some loss bursts"
    mean_burst = sum(bursts) / len(bursts)
    assert mean_burst == pytest.approx(1 / 0.2, rel=0.25)


def test_gilbert_elliott_stationary_rate():
    model = GilbertElliottLoss(p_good_to_bad=0.01, p_bad_to_good=0.1,
                               loss_bad=1.0, rng=random.Random(5))
    expected = model.stationary_loss_rate()
    assert expected == pytest.approx(0.01 / 0.11, rel=1e-6)
    n = 200_000
    measured = sum(model.is_lost(0) for _ in range(n)) / n
    assert measured == pytest.approx(expected, rel=0.1)


def test_gilbert_elliott_validates_probabilities():
    with pytest.raises(ConfigurationError):
        GilbertElliottLoss(p_good_to_bad=2.0, p_bad_to_good=0.1)


def test_outage_schedule_membership():
    schedule = OutageSchedule([(10.0, 2.0), (100.0, 0.5)])
    assert not schedule.is_lost(9.99)
    assert schedule.is_lost(10.0)
    assert schedule.is_lost(11.9)
    assert not schedule.is_lost(12.0)
    assert schedule.is_lost(100.2)
    assert not schedule.is_lost(101.0)


def test_outage_schedule_poisson_respects_horizon():
    schedule = OutageSchedule.poisson(
        horizon=3600.0, rate_per_hour=10.0, mean_duration=2.0,
        rng=random.Random(11))
    assert all(start < 3600.0 for start, _ in schedule.outages)
    assert schedule.outages  # 10/h over an hour: ~10 expected


def test_outage_schedule_zero_rate_empty():
    schedule = OutageSchedule.poisson(3600.0, 0.0, 2.0)
    assert schedule.outages == []


def test_composite_loss_any_semantics():
    composite = CompositeLoss([NoLoss(), BernoulliLoss(1.0)])
    assert composite.is_lost(0)
    composite = CompositeLoss([NoLoss(), NoLoss()])
    assert not composite.is_lost(0)


def test_composite_advances_all_models():
    """Stateful members advance even when an earlier member drops."""
    ge = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0,
                            loss_bad=1.0, rng=random.Random(1))
    composite = CompositeLoss([BernoulliLoss(1.0), ge])
    composite.is_lost(0)
    assert ge.in_bad_state


@settings(max_examples=25)
@given(p_gb=st.floats(min_value=0.001, max_value=0.5),
       p_bg=st.floats(min_value=0.001, max_value=0.5))
def test_property_ge_stationary_formula(p_gb, p_bg):
    model = GilbertElliottLoss(p_good_to_bad=p_gb, p_bad_to_good=p_bg)
    rate = model.stationary_loss_rate()
    assert 0.0 <= rate <= 1.0
    assert rate == pytest.approx(p_gb / (p_gb + p_bg))
