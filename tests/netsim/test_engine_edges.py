"""Edge-case tests for the simulator engine."""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import Simulator


def test_schedule_rejects_non_finite_delay():
    # Regression: nan < 0 and nan < now are both False, so a NaN
    # delay used to slip past both guards and corrupt heap ordering.
    sim = Simulator()
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(SimulationError):
            sim.schedule(bad, lambda: None)
    assert sim.pending_events == 0


def test_at_rejects_non_finite_time():
    sim = Simulator()
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(SimulationError):
            sim.at(bad, lambda: None)
    assert sim.pending_events == 0


def test_nan_event_does_not_corrupt_ordering():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: fired.append("nan"))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2]


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def inner():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, inner)
    sim.run()
    assert len(errors) == 1


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5
    assert sim.pending_events == 0


def test_cancelled_events_drain_lazily():
    sim = Simulator()
    events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
    for event in events[:5]:
        event.cancel()
    sim.run()
    assert sim.events_processed == 5


def test_run_until_idle_completes():
    sim = Simulator()
    ticks = []

    def tick(n):
        ticks.append(n)
        if n < 20:
            sim.schedule(0.1, tick, n + 1)

    sim.schedule(0.0, tick, 0)
    sim.run_until_idle()
    assert len(ticks) == 21


def test_event_repr_shows_state():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


def test_zero_delay_events_run_in_order():
    sim = Simulator()
    order = []
    sim.schedule(0.0, order.append, 1)
    sim.schedule(0.0, order.append, 2)
    sim.run()
    assert order == [1, 2]
    assert sim.now == 0.0
