"""Edge-case tests for the simulator engine."""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import Simulator


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def inner():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, inner)
    sim.run()
    assert len(errors) == 1


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5
    assert sim.pending_events == 0


def test_cancelled_events_drain_lazily():
    sim = Simulator()
    events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
    for event in events[:5]:
        event.cancel()
    sim.run()
    assert sim.events_processed == 5


def test_run_until_idle_completes():
    sim = Simulator()
    ticks = []

    def tick(n):
        ticks.append(n)
        if n < 20:
            sim.schedule(0.1, tick, n + 1)

    sim.schedule(0.0, tick, 0)
    sim.run_until_idle()
    assert len(ticks) == 21


def test_event_repr_shows_state():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


def test_zero_delay_events_run_in_order():
    sim = Simulator()
    order = []
    sim.schedule(0.0, order.append, 1)
    sim.schedule(0.0, order.append, 2)
    sim.run()
    assert order == [1, 2]
    assert sim.now == 0.0
