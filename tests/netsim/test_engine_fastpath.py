"""Regression tests for the engine fast path.

Pins the behaviours the perf work leaned on: ``post()`` ordering and
validation, the ``pending_events`` / ``live_pending`` split, the exact
clock-clamp semantics of ``run(until=..., max_events=...)``, and lazy
heap compaction being a pure representation change (identical firing
order with it on or off, including when triggered mid-run).
"""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.rng import make_rng

times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


# -- post(): fire-and-forget scheduling -------------------------------------


def test_post_interleaves_with_at_by_submission_order():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, "at-0")
    sim.post(1.0, fired.append, "post-1")
    sim.at(1.0, fired.append, "at-2")
    sim.post(0.5, fired.append, "post-early")
    sim.run()
    assert fired == ["post-early", "at-0", "post-1", "at-2"]
    assert sim.events_processed == 4


def test_post_returns_no_handle():
    sim = Simulator()
    assert sim.post(1.0, lambda: None) is None


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_post_rejects_non_finite_time(bad):
    sim = Simulator()
    with pytest.raises(SimulationError, match="finite"):
        sim.post(bad, lambda: None)
    assert sim.pending_events == 0


def test_post_rejects_past_time():
    sim = Simulator(start_time=5.0)
    with pytest.raises(SimulationError, match="already at"):
        sim.post(4.9, lambda: None)
    assert sim.pending_events == 0


def test_at_rejects_positive_infinity():
    # -inf and NaN were always caught; +inf used to pass the
    # "not in the past" guard on its own.
    sim = Simulator()
    with pytest.raises(SimulationError, match="finite"):
        sim.at(float("inf"), lambda: None)


@given(st.lists(st.tuples(st.booleans(), times), min_size=1, max_size=40))
def test_property_post_and_at_share_one_total_order(plan):
    """A mixed post/at schedule fires in (time, submission) order."""
    sim = Simulator()
    fired = []
    for i, (use_post, time) in enumerate(plan):
        if use_post:
            sim.post(time, fired.append, (time, i))
        else:
            sim.at(time, fired.append, (time, i))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(plan)


# -- pending_events vs live_pending (cancelled-event accounting) ------------


def test_live_pending_excludes_cancelled_events():
    sim = Simulator()
    events = [sim.schedule(1.0, lambda: None) for _ in range(3)]
    events[0].cancel()
    assert sim.pending_events == 3  # heap occupancy, cancelled included
    assert sim.live_pending == 2
    assert sim.stats["live_pending"] == 2
    sim.run()
    assert sim.pending_events == 0
    assert sim.live_pending == 0


def test_run_until_idle_bound_counts_only_live_events():
    """A cancelled backlog must not trip the non-convergence backstop."""
    sim = Simulator()
    live = [sim.schedule(0.1 * i, lambda: None) for i in range(5)]
    doomed = [sim.schedule(1.0, lambda: None) for _ in range(20)]
    for event in doomed:
        event.cancel()
    # Bound equals the live event count: only non-cancelled events may
    # consume it, and nothing pending afterwards means no error.
    sim.run_until_idle(max_events=len(live))
    assert sim.events_processed == len(live)


# -- run(until=..., max_events=...) clamp semantics -------------------------


def test_bound_with_live_work_left_keeps_clock_at_last_event():
    sim = Simulator()
    for t in (1.0, 2.0, 3.0):
        sim.at(t, lambda: None)
    sim.run(until=10.0, max_events=1)
    # Events at 2.0 and 3.0 still lie before ``until``: the clock must
    # not jump over them.
    assert sim.now == 1.0
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_bound_with_next_event_beyond_until_clamps_to_until():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.at(20.0, lambda: None)
    sim.run(until=10.0, max_events=1)
    assert sim.now == 10.0
    assert sim.live_pending == 1  # the t=20 event survived untouched


def test_bound_with_drained_heap_clamps_to_until():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.run(until=10.0, max_events=1)
    assert sim.now == 10.0


def test_bound_skips_cancelled_head_before_clamping():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None).cancel()
    sim.at(20.0, lambda: None)
    sim.run(until=10.0, max_events=1)
    # The cancelled t=2.0 entry is dead, so no live work remains
    # before ``until`` and the clock clamps.
    assert sim.now == 10.0


def test_cancelled_events_do_not_consume_the_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.at(float(i), fired.append, i).cancel()
    sim.at(100.0, fired.append, "live")
    sim.run(max_events=1)
    assert fired == ["live"]


@given(st.lists(times, min_size=1, max_size=25),
       st.lists(st.tuples(times, st.integers(min_value=0, max_value=5)),
                min_size=1, max_size=10))
def test_property_bounded_until_runs_never_skip_live_work(delays, calls):
    """Random (until, max_events) sequences: monotonic clock, and the
    clock never passes an unexecuted live event."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, fired.append, delay)
    previous = sim.now
    for until, bound in calls:
        sim.run(until=until, max_events=bound)
        assert sim.now >= previous
        previous = sim.now
        unfired = Counter(delays) - Counter(fired)
        if unfired:
            assert sim.now <= min(unfired)
    sim.run()
    assert sorted(fired) == sorted(delays)


# -- lazy heap compaction is a pure representation change -------------------


def _cancel_program(compaction_enabled: bool, seed: int = 0):
    """Schedule many events, cancel most up-front, run to idle."""
    sim = Simulator()
    sim.compaction_enabled = compaction_enabled
    fired = []
    events = [sim.schedule(i * 1e-3, fired.append, i) for i in range(200)]
    rng = make_rng(("compaction-program", seed))
    for i in rng.sample(range(200), 150):
        events[i].cancel()
    sim.run()
    return fired, sim.now, sim.events_processed, sim.compactions


def test_forced_compaction_is_transparent():
    fired_on, now_on, n_on, compactions_on = _cancel_program(True)
    fired_off, now_off, n_off, compactions_off = _cancel_program(False)
    assert fired_on == fired_off
    assert (now_on, n_on) == (now_off, n_off)
    assert compactions_on >= 1      # the sweep actually ran...
    assert compactions_off == 0     # ...and the toggle actually gates it


def test_mid_run_compaction_keeps_heap_alias_valid():
    """Cancelling from inside a callback may compact the heap while
    ``run`` holds a local alias to it; the survivors must still fire."""
    sim = Simulator()
    fired = []
    victims = [sim.schedule(1.0 + i * 1e-3, fired.append, i)
               for i in range(100)]

    def cancel_most():
        for event in victims[10:]:
            event.cancel()

    sim.schedule(0.5, cancel_most)
    sim.run()
    assert fired == list(range(10))
    assert sim.compactions >= 1


@given(st.integers(min_value=0, max_value=1000), st.data())
def test_property_compaction_preserves_firing_order(seed, data):
    """Random schedule + random cancel set: identical firing sequence,
    clock and processed-event count with compaction on and off."""
    rng = make_rng(("compaction-prop", seed))
    n = 80 + rng.randrange(120)
    times_ = [rng.random() * 10.0 for _ in range(n)]
    cancel = data.draw(st.sets(
        st.integers(min_value=0, max_value=n - 1), max_size=n))

    def execute(compaction_enabled):
        sim = Simulator()
        sim.compaction_enabled = compaction_enabled
        fired = []
        events = [sim.schedule(t, fired.append, i)
                  for i, t in enumerate(times_)]
        for i in cancel:
            events[i].cancel()
        sim.run()
        return fired, sim.now, sim.events_processed

    assert execute(True) == execute(False)
