"""Edge-case tests for the text renderers."""

import numpy as np

from repro.core.loss_events import LossCell
from repro.core.reporting import (
    render_figure2,
    render_figure4,
    render_table2,
)
from repro.core.rtt import Fig2Series


def test_render_table2_with_missing_cells():
    cells = {("h3", "down"): LossCell("h3", "down", packets=100,
                                      lost=2)}
    text = render_table2(cells)
    assert "2.00%" in text
    assert "-" in text    # absent cells render as dashes


def test_render_figure4_without_loss_events():
    cells = {("messages", "down"): LossCell("messages", "down",
                                            packets=100, lost=0)}
    text = render_figure4(cells)
    assert "no loss events" in text


def test_render_figure4_with_outages():
    cell = LossCell("h3", "down", packets=1000, lost=10,
                    burst_lengths=[1, 2, 3, 120],
                    event_durations_s=[0.0001, 0.001, 0.1, 1.6])
    text = render_figure4({("h3", "down"): cell})
    assert ">1s events=1" in text
    assert cell.outage_count() == 1


def test_render_figure2_subsamples_rows():
    bins = [{"t": i * 21600.0, "count": 10, "min": 40.0, "p25": 45.0,
             "p50": 50.0, "p75": 55.0, "p95": 60.0}
            for i in range(600)]
    series = Fig2Series(bins=bins, hour_of_day_pvalue=0.5,
                        hourly_median_range_ms=1.2,
                        median_before_step_ms=50.0,
                        median_after_step_ms=47.0)
    text = render_figure2(series, max_rows=20)
    # Down-sampled but framed.
    assert text.count("\n") < 45
    assert "improvement 3.0 ms" in text
    assert "flat" in text


def test_loss_cell_nan_durations_when_empty():
    cell = LossCell("h3", "up", packets=10, lost=0)
    percentiles = cell.duration_percentiles_ms()
    assert all(np.isnan(v) for v in percentiles.values())
    assert np.isnan(cell.single_packet_fraction())
    assert cell.loss_ratio == 0.0


def test_loss_cell_zero_packets():
    cell = LossCell("h3", "up", packets=0, lost=0)
    assert cell.loss_ratio == 0.0
