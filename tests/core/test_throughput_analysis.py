"""Focused tests for the throughput analysis (Fig. 5 pipeline)."""

import numpy as np
import pytest

from repro.apps.bulk import BulkTransferResult
from repro.core.datasets import BulkSample, SpeedtestSample
from repro.core.throughput import figure5_throughput, session_comparison


def _bulk(direction, session, mbps_value):
    payload = 10_000_000
    result = BulkTransferResult(
        direction=direction, payload_bytes=payload, completed=True,
        duration_s=payload * 8 / (mbps_value * 1e6),
        handshake_rtt_s=0.05)
    return BulkSample(t=0.0, direction=direction, session=session,
                      result=result)


def test_incomplete_transfers_excluded():
    broken = BulkTransferResult(direction="down",
                                payload_bytes=10_000_000,
                                completed=False, duration_s=None,
                                handshake_rtt_s=None)
    samples = [BulkSample(0.0, "down", 2, broken),
               _bulk("down", 2, 130.0)]
    tests = [SpeedtestSample(0, "starlink", "down", 180.0)]
    series = figure5_throughput(tests, samples)
    h3 = next(s for s in series if s.label == "starlink-h3")
    assert h3.stats.count == 1
    assert h3.stats.median == pytest.approx(130.0, rel=0.01)


def test_session_filter():
    samples = [_bulk("down", 1, 100.0), _bulk("down", 2, 150.0)]
    tests = [SpeedtestSample(0, "starlink", "down", 180.0)]
    series_s2 = figure5_throughput(tests, samples, h3_session=2)
    h3 = next(s for s in series_s2 if s.label == "starlink-h3")
    assert h3.stats.median == pytest.approx(150.0, rel=0.01)
    series_s1 = figure5_throughput(tests, samples, h3_session=1)
    h3 = next(s for s in series_s1 if s.label == "starlink-h3")
    assert h3.stats.median == pytest.approx(100.0, rel=0.01)


def test_session_comparison_medians():
    samples = [_bulk("down", 1, 100.0), _bulk("down", 1, 110.0),
               _bulk("down", 2, 150.0), _bulk("up", 2, 17.0)]
    comparison = session_comparison(samples)
    assert comparison["down"][1] == pytest.approx(105.0, rel=0.01)
    assert comparison["down"][2] == pytest.approx(150.0, rel=0.01)
    assert 1 not in comparison["up"]


def test_goodput_property_roundtrip():
    sample = _bulk("down", 2, 144.0)
    assert sample.result.goodput_mbps == pytest.approx(144.0, rel=0.01)
    assert sample.result.loss_ratio == 0.0
