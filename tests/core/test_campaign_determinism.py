"""End-to-end determinism: same seed, same campaign, same digests.

Runs a trimmed campaign twice from scratch and compares dataset
digests bit-for-bit. This exercises the whole seed -> RNG -> engine
chain: the analytic ping path, the packet-level netsim engine (QUIC
messages over a freshly built Starlink access per run), and the
browser model. Speed tests and bulk transfers ride the same chain but
are left out to keep the test fast; the scenario replay tests cover
raw engine traces at higher volume.
"""

from repro.core.campaign import Campaign, CampaignConfig
from repro.testing.digest import digest_value
from repro.units import minutes


def trimmed_config(seed: int) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=2.0, ping_interval_s=minutes(120),
        messages_per_direction=1, messages_duration_s=3.0,
        web_sites=6, web_visits_per_site=1)


def run_once(seed: int) -> dict:
    campaign = Campaign(trimmed_config(seed))
    return {
        "pings": digest_value(campaign.run_pings()),
        "messages": digest_value(campaign.run_messages()),
        "web": digest_value(campaign.run_web()),
    }


def test_campaign_replay_is_bit_identical():
    first = run_once(seed=0)
    second = run_once(seed=0)
    assert first == second


def test_campaign_digest_depends_on_seed():
    assert run_once(seed=0) != run_once(seed=1)
