"""Campaign-level mobile-terminal mode: digest neutrality of the
stationary default, attribution reconciliation of moving runs, and
crash-resume identity mid-drive."""

import pytest

from repro.core.availability import EPISODE_CAUSES
from repro.core.campaign import Campaign, CampaignConfig, quick_config
from repro.errors import UnitExecutionError
from repro.exec import Journal
from repro.testing.chaos import ChaosSpec, wrap_units
from repro.testing.digest import digest_value
from repro.units import days, minutes

#: Digest of ``Campaign(quick_config(0)).run_pings()`` before mobile-
#: terminal mode existed. The stationary default must reproduce it
#: byte for byte — mobility is strictly additive.
CLASSIC_QUICK_PINGS_DIGEST = (
    "52511c7f0911799a38f90c61c5b16e6ddbe8fcb68551d3df6e9ac93e57676fa8")


def drive_config(seed: int = 1, **overrides) -> CampaignConfig:
    """Dense-ping drive: probes every 45 s inside a ~29 min drive."""
    values = dict(
        seed=seed,
        ping_days=0.02, ping_interval_s=45.0, pings_per_round=2,
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1,
        trajectory="drive", speed_kmh=90.0,
        obstruction="urban_canyon", drive_duration_s=1728.0)
    values.update(overrides)
    return CampaignConfig(**values)


def test_stationary_default_reproduces_classic_digest():
    data = Campaign(quick_config(0)).run_pings()
    assert digest_value(data) == CLASSIC_QUICK_PINGS_DIGEST


def test_speed_zero_drive_is_byte_identical_to_classic():
    classic = Campaign(quick_config(0)).run_pings()
    parked = Campaign(quick_config(0))
    parked.config.trajectory = "drive"
    parked.config.speed_kmh = 0.0
    parked = Campaign(parked.config)
    assert digest_value(parked.run_pings()) \
        == digest_value(classic) == CLASSIC_QUICK_PINGS_DIGEST


def test_moving_run_is_deterministic_across_exec_modes():
    serial = Campaign(drive_config()).run_pings()
    parallel = Campaign(drive_config()).run_pings(workers=2)
    sharded = Campaign(drive_config()).run_pings(workers=2,
                                                 granularity=4)
    assert digest_value(serial) == digest_value(parallel) \
        == digest_value(sharded)


def test_moving_run_differs_from_parked_run():
    moving = Campaign(drive_config(speed_kmh=90.0)).run_pings()
    parked = Campaign(drive_config(speed_kmh=0.0,
                                   obstruction="none")).run_pings()
    assert digest_value(moving) != digest_value(parked)


def test_mobility_report_reconciles_with_availability():
    campaign = Campaign(drive_config())
    pings = campaign.run_pings()
    from repro.core.datasets import CampaignDatasets

    report = campaign.mobility_report(CampaignDatasets(pings=pings))
    episodes = report.availability.episodes
    # Conservation: every pooled episode is attributed exactly once.
    assert len(report.episode_causes) == len(episodes)
    assert sum(report.cause_counts.values()) == len(episodes)
    for cause in report.episode_causes:
        assert cause in EPISODE_CAUSES
    # A 29-minute urban-canyon drive sheds probes and churns paths.
    assert episodes, "urban canyon drive produced no outage episodes"
    assert report.cause_counts["obstruction"] > 0
    assert report.handover_count > 0
    assert report.churn_per_hour > 0
    assert "service" in report.handover_kind_counts


def test_mobility_window_bounded_by_campaign_length():
    short = Campaign(drive_config(ping_days=0.01))
    assert short.mobility_window_s() == pytest.approx(days(0.01))
    long = Campaign(drive_config(ping_days=10.0))
    assert long.mobility_window_s() == pytest.approx(1728.0)


def test_kill_mid_drive_then_resume_is_digest_identical(tmp_path):
    """SIGKILL a worker mid-drive; the resumed dataset is identical
    even with obstruction shadowing active across the boundary."""
    reference = Campaign(drive_config()).run_pings()

    campaign = Campaign(drive_config())
    units = campaign.ping_units()
    wrapped = wrap_units(units, tmp_path / "chaos",
                         {units[2].label: ChaosSpec(kill_on=(1,))})
    campaign.ping_units = lambda: wrapped
    journal = Journal(tmp_path / "journal")
    with pytest.raises(UnitExecutionError, match="WorkerCrash"):
        campaign.run_pings(workers=2, journal=journal)
    assert 0 < len(journal) < len(units)

    resumed = Campaign(drive_config()).run_pings(journal=journal)
    assert digest_value(resumed) == digest_value(reference)


def test_interrupt_during_obstructed_handover_then_resume(tmp_path):
    """Ctrl-C at the unit covering an obstructed handover window;
    the fresh-process resume reproduces the uninterrupted digest."""
    reference = Campaign(drive_config(seed=2)).run_pings()

    campaign = Campaign(drive_config(seed=2))
    units = campaign.ping_units()
    wrapped = wrap_units(units, tmp_path / "chaos",
                         {units[0].label: ChaosSpec(interrupt_on=(1,))})
    campaign.ping_units = lambda: wrapped
    journal = Journal(tmp_path / "journal")
    with pytest.raises(KeyboardInterrupt):
        campaign.run_pings(journal=journal)

    resumed = Campaign(drive_config(seed=2)).run_pings(journal=journal)
    assert digest_value(resumed) == digest_value(reference)


def test_full_campaign_terminates_under_drive_and_obstruction():
    """Every measurement app and both transports complete under a
    moving terminal with urban-canyon shadowing."""
    campaign = Campaign(drive_config(
        ping_days=0.01, ping_interval_s=minutes(2)))
    data = campaign.run_all()
    assert data.pings.series
    assert data.speedtests and data.bulk and data.messages
    assert data.visits
