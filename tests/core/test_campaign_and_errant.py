"""End-to-end tests for the campaign orchestrator and ERRANT fitting.

These use the tiny ``quick_config`` so the whole file stays within a
couple of minutes of wall clock.
"""

import numpy as np
import pytest

from repro.core.campaign import (
    Campaign,
    CampaignConfig,
    quick_config,
)
from repro.core.datasets import CampaignDatasets
from repro.errant import fit_profile, fit_profiles, to_json, \
    to_netem_commands
from repro.errors import AnalysisError
from repro.units import minutes


@pytest.fixture(scope="module")
def campaign():
    return Campaign(quick_config(seed=11))


@pytest.fixture(scope="module")
def pings(campaign):
    return campaign.run_pings()


def test_ping_campaign_covers_all_anchors(campaign, pings):
    assert len(pings.series) == 11
    assert pings.total_samples > 1000
    for name in pings.anchors():
        rtts = pings.rtts(name)
        assert rtts.size > 0
        assert np.all(rtts > 0.01)
        assert np.all(rtts < 1.0)


def test_ping_campaign_has_losses(campaign):
    config = CampaignConfig(seed=1, ping_days=2.0,
                            ping_interval_s=minutes(30),
                            ping_loss_prob=0.5)
    lossy = Campaign(config).run_pings()
    ratios = [lossy.loss_ratio(a) for a in lossy.anchors()]
    assert 0.3 <= np.mean(ratios) <= 0.7


def test_ping_campaign_deterministic():
    a = Campaign(quick_config(seed=5)).run_pings()
    b = Campaign(quick_config(seed=5)).run_pings()
    ta, va = a.series["be-brussels"]
    tb, vb = b.series["be-brussels"]
    assert np.array_equal(ta, tb)
    assert np.allclose(va, vb, equal_nan=True)


def test_web_campaign_produces_three_networks(campaign):
    visits = campaign.run_web()
    networks = {v.network for v in visits}
    assert networks == {"starlink", "satcom", "wired"}
    assert all(v.onload_s > 0 for v in visits)
    assert all(v.speed_index_s <= v.onload_s for v in visits)


def test_messages_campaign(campaign):
    samples = campaign.run_messages()
    directions = {s.direction for s in samples}
    assert directions == {"down", "up"}
    for sample in samples:
        assert sample.result.messages_completed > 0


# -- errant ----------------------------------------------------------------

def test_fit_profile_from_raw_samples():
    rtts = np.full(100, 0.050)
    down = np.array([170.0, 180.0, 190.0])
    up = np.array([16.0, 17.0])
    profile = fit_profile("starlink", rtts, down, up,
                          loss_ratio=0.004)
    assert profile.delay_ms == pytest.approx(25.0)
    assert profile.rate_down_mbps == 180.0
    assert profile.rate_up_mbps == pytest.approx(16.5)
    assert profile.loss_pct == pytest.approx(0.4)


def test_fit_profile_needs_samples():
    with pytest.raises(AnalysisError):
        fit_profile("x", np.array([]), np.array([1.0]),
                    np.array([1.0]), 0.0)


def test_fit_profiles_from_campaign_data(pings):
    from repro.core.datasets import SpeedtestSample

    data = CampaignDatasets(pings=pings, speedtests=[
        SpeedtestSample(0, "starlink", "down", 175.0),
        SpeedtestSample(0, "starlink", "up", 17.0),
        SpeedtestSample(0, "satcom", "down", 82.0),
        SpeedtestSample(0, "satcom", "up", 4.5),
    ])
    profiles = fit_profiles(data, message_loss_ratio=0.004)
    assert set(profiles) == {"starlink", "satcom"}
    assert 15 <= profiles["starlink"].delay_ms <= 35
    assert profiles["satcom"].delay_ms > 250

    dump = to_json(profiles)
    assert '"starlink"' in dump and '"rate_down_mbps": 175.0' in dump

    commands = to_netem_commands(profiles["starlink"], "eth1")
    assert len(commands) == 4
    assert all(cmd.startswith("tc qdisc") for cmd in commands)
    assert any("loss 0.40%" in cmd for cmd in commands)
