"""Tests for the availability analysis (outages, recovery, bursts)."""

import math

import numpy as np
import pytest

from repro.apps.bulk import BulkTransferResult
from repro.apps.outcome import MeasurementOutcome
from repro.core.availability import (
    AvailabilityReport,
    OutageEpisode,
    analyze_availability,
    detect_outage_episodes,
    outcome_tally,
    slot_aligned_bursts,
)
from repro.core.datasets import (
    BulkSample,
    CampaignDatasets,
    PingDataset,
    SpeedtestSample,
)
from repro.core.reporting import render_availability


def _pings(outage_rounds=(3, 4), lone_loss_at=None, rounds=10,
           interval=60.0):
    """Two-anchor dataset: both anchors lose the outage rounds."""
    times = np.arange(rounds) * interval
    series = {}
    for anchor in ("a", "b"):
        rtts = np.full(rounds, 0.04)
        for r in outage_rounds:
            rtts[r] = math.nan
        if lone_loss_at is not None and anchor == "a":
            rtts[lone_loss_at] = math.nan
        series[anchor] = (times.copy(), rtts)
    return PingDataset(series=series)


def test_detects_one_episode_with_recovery():
    pings = _pings(outage_rounds=(3, 4), lone_loss_at=7)
    episodes = detect_outage_episodes(pings)
    assert len(episodes) == 1
    (ep,) = episodes
    assert ep.start_t == pytest.approx(180.0)
    assert ep.end_t == pytest.approx(240.0)
    assert ep.recovery_t == pytest.approx(300.0)
    assert ep.probes_lost == 4
    assert ep.recovered
    assert ep.time_to_recovery_s == pytest.approx(120.0)
    assert ep.duration_s == pytest.approx(60.0)


def test_uncorrelated_loss_is_not_an_outage():
    # One anchor losing a probe (50% < 90% threshold) is background
    # loss, not an episode.
    pings = _pings(outage_rounds=(), lone_loss_at=5)
    assert detect_outage_episodes(pings) == []


def test_min_probes_lost_filters_blips():
    pings = _pings(outage_rounds=(3,))
    assert len(detect_outage_episodes(pings, min_probes_lost=2)) == 1
    assert detect_outage_episodes(pings, min_probes_lost=3) == []


def test_unrecovered_outage_at_campaign_end():
    pings = _pings(outage_rounds=(8, 9))
    (ep,) = detect_outage_episodes(pings)
    assert not ep.recovered
    assert math.isnan(ep.recovery_t)
    assert math.isnan(ep.time_to_recovery_s)


def test_separate_outages_split_into_episodes():
    pings = _pings(outage_rounds=(1, 2, 6, 7))
    episodes = detect_outage_episodes(pings)
    assert len(episodes) == 2
    assert episodes[0].end_t < episodes[1].start_t


def test_empty_dataset_has_no_episodes():
    assert detect_outage_episodes(PingDataset()) == []


def _bulk_sample(times):
    result = BulkTransferResult(
        direction="down", payload_bytes=1_000, completed=True,
        duration_s=1.0, handshake_rtt_s=0.04,
        loss_event_times_s=list(times))
    return BulkSample(t=0.0, direction="down", session=1, result=result)


def test_slot_aligned_burst_attribution():
    # 15.2 and 29.8 are within 1 s of a 15 s boundary; 7.3 is not.
    aligned, total = slot_aligned_bursts([_bulk_sample([15.2, 7.3,
                                                        29.8])])
    assert (aligned, total) == (2, 3)


def test_slot_alignment_tolerance():
    aligned, total = slot_aligned_bursts([_bulk_sample([16.5])],
                                         tolerance_s=2.0)
    assert (aligned, total) == (1, 1)


def test_outcome_tally_spans_every_dataset():
    pings = _pings(outage_rounds=())
    pings.outcomes["a"] = MeasurementOutcome()
    pings.outcomes["b"] = MeasurementOutcome("unreachable")
    data = CampaignDatasets(
        pings=pings,
        speedtests=[SpeedtestSample(
            t=0.0, network="starlink", direction="down",
            throughput_mbps=100.0,
            outcome=MeasurementOutcome("stalled"))],
        bulk=[_bulk_sample([])])
    tally = outcome_tally(data)
    assert tally == {"ok": 2, "unreachable": 1, "stalled": 1}


def test_analyze_availability_assembles_report():
    data = CampaignDatasets(pings=_pings(outage_rounds=(3, 4)),
                            bulk=[_bulk_sample([15.2, 7.3])])
    report = analyze_availability(data, scenario="sat_outage")
    assert report.scenario == "sat_outage"
    assert report.total_probes == 20
    assert report.lost_probes == 4
    assert report.availability_pct == pytest.approx(80.0)
    assert len(report.episodes) == 1
    assert report.total_bursts == 2
    assert report.slot_aligned_bursts == 1
    assert report.slot_aligned_fraction == pytest.approx(0.5)


def test_availability_pct_of_empty_report_is_100():
    report = AvailabilityReport(scenario="clear_sky", total_probes=0,
                                lost_probes=0)
    assert report.availability_pct == 100.0
    assert report.slot_aligned_fraction == 0.0


def test_render_availability_mentions_the_essentials():
    data = CampaignDatasets(pings=_pings(outage_rounds=(3, 4)),
                            bulk=[_bulk_sample([15.2])])
    data.pings.outcomes["a"] = MeasurementOutcome()
    text = render_availability(
        analyze_availability(data, scenario="sat_outage"))
    assert "scenario 'sat_outage'" in text
    assert "availability 80.00%" in text
    assert "outage episodes: 1" in text
    assert "start t+180s" in text
    assert "recovered at t+300s" in text
    assert "time to recovery 120s" in text
    assert "reallocation boundary" in text
    assert "ok=2" in text  # the ping anchor plus the bulk sample


def test_render_availability_handles_clear_sky():
    report = AvailabilityReport(scenario="clear_sky",
                                total_probes=100, lost_probes=0)
    text = render_availability(report)
    assert "outage episodes: none" in text
    assert "loss bursts (bulk): none recorded" in text


def test_unrecovered_episode_renders_as_not_recovered():
    report = AvailabilityReport(
        scenario="storm", total_probes=10, lost_probes=4,
        episodes=[OutageEpisode(start_t=60.0, end_t=120.0,
                                recovery_t=math.nan, probes_lost=4)])
    assert "NOT recovered" in render_availability(report)


# ----------------------------------------------------- hardening pins
# Empty / all-NaN series and degenerate campaign clocks must never
# crash the analysis or leak NaN into a rendered report.


def _data(series):
    return CampaignDatasets(pings=PingDataset(series=series))


def test_nan_probe_times_do_not_poison_episodes():
    """Regression: a NaN probe timestamp used to pool like a real
    instant, yielding episodes with ``end_t``/``duration_s`` of NaN
    (and a NaN-contaminated ``max_gap_s``).  NaN-timed probes are now
    dropped from pooling; their losses still count toward totals."""
    times = np.array([0.0, math.nan, 60.0])
    rtts = np.full(3, math.nan)
    data = _data({"a": (times, rtts.copy()), "b": (times, rtts.copy())})
    episodes = detect_outage_episodes(data.pings)
    assert len(episodes) == 1
    (ep,) = episodes
    assert math.isfinite(ep.start_t) and math.isfinite(ep.end_t)
    assert ep.start_t == 0.0 and ep.end_t == 60.0
    assert ep.probes_lost == 4     # the two NaN-timed probes excluded
    report = analyze_availability(data)
    assert report.total_probes == 6   # ... but still counted as sent
    assert report.lost_probes == 6
    assert "nan" not in render_availability(report)


def test_empty_and_zero_probe_datasets_are_flagged_not_100pct():
    for series in ({}, {"a": (np.array([]), np.array([]))}):
        report = analyze_availability(_data(series))
        assert report.total_probes == 0
        assert report.episodes == []
        text = render_availability(report)
        assert "availability undetermined" in text
        assert "100.00%" not in text


def test_all_nan_series_is_one_unrecovered_episode_not_a_crash():
    times = np.arange(10) * 60.0
    data = _data({"a": (times, np.full(10, math.nan)),
                  "b": (times, np.full(10, math.nan))})
    report = analyze_availability(data)
    assert report.availability_pct == 0.0
    assert len(report.episodes) == 1
    assert not report.episodes[0].recovered
    text = render_availability(report)
    assert "availability 0.00%" in text
    assert "NOT recovered" in text


def test_single_instant_campaign_is_handled():
    """Zero-duration clock: one probe round, everything lost."""
    data = _data({"a": (np.array([0.0]), np.array([math.nan])),
                  "b": (np.array([0.0]), np.array([math.nan]))})
    report = analyze_availability(data)
    assert report.availability_pct == 0.0
    assert len(report.episodes) == 1
    assert report.episodes[0].duration_s == 0.0
    render_availability(report)   # must not raise


# ------------------------------------------- streaming accumulator

from repro.core.availability import AvailabilityAccumulator  # noqa: E402


def test_accumulator_matches_batch_analysis():
    data = CampaignDatasets(pings=_pings(outage_rounds=(3, 4),
                                         lone_loss_at=7),
                            bulk=[_bulk_sample([15.2, 7.3])])
    data.pings.outcomes["a"] = MeasurementOutcome()
    batch = analyze_availability(data, scenario="sat_outage")

    acc = AvailabilityAccumulator()
    # Feed each anchor in two arbitrary chunks, out of order.
    for name in reversed(data.pings.anchors()):
        times, rtts = data.pings.series[name]
        acc.add_probes(times[4:], rtts[4:])
        acc.add_probes(times[:4], rtts[:4])
    acc.add_outcome("ok")   # pings outcome
    acc.add_outcome("ok")   # bulk outcome
    acc.add_burst_times([15.2, 7.3])
    streamed = acc.report(scenario="sat_outage")

    assert streamed == batch


def test_accumulator_merge_is_order_independent():
    pings = _pings(outage_rounds=(2, 3, 7))
    parts = []
    for name in pings.anchors():
        times, rtts = pings.series[name]
        for lo, hi in ((0, 3), (3, 10)):
            p = AvailabilityAccumulator()
            p.add_probes(times[lo:hi], rtts[lo:hi])
            parts.append(p)
    merged_a = AvailabilityAccumulator()
    for p in parts:
        merged_a.merge(p)
    merged_b = AvailabilityAccumulator()
    for p in reversed(parts):
        merged_b.merge(p)
    assert merged_a.report() == merged_b.report()
    assert (merged_a.episodes()
            == detect_outage_episodes(pings))
    assert merged_a.resident_instants == 10


# -- handover-episode attribution (mobile-terminal mode) ----------------

from repro.core.availability import (  # noqa: E402
    EPISODE_CAUSES,
    MobilityReport,
    analyze_mobility,
    attribute_episodes,
)
from repro.core.reporting import render_mobility  # noqa: E402
from repro.leo.scheduling import HandoverEvent  # noqa: E402


def _episode(start_t, end_t=None, recovery_t=None):
    end_t = start_t + 60.0 if end_t is None else end_t
    recovery_t = end_t + 60.0 if recovery_t is None else recovery_t
    return OutageEpisode(start_t=start_t, end_t=end_t,
                         recovery_t=recovery_t, probes_lost=4)


def test_attribution_priority_obstruction_over_weather_over_handover():
    ep = _episode(100.0)
    windows = [(90.0, 130.0)]
    assert attribute_episodes([ep], handover_times=[95.0],
                              obstruction_windows=windows,
                              disruption_windows=windows) \
        == ["obstruction"]
    assert attribute_episodes([ep], handover_times=[95.0],
                              disruption_windows=windows) \
        == ["weather"]
    assert attribute_episodes([ep], handover_times=[95.0]) \
        == ["handover"]
    assert attribute_episodes([ep]) == ["unknown"]


def test_handover_attribution_window_is_one_sided():
    ep = _episode(100.0)
    # A handover after the episode started cannot have caused it.
    assert attribute_episodes([ep], handover_times=[101.0]) \
        == ["unknown"]
    # ... and one too far in the past did not either.
    assert attribute_episodes([ep], handover_times=[100.0 - 17.0]) \
        == ["unknown"]
    assert attribute_episodes([ep], handover_times=[100.0 - 16.0]) \
        == ["handover"]


def test_attribution_conserves_episode_count():
    episodes = [_episode(t) for t in (0.0, 300.0, 600.0, 900.0)]
    causes = attribute_episodes(
        episodes,
        handover_times=[290.0],
        obstruction_windows=[(0.0, 30.0)],
        disruption_windows=[(580.0, 700.0)])
    assert len(causes) == len(episodes)
    assert causes == ["obstruction", "handover", "weather",
                      "unknown"]
    for cause in causes:
        assert cause in EPISODE_CAUSES


def test_analyze_mobility_reconciles_with_availability():
    pings = _pings(outage_rounds=(3, 4), rounds=20)
    report = analyze_availability(CampaignDatasets(pings=pings))
    events = [HandoverEvent(t=165.0, kinds=frozenset({"satellite"})),
              HandoverEvent(t=300.0,
                            kinds=frozenset({"gateway", "pop"}))]
    mob = analyze_mobility(report, events, window_s=1200.0,
                           trajectory="drive", obstruction="none")
    assert isinstance(mob, MobilityReport)
    assert mob.handover_count == 2
    assert mob.handover_kind_counts == {"satellite": 1, "gateway": 1,
                                        "pop": 1}
    assert mob.churn_per_hour == pytest.approx(2 * 3600.0 / 1200.0)
    assert sum(mob.cause_counts.values()) \
        == len(report.episodes) == 1
    assert mob.episode_causes == ["handover"]
    assert mob.mean_time_to_recovery_s == pytest.approx(120.0)


def test_analyze_mobility_empty_window_zero_churn():
    pings = _pings(outage_rounds=())
    report = analyze_availability(CampaignDatasets(pings=pings))
    mob = analyze_mobility(report, [], window_s=0.0)
    assert mob.churn_per_hour == 0.0
    assert math.isnan(mob.mean_time_to_recovery_s)
    assert sum(mob.cause_counts.values()) == 0


def test_render_mobility_mentions_the_essentials():
    pings = _pings(outage_rounds=(3, 4), rounds=20)
    report = analyze_availability(CampaignDatasets(pings=pings))
    events = [HandoverEvent(t=165.0, kinds=frozenset({"satellite"}))]
    text = render_mobility(analyze_mobility(
        report, events, window_s=1200.0, trajectory="drive",
        obstruction="roadside"))
    assert "'drive'" in text
    assert "'roadside'" in text
    assert "satellite=1" in text
    assert "cause handover" in text
    assert "mean time to recovery" in text


def test_render_mobility_handles_quiet_campaign():
    pings = _pings(outage_rounds=())
    report = analyze_availability(CampaignDatasets(pings=pings))
    text = render_mobility(analyze_mobility(report, [],
                                            window_s=600.0))
    assert "path changes: none" in text
    assert "outage episodes: none" in text
