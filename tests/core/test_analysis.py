"""Tests for the analysis modules on synthetic datasets."""

import numpy as np
import pytest

from repro.apps.bulk import BulkTransferResult
from repro.apps.messages import MessagesResult
from repro.core.browsing import figure6_browsing, speedup_vs_satcom
from repro.core.datasets import (
    BulkSample,
    MessagesSample,
    PingDataset,
    SpeedtestSample,
    VisitSample,
)
from repro.core.loss_events import table2_loss_ratios
from repro.core.reporting import (
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_table1,
    render_table2,
)
from repro.core.rtt import (
    figure1_rtt_boxplots,
    figure2_timeseries,
    figure3_loaded_rtt,
)
from repro.core.throughput import figure5_throughput, session_comparison
from repro.errors import AnalysisError
from repro.rng import make_rng
from repro.units import days


def synthetic_pings(step_drop_ms=3.0) -> PingDataset:
    rng = make_rng("synthetic-pings")
    ds = PingDataset()
    times = np.arange(0, days(120), 1800.0)
    step_t = days(58)
    for name in ("be-brussels", "nuremberg-1", "amsterdam-1",
                 "singapore"):
        base = 270.0 if name == "singapore" else 50.0
        rtts = []
        for t in times:
            value = base + rng.gauss(0, 4)
            if t >= step_t and name != "singapore":
                value -= step_drop_ms
            rtts.append(max(20.0, value) / 1e3)
        ds.series[name] = (times.copy(), np.array(rtts))
    return ds


def bulk_result(direction, lost, total, rtt_med) -> BulkSample:
    rng = make_rng(("bulk", direction, lost))
    result = BulkTransferResult(
        direction=direction, payload_bytes=10_000_000, completed=True,
        duration_s=1.0, handshake_rtt_s=0.05,
        rtt_samples=[(i * 0.01, max(0.02, rng.gauss(rtt_med, 0.01)))
                     for i in range(500)],
        receiver_lost_pns=list(range(lost)),
        receiver_max_pn=total - 1,
        loss_burst_lengths=[1] * (lost // 2) + [2] * (lost // 4),
        loss_event_durations_s=[0.0001] * (lost // 2))
    return BulkSample(t=days(130), direction=direction, session=2,
                      result=result)


def test_figure1_and_rendering():
    rows = figure1_rtt_boxplots(synthetic_pings())
    assert len(rows) == 4
    text = render_figure1(rows)
    assert "singapore" in text
    sg = next(r for r in rows if r.anchor == "singapore")
    assert 260 <= sg.stats.median <= 280


def test_figure2_detects_step_and_flat_hours():
    series = figure2_timeseries(synthetic_pings(step_drop_ms=4.0),
                                step_t=days(58))
    assert series.step_improvement_ms == pytest.approx(4.0, abs=1.5)
    assert series.hour_of_day_pvalue > 0.01
    assert "Mood" in render_figure2(series)


def test_figure3_loaded_rtt_stats():
    bulk = [bulk_result("down", 10, 1000, 0.095),
            bulk_result("up", 10, 1000, 0.104)]
    msgs = [MessagesSample(t=0, direction="down", result=MessagesResult(
        direction="down", messages_sent=10, messages_completed=10,
        rtt_samples=[(0.0, 0.05)] * 100))]
    stats = figure3_loaded_rtt(bulk, msgs)
    by_key = {(s.workload, s.direction): s for s in stats}
    assert by_key[("h3", "down")].median == pytest.approx(95, abs=3)
    assert by_key[("h3", "up")].median == pytest.approx(104, abs=3)
    assert ("messages", "down") in by_key
    assert "h3" in render_figure3(stats)


def test_table2_aggregation():
    bulk = [bulk_result("down", 16, 1000, 0.09),
            bulk_result("down", 15, 1000, 0.09),
            bulk_result("up", 20, 1000, 0.10)]
    cells = table2_loss_ratios(bulk, [])
    down = cells[("h3", "down")]
    assert down.packets == 2000
    assert down.lost == 31
    assert down.loss_ratio == pytest.approx(0.0155)
    assert cells[("h3", "up")].loss_ratio == pytest.approx(0.02)
    text = render_table2(cells)
    assert "1.5" in text  # 1.55 %
    assert "Figure 4" in render_figure4(cells)


def test_loss_cell_statistics():
    bulk = [bulk_result("down", 40, 1000, 0.09)]
    cell = table2_loss_ratios(bulk, [])[("h3", "down")]
    assert cell.single_packet_fraction() == pytest.approx(20 / 30)
    assert cell.burst_cdf().at(1) == pytest.approx(20 / 30)
    assert cell.outage_count() == 0
    assert cell.duration_percentiles_ms()[50] == pytest.approx(0.1)


def test_figure5_series_and_sessions():
    tests = ([SpeedtestSample(0, "starlink", "down", v)
              for v in (150, 170, 180, 200)]
             + [SpeedtestSample(0, "starlink", "up", v)
                for v in (15, 17, 19)]
             + [SpeedtestSample(0, "satcom", "down", v)
                for v in (78, 82, 85)]
             + [SpeedtestSample(0, "satcom", "up", v)
                for v in (4, 4.5, 5)])
    bulk = [bulk_result("down", 5, 1000, 0.09)]
    bulk[0].result.duration_s = 10_000_000 * 8 / 130e6
    series = figure5_throughput(tests, bulk)
    labels = {(s.label, s.direction) for s in series}
    assert ("starlink-speedtest", "down") in labels
    assert ("starlink-h3", "down") in labels
    text = render_figure5(series)
    assert "starlink-speedtest" in text

    session1 = BulkSample(t=0, direction="down", session=1,
                          result=bulk[0].result)
    comparison = session_comparison(bulk + [session1])
    assert 1 in comparison["down"] and 2 in comparison["down"]


def test_figure5_empty_rejected():
    with pytest.raises(AnalysisError):
        figure5_throughput([], [])


def test_figure6_and_speedup():
    visits = []
    for network, onload in (("starlink", 2.1), ("satcom", 10.9),
                            ("wired", 1.2)):
        for i in range(30):
            visits.append(VisitSample(
                t=0, network=network, url=f"https://s{i}/",
                onload_s=onload + 0.01 * i,
                speed_index_s=0.8 * onload,
                n_connections=15, connection_setup_s=[0.167]))
    stats = figure6_browsing(visits)
    assert stats["starlink"].visits == 30
    assert stats["satcom"].onload.median > 10
    speedup = speedup_vs_satcom(stats)
    assert 0.7 <= speedup <= 0.85
    assert "starlink" in render_figure6(stats)


def test_figure6_empty_rejected():
    with pytest.raises(AnalysisError):
        figure6_browsing([])


def test_table1_render_contains_rows():
    from repro.core.datasets import CampaignDatasets

    data = CampaignDatasets(pings=synthetic_pings())
    text = render_table1(data.table1_rows())
    assert "Latency" in text
    assert "QUIC messages" in text
