"""Tests for the anchor set and the dataset containers."""

import numpy as np
import pytest

from repro.core.anchors import (
    ANCHORS,
    anchor_by_name,
    european_anchors,
)
from repro.core.datasets import (
    CampaignDatasets,
    PingDataset,
    SpeedtestSample,
    VisitSample,
)
from repro.leo.geometry import GeoPoint


def test_eleven_anchors_with_paper_regions():
    assert len(ANCHORS) == 11
    regions = [a.region for a in ANCHORS]
    assert regions.count("BE") == 4
    assert regions.count("NL") == 2
    assert regions.count("DE") == 2
    assert regions.count("US-E") == 1
    assert regions.count("US-W") == 1
    assert regions.count("SG") == 1


def test_anchor_lookup():
    assert anchor_by_name("singapore").region == "SG"
    with pytest.raises(KeyError):
        anchor_by_name("mars")


def test_european_set():
    assert len(european_anchors()) == 8


def test_remote_rtt_scales_with_distance():
    frankfurt = GeoPoint(50.11, 8.68)
    nearby = anchor_by_name("nuremberg-1").remote_rtt_from(frankfurt)
    far = anchor_by_name("fremont").remote_rtt_from(frankfurt)
    farther = anchor_by_name("singapore").remote_rtt_from(frankfurt)
    assert nearby < far < farther
    assert nearby < 0.01           # a few ms
    assert 0.10 <= far <= 0.20     # transatlantic+transcontinental
    assert 0.18 <= farther <= 0.30


def _tiny_pings() -> PingDataset:
    ds = PingDataset()
    t = np.arange(10.0)
    ds.series["be-brussels"] = (t, np.full(10, 0.05))
    rtts = np.full(10, 0.045)
    rtts[3] = np.nan
    ds.series["nuremberg-1"] = (t, rtts)
    ds.series["singapore"] = (t, np.full(10, 0.27))
    return ds


def test_ping_dataset_accessors():
    ds = _tiny_pings()
    assert ds.total_samples == 30
    assert ds.rtts("nuremberg-1").size == 9
    assert ds.loss_ratio("nuremberg-1") == pytest.approx(0.1)
    assert ds.loss_ratio("be-brussels") == 0.0
    assert ds.anchors()[0] == "be-brussels"  # canonical order


def test_ping_dataset_european_pool_excludes_asia():
    ds = _tiny_pings()
    times, rtts = ds.european()
    assert times.size == 19           # 10 BE + 9 DE, no SG
    assert np.all(rtts < 0.1)
    assert np.all(np.diff(times) >= 0)


def test_table1_rows():
    data = CampaignDatasets(
        pings=_tiny_pings(),
        speedtests=[SpeedtestSample(0, "starlink", "down", 180.0),
                    SpeedtestSample(0, "satcom", "down", 80.0)],
        visits=[VisitSample(0, "starlink", "https://a/", 2.0, 1.7, 15)])
    rows = data.table1_rows()
    by_measure = {r["measure"]: r for r in rows}
    assert by_measure["Latency"]["samples"] == 30
    assert by_measure["Latency"]["target"] == "3 Anchors"
    assert "satcom" in by_measure["Throughput"]["network"]
    assert by_measure["Web Browsing"]["target"] == "1 Websites"
