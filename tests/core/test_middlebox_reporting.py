"""Tests for the Sec. 3.5 study runner and text reporting."""

import pytest

from repro.core.middlebox import run_middlebox_study
from repro.core.reporting import render_middlebox


@pytest.fixture(scope="module")
def reports():
    return run_middlebox_study(seed=5)


def test_starlink_findings_match_paper(reports):
    starlink = reports["starlink"]
    assert starlink.traceroute_hops[:2] == ["192.168.1.1",
                                            "100.64.0.1"]
    assert starlink.nat_addresses == ["192.168.1.1", "100.64.0.1"]
    assert starlink.nat_levels == 2
    assert not starlink.pep_detected
    assert starlink.checksum_only_mutation
    assert not starlink.traffic_discrimination


def test_satcom_has_pep(reports):
    satcom = reports["satcom"]
    assert satcom.pep_detected
    assert not satcom.traffic_discrimination
    assert satcom.traceroute_hops[0] == "192.168.100.1"


def test_wehe_pairs_recorded(reports):
    for report in reports.values():
        assert len(report.wehe) == 2
        for pair in report.wehe:
            assert pair.original.packets_sent == \
                pair.randomized.packets_sent


def test_render_middlebox(reports):
    text = render_middlebox(reports)
    assert "starlink" in text
    assert "100.64.0.1" in text
    assert "PEP detected: False" in text
    assert "PEP detected: True" in text
