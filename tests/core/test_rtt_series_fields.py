"""Tests for the Fig. 2 series fields added for flatness reporting."""

import numpy as np

from repro.core.datasets import PingDataset
from repro.core.rtt import figure2_timeseries
from repro.units import days


def _flat_pings(hour_bump_ms: float = 0.0) -> PingDataset:
    rng = np.random.default_rng(3)
    ds = PingDataset()
    times = np.arange(0, days(30), 900.0)
    hours = (times % 86400) // 3600
    rtts = 0.050 + rng.normal(0, 0.004, size=times.size)
    rtts = rtts + (hours == 12) * hour_bump_ms / 1e3
    ds.series["be-brussels"] = (times, rtts)
    return ds


def test_hourly_range_small_when_flat():
    series = figure2_timeseries(_flat_pings(), step_t=days(10))
    assert series.hourly_median_range_ms < 3.0
    assert series.hour_of_day_pvalue > 0.01


def test_hourly_range_detects_real_diurnal_bump():
    series = figure2_timeseries(_flat_pings(hour_bump_ms=12.0),
                                step_t=days(10))
    assert series.hourly_median_range_ms > 8.0
    assert series.hour_of_day_pvalue < 0.01
