"""Parallel-vs-serial equivalence of the campaign executor.

The executor contract (``repro.exec``) is that ``workers=N`` is pure
acceleration: the merged :class:`CampaignDatasets` must be
bit-identical to the serial run for the same seed. These tests pin
that with the trace-digest machinery from PR 1, plus the ordering and
timing behaviour of :func:`execute_units` itself.

The end-to-end digest test runs every unit kind once at the smallest
scale that still exercises the packet-level engine, so it stays
within CI budgets while covering the whole seed -> RNG -> engine
chain across a process boundary.
"""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.errors import ConfigurationError
from repro.exec import (
    PingSeriesUnit,
    default_workers,
    execute_units,
    render_timings,
    timing_breakdown,
)
from repro.testing.digest import digest_dataset, digest_value
from repro.units import minutes


def tiny_config(seed: int = 0) -> CampaignConfig:
    return CampaignConfig(
        seed=seed,
        ping_days=0.5, ping_interval_s=minutes(120),
        speedtest_epochs=1, speedtest_measure_s=0.5,
        speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
        bulk_per_direction=1, bulk_bytes=500_000,
        messages_per_direction=1, messages_duration_s=1.5,
        web_sites=3, web_visits_per_site=1)


def test_parallel_run_all_is_bit_identical_to_serial():
    serial = Campaign(tiny_config(seed=0)).run_all(workers=1)
    parallel = Campaign(tiny_config(seed=0)).run_all(workers=4)
    assert digest_dataset(serial) == digest_dataset(parallel)


def test_parallel_pings_match_serial_per_anchor():
    serial = Campaign(tiny_config(seed=3)).run_pings(workers=1)
    parallel = Campaign(tiny_config(seed=3)).run_pings(workers=2)
    assert serial.anchors() == parallel.anchors()
    for name in serial.anchors():
        assert digest_value(serial.series[name]) \
            == digest_value(parallel.series[name])


def test_unit_decomposition_covers_table1():
    campaign = Campaign(tiny_config())
    assert len(campaign.ping_units()) == 11
    # epochs x networks x directions / sessions x epochs x directions.
    assert len(campaign.speedtest_units()) == 1 * 2 * 2
    assert len(campaign.bulk_units()) == 2 * 1 * 2
    assert len(campaign.messages_units()) == 1 * 2
    assert len(campaign.web_units()) == 3 * 1
    labels = [u.label for u in campaign.speedtest_units()]
    assert len(labels) == len(set(labels))


def test_execute_units_preserves_input_order():
    campaign = Campaign(tiny_config())
    units = campaign.ping_units()
    payloads = execute_units(units, workers=2)
    assert [name for name, _, _, _ in payloads] \
        == [u.anchor_name for u in units]


def test_execute_units_records_timings_in_order():
    campaign = Campaign(tiny_config())
    units = campaign.ping_units()[:3]
    timings = []
    execute_units(units, workers=1, timings=timings)
    assert [t.label for t in timings] == [u.label for u in units]
    assert all(t.elapsed_s >= 0.0 for t in timings)
    assert all(t.kind == "ping" for t in timings)
    rows = timing_breakdown(timings)
    assert rows[0]["kind"] == "ping" and rows[0]["units"] == 3
    assert "ping" in render_timings(timings)


def test_execute_units_rejects_bad_worker_count():
    with pytest.raises(ConfigurationError):
        execute_units([], workers=0)
    assert execute_units([], workers=2) == []


def test_units_are_picklable():
    import pickle

    campaign = Campaign(tiny_config())
    for unit in (campaign.ping_units()[:1] + campaign.speedtest_units()
                 + campaign.bulk_units() + campaign.messages_units()
                 + campaign.web_units()):
        clone = pickle.loads(pickle.dumps(unit))
        assert clone == unit


def test_default_workers_is_positive():
    assert default_workers() >= 1


def test_sharded_run_all_is_bit_identical_to_serial():
    serial = Campaign(tiny_config(seed=0)).run_all(workers=1)
    sharded = Campaign(tiny_config(seed=0)).run_all(workers=4,
                                                    granularity=4)
    assert digest_dataset(serial) == digest_dataset(sharded)


def test_config_granularity_is_the_default():
    config = tiny_config(seed=2)
    config.shard_granularity = 3
    from_config = Campaign(config).run_pings(workers=2)
    explicit = Campaign(tiny_config(seed=2)).run_pings(workers=2,
                                                       granularity=3)
    serial = Campaign(tiny_config(seed=2)).run_pings(workers=1)
    assert digest_value(from_config.series) \
        == digest_value(explicit.series) == digest_value(serial.series)


def test_config_rejects_bad_granularity():
    with pytest.raises(ConfigurationError, match="shard_granularity"):
        CampaignConfig(shard_granularity=0)


def test_ping_unit_is_self_contained():
    # A unit run in isolation must equal the same unit run through
    # the campaign (shared caches are pure memos, order-independent).
    unit = PingSeriesUnit(tiny_config(seed=5), "be-brussels")
    alone = digest_value(unit.run())
    via_campaign = Campaign(tiny_config(seed=5)).run_pings()
    assert alone == digest_value(
        ("be-brussels",) + via_campaign.series["be-brussels"]
        + (via_campaign.outcomes["be-brussels"],))
