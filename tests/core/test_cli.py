"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_fig1_artefact(capsys):
    assert main(["fig1", "--ping-days", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "singapore" in out


def test_fig2_artefact(capsys):
    assert main(["fig2", "--ping-days", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "Mood" in out


def test_fig6_artefact(capsys):
    assert main(["fig6", "--sites", "8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "starlink" in out
    assert "satcom" in out


def test_middlebox_artefact(capsys):
    assert main(["middlebox"]) == 0
    out = capsys.readouterr().out
    assert "100.64.0.1" in out


def test_unknown_artefact_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_workers_and_timing_flags(capsys):
    assert main(["fig1", "--ping-days", "1", "--workers", "2",
                 "--timing"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "Unit timing" in out
    assert "ping" in out


def test_workers_flag_rejects_zero():
    with pytest.raises(SystemExit):
        main(["fig1", "--workers", "0"])
