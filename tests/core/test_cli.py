"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_fig1_artefact(capsys):
    assert main(["fig1", "--ping-days", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "singapore" in out


def test_fig2_artefact(capsys):
    assert main(["fig2", "--ping-days", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "Mood" in out


def test_fig6_artefact(capsys):
    assert main(["fig6", "--sites", "8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "starlink" in out
    assert "satcom" in out


def test_middlebox_artefact(capsys):
    assert main(["middlebox"]) == 0
    out = capsys.readouterr().out
    assert "100.64.0.1" in out


def test_unknown_artefact_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_workers_and_timing_flags(capsys):
    assert main(["fig1", "--ping-days", "1", "--workers", "2",
                 "--timing"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "Unit timing" in out
    assert "ping" in out


def test_workers_flag_rejects_zero():
    with pytest.raises(SystemExit):
        main(["fig1", "--workers", "0"])


def test_journal_flag_checkpoints_and_resumes(tmp_path, capsys):
    journal_dir = tmp_path / "journal"
    assert main(["fig1", "--ping-days", "1",
                 "--journal", str(journal_dir)]) == 0
    first = capsys.readouterr().out
    assert "Figure 1" in first
    entries = len(list(journal_dir.glob("*.pkl")))
    assert entries == 11            # one checkpoint per ping unit
    # A resumed run loads every unit from the journal and says so.
    assert main(["fig1", "--ping-days", "1",
                 "--journal", str(journal_dir), "--resume"]) == 0
    second = capsys.readouterr().out
    assert f"journal: resuming, {entries} unit(s)" in second
    assert first.splitlines()[-3:] == second.splitlines()[-3:]


def test_nonempty_journal_requires_resume_flag(tmp_path, capsys):
    journal_dir = tmp_path / "journal"
    assert main(["fig1", "--ping-days", "1",
                 "--journal", str(journal_dir)]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["fig1", "--ping-days", "1",
              "--journal", str(journal_dir)])


def test_resume_without_journal_rejected():
    with pytest.raises(SystemExit):
        main(["fig1", "--resume"])


def test_negative_retries_rejected():
    with pytest.raises(SystemExit):
        main(["fig1", "--retries", "-1"])


def test_unknown_failure_policy_rejected():
    with pytest.raises(SystemExit):
        main(["fig1", "--failure-policy", "retry-forever"])
