"""Tests for campaign scheduling helpers and window constants."""

import pytest

from repro.core.campaign import (
    Campaign,
    SESSION2_END,
    SESSION2_START,
    THROUGHPUT_END,
    THROUGHPUT_START,
    quick_config,
)
from repro.leo.events import CampaignTimeline


def test_measurement_windows_are_ordered():
    assert 0 < THROUGHPUT_START < THROUGHPUT_END
    assert THROUGHPUT_END < SESSION2_START < SESSION2_END


def test_session2_starts_after_capacity_step():
    timeline = CampaignTimeline()
    assert SESSION2_START >= timeline.capacity_step_t


def test_epochs_are_seeded_and_in_window():
    campaign = Campaign(quick_config(seed=3))
    epochs = campaign._epochs(10, THROUGHPUT_START, THROUGHPUT_END,
                              "unit")
    assert len(epochs) == 10
    assert epochs == sorted(epochs)
    assert all(THROUGHPUT_START <= e <= THROUGHPUT_END
               for e in epochs)
    again = campaign._epochs(10, THROUGHPUT_START, THROUGHPUT_END,
                             "unit")
    assert epochs == again
    other = campaign._epochs(10, THROUGHPUT_START, THROUGHPUT_END,
                             "different-label")
    assert epochs != other


def test_shared_constellation_across_accesses():
    campaign = Campaign(quick_config(seed=3))
    a = campaign._starlink_access(THROUGHPUT_START, run_seed=1)
    b = campaign._starlink_access(THROUGHPUT_START + 100, run_seed=2)
    assert a.path_model.constellation is b.path_model.constellation


def test_quick_config_is_small():
    config = quick_config()
    assert config.ping_days <= 10
    assert config.bulk_bytes <= 8_000_000
    assert config.web_sites <= 40
