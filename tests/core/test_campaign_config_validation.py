"""CampaignConfig validation: bad scale knobs fail fast and loudly.

Before PR 4, a zero or negative knob silently produced an empty unit
list (or a downstream ZeroDivisionError three layers deep); now the
config constructor rejects it with a message naming the field.
"""

import dataclasses
import math

import pytest

from repro.core.campaign import Campaign, CampaignConfig, quick_config
from repro.errors import ConfigurationError

POSITIVE_FLOAT_FIELDS = (
    "ping_days", "ping_interval_s", "speedtest_warmup_s",
    "speedtest_measure_s", "satcom_warmup_s", "messages_duration_s")
COUNT_FIELDS = (
    "pings_per_round", "speedtest_epochs", "speedtest_connections",
    "bulk_per_direction", "bulk_bytes", "messages_per_direction",
    "web_sites", "web_visits_per_site")


@pytest.mark.parametrize("name", POSITIVE_FLOAT_FIELDS)
@pytest.mark.parametrize("value", [0.0, -1.5, math.nan])
def test_non_positive_durations_rejected(name, value):
    with pytest.raises(ConfigurationError, match=name):
        CampaignConfig(**{name: value})


@pytest.mark.parametrize("name", COUNT_FIELDS)
def test_non_positive_counts_rejected(name):
    with pytest.raises(ConfigurationError, match=name):
        CampaignConfig(**{name: 0})


@pytest.mark.parametrize("value", [-0.1, 1.1])
def test_out_of_range_loss_probability_rejected(value):
    with pytest.raises(ConfigurationError, match="ping_loss_prob"):
        CampaignConfig(ping_loss_prob=value)


def test_boundary_loss_probabilities_accepted():
    assert CampaignConfig(ping_loss_prob=0.0).ping_loss_prob == 0.0
    assert CampaignConfig(ping_loss_prob=1.0).ping_loss_prob == 1.0


def test_validation_message_names_the_field():
    with pytest.raises(ConfigurationError,
                       match=r"CampaignConfig\.web_sites"):
        CampaignConfig(web_sites=-3)


def test_stock_configurations_are_valid():
    for config in (CampaignConfig(), quick_config(seed=7)):
        assert dataclasses.asdict(config)   # constructed without error


def test_inverted_epoch_window_rejected():
    campaign = Campaign(quick_config())
    with pytest.raises(ConfigurationError, match="inverted epoch"):
        campaign._epochs(2, start=10.0, end=5.0, label="backwards")
    assert campaign._epochs(0, start=5.0, end=5.0, label="empty") == []
