"""Campaign + CLI wiring of the streaming ping pipeline.

The campaign-level acceptance bar for the longitudinal mode:
``run_pings_streaming`` must reconstruct ``run_pings`` bit for bit
while exact, degrade in recorded PARTIAL-PRECISION stages under a
memory budget instead of growing without bound, escalate under
``resource_policy="raise"``, and surface all of it through the CLI
(``--streaming``/``--memory-budget-mb``/``--duration-days``/
``--track-memory``, hard-cap exit status 3).
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.campaign import (
    BYTES_PER_RESIDENT_SAMPLE,
    Campaign,
    CampaignConfig,
)
from repro.core.datasets import StreamingPingDataset
from repro.core.reporting import render_precision_notes
from repro.errors import ConfigurationError, MemoryBudgetError
from repro.exec.resources import ResourceBudget
from repro.testing.digest import digest_value
from repro.units import minutes


def micro_config(seed: int = 0, **overrides) -> CampaignConfig:
    base = dict(seed=seed,
                ping_days=1.0, ping_interval_s=minutes(120),
                ping_shard_rounds=3,   # 12 rounds -> 4 atoms/anchor
                speedtest_epochs=1, speedtest_measure_s=0.5,
                speedtest_warmup_s=0.5, satcom_warmup_s=2.0,
                bulk_per_direction=1, bulk_bytes=500_000,
                messages_per_direction=1, messages_duration_s=1.5,
                web_sites=3, web_visits_per_site=1)
    base.update(overrides)
    return CampaignConfig(**base)


#: Sample budget that the micro campaign's exact residency (raw
#: chunks + reservoirs, ~790 samples) breaches but its post-STREAMING
#: residency (reservoirs only, ~394) satisfies: the ladder stops
#: after exactly one stage.
ONE_STAGE_BUDGET_MB = 0.03


def ping_digest(dataset) -> str:
    return digest_value({name: dataset.series[name]
                         for name in dataset.anchors()})


# -- config validation -------------------------------------------------------


def test_memory_budget_must_be_positive():
    with pytest.raises(ConfigurationError, match="memory_budget_mb"):
        micro_config(memory_budget_mb=0.0)
    with pytest.raises(ConfigurationError, match="memory_budget_mb"):
        micro_config(memory_budget_mb=float("nan"))


def test_resource_policy_is_validated():
    with pytest.raises(ConfigurationError, match="resource_policy"):
        micro_config(resource_policy="explode")


# -- unit/budget derivation --------------------------------------------------


def test_streaming_units_split_the_budget_over_anchors():
    campaign = Campaign(micro_config(memory_budget_mb=1.0))
    units = campaign.streaming_ping_units()
    samples = int(1.0 * 2 ** 20) // BYTES_PER_RESIDENT_SAMPLE
    assert all(u.exact_threshold == samples // len(units)
               for u in units)

    ungoverned = Campaign(micro_config()).streaming_ping_units()
    assert all(u.exact_threshold == 100_000 for u in ungoverned)


def test_streaming_budget_follows_the_config():
    assert Campaign(micro_config()).streaming_budget() is None
    campaign = Campaign(micro_config(memory_budget_mb=1.0,
                                     resource_policy="raise"))
    budget = campaign.streaming_budget()
    assert isinstance(budget, ResourceBudget)
    assert budget.policy == "raise"
    # A fresh governor per call: events are per-run state.
    assert campaign.streaming_budget() is not budget


# -- exact-mode digest identity ----------------------------------------------


def test_streaming_campaign_reconstructs_batch_bitwise():
    batch = Campaign(micro_config(seed=3)).run_pings()
    streamed = Campaign(micro_config(seed=3)).run_pings_streaming(
        workers=2, granularity=3)
    assert isinstance(streamed, StreamingPingDataset)
    assert streamed.precision_notes() == []
    rebuilt = streamed.to_ping_dataset()
    assert rebuilt.anchors() == batch.anchors()
    assert ping_digest(rebuilt) == ping_digest(batch)
    for name in batch.anchors():
        assert rebuilt.outcomes[name].status \
            == batch.outcomes[name].status


# -- budget governance through the campaign ----------------------------------


def test_budget_degrades_in_stages_instead_of_growing():
    batch = Campaign(micro_config(seed=1)).run_pings()
    campaign = Campaign(micro_config(
        seed=1, memory_budget_mb=ONE_STAGE_BUDGET_MB))
    streamed = campaign.run_pings_streaming()
    assert streamed.budget.degraded
    assert streamed.budget.stage == "STREAMING"
    notes = streamed.precision_notes()
    assert len(notes) == 1 and "STREAMING" in notes[0]
    assert "PARTIAL PRECISION" in render_precision_notes(notes)
    # Counts and availability stay exact at every stage.
    report = streamed.availability_report()
    lost = sum(int(np.isnan(r).sum())
               for _, r in batch.series.values())
    total = sum(r.size for _, r in batch.series.values())
    assert (report.total_probes, report.lost_probes) == (total, lost)
    # Raw series are gone, the reservoir subsample answers instead.
    for name in streamed.anchors():
        assert streamed.rtts(name).size <= batch.rtts(name).size


def test_raise_policy_escalates_the_first_breach():
    campaign = Campaign(micro_config(
        seed=1, memory_budget_mb=ONE_STAGE_BUDGET_MB,
        resource_policy="raise"))
    with pytest.raises(MemoryBudgetError, match="policy='raise'"):
        campaign.run_pings_streaming()


# -- CLI ---------------------------------------------------------------------


def test_cli_streaming_fig1_matches_batch_output(capsys):
    assert main(["fig1", "--ping-days", "1"]) == 0
    batch = capsys.readouterr().out
    assert main(["fig1", "--ping-days", "1", "--streaming"]) == 0
    assert capsys.readouterr().out == batch


def test_cli_duration_days_is_a_ping_days_synonym(capsys):
    assert main(["fig1", "--ping-days", "1"]) == 0
    batch = capsys.readouterr().out
    assert main(["fig1", "--duration-days", "1"]) == 0
    assert capsys.readouterr().out == batch
    with pytest.raises(SystemExit):
        main(["fig1", "--ping-days", "1", "--duration-days", "2"])


def test_cli_streaming_availability_is_ping_native(capsys):
    assert main(["availability", "--ping-days", "1",
                 "--streaming"]) == 0
    out = capsys.readouterr().out
    assert "Availability report" in out
    assert "probes:" in out


def test_cli_memory_budget_prints_precision_notes(capsys):
    assert main(["availability", "--ping-days", "1",
                 "--memory-budget-mb", "0.18"]) == 0
    out = capsys.readouterr().out
    assert "Availability report" in out
    assert "Precision notes" in out
    assert "PARTIAL PRECISION" in out


def test_cli_raise_policy_exits_with_status_3(capsys):
    code = main(["availability", "--ping-days", "1",
                 "--memory-budget-mb", "0.18",
                 "--resource-policy", "raise"])
    assert code == 3
    assert "memory budget exhausted" in capsys.readouterr().err


def test_cli_rejects_non_positive_memory_budget():
    with pytest.raises(SystemExit):
        main(["fig1", "--memory-budget-mb", "0"])


def test_cli_track_memory_adds_peak_column(capsys):
    assert main(["fig1", "--ping-days", "1", "--streaming",
                 "--track-memory", "--timing"]) == 0
    out = capsys.readouterr().out
    assert "Unit timing" in out
    assert "peak" in out
