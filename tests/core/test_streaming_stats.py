"""Differential suite: streaming sinks vs exact numpy aggregation.

The streaming layer's load-bearing claim has two halves:

* **exact mode** (below the sample threshold) is *bit-identical* to
  the batch helpers — ``StreamingQuantiles.percentile`` ==
  ``np.percentile``, ``.boxplot()`` == ``boxplot_stats``,
  ``TimeBinAggregate.rows()`` == ``time_binned_percentiles`` — for
  every split of the sample stream into add/merge chunks and every
  merge order;
* **compressed mode** matches numpy within a documented rank-error
  tolerance, again across random merge orders and shard
  granularities.

Hypothesis generates the sample sets, the chunkings and the merge
permutations; shrinking hands back a minimal counterexample.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    BottomKReservoir,
    StreamingMoments,
    StreamingQuantiles,
    TimeBinAggregate,
    boxplot_stats,
    time_binned_percentiles,
)
from repro.errors import AnalysisError

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False,
                          width=64)

sample_lists = st.lists(finite_floats, min_size=1, max_size=200)


def _chunked(values, rng_seed, max_chunks=6):
    """Split a list into 1..max_chunks contiguous chunks, seeded."""
    rng = np.random.default_rng(rng_seed)
    n = len(values)
    pieces = int(rng.integers(1, max_chunks + 1))
    cuts = sorted(rng.integers(0, n + 1, size=pieces - 1).tolist())
    bounds = [0, *cuts, n]
    return [values[bounds[i]:bounds[i + 1]]
            for i in range(len(bounds) - 1)]


# ---------------------------------------------------------------- moments


@given(values=sample_lists, chunk_seed=st.integers(0, 2 ** 16))
@settings(max_examples=80, deadline=None)
def test_moments_match_numpy(values, chunk_seed):
    arr = np.asarray(values, dtype=float)
    acc = StreamingMoments()
    for chunk in _chunked(values, chunk_seed):
        acc.add(chunk)
    assert acc.count == arr.size
    assert acc.minimum == arr.min()
    assert acc.maximum == arr.max()
    scale = max(1.0, float(np.abs(arr).max()))
    assert math.isclose(acc.mean, float(arr.mean()),
                        rel_tol=1e-9, abs_tol=1e-9 * scale)
    assert math.isclose(acc.variance, float(arr.var()),
                        rel_tol=1e-7, abs_tol=1e-7 * scale * scale)


@given(values=sample_lists, chunk_seed=st.integers(0, 2 ** 16),
       merge_seed=st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_moments_merge_order_invariant_within_tolerance(
        values, chunk_seed, merge_seed):
    arr = np.asarray(values, dtype=float)
    chunks = _chunked(values, chunk_seed)
    sinks = []
    for chunk in chunks:
        s = StreamingMoments()
        s.add(chunk)
        sinks.append(s)
    rng = np.random.default_rng(merge_seed)
    rng.shuffle(sinks)
    first = sinks[0]
    for other in sinks[1:]:
        first.merge(other)
    scale = max(1.0, float(np.abs(arr).max()))
    assert first.count == arr.size
    assert math.isclose(first.mean, float(arr.mean()),
                        rel_tol=1e-9, abs_tol=1e-9 * scale)
    assert math.isclose(first.variance, float(arr.var()),
                        rel_tol=1e-6, abs_tol=1e-6 * scale * scale)


def test_moments_reject_non_finite():
    acc = StreamingMoments()
    with pytest.raises(AnalysisError):
        acc.add([1.0, float("nan")])


# -------------------------------------------------------------- quantiles


@given(values=sample_lists, chunk_seed=st.integers(0, 2 ** 16),
       merge_seed=st.integers(0, 2 ** 16))
@settings(max_examples=80, deadline=None)
def test_exact_mode_bit_identical_across_merge_orders(
        values, chunk_seed, merge_seed):
    """Below the threshold: any chunking/merge order == numpy, bitwise."""
    arr = np.asarray(values, dtype=float)
    chunks = _chunked(values, chunk_seed)
    sinks = []
    for chunk in chunks:
        s = StreamingQuantiles(exact_threshold=10 ** 6)
        s.add(chunk)
        sinks.append(s)
    rng = np.random.default_rng(merge_seed)
    rng.shuffle(sinks)
    merged = sinks[0]
    for other in sinks[1:]:
        merged.merge(other)
    assert merged.exact
    for p in (0, 5, 25, 50, 75, 95, 100):
        assert merged.percentile(p) == float(np.percentile(arr, p))
    # The boxplot is pinned against the *sorted* sample: sorting is
    # the canonical summation order that makes the mean merge-order
    # independent (see StreamingQuantiles.boxplot).
    assert merged.boxplot() == boxplot_stats(np.sort(arr))
    assert math.isclose(merged.boxplot().mean, float(arr.mean()),
                        rel_tol=1e-9,
                        abs_tol=1e-9 * max(1.0, float(np.abs(arr).max())))


@given(values=st.lists(finite_floats, min_size=50, max_size=400),
       chunk_seed=st.integers(0, 2 ** 16),
       merge_seed=st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_compressed_mode_rank_error_bounded(values, chunk_seed,
                                            merge_seed):
    """Compressed sketches stay within the documented rank error.

    Tolerance: with ``max_centroids=64`` the k1 merging digest keeps
    rank error under ~6% mid-distribution (and tighter at the tails);
    we assert 8% to leave headroom for merge-order variation.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    chunks = _chunked(values, chunk_seed)
    sinks = []
    for chunk in chunks:
        s = StreamingQuantiles(exact_threshold=16, max_centroids=64)
        s.add(chunk)
        sinks.append(s)
    rng = np.random.default_rng(merge_seed)
    rng.shuffle(sinks)
    merged = sinks[0]
    for other in sinks[1:]:
        merged.merge(other)
    n = arr.size
    for q in (0.05, 0.25, 0.5, 0.75, 0.95):
        est = merged.quantile(q)
        # Rank error: where does the estimate land in the exact ECDF?
        lo = np.searchsorted(arr, est, side="left") / n
        hi = np.searchsorted(arr, est, side="right") / n
        rank_err = 0.0 if lo <= q <= hi else min(abs(lo - q),
                                                 abs(hi - q))
        assert rank_err <= 0.08, (q, est, rank_err)
    assert merged.moments.minimum == arr[0]
    assert merged.moments.maximum == arr[-1]


def test_forced_compression_keeps_extremes_and_count():
    sink = StreamingQuantiles(exact_threshold=10 ** 6)
    sink.add(np.arange(1000.0))
    assert sink.exact
    sink.compress()
    assert not sink.exact
    assert sink.count == 1000
    assert sink.moments.minimum == 0.0
    assert sink.moments.maximum == 999.0
    assert sink.resident_samples < 1000
    # p50 of 0..999 is 499.5; allow the documented rank tolerance.
    assert abs(sink.percentile(50) - 499.5) <= 1000 * 0.02


def test_empty_sink_raises_on_query():
    sink = StreamingQuantiles()
    with pytest.raises(AnalysisError):
        sink.percentile(50)
    with pytest.raises(AnalysisError):
        sink.boxplot()


# --------------------------------------------------------------- time bins


@given(n=st.integers(1, 150), seed=st.integers(0, 2 ** 16),
       chunk_seed=st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_time_bins_exact_mode_match_batch(n, seed, chunk_seed):
    """Grid-timed samples (the campaign shape): rows == batch, bitwise."""
    rng = np.random.default_rng(seed)
    times = np.sort(rng.choice(np.arange(0.0, 4096.0, 16.0), size=n,
                               replace=False))
    values = rng.normal(50.0, 10.0, size=n)
    batch = time_binned_percentiles(times, values, bin_width=256.0)
    agg = TimeBinAggregate(bin_width=256.0, exact_threshold=10 ** 6)
    order = np.arange(n)
    rng2 = np.random.default_rng(chunk_seed)
    rng2.shuffle(order)
    for start in range(0, n, 37):
        sel = order[start:start + 37]
        agg.add(times[sel], values[sel])
    assert agg.rows() == batch


def test_time_bins_merge_matches_single_sink():
    rng = np.random.default_rng(7)
    times = np.arange(0.0, 1000.0, 5.0)
    values = rng.normal(40.0, 5.0, size=times.size)
    whole = TimeBinAggregate(bin_width=100.0, exact_threshold=10 ** 6)
    whole.add(times, values)
    left = TimeBinAggregate(bin_width=100.0, exact_threshold=10 ** 6)
    right = TimeBinAggregate(bin_width=100.0, exact_threshold=10 ** 6)
    left.add(times[:77], values[:77])
    right.add(times[77:], values[77:])
    left.merge(right)
    assert left.rows() == whole.rows()
    with pytest.raises(AnalysisError):
        left.merge(TimeBinAggregate(bin_width=50.0))


# --------------------------------------------------------------- reservoir


@given(n=st.integers(1, 300), k=st.integers(1, 64),
       parts=st.integers(1, 5), merge_seed=st.integers(0, 2 ** 16))
@settings(max_examples=60, deadline=None)
def test_reservoir_is_merge_order_independent(n, k, parts, merge_seed):
    times = np.arange(float(n))
    values = times * 2.0
    keys = BottomKReservoir.keys_for(seed=123, tag="blk", count=n)

    def build(split_points):
        reservoirs = []
        bounds = [0, *split_points, n]
        for i in range(len(bounds) - 1):
            r = BottomKReservoir(k=k, seed=123)
            lo, hi = bounds[i], bounds[i + 1]
            r.add(keys[lo:hi], times[lo:hi], values[lo:hi])
            reservoirs.append(r)
        return reservoirs

    rng = np.random.default_rng(merge_seed)
    cuts = sorted(rng.integers(0, n + 1, size=parts - 1).tolist())
    reservoirs = build(cuts)
    rng.shuffle(reservoirs)
    merged = reservoirs[0]
    for other in reservoirs[1:]:
        merged.merge(other)

    reference = BottomKReservoir(k=k, seed=123)
    reference.add(keys, times, values)

    t_a, v_a = merged.sample()
    t_b, v_b = reference.sample()
    assert np.array_equal(t_a, t_b)
    assert np.array_equal(v_a, v_b)
    assert merged.offered == n
    assert len(merged) == min(n, k)


def test_reservoir_keys_are_offset_stable():
    whole = BottomKReservoir.keys_for(seed=9, tag="x", count=100)
    tail = BottomKReservoir.keys_for(seed=9, tag="x", count=60, base=40)
    assert np.array_equal(whole[40:], tail)


def test_reservoir_shrink_is_prefix_of_survivors():
    n = 200
    keys = BottomKReservoir.keys_for(seed=5, tag="s", count=n)
    big = BottomKReservoir(k=64, seed=5)
    big.add(keys, np.arange(float(n)), np.arange(float(n)))
    small = BottomKReservoir(k=64, seed=5)
    small.add(keys, np.arange(float(n)), np.arange(float(n)))
    small.shrink(16)
    assert len(small) == 16
    t_big, _ = big.sample()
    t_small, _ = small.sample()
    assert set(t_small) <= set(t_big)
