"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.stats import (
    Ecdf,
    boxplot_stats,
    moods_median_test,
    time_binned_percentiles,
)
from repro.errors import AnalysisError


def test_boxplot_stats_known_values():
    stats = boxplot_stats(range(101))      # 0..100
    assert stats.count == 101
    assert stats.minimum == 0
    assert stats.median == 50
    assert stats.p25 == 25
    assert stats.p75 == 75
    assert stats.maximum == 100
    assert stats.iqr == 50
    assert stats.mean == pytest.approx(50.0)


def test_boxplot_stats_empty_rejected():
    with pytest.raises(AnalysisError):
        boxplot_stats([])


def test_boxplot_stats_rejects_non_finite():
    with pytest.raises(AnalysisError, match="non-finite"):
        boxplot_stats([1.0, float("nan"), 3.0])
    with pytest.raises(AnalysisError, match="non-finite"):
        boxplot_stats([1.0, float("inf")])
    with pytest.raises(AnalysisError, match="non-finite"):
        boxplot_stats([float("-inf"), 1.0])


def test_ecdf_basic():
    ecdf = Ecdf([1, 2, 3, 4])
    assert ecdf.at(0.5) == 0.0
    assert ecdf.at(2) == 0.5
    assert ecdf.at(4) == 1.0
    # Inverse of the step function: smallest x with F(x) >= q.
    assert ecdf.quantile(0.5) == 2.0
    assert ecdf.quantile(0.51) == 3.0
    assert ecdf.quantile(0.0) == 1.0
    assert ecdf.quantile(1.0) == 4.0


def test_ecdf_curve_monotonic():
    ecdf = Ecdf(np.random.default_rng(1).normal(size=200))
    curve = ecdf.curve(50)
    ys = [y for _, y in curve]
    assert ys == sorted(ys)
    assert ys[-1] == 1.0


def test_ecdf_empty_rejected():
    with pytest.raises(AnalysisError):
        Ecdf([])
    with pytest.raises(AnalysisError):
        Ecdf([1.0]).quantile(1.5)


def test_moods_test_same_distribution_accepts():
    rng = np.random.default_rng(2)
    groups = [rng.normal(50, 5, size=300) for _ in range(4)]
    _, p = moods_median_test(*groups)
    assert p > 0.01


def test_moods_test_shifted_medians_reject():
    rng = np.random.default_rng(2)
    a = rng.normal(50, 5, size=300)
    b = rng.normal(60, 5, size=300)
    _, p = moods_median_test(a, b)
    assert p < 0.001


def test_moods_test_needs_two_groups():
    with pytest.raises(AnalysisError):
        moods_median_test([1, 2, 3])


def test_time_binned_percentiles():
    times = np.arange(0, 100, 1.0)
    values = times * 2.0
    rows = time_binned_percentiles(times, values, bin_width=25.0)
    assert len(rows) == 4
    assert rows[0]["count"] == 25
    assert rows[0]["p50"] == pytest.approx(24.0)
    assert rows[-1]["t"] == 75.0


def test_time_binned_edge_aligned_final_sample_kept():
    # Regression: when the last sample falls exactly on a bin edge,
    # the final edge used to equal times[-1] and the trailing samples
    # were silently dropped from every Fig.-2-style series.
    times = np.arange(0.0, 101.0, 1.0)      # times[-1] == 100.0
    values = np.ones_like(times)
    rows = time_binned_percentiles(times, values, bin_width=25.0)
    assert sum(row["count"] for row in rows) == times.size
    assert rows[-1]["t"] == 100.0
    assert rows[-1]["count"] == 1


def test_time_binned_single_edge_aligned_sample():
    rows = time_binned_percentiles([50.0], [7.0], bin_width=25.0)
    assert len(rows) == 1
    assert rows[0]["count"] == 1
    assert rows[0]["p50"] == 7.0


def test_time_binned_alignment_error():
    with pytest.raises(AnalysisError):
        time_binned_percentiles([1, 2], [1], bin_width=10)


def test_time_binned_empty():
    assert time_binned_percentiles([], [], bin_width=10) == []


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=200))
def test_property_boxplot_ordering(samples):
    stats = boxplot_stats(samples)
    assert (stats.minimum <= stats.p5 <= stats.p25 <= stats.median
            <= stats.p75 <= stats.p95 <= stats.maximum)
    # Rounding slack: np.mean of identical tiny floats can land one
    # ulp outside [min, max].
    span = max(abs(stats.minimum), abs(stats.maximum), 1e-300)
    assert stats.minimum - 1e-9 * span <= stats.mean \
        <= stats.maximum + 1e-9 * span


@given(st.lists(st.floats(min_value=0, max_value=1000,
                          allow_nan=False), min_size=1, max_size=100))
def test_property_ecdf_bounds(samples):
    ecdf = Ecdf(samples)
    assert ecdf.at(min(samples) - 1) == 0.0
    assert ecdf.at(max(samples)) == 1.0
    assert min(samples) <= ecdf.quantile(0.5) <= max(samples)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100))
def test_property_ecdf_quantile_inverts_at(samples):
    # quantile must be the exact inverse of the empirical step
    # function: for every sample x, quantile(at(x)) == x, and for
    # every q, at(quantile(q)) >= q.
    ecdf = Ecdf(samples)
    for x in samples:
        assert ecdf.quantile(ecdf.at(x)) == x
    for q in (0.0, 0.25, 0.5, 0.75, 1.0):
        assert ecdf.at(ecdf.quantile(q)) >= q
