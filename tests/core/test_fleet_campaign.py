"""Fleet campaign mode: determinism, sharding, config and CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.campaign import Campaign, CampaignConfig, quick_config
from repro.errors import ConfigurationError
from repro.testing.digest import digest_value


def _fleet_config(seed=0, terminals=4, st_epochs=0):
    cfg = quick_config(seed=seed)
    cfg.ping_days = 1.0
    cfg.fleet_terminals = terminals
    cfg.fleet_speedtest_epochs = st_epochs
    return cfg


def test_fleet_disabled_raises():
    campaign = Campaign(quick_config())
    with pytest.raises(ConfigurationError):
        campaign.fleet_units()


def test_fleet_config_validation():
    with pytest.raises(ConfigurationError):
        CampaignConfig(fleet_terminals=-1)
    with pytest.raises(ConfigurationError):
        CampaignConfig(fleet_speedtest_epochs=-2)


def test_fleet_serial_equals_workers_and_shards():
    cfg = _fleet_config()
    serial = Campaign(cfg).run_fleet()
    workers = Campaign(cfg).run_fleet(workers=2)
    sharded = Campaign(cfg).run_fleet(workers=2, granularity=3)
    d = digest_value(serial)
    assert digest_value(workers) == d
    assert digest_value(sharded) == d


def test_fleet_dataset_shape():
    data = Campaign(_fleet_config(terminals=3)).run_fleet()
    assert data.size == 3
    assert [t.index for t in data.terminals] == [0, 1, 2]
    rounds = len(np.arange(0.0, 86400.0, 3600.0))
    for term in data.terminals:
        assert term.rtts.size == rounds * 3
        assert term.shares.size == rounds
        assert np.nanmin(term.shares) > 0.0
        assert term.outcome.is_ok
    assert 1.0 <= data.oversubscription() <= 3.0


def test_fleet_capacity_share_scales_with_contention():
    """A mean share of 1/k implies k terminals per satellite; a big
    fleet in a narrow band must contend more than a lone dish."""
    lone = Campaign(_fleet_config(terminals=1)).run_fleet()
    cfg = _fleet_config(terminals=12)
    cfg.fleet_lat_bands = ((50.0, 51.0),)
    packed = Campaign(cfg).run_fleet()
    assert lone.oversubscription() == pytest.approx(1.0)
    assert packed.oversubscription() > 1.2


def test_fleet_speedtest_uses_fair_share():
    cfg = _fleet_config(terminals=2, st_epochs=1)
    data = Campaign(cfg).run_fleet()
    for term in data.terminals:
        assert len(term.speedtests) == 1
        st = term.speedtests[0]
        assert st.network == "starlink" and st.direction == "down"


def test_fleet_respects_scenario_outages():
    cfg = _fleet_config()
    cfg.scenario = "gateway_flap"
    data = Campaign(cfg).run_fleet()
    clear = Campaign(_fleet_config()).run_fleet()
    assert digest_value(data) != digest_value(clear)


def test_classic_datasets_unchanged_by_fleet_knobs():
    """Turning fleet mode on must not move a single classic byte."""
    base = quick_config(seed=4)
    base.ping_days = 1.0
    with_fleet = quick_config(seed=4)
    with_fleet.ping_days = 1.0
    with_fleet.fleet_terminals = 8
    a = Campaign(base).run_pings()
    b = Campaign(with_fleet).run_pings()
    assert digest_value(a) == digest_value(b)


def test_cli_fleet_artefact(capsys):
    assert main(["fleet", "--terminals", "2", "--ping-days", "1"]) == 0
    out = capsys.readouterr().out
    assert "Fleet campaign: 2 terminals" in out
    assert "oversubscription" in out


def test_cli_terminals_validation():
    with pytest.raises(SystemExit):
        main(["fleet", "--terminals", "0"])
