"""Tests for unit helpers and deterministic RNG derivation."""

import pytest

from repro.rng import make_rng, stable_seed
from repro.units import (
    days,
    gbps,
    hours,
    kb,
    kbps,
    kib,
    mb,
    mbps,
    mib,
    minutes,
    ms,
    to_mbps,
    to_ms,
    to_us,
    transmission_time,
    us,
)


def test_time_units():
    assert ms(1500) == 1.5
    assert us(2000) == pytest.approx(0.002)
    assert minutes(2) == 120.0
    assert hours(1) == 3600.0
    assert days(2) == 172_800.0
    assert to_ms(0.25) == 250.0
    assert to_us(0.001) == pytest.approx(1000.0)


def test_rate_units():
    assert kbps(8) == 8000.0
    assert mbps(100) == 1e8
    assert gbps(1) == 1e9
    assert to_mbps(5e7) == 50.0


def test_size_units():
    assert kib(1) == 1024
    assert mib(2) == 2 * 1024 * 1024
    assert kb(3) == 3000
    assert mb(1.5) == 1_500_000


def test_transmission_time():
    assert transmission_time(1250, 1e6) == pytest.approx(0.01)
    with pytest.raises(ValueError):
        transmission_time(100, 0.0)


def test_stable_seed_deterministic():
    assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)
    assert stable_seed("a") != stable_seed("b")
    assert stable_seed(1, 2) != stable_seed(12)
    assert stable_seed((1, "x")) == stable_seed((1, "x"))


def test_make_rng_streams_independent():
    a, b = make_rng("s1"), make_rng("s2")
    assert [a.random() for _ in range(5)] != \
        [b.random() for _ in range(5)]


def test_make_rng_reproducible():
    assert make_rng("k", 7).random() == make_rng("k", 7).random()
