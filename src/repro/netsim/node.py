"""Simulated nodes: hosts, routers, NAT boxes and traffic shapers.

Nodes exchange :class:`~repro.netsim.packet.Packet` objects over
:class:`~repro.netsim.link.Pipe` objects. Forwarding uses static
per-destination routing tables (installed by
:class:`~repro.netsim.topology.Network`). Routers decrement the TTL
and emit ICMP Time-Exceeded messages, which is what makes traceroute
and Tracebox work; NAT boxes rewrite source addresses and checksums,
which is what those tools then observe.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError, RoutingError
from repro.netsim.engine import Simulator
from repro.netsim.packet import (
    ICMP_HEADER_SIZE,
    IP_HEADER_SIZE,
    IcmpMessage,
    IcmpType,
    Packet,
    Protocol,
)

#: Routing-table key matching any destination.
DEFAULT_ROUTE = "default"

PacketHandler = Callable[[Packet], None]


class Node:
    """Base class: a named, addressed device with attached pipes.

    ``neighbors`` maps neighbour node name to the egress pipe toward
    it; ``routes`` maps destination address (or :data:`DEFAULT_ROUTE`)
    to a neighbour name.
    """

    def __init__(self, sim: Simulator, name: str, address: str):
        self.sim = sim
        self.name = name
        self.address = address
        self.neighbors: dict[str, Any] = {}
        self.routes: dict[str, str] = {}
        # dst address -> resolved egress pipe; invalidated whenever
        # routing state changes (every forwarded packet hits this).
        self._pipe_cache: dict[str, Any] = {}
        self.packets_received = 0
        self.packets_forwarded = 0
        #: Route-withdrawal state (maintenance / convergence gaps):
        #: while True the node silently drops everything it would
        #: send or forward — no ICMP unreachable, exactly like the
        #: blackhole a withdrawn route leaves before re-convergence.
        self.blackholed = False
        self.blackhole_drops = 0

    def attach(self, neighbor_name: str, pipe) -> None:
        """Register the egress pipe toward ``neighbor_name``."""
        self.neighbors[neighbor_name] = pipe
        self._pipe_cache.clear()

    def add_route(self, dst_address: str, via_neighbor: str) -> None:
        """Install a static route for ``dst_address``."""
        if via_neighbor not in self.neighbors:
            raise ConfigurationError(
                f"{self.name}: unknown neighbor {via_neighbor!r}")
        self.routes[dst_address] = via_neighbor
        self._pipe_cache.clear()

    def set_default_route(self, via_neighbor: str) -> None:
        """Install the catch-all route."""
        self.add_route(DEFAULT_ROUTE, via_neighbor)

    def _egress_pipe(self, dst_address: str):
        pipe = self._pipe_cache.get(dst_address)
        if pipe is not None:
            return pipe
        via = self.routes.get(dst_address) or self.routes.get(DEFAULT_ROUTE)
        if via is None:
            raise RoutingError(
                f"{self.name}: no route to {dst_address!r}")
        pipe = self.neighbors[via]
        self._pipe_cache[dst_address] = pipe
        return pipe

    def withdraw_routes(self) -> None:
        """Enter maintenance: blackhole all traffic through this node.

        Scheduled by :mod:`repro.disrupt` for exit-PoP route
        withdrawals; idempotent, reversed by :meth:`restore_routes`.
        """
        self.blackholed = True

    def restore_routes(self) -> None:
        """Leave maintenance: resume normal forwarding."""
        self.blackholed = False

    def send(self, packet: Packet) -> None:
        """Originate or forward ``packet`` toward its destination."""
        if self.blackholed:
            self.blackhole_drops += 1
            return
        if packet.dst == self.address:
            # Loopback: deliver without touching the network.
            self.sim.schedule(0.0, self.receive, packet, None)
            return
        self._egress_pipe(packet.dst).send(packet)

    def receive(self, packet: Packet, pipe) -> None:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def quote_headers(packet: Packet) -> dict[str, Any]:
        """Header snapshot quoted inside ICMP error messages."""
        quote = packet.copy_headers()
        quote["src"] = packet.src
        quote["dst"] = packet.dst
        quote["src_port"] = packet.src_port
        quote["dst_port"] = packet.dst_port
        quote["protocol"] = packet.protocol.value
        return quote

    def send_icmp(self, icmp_type: IcmpType, dst: str,
                  message: IcmpMessage, size: int | None = None) -> None:
        """Build and send an ICMP packet to ``dst``."""
        message.origin = self.address
        packet = Packet(
            src=self.address, dst=dst, protocol=Protocol.ICMP,
            size=size or (IP_HEADER_SIZE + ICMP_HEADER_SIZE + 36),
            payload=message, ttl=64, created_at=self.sim.now)
        self.send(packet)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.address}>"


class Host(Node):
    """An end system: binds transport handlers, answers pings.

    Transport endpoints (TCP/QUIC sockets, ping clients) register a
    handler for a ``(protocol, port)`` pair with :meth:`bind`; ICMP
    messages are fanned out to handlers registered with
    :meth:`bind_icmp` keyed by the echo identifier.
    """

    def __init__(self, sim: Simulator, name: str, address: str):
        super().__init__(sim, name, address)
        self._bindings: dict[tuple[Protocol, int], PacketHandler] = {}
        self._icmp_listeners: dict[int, PacketHandler] = {}
        self._next_ephemeral = 49152

    def bind(self, protocol: Protocol, port: int,
             handler: PacketHandler) -> None:
        """Register ``handler`` for packets to ``(protocol, port)``."""
        key = (protocol, port)
        if key in self._bindings:
            raise ConfigurationError(
                f"{self.name}: port {port}/{protocol.value} already bound")
        self._bindings[key] = handler

    def unbind(self, protocol: Protocol, port: int) -> None:
        """Remove a port binding. Missing bindings are ignored."""
        self._bindings.pop((protocol, port), None)

    def bind_icmp(self, ident: int, handler: PacketHandler) -> None:
        """Register a handler for ICMP replies with ``ident``."""
        self._icmp_listeners[ident] = handler

    def unbind_icmp(self, ident: int) -> None:
        """Remove an ICMP listener. Missing listeners are ignored."""
        self._icmp_listeners.pop(ident, None)

    def allocate_port(self) -> int:
        """Return a fresh ephemeral port number."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def receive(self, packet: Packet, pipe) -> None:
        self.packets_received += 1
        if packet.dst != self.address:
            # Hosts do not forward; stray packets are dropped.
            return
        if packet.protocol is Protocol.ICMP:
            self._handle_icmp(packet)
            return
        handler = self._bindings.get((packet.protocol, packet.dst_port))
        if handler is not None:
            handler(packet)
        elif packet.protocol is Protocol.UDP:
            # Port unreachable -- this is how traceroute detects that
            # its probe reached the destination host.
            ident = packet.headers.get("probe_ident", packet.src_port)
            message = IcmpMessage(IcmpType.DEST_UNREACHABLE, ident=ident,
                                  quoted_headers=self.quote_headers(packet))
            self.send_icmp(IcmpType.DEST_UNREACHABLE, packet.src, message)

    def _handle_icmp(self, packet: Packet) -> None:
        message: IcmpMessage = packet.payload
        if message.icmp_type is IcmpType.ECHO_REQUEST:
            reply = IcmpMessage(
                IcmpType.ECHO_REPLY, ident=message.ident, seq=message.seq,
                timestamp=message.timestamp)
            self.send_icmp(IcmpType.ECHO_REPLY, packet.src, reply,
                           size=packet.size)
            return
        listener = self._icmp_listeners.get(message.ident)
        if listener is not None:
            listener(packet)


class Router(Node):
    """Forwards packets, decrements TTL, answers pings.

    Subclasses override :meth:`mutate_forward` to model middlebox
    behaviour (NAT rewrites, PEP fiddling); the base router leaves
    packets untouched, which Tracebox then reports as a transparent
    hop.
    """

    def __init__(self, sim: Simulator, name: str, address: str):
        super().__init__(sim, name, address)

    def receive(self, packet: Packet, pipe) -> None:
        self.packets_received += 1
        if self.blackholed:
            # Forwarding path bypasses Node.send, so the maintenance
            # blackhole must drop here too (and a withdrawn router
            # does not answer pings either).
            self.blackhole_drops += 1
            return
        if packet.dst == self.address:
            self._handle_local(packet)
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self._send_time_exceeded(packet)
            return
        if not self.mutate_forward(packet, pipe):
            return
        try:
            out_pipe = self._egress_pipe(packet.dst)
        except RoutingError:
            message = IcmpMessage(IcmpType.DEST_UNREACHABLE,
                                  quoted_headers=self._quote(packet))
            self.send_icmp(IcmpType.DEST_UNREACHABLE, packet.src, message)
            return
        self.packets_forwarded += 1
        out_pipe.send(packet)

    def mutate_forward(self, packet: Packet, pipe) -> bool:
        """Middlebox hook. Return False to swallow the packet."""
        return True

    def _handle_local(self, packet: Packet) -> None:
        if packet.protocol is not Protocol.ICMP:
            return
        message: IcmpMessage = packet.payload
        if message.icmp_type is IcmpType.ECHO_REQUEST:
            reply = IcmpMessage(
                IcmpType.ECHO_REPLY, ident=message.ident, seq=message.seq,
                timestamp=message.timestamp)
            self.send_icmp(IcmpType.ECHO_REPLY, packet.src, reply,
                           size=packet.size)

    def _quote(self, packet: Packet) -> dict[str, Any]:
        return self.quote_headers(packet)

    def _send_time_exceeded(self, packet: Packet) -> None:
        ident = packet.headers.get("probe_ident", packet.src_port)
        message = IcmpMessage(IcmpType.TIME_EXCEEDED, ident=ident,
                              quoted_headers=self._quote(packet))
        self.send_icmp(IcmpType.TIME_EXCEEDED, packet.src, message)


class NatBox(Router):
    """Network address translator.

    Traffic forwarded from the inside neighbour gets its source
    address rewritten to the NAT's public address (and a fresh source
    port); return traffic is translated back. As in the paper's
    Tracebox findings, the rewrite also updates the transport
    checksum, which is the only header mutation an end host can
    observe.
    """

    def __init__(self, sim: Simulator, name: str, address: str,
                 inside_neighbor: str):
        super().__init__(sim, name, address)
        self.inside_neighbor = inside_neighbor
        # Prefix of ingress-pipe names that identify outbound traffic;
        # prebuilt because mutate_forward runs once per forwarded
        # packet.
        self._inside_prefix = f"{inside_neighbor}->"
        # (protocol, public_port) -> (inner address, inner port)
        self._reverse: dict[tuple[Protocol, int], tuple[str, int]] = {}
        # (protocol, inner addr, inner port) -> public port
        self._forward: dict[tuple[Protocol, str, int], int] = {}
        self._next_public_port = 30000
        self.translations = 0

    def _public_port_for(self, protocol: Protocol, src: str,
                         src_port: int) -> int:
        key = (protocol, src, src_port)
        port = self._forward.get(key)
        if port is None:
            port = self._next_public_port
            self._next_public_port += 1
            self._forward[key] = port
            self._reverse[(protocol, port)] = (src, src_port)
        return port

    def mutate_forward(self, packet: Packet, pipe) -> bool:
        outbound = (pipe is not None
                    and pipe.name.startswith(self._inside_prefix))
        if outbound:
            self.translations += 1
            if packet.protocol is Protocol.ICMP:
                message: IcmpMessage = packet.payload
                public = self._public_port_for(
                    packet.protocol, packet.src, message.ident)
                message.ident = public
                packet.headers["nat_ident"] = public
            else:
                public = self._public_port_for(
                    packet.protocol, packet.src, packet.src_port)
                packet.src_port = public
            packet.src = self.address
            packet.refresh_checksum()
            return True
        return self._translate_inbound(packet)

    def _translate_inbound(self, packet: Packet) -> bool:
        if packet.dst != self.address:
            return True
        if packet.protocol is Protocol.ICMP:
            return self._translate_inbound_icmp(packet)
        inner = self._reverse.get((packet.protocol, packet.dst_port))
        if inner is None:
            return False
        packet.dst, packet.dst_port = inner
        packet.refresh_checksum()
        return True

    def _translate_inbound_icmp(self, packet: Packet) -> bool:
        message: IcmpMessage = packet.payload
        if message.icmp_type is IcmpType.ECHO_REPLY:
            inner = self._reverse.get((Protocol.ICMP, message.ident))
            if inner is None:
                return False
            packet.dst, message.ident = inner
            return True
        if message.quoted_headers is not None:
            # Errors (time-exceeded, unreachable) quote the translated
            # flow; map the quoted public port back to the inner host
            # and restore the quoted addressing, RFC 5508 style. The
            # quoted *checksum* is deliberately left as rewritten --
            # that is the mutation Tracebox reports (paper Sec 3.5).
            quoted_port = message.quoted_headers.get("src_port", 0)
            quoted_proto = message.quoted_headers.get("protocol")
            for proto in (Protocol.TCP, Protocol.UDP, Protocol.ICMP):
                if quoted_proto is not None and proto.value != quoted_proto:
                    continue
                inner = self._reverse.get((proto, quoted_port))
                if inner is not None:
                    packet.dst = inner[0]
                    message.quoted_headers["src"] = inner[0]
                    message.quoted_headers["src_port"] = inner[1]
                    return True
            nat_ident = message.quoted_headers.get("nat_ident")
            if nat_ident is not None:
                inner = self._reverse.get((Protocol.ICMP, nat_ident))
                if inner is not None:
                    packet.dst = inner[0]
                    message.ident = inner[1]
                    message.quoted_headers["src"] = inner[0]
                    return True
        return False

    def receive(self, packet: Packet, pipe) -> None:
        # Inbound translation must happen even though the packet is
        # addressed to the NAT itself; _translate_inbound rewrites the
        # destination so normal forwarding can take over.
        self.packets_received += 1
        if packet.dst == self.address:
            if packet.protocol is Protocol.ICMP:
                message: IcmpMessage = packet.payload
                if message.icmp_type is IcmpType.ECHO_REQUEST:
                    self._handle_local(packet)
                    return
            if not self._translate_inbound(packet):
                return
            if packet.dst == self.address:
                self._handle_local(packet)
                return
            self.packets_forwarded += 1
            try:
                self._egress_pipe(packet.dst).send(packet)
            except RoutingError:
                pass
            return
        super().receive(packet, pipe)


class Shaper(Router):
    """Traffic-discrimination middlebox (Wehe's quarry).

    A classifier maps packets to a class name; classes present in
    ``class_rates`` are policed to the given rate with a token
    bucket. Unclassified traffic passes untouched. The Starlink model
    deploys a Shaper with an empty policy (the paper found no TD);
    tests exercise a discriminating policy to prove Wehe detects it.
    """

    def __init__(self, sim: Simulator, name: str, address: str,
                 classifier: Callable[[Packet], str | None] | None = None,
                 class_rates: dict[str, float] | None = None,
                 burst_bytes: int = 64_000):
        super().__init__(sim, name, address)
        self.classifier = classifier or (lambda packet: None)
        self.class_rates = dict(class_rates or {})
        self.burst_bytes = burst_bytes
        self._buckets: dict[str, tuple[float, float]] = {}
        self.policed_drops = 0

    def mutate_forward(self, packet: Packet, pipe) -> bool:
        cls = self.classifier(packet)
        if cls is None or cls not in self.class_rates:
            return True
        rate = self.class_rates[cls]
        tokens, last = self._buckets.get(cls, (float(self.burst_bytes),
                                               self.sim.now))
        now = self.sim.now
        tokens = min(self.burst_bytes, tokens + (now - last) * rate / 8.0)
        if tokens >= packet.size:
            self._buckets[cls] = (tokens - packet.size, now)
            return True
        self._buckets[cls] = (tokens, now)
        self.policed_drops += 1
        return False
