"""Static route computation over a simulated topology.

Routes are computed once with networkx shortest paths (hop count or
explicit weights) and installed as per-destination entries on every
node. The simulated networks are small (tens of nodes), so full
any-to-any tables are cheap and keep forwarding trivial.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import RoutingError
from repro.netsim.node import Node


def build_graph(nodes: list[Node],
                edges: list[tuple[str, str, float]]) -> nx.Graph:
    """Build a weighted graph of node names from (a, b, weight) edges."""
    graph = nx.Graph()
    for node in nodes:
        graph.add_node(node.name)
    for a, b, weight in edges:
        graph.add_edge(a, b, weight=weight)
    return graph


def install_shortest_path_routes(nodes: list[Node],
                                 edges: list[tuple[str, str, float]]) -> None:
    """Install any-to-any shortest-path routes on every node.

    Destination keys are node *addresses*; next hops are neighbour
    node names, matching :class:`repro.netsim.node.Node` tables.
    """
    graph = build_graph(nodes, edges)
    by_name = {node.name: node for node in nodes}
    try:
        paths = dict(nx.all_pairs_dijkstra_path(graph, weight="weight"))
    except nx.NetworkXError as exc:  # pragma: no cover - defensive
        raise RoutingError(f"route computation failed: {exc}") from exc
    for src_name, dst_paths in paths.items():
        src = by_name[src_name]
        for dst_name, path in dst_paths.items():
            if len(path) < 2:
                continue
            dst = by_name[dst_name]
            next_hop = path[1]
            if next_hop not in src.neighbors:
                raise RoutingError(
                    f"{src_name}: computed next hop {next_hop} is not "
                    f"attached")
            src.routes[dst.address] = next_hop


def path_between(nodes: list[Node], edges: list[tuple[str, str, float]],
                 src_name: str, dst_name: str) -> list[str]:
    """Names of the nodes along the routed path, endpoints included."""
    graph = build_graph(nodes, edges)
    try:
        return nx.shortest_path(graph, src_name, dst_name, weight="weight")
    except nx.NetworkXNoPath as exc:
        raise RoutingError(
            f"no path between {src_name} and {dst_name}") from exc
