"""Network builder: nodes + links + routes in one object.

:class:`Network` is the convenience layer the access-network models
use: create hosts/routers by name, connect them with link parameters,
then call :meth:`finalize` to compute and install routes. It also
hands out RFC-1918-flavoured addresses when callers do not care.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.loss import LossModel
from repro.netsim.node import Host, NatBox, Node, Router, Shaper
from repro.netsim.queues import DropTailQueue
from repro.netsim.routing import install_shortest_path_routes, path_between


class Network:
    """A simulator plus the nodes and links built on top of it."""

    def __init__(self, sim: Simulator | None = None):
        self.sim = sim or Simulator()
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self._edges: list[tuple[str, str, float]] = []
        self._next_host_octet = 10
        self._finalized = False

    # -- node creation ---------------------------------------------------

    def _register(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def _auto_address(self) -> str:
        octet = self._next_host_octet
        self._next_host_octet += 1
        return f"10.0.{octet // 250}.{octet % 250 + 1}"

    def add_host(self, name: str, address: str | None = None) -> Host:
        """Create an end host."""
        return self._register(
            Host(self.sim, name, address or self._auto_address()))

    def add_router(self, name: str, address: str | None = None) -> Router:
        """Create a plain forwarding router."""
        return self._register(
            Router(self.sim, name, address or self._auto_address()))

    def add_nat(self, name: str, address: str,
                inside_neighbor: str) -> NatBox:
        """Create a NAT box whose inside faces ``inside_neighbor``."""
        return self._register(
            NatBox(self.sim, name, address, inside_neighbor))

    def add_shaper(self, name: str, address: str | None = None,
                   classifier=None,
                   class_rates: dict[str, float] | None = None,
                   burst_bytes: int = 64_000) -> Shaper:
        """Create a traffic-discrimination shaper."""
        return self._register(
            Shaper(self.sim, name, address or self._auto_address(),
                   classifier=classifier, class_rates=class_rates,
                   burst_bytes=burst_bytes))

    # -- wiring ------------------------------------------------------

    def connect(self, a: str, b: str,
                rate_ab: float | None = None,
                rate_ba: float | None = None,
                delay: float | Callable[[float], float] = 0.0,
                delay_ba: float | Callable[[float], float] | None = None,
                queue_ab: DropTailQueue | None = None,
                queue_ba: DropTailQueue | None = None,
                loss_ab: LossModel | None = None,
                loss_ba: LossModel | None = None,
                weight: float = 1.0) -> Link:
        """Create a bidirectional link between named nodes."""
        for name in (a, b):
            if name not in self.nodes:
                raise ConfigurationError(f"unknown node {name!r}")
        link = Link(self.sim, self.nodes[a], self.nodes[b],
                    rate_ab=rate_ab, rate_ba=rate_ba,
                    delay=delay, delay_ba=delay_ba,
                    queue_ab=queue_ab, queue_ba=queue_ba,
                    loss_ab=loss_ab, loss_ba=loss_ba)
        self.links.append(link)
        self._edges.append((a, b, weight))
        return link

    def finalize(self) -> None:
        """Compute and install shortest-path routes on every node."""
        install_shortest_path_routes(list(self.nodes.values()), self._edges)
        self._finalized = True

    # -- lookups -----------------------------------------------------

    def host(self, name: str) -> Host:
        """Fetch a host by name (raising on routers)."""
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise ConfigurationError(f"{name!r} is not a Host")
        return node

    def node(self, name: str) -> Node:
        """Fetch any node by name."""
        return self.nodes[name]

    def link_between(self, a: str, b: str) -> Link:
        """The (first) link connecting two named nodes."""
        for link in self.links:
            names = {link.a.name, link.b.name}
            if names == {a, b}:
                return link
        raise ConfigurationError(f"no link between {a!r} and {b!r}")

    def route_names(self, src: str, dst: str) -> list[str]:
        """Node names along the path from ``src`` to ``dst``."""
        return path_between(list(self.nodes.values()), self._edges, src, dst)

    def run(self, until: float | None = None) -> None:
        """Convenience passthrough to the simulator."""
        self.sim.run(until=until)
