"""Discrete-event simulation engine.

The engine keeps a simulated clock and a binary heap of pending
events. Components schedule callbacks with :meth:`Simulator.schedule`
(relative delay) or :meth:`Simulator.at` (absolute time); the main loop
pops events in timestamp order and invokes them. Ties are broken by
insertion order so runs are fully deterministic.

Hot-path layout: heap entries are ``(time, seq, Event-or-None, fn,
args)`` tuples, so ``heapq`` orders them with C-level float/int
comparisons instead of calling :meth:`Event.__lt__` once per sift step
(``seq`` is unique, later elements are never compared). Entries
scheduled through :meth:`Simulator.post` carry ``None`` in the Event
slot: fire-and-forget work (packet deliveries, serialisation
finishes) never gets cancelled, so no handle object is allocated for
it. Cancelled events stay in the heap and are skipped when popped;
when they pile up past half the heap the heap is compacted in place,
so long campaigns with many cancelled retransmission timers stop
paying per-pop for dead entries. All representations pop live events
in the identical ``(time, seq)`` total order, which is what keeps
every trace digest bit-identical to the pre-fast-path engine.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from repro.errors import SimulationError

#: Heaps smaller than this are never compacted (rebuild cost would
#: exceed the skip cost being avoided).
_COMPACT_MIN_HEAP = 64

# Module-level bindings for the scheduling hot path (skips one
# attribute lookup per call; ``at`` runs once per scheduled event).
_isfinite = math.isfinite
_heappush = heapq.heappush
_INF = float("inf")


class Event:
    """A scheduled callback. Returned by the scheduling methods.

    Call :meth:`cancel` to prevent a pending event from firing;
    cancelled events stay in the heap but are skipped when popped
    (and are swept out wholesale by lazy heap compaction).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int,
                 fn: Callable[..., Any], args: tuple, sim=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Owning simulator while the event sits in its heap; cleared
        # when the event is popped so late cancels of already-fired
        # events do not skew the cancelled-in-heap accounting.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.fn!r} {state}>"


class Simulator:
    """Event loop with a simulated clock starting at ``start_time``.

    The clock unit is seconds. A single :class:`Simulator` instance
    drives one experiment; components hold a reference to it and use
    :meth:`now`, :meth:`schedule` and :meth:`at`.
    """

    #: Class-level default for lazy heap compaction; benchmarks and
    #: equivalence tests flip it (per instance or process-wide) to
    #: prove digests do not depend on it.
    compaction_enabled = True

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        #: Heap of (time, seq, Event | None, fn, args); see module
        #: docstring.
        self._heap: list[tuple] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        #: Cancelled events still sitting in the heap.
        self._cancelled_in_heap = 0
        #: Observability counters (cheap; see :attr:`stats`).
        self.peak_heap = 0
        self.compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued, **including cancelled ones**.

        Cancelled events stay in the heap until popped or compacted
        away, so this is a measure of heap occupancy, not of remaining
        work; use :attr:`live_pending` for the latter.
        """
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Number of queued events that will actually fire."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def stats(self) -> dict[str, int]:
        """Cheap engine counters for observability/benchmarks."""
        return {
            "events_processed": self._events_processed,
            "pending_events": len(self._heap),
            "live_pending": self.live_pending,
            "peak_heap": self.peak_heap,
            "compactions": self.compactions,
        }

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if not _isfinite(delay):
            # NaN compares False against everything, so without this
            # check a NaN delay slips past both guards and corrupts
            # the heap ordering silently.
            raise SimulationError(f"delay must be finite, got {delay}")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        # Must go through self.at: invariant checkers shadow it per
        # instance to wrap every scheduled callback.
        return self.at(self._now + delay, fn, *args)

    def _reject_time(self, time: float) -> None:
        """Raise the right error for a time ``at``/``post`` rejected."""
        if not _isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        raise SimulationError(
            f"cannot schedule at {time}; clock already at {self._now}")

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        # One chained comparison covers every bad input: NaN fails the
        # first leg (NaN compares False to everything), past times
        # fail it too, and +inf fails the second.
        if not self._now <= time < _INF:
            self._reject_time(time)
        self._seq = seq = self._seq + 1
        event = Event(time, seq, fn, args, self)
        heap = self._heap
        _heappush(heap, (time, seq, event, fn, args))
        if len(heap) > self.peak_heap:
            self.peak_heap = len(heap)
        return event

    def post(self, time: float, fn: Callable[..., Any],
             *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute ``time``, fire-and-forget.

        Identical ordering semantics to :meth:`at` (same sequence
        counter, so interleaving with :meth:`at` events is preserved),
        but no :class:`Event` handle is created -- the call cannot be
        cancelled. Hot paths that never cancel (packet deliveries,
        link serialisation) use this to skip one object allocation
        per event.
        """
        if not self._now <= time < _INF:
            self._reject_time(time)
        self._seq = seq = self._seq + 1
        heap = self._heap
        _heappush(heap, (time, seq, None, fn, args))
        if len(heap) > self.peak_heap:
            self.peak_heap = len(heap)

    # -- cancelled-event bookkeeping ----------------------------------

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for an event still queued."""
        self._cancelled_in_heap += 1
        if (self.compaction_enabled
                and len(self._heap) >= _COMPACT_MIN_HEAP
                and self._cancelled_in_heap * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, **in place**.

        In-place (slice assignment) so the local heap aliases held by
        a running :meth:`run` loop stay valid when a callback's cancel
        triggers compaction mid-run. Live entries keep their
        ``(time, seq)`` keys, so the pop order of surviving events is
        untouched -- this is a pure representation change.
        """
        heap = self._heap
        live = [entry for entry in heap
                if entry[2] is None or not entry[2].cancelled]
        heap[:] = live
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    def _discard_cancelled_head(self) -> None:
        """Pop the cancelled event at the heap top."""
        event = heapq.heappop(self._heap)[2]
        self._cancelled_in_heap -= 1
        event._sim = None

    def _next_live_time(self) -> float | None:
        """Timestamp of the next event that will fire, if any."""
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event is None or not event.cancelled:
                break
            self._discard_cancelled_head()
        return heap[0][0] if heap else None

    # -- execution -----------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event. Returns False if none remain."""
        heap = self._heap
        while heap:
            time, _, event, fn, args = heapq.heappop(heap)
            if event is not None:
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    event._sim = None
                    continue
                event._sim = None
            self._now = time
            self._events_processed += 1
            fn(*args)
            return True
        return False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        ``until`` is an absolute simulated time; the clock is advanced
        to exactly ``until`` when no runnable work at or before
        ``until`` remains -- on a normal drain, when the next live
        event lies beyond ``until``, and also when the ``max_events``
        bound fires with nothing left to run before ``until``. When
        the bound fires while live events at or before ``until``
        remain, the clock stays at the last executed event so those
        events cannot be jumped over (repeated ``run`` calls always
        see a monotonic clock either way).
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        # Hot loop: hoist bound methods and the heap list; ~25% of a
        # packet-level workload's wall clock is spent right here.
        # Pop-first: the common case executes the popped entry, and
        # the rare beyond-``until`` entry is pushed back unchanged
        # (same (time, seq) key, so subsequent pop order is
        # untouched) -- cheaper than peeking every iteration.
        heap = self._heap
        heappop = heapq.heappop
        bounded = max_events is not None
        executed = 0
        try:
            while heap:
                if bounded and executed >= max_events:
                    if until is not None and until > self._now:
                        nxt = self._next_live_time()
                        if nxt is None or nxt > until:
                            self._now = until
                    return
                entry = heappop(heap)
                event = entry[2]
                if event is not None and event.cancelled:
                    self._cancelled_in_heap -= 1
                    event._sim = None
                    continue
                time = entry[0]
                if until is not None and time > until:
                    # Push the entry back untouched (the Event, if
                    # any, is still owned by the heap).
                    _heappush(heap, entry)
                    # Clamp, never rewind: run(until=past) must leave
                    # the clock monotonic.
                    if until > self._now:
                        self._now = until
                    return
                if event is not None:
                    event._sim = None
                self._now = time
                self._events_processed += 1
                entry[3](*entry[4])
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Drain the event heap completely (bounded by ``max_events``).

        ``max_events`` bounds *this call*, not the simulator's
        lifetime total, so earlier :meth:`run` calls cannot make the
        non-convergence backstop fire spuriously (or mask it).
        """
        before = self._events_processed
        self.run(max_events=max_events)
        if self.live_pending:
            # The bound is a runaway-loop backstop, not a normal exit:
            # pending work can only remain if this call hit the bound.
            executed = self._events_processed - before
            raise SimulationError(
                f"simulation did not converge in {executed} events "
                f"(bound {max_events})")
