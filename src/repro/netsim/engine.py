"""Discrete-event simulation engine.

The engine keeps a simulated clock and a binary heap of pending
events. Components schedule callbacks with :meth:`Simulator.schedule`
(relative delay) or :meth:`Simulator.at` (absolute time); the main loop
pops events in timestamp order and invokes them. Ties are broken by
insertion order so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback. Returned by the scheduling methods.

    Call :meth:`cancel` to prevent a pending event from firing;
    cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.fn!r} {state}>"


class Simulator:
    """Event loop with a simulated clock starting at ``start_time``.

    The clock unit is seconds. A single :class:`Simulator` instance
    drives one experiment; components hold a reference to it and use
    :meth:`now`, :meth:`schedule` and :meth:`at`.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: list[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if not math.isfinite(delay):
            # NaN compares False against everything, so without this
            # check a NaN delay slips past both guards and corrupts
            # the heap ordering silently.
            raise SimulationError(f"delay must be finite, got {delay}")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; clock already at {self._now}")
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the next pending event. Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        ``until`` is an absolute simulated time; the clock is advanced
        to exactly ``until`` when the condition triggers, so repeated
        ``run(until=...)`` calls see a monotonic clock.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    # Clamp, never rewind: run(until=past) must leave
                    # the clock monotonic.
                    if until > self._now:
                        self._now = until
                    return
                heapq.heappop(self._heap)
                self._now = event.time
                self._events_processed += 1
                event.fn(*event.args)
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Drain the event heap completely (bounded by ``max_events``).

        ``max_events`` bounds *this call*, not the simulator's
        lifetime total, so earlier :meth:`run` calls cannot make the
        non-convergence backstop fire spuriously (or mask it).
        """
        before = self._events_processed
        self.run(max_events=max_events)
        if any(not e.cancelled for e in self._heap):
            # The bound is a runaway-loop backstop, not a normal exit:
            # pending work can only remain if this call hit the bound.
            executed = self._events_processed - before
            raise SimulationError(
                f"simulation did not converge in {executed} events "
                f"(bound {max_events})")
