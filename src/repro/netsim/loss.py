"""Packet-loss processes for simulated links.

Two physically distinct loss mechanisms matter in the paper:

* congestion loss, which is *not* modelled here -- it emerges from
  finite queues in :mod:`repro.netsim.queues`;
* medium loss (radio imperfections, micro-outages), modelled by the
  processes in this module and attached to the satellite links.

All processes are deterministic given their ``random.Random`` seed, so
experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Protocol as TypingProtocol

from repro.errors import ConfigurationError


class LossModel(TypingProtocol):
    """Interface: decide whether a packet sent at ``now`` is lost."""

    def is_lost(self, now: float) -> bool:  # pragma: no cover - protocol
        ...


class NoLoss:
    """Never drops anything. The default for every link."""

    def is_lost(self, now: float) -> bool:
        return False


class BernoulliLoss:
    """Independent per-packet loss with fixed probability."""

    def __init__(self, probability: float, rng: random.Random | None = None):
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0,1], got {probability}")
        self.probability = probability
        self._rng = rng or random.Random(0)

    def is_lost(self, now: float) -> bool:
        return self._rng.random() < self.probability


class GilbertElliottLoss:
    """Two-state bursty loss channel.

    The channel is in a Good or Bad state; transitions occur per
    packet with probabilities ``p_good_to_bad`` and ``p_bad_to_good``.
    Packets are lost with ``loss_good`` (usually 0) in the Good state
    and ``loss_bad`` (usually near 1) in the Bad state. This produces
    the rare-but-long loss bursts the paper attributes to the medium
    (Fig. 4b): mean burst length ~ 1 / p_bad_to_good.
    """

    def __init__(self, p_good_to_bad: float, p_bad_to_good: float,
                 loss_good: float = 0.0, loss_bad: float = 1.0,
                 rng: random.Random | None = None):
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = rng or random.Random(0)
        self._in_bad_state = False

    @property
    def in_bad_state(self) -> bool:
        """Whether the channel is currently in the Bad state."""
        return self._in_bad_state

    def stationary_loss_rate(self) -> float:
        """Long-run average loss probability of the channel."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.loss_bad if self._in_bad_state else self.loss_good
        pi_bad = self.p_good_to_bad / denom
        return pi_bad * self.loss_bad + (1 - pi_bad) * self.loss_good

    def is_lost(self, now: float) -> bool:
        if self._in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        rate = self.loss_bad if self._in_bad_state else self.loss_good
        return self._rng.random() < rate


class TimedGilbertElliottLoss:
    """Gilbert-Elliott channel whose states live in continuous *time*.

    Radio impairments occupy time windows, not packet counts: a 25 ms
    fade costs a 3 Mbit/s message stream a handful of packets but a
    130 Mbit/s bulk transfer hundreds. Modelling the sojourn times
    (exponential with means ``mean_good_s`` / ``mean_bad_s``) rather
    than per-packet transition probabilities reproduces exactly that
    rate dependence (paper Sec. 3.2).
    """

    def __init__(self, mean_good_s: float, mean_bad_s: float,
                 loss_good: float = 0.0, loss_bad: float = 1.0,
                 rng: random.Random | None = None):
        if mean_good_s <= 0 or mean_bad_s <= 0:
            raise ConfigurationError("state sojourn means must be positive")
        for name, p in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1], got {p}")
        self.mean_good_s = mean_good_s
        self.mean_bad_s = mean_bad_s
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = rng or random.Random(0)
        self._in_bad_state = False
        self._state_until = self._rng.expovariate(1.0 / mean_good_s)

    @property
    def in_bad_state(self) -> bool:
        """Whether the channel is currently in the Bad state."""
        return self._in_bad_state

    def fraction_bad(self) -> float:
        """Long-run fraction of time spent in the Bad state."""
        return self.mean_bad_s / (self.mean_good_s + self.mean_bad_s)

    def _advance(self, now: float) -> None:
        while now >= self._state_until:
            self._in_bad_state = not self._in_bad_state
            mean = (self.mean_bad_s if self._in_bad_state
                    else self.mean_good_s)
            self._state_until += self._rng.expovariate(1.0 / mean)

    def is_lost(self, now: float) -> bool:
        self._advance(now)
        rate = self.loss_bad if self._in_bad_state else self.loss_good
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._rng.random() < rate


class OutageSchedule:
    """Loses everything during scheduled connectivity gaps.

    Models the paper's ">1 second" loss events (satellite handover
    failures, obstruction sweeps). ``outages`` is a list of
    ``(start_time, duration)`` pairs in simulated seconds.
    """

    def __init__(self, outages: list[tuple[float, float]]):
        for start, duration in outages:
            if duration < 0:
                raise ConfigurationError(
                    f"outage duration must be >= 0, got {duration}")
        self.outages = sorted(outages)

    @classmethod
    def poisson(cls, horizon: float, rate_per_hour: float,
                mean_duration: float,
                rng: random.Random | None = None) -> "OutageSchedule":
        """Random outages: Poisson arrivals, exponential durations."""
        rng = rng or random.Random(0)
        outages = []
        t = 0.0
        mean_gap = 3600.0 / rate_per_hour if rate_per_hour > 0 else None
        if mean_gap is not None:
            while True:
                t += rng.expovariate(1.0 / mean_gap)
                if t >= horizon:
                    break
                outages.append((t, rng.expovariate(1.0 / mean_duration)))
        return cls(outages)

    def in_outage(self, now: float) -> bool:
        """Whether ``now`` falls inside any scheduled outage."""
        for start, duration in self.outages:
            if start > now:
                return False
            if now < start + duration:
                return True
        return False

    def is_lost(self, now: float) -> bool:
        return self.in_outage(now)


class UnservedLoss:
    """Loses everything while the access has no servable path.

    The mobility counterpart of :class:`OutageSchedule`: instead of a
    precomputed window list, ``probe(now)`` asks the scheduler whether
    the slot under ``now`` is unservable (full-sky obstruction, or
    churn that left no satellite/gateway pair) — so drive-through
    outages emerge from geometry at packet granularity. Draws no
    randomness, leaving sibling loss models' RNG streams untouched.
    """

    def __init__(self, probe):
        self._probe = probe

    def is_lost(self, now: float) -> bool:
        return bool(self._probe(now))


class CompositeLoss:
    """Union of several loss processes (lost if *any* model drops)."""

    def __init__(self, models: list):
        self.models = list(models)

    def is_lost(self, now: float) -> bool:
        # Evaluate all models so stateful ones (Gilbert-Elliott)
        # advance their chains regardless of earlier verdicts.
        verdicts = [model.is_lost(now) for model in self.models]
        return any(verdicts)
