"""Transmission queues for link egress.

Queues are where congestion happens: when a link is busy serialising,
packets wait here, and when the queue is full they are dropped. Under
load this produces the frequent short loss bursts the paper attributes
to congestion (Fig. 4a) and the RTT inflation of Fig. 3.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import ConfigurationError
from repro.netsim.packet import Packet


class DropTailQueue:
    """FIFO queue bounded in bytes and/or packets; drops at the tail.

    ``capacity_bytes`` is the classic router-buffer knob. Upload and
    download bottlenecks in the Starlink model share the same byte
    capacity, which (as the paper argues in Sec. 3.1) makes the slower
    upload direction drain more slowly and therefore show larger
    queueing delay.
    """

    #: Overwritten (with an instance attribute) by an invariant
    #: checker watching this queue; the class-level default makes the
    #: hot-path eligibility test a plain attribute load.
    _repro_invariants_watched = False

    def __init__(self, capacity_bytes: int | None = None,
                 capacity_packets: int | None = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be positive, got {capacity_bytes}")
        if capacity_packets is not None and capacity_packets <= 0:
            raise ConfigurationError(
                f"capacity_packets must be positive, got {capacity_packets}")
        self.capacity_bytes = capacity_bytes
        self.capacity_packets = capacity_packets
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.drops = 0
        self.enqueues = 0
        #: Optional hook called with each dropped packet.
        self.on_drop: Callable[[Packet], None] | None = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        """Total bytes currently waiting."""
        return self._bytes

    def would_overflow(self, packet: Packet) -> bool:
        """Whether enqueueing ``packet`` would exceed a capacity bound."""
        if (self.capacity_packets is not None
                and len(self._queue) + 1 > self.capacity_packets):
            return True
        if (self.capacity_bytes is not None
                and self._bytes + packet.size > self.capacity_bytes):
            return True
        return False

    def push(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False (and drops it) on overflow."""
        if self.would_overflow(packet):
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet)
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueues += 1
        return True

    def pop(self) -> Packet | None:
        """Dequeue the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    def clear(self) -> None:
        """Drop everything (used when a link is torn down)."""
        self._queue.clear()
        self._bytes = 0


class CoDelQueue(DropTailQueue):
    """Controlled-delay AQM (simplified CoDel, RFC 8289 flavour).

    Packets are timestamped on enqueue; when the *sojourn time* at
    dequeue stays above ``target_s`` for at least ``interval_s``, the
    queue enters a dropping state and discards head packets at an
    increasing rate. The paper measured deep drop-tail buffers
    (hundred-ms loaded RTTs); this queue is the ablation showing what
    an AQM would have done to Fig. 3.

    The enqueue clock is provided by the owning pipe via
    :attr:`clock`, a zero-argument callable returning simulated time.
    """

    def __init__(self, capacity_bytes: int | None = None,
                 capacity_packets: int | None = None,
                 target_s: float = 0.015, interval_s: float = 0.1):
        super().__init__(capacity_bytes, capacity_packets)
        if target_s <= 0 or interval_s <= 0:
            raise ConfigurationError(
                "CoDel target and interval must be positive")
        self.target_s = target_s
        self.interval_s = interval_s
        self.clock: Callable[[], float] | None = None
        self._enqueue_time: dict[int, float] = {}
        self._first_above: float | None = None
        self._dropping = False
        self._drop_count = 0
        self._drop_next = 0.0
        self.aqm_drops = 0

    def push(self, packet: Packet) -> bool:
        accepted = super().push(packet)
        if accepted and self.clock is not None:
            self._enqueue_time[packet.uid] = self.clock()
        return accepted

    def pop(self) -> Packet | None:
        if self.clock is None:
            return super().pop()
        now = self.clock()
        while True:
            packet = super().pop()
            if packet is None:
                self._first_above = None
                self._dropping = False
                return None
            sojourn = now - self._enqueue_time.pop(packet.uid, now)
            if not self._should_drop(now, sojourn):
                return packet
            self.aqm_drops += 1
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(packet)

    def _should_drop(self, now: float, sojourn: float) -> bool:
        if sojourn < self.target_s:
            self._first_above = None
            self._dropping = False
            return False
        if self._first_above is None:
            self._first_above = now + self.interval_s
            return False
        if not self._dropping:
            if now >= self._first_above:
                self._dropping = True
                self._drop_count = 1
                self._drop_next = now + self.interval_s
                return True
            return False
        if now >= self._drop_next:
            self._drop_count += 1
            self._drop_next = now + self.interval_s / (
                self._drop_count ** 0.5)
            return True
        return False
