"""Packet capture for simulated pipes.

A :class:`PipeTracer` attaches to a :class:`~repro.netsim.link.Pipe`
and records transmit / deliver / loss events, mirroring the packet
captures the paper's authors took with tcpdump on client and server.
Analysis code (loss-event extraction, per-packet RTTs) consumes the
resulting :class:`TraceRecord` lists.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.netsim.link import Pipe
from repro.netsim.packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One captured event on a pipe."""

    time: float
    event: str          # "tx" | "rx" | "loss"
    uid: int
    size: int
    src: str
    dst: str
    protocol: str
    info: str = ""      # loss cause, payload summary


class PipeTracer:
    """Records every packet event on one pipe.

    Attach with ``PipeTracer(pipe)``; detach with :meth:`close`.
    Multiple tracers per pipe are not supported (last one wins), which
    matches how the experiments use them.

    Recording is opt-in per pipe by construction -- pipes without a
    tracer attached pay nothing per packet (and stay eligible for the
    packet-train fast path). ``max_records`` additionally bounds
    memory for long-lived monitoring captures: the record store
    becomes a ring buffer keeping only the most recent N events.
    Digest-consuming analyses must leave it unset (the default,
    unbounded) -- dropping old records changes what they digest.
    """

    def __init__(self, pipe: Pipe, capture_tx: bool = True,
                 capture_rx: bool = True, capture_loss: bool = True,
                 max_records: int | None = None):
        self.pipe = pipe
        self.max_records = max_records
        self.records: list[TraceRecord] | deque[TraceRecord]
        if max_records is None:
            self.records = []
        else:
            self.records = deque(maxlen=max_records)
        if capture_tx:
            pipe.on_transmit = self._on_tx
        if capture_rx:
            pipe.on_deliver = self._on_rx
        if capture_loss:
            pipe.on_loss = self._on_loss

    def _record(self, time: float, event: str, packet: Packet,
                info: str = "") -> None:
        self.records.append(TraceRecord(
            time=time, event=event, uid=packet.uid, size=packet.size,
            src=packet.src, dst=packet.dst,
            protocol=packet.protocol.value, info=info))

    def _on_tx(self, time: float, packet: Packet) -> None:
        self._record(time, "tx", packet)

    def _on_rx(self, time: float, packet: Packet) -> None:
        self._record(time, "rx", packet)

    def _on_loss(self, time: float, packet: Packet, cause: str) -> None:
        self._record(time, "loss", packet, info=cause)

    def close(self) -> None:
        """Stop capturing (records remain available)."""
        if self.pipe.on_transmit == self._on_tx:
            self.pipe.on_transmit = None
        if self.pipe.on_deliver == self._on_rx:
            self.pipe.on_deliver = None
        if self.pipe.on_loss == self._on_loss:
            self.pipe.on_loss = None

    def events(self, kind: str) -> list[TraceRecord]:
        """All records of one event kind ("tx", "rx" or "loss")."""
        return [r for r in self.records if r.event == kind]

    def loss_count(self) -> int:
        """Number of loss events captured."""
        return sum(1 for r in self.records if r.event == "loss")
