"""Links: serialisation, propagation, queueing and medium loss.

A :class:`Pipe` is one direction of a link. It models

* a finite transmission rate (serialisation delay, one packet at a
  time, FIFO queue while busy),
* a propagation delay, either fixed or time-varying (the Starlink
  path length changes with every satellite handover),
* a medium-loss process applied at transmission time.

A :class:`Link` bundles the two directions between two nodes.

Packet trains (fast path): bulk flows serialise thousands of
back-to-back packets through a busy pipe, costing one
``_finish_transmission`` event each. When it is provably equivalent,
the pipe instead drains the queue in one pass, computing every
serialisation finish time iteratively (``t_i = t_{i-1} +
size_i*8/rate(t_{i-1})``, exactly the floats the per-packet path
produces), evaluating loss and propagation at those times, scheduling
each delivery directly, and posting a single train-completion event.

Fast dispatch (same eligibility gate): when an eligible pipe is idle,
``send`` folds serialisation and launch into one step -- the delivery
is posted directly at ``finish + delay`` and the pipe remembers it is
occupied via the ``_busy_until`` timestamp instead of carrying a
``_finish_transmission`` event per packet. The finish event's only
jobs were to launch the packet and resume the queue; the launch
arithmetic is reproduced bit-for-bit here, and a ``_drain`` event is
scheduled at ``_busy_until`` lazily, only when a later send actually
queues behind the in-flight packet. An idle->transmit->idle cycle
therefore costs one engine event (the delivery) instead of two.
Per-packet delivery timestamps are bit-identical because every
time-dependent callable (rate, delay, loss) takes an explicit time
argument and any random state involved is owned by this pipe alone.

Bounded (drop-tail) queues take the train path too, with *phantom
occupancy*: the drained packets are only peeked at, and the actual
queue departures are applied lazily at the exact per-packet pop times
(head at train start, then each serialisation finish), so any push
arriving mid-train sees precisely the occupancy -- and hence makes
precisely the drop decision -- the per-packet path would have
produced.

The train path is skipped whenever equivalence cannot be guaranteed:
AQM queues (CoDel's pop-time drop decisions depend on when pops
happen), attached trace hooks (record interleaving would change),
invariant checkers watching the pipe or queue (they observe the
per-packet methods), or ``Pipe.trains_enabled = False``. Two caveats
are inherent:

* ``set_rate``/``set_delay`` calls landing *mid-train* (or while a
  fast-dispatched packet is in flight) only apply from the next
  dispatch onward, whereas the per-packet path would apply them at
  the next packet -- mutating a hook-free pipe mid-flight while
  packets are being serialised is outside the fast path's contract.
* When a push to a *bounded* queue lands at the float-exact instant
  of a serialisation finish, the per-packet path breaks the tie by
  event sequence number (whichever of the finish event and the
  pushing event was scheduled first pops/pushes first), while the
  collapsed path applies the departure before the push. The drop
  decision for that one packet can then differ. Such collisions
  require bit-exact float equality between a cumulative
  serialisation sum and an externally chosen timestamp -- they occur
  with hand-picked decimal-aligned rates, sizes and send times, not
  with measured or RNG-derived campaign parameters. Workloads that
  need exact-tie semantics on bounded queues must disable trains on
  the pipe (``pipe.trains_enabled = False``).
"""

from __future__ import annotations

from itertools import islice
from typing import Callable

from repro.errors import ConfigurationError
from repro.netsim.engine import Simulator
from repro.netsim.loss import LossModel, NoLoss
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue

#: Maximum packets drained per train; bounds the burst of deliveries
#: scheduled from a single event (heap growth stays modest and a
#: long backlog still re-checks eligibility between trains). The
#: value changes only event bookkeeping, never packet timestamps --
#: a bufferbloated bottleneck queue holds thousands of packets, so a
#: larger train amortises the per-train overhead further.
_TRAIN_MAX = 256

#: Watched objects (see the ``_repro_invariants_watched`` class
#: attributes below and repro.testing.invariants) must stay on the
#: per-packet path so every event goes through the shadowed methods.


class Pipe:
    """One direction of a link, from ``src`` node to ``dst`` node.

    Args:
        sim: the driving simulator.
        dst: destination node (must expose ``receive(packet, pipe)``).
        rate: transmission rate in bit/s, a callable
            ``rate(now) -> bit/s`` for time-varying capacity (the
            Starlink service link), or None for infinite.
        delay: propagation delay in seconds, or a callable
            ``delay(now) -> seconds`` for time-varying paths.
        queue: egress queue; an unbounded DropTailQueue by default.
        loss: medium loss process applied per transmitted packet.
        name: label used in traces and diagnostics.
    """

    #: Class-level default for the packet-train fast path; equivalence
    #: tests and benchmarks flip it to prove digests do not depend on
    #: it. Per-instance assignment disables one pipe only.
    trains_enabled = True

    #: Overwritten (with an instance attribute) by an invariant
    #: checker watching this pipe; the class-level default makes the
    #: hot-path eligibility test a plain attribute load.
    _repro_invariants_watched = False

    def __init__(self, sim: Simulator, dst,
                 rate: float | Callable[[float], float] | None = None,
                 delay: float | Callable[[float], float] = 0.0,
                 queue: DropTailQueue | None = None,
                 loss: LossModel | None = None,
                 name: str = ""):
        if rate is not None and not callable(rate) and rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.dst = dst
        self._rate = rate
        self._rate_call = callable(rate)
        self._delay = delay
        self._delay_call = callable(delay)
        # Explicit None check: an empty DropTailQueue is falsy (len 0).
        self.queue = queue if queue is not None else DropTailQueue()
        if getattr(self.queue, "clock", "absent") is None:
            # AQM queues (CoDel) need the simulated clock for
            # sojourn-time measurements.
            self.queue.clock = lambda: self.sim.now
        self.loss = loss or NoLoss()
        self.name = name
        self._busy = False
        # Fast-dispatch occupancy: serialiser busy until this time
        # (authoritative only while no finish/train event is pending,
        # i.e. while ``_busy`` is False); ``_drain_pending`` is True
        # when a ``_drain`` event is scheduled at ``_busy_until``.
        self._busy_until = float("-inf")
        self._drain_pending = False
        self._last_delivery_time = float("-inf")
        # Pending lazy queue departures of an in-flight train on a
        # bounded queue: sorted pop times, applied up to ``now`` by
        # _apply_releases before any occupancy-sensitive operation.
        self._train_releases: list[float] = []
        self._train_release_i = 0
        # statistics
        self.sent = 0
        self.delivered = 0
        self.lost_medium = 0
        self.bytes_delivered = 0
        # trace hooks
        self.on_transmit: Callable[[float, Packet], None] | None = None
        self.on_deliver: Callable[[float, Packet], None] | None = None
        self.on_loss: Callable[[float, Packet, str], None] | None = None

    @property
    def rate(self) -> float | None:
        """Transmission rate now, bit/s (None = infinite)."""
        if self._rate_call:
            return self._rate(self.sim.now)
        return self._rate

    def set_rate(self,
                 rate: float | Callable[[float], float] | None) -> None:
        """Change the link rate (static value or callable)."""
        if rate is not None and not callable(rate) and rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self._rate = rate
        self._rate_call = callable(rate)

    def propagation_delay(self, now: float) -> float:
        """Propagation delay that applies to a packet sent at ``now``."""
        if self._delay_call:
            return self._delay(now)
        return self._delay

    def set_delay(self, delay: float | Callable[[float], float]) -> None:
        """Replace the propagation-delay model."""
        self._delay = delay
        self._delay_call = callable(delay)

    def send(self, packet: Packet) -> None:
        """Entry point: enqueue ``packet`` for transmission."""
        self.sent += 1
        rate = self._rate
        if rate is None:
            # Infinite-rate pipe: no serialisation, no queueing.
            self._launch(packet)
            return
        sim = self.sim
        # Occupied if a finish/train event is in flight (_busy), a
        # fast-dispatched packet is still serialising (_busy_until),
        # or earlier packets await the drain event firing right now.
        if (self._busy or sim._now < self._busy_until
                or self._drain_pending):
            if self._train_release_i < len(self._train_releases):
                self._apply_releases(sim._now)
            if self.queue.push(packet):
                if not self._busy and not self._drain_pending:
                    self._drain_pending = True
                    sim.post(self._busy_until, self._drain)
            elif self.on_loss is not None:
                self.on_loss(sim.now, packet, "queue-drop")
            return
        # Idle serialiser, queue empty. Fast dispatch, inlined: the
        # eligibility test and _fast_start body are spelled out here
        # because this is the single hottest call path in the
        # simulator -- see _fast_start for the equivalence argument.
        if (self.trains_enabled
                and self.on_transmit is None and self.on_deliver is None
                and self.on_loss is None
                and type(self.queue) is DropTailQueue
                and not self._repro_invariants_watched
                and not self.queue._repro_invariants_watched):
            t = sim._now
            if self._rate_call:
                rate = rate(t)
            t = t + packet.size * 8.0 / rate
            self._busy_until = t
            if self.loss.is_lost(t):
                self.lost_medium += 1
                return
            delay = self._delay
            if self._delay_call:
                delay = delay(t)
            target = t + delay
            if target < self._last_delivery_time:
                target = self._last_delivery_time
            self._last_delivery_time = target
            sim.post(target, self._deliver, packet)
            return
        self._start_transmission(packet)

    def _dispatch(self, packet: Packet) -> None:
        """Start serialising ``packet`` on an idle serialiser."""
        if self._train_eligible():
            # Fast dispatch: no finish event. Delivery is posted
            # directly; occupancy lives in the _busy_until timestamp
            # and the queue is resumed by a lazily scheduled _drain.
            self._busy = False
            until = self._fast_start(packet)
            self._busy_until = until
            if self.queue._queue and not self._drain_pending:
                self._drain_pending = True
                self.sim.post(until, self._drain)
            return
        self._start_transmission(packet)

    def _fast_start(self, packet: Packet) -> float:
        """Serialise + launch in one step; returns the finish time.

        Reproduces ``_start_transmission`` followed by ``_launch`` at
        the finish time, float for float: the finish is the identical
        ``now + size*8/rate(now)``, and loss/delay are evaluated with
        that finish time exactly as the finish event would have.
        Hooks are absent by eligibility, so no hook calls are skipped.
        """
        sim = self.sim
        t = sim._now
        rate = self._rate
        if self._rate_call:
            rate = rate(t)
        t = t + packet.size * 8.0 / rate
        if self.loss.is_lost(t):
            self.lost_medium += 1
            return t
        delay = self._delay
        if self._delay_call:
            delay = delay(t)
        target = t + delay
        if target < self._last_delivery_time:
            target = self._last_delivery_time
        self._last_delivery_time = target
        sim.post(target, self._deliver, packet)
        return t

    def _drain(self) -> None:
        """Resume the queue when a fast-dispatched packet finishes."""
        self._drain_pending = False
        if len(self.queue._queue) >= 2 and self._train_eligible():
            self._busy = True
            self._run_train()
            return
        next_packet = self.queue.pop()
        if next_packet is not None:
            self._dispatch(next_packet)

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        sim = self.sim
        rate = self._rate
        if self._rate_call:
            rate = rate(sim._now)
        # sim.post rather than sim.schedule: the finish time is the
        # identical ``now + size*8/rate`` float, rate/size are
        # validated positive so schedule()'s finiteness guards are
        # redundant, finish events are never cancelled (no handle
        # needed), and invariant checkers shadow ``post`` too.
        sim.post(sim._now + packet.size * 8.0 / rate,
                 self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self._launch(packet)
        if len(self.queue._queue) >= 2 and self._train_eligible():
            self._run_train()
            return
        next_packet = self.queue.pop()
        if next_packet is not None:
            self._dispatch(next_packet)
        else:
            self._busy = False

    def _train_eligible(self) -> bool:
        """Whether the event-collapsing fast paths are digest-safe.

        Gates both packet trains and fast dispatch: the conditions
        (no hooks, plain drop-tail queue, nothing watched, toggle on)
        are exactly those under which collapsing per-packet events
        cannot change observable behaviour.
        """
        if not self.trains_enabled:
            return False
        if (self.on_transmit is not None or self.on_deliver is not None
                or self.on_loss is not None):
            return False
        # Exactly DropTailQueue (not CoDel or other subclasses): AQM
        # drop decisions depend on when pops happen. Bounded drop-tail
        # queues are fine -- the train applies departures lazily at
        # the per-packet pop times (phantom occupancy).
        if type(self.queue) is not DropTailQueue:
            return False
        if (self._repro_invariants_watched
                or self.queue._repro_invariants_watched):
            return False
        return True

    def _run_train(self) -> None:
        """Serialise up to ``_TRAIN_MAX`` queued packets in one pass.

        Reproduces the per-packet path's arithmetic step for step --
        same float operations in the same order -- so serialisation
        finish times, loss decisions and delivery timestamps are
        bit-identical; only the number of engine events differs.

        On a bounded queue the packets are peeked, not popped: the
        per-packet path pops the head at the train's start time and
        each subsequent packet at the previous packet's serialisation
        finish, so those exact departure times are recorded and
        applied lazily (_apply_releases) before any push can observe
        the occupancy.
        """
        sim = self.sim
        post = sim.post
        queue = self.queue
        rate = self._rate
        rate_fn = rate if self._rate_call else None
        delay = self._delay
        delay_fn = delay if self._delay_call else None
        is_lost = self.loss.is_lost
        deliver = self._deliver
        t = sim._now
        last = self._last_delivery_time
        if (queue.capacity_bytes is not None
                or queue.capacity_packets is not None):
            dq = queue._queue
            packets = list(islice(dq, min(len(dq), _TRAIN_MAX)))
            self._train_releases = releases = [t]
            self._train_release_i = 0
            final = len(packets) - 1
            for i, packet in enumerate(packets):
                r = rate_fn(t) if rate_fn is not None else rate
                t = t + packet.size * 8.0 / r
                if i < final:
                    releases.append(t)
                # _launch(packet) as of time t:
                if is_lost(t):
                    self.lost_medium += 1
                    continue
                target = t + (delay_fn(t) if delay_fn is not None
                              else delay)
                if target < last:
                    target = last
                last = target
                post(target, deliver, packet)
            self._last_delivery_time = last
            self._apply_releases(sim._now)  # head departs at train start
            post(t, self._finish_train)
            return
        pop = queue.pop
        for _ in range(min(len(queue._queue), _TRAIN_MAX)):
            packet = pop()
            r = rate_fn(t) if rate_fn is not None else rate
            t = t + packet.size * 8.0 / r
            # _launch(packet) as of time t:
            if is_lost(t):
                self.lost_medium += 1
                continue
            target = t + (delay_fn(t) if delay_fn is not None else delay)
            if target < last:
                target = last
            last = target
            post(target, deliver, packet)
        self._last_delivery_time = last
        post(t, self._finish_train)

    def _apply_releases(self, now: float) -> None:
        """Apply pending lazy queue departures due at or before ``now``."""
        releases = self._train_releases
        i = self._train_release_i
        n = len(releases)
        pop = self.queue.pop
        while i < n and releases[i] <= now:
            pop()
            i += 1
        self._train_release_i = i

    def _finish_train(self) -> None:
        """Train completion: resume with whatever queued meanwhile."""
        if self._train_release_i < len(self._train_releases):
            self._apply_releases(self.sim._now)
        next_packet = self.queue.pop()
        if next_packet is not None:
            self._dispatch(next_packet)
        else:
            self._busy = False

    def _launch(self, packet: Packet) -> None:
        """Apply medium loss, then schedule delivery after propagation."""
        sim = self.sim
        now = sim._now
        if self.on_transmit is not None:
            self.on_transmit(now, packet)
        if self.loss.is_lost(now):
            self.lost_medium += 1
            if self.on_loss is not None:
                self.on_loss(now, packet, "medium")
            return
        # FIFO guarantee: random per-packet delay components (jitter)
        # must not reorder packets -- real link-layer schedulers delay
        # but do not overtake. Later packets queue behind the slowest
        # recent delivery.
        delay = self._delay
        if self._delay_call:
            delay = delay(now)
        target = now + delay
        if target < self._last_delivery_time:
            target = self._last_delivery_time
        self._last_delivery_time = target
        sim.post(target, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.delivered += 1
        self.bytes_delivered += packet.size
        if self.on_deliver is not None:
            self.on_deliver(self.sim.now, packet)
        self.dst.receive(packet, self)

    def __repr__(self) -> str:
        return f"<Pipe {self.name or id(self)} -> {self.dst!r}>"


class Link:
    """Bidirectional link between nodes ``a`` and ``b``.

    Each direction is an independent :class:`Pipe`; asymmetric rates
    (e.g. Starlink's ~200/17 Mbit/s) are expressed by passing
    different ``rate_ab`` and ``rate_ba``.
    """

    def __init__(self, sim: Simulator, a, b,
                 rate_ab: float | None = None,
                 rate_ba: float | None = None,
                 delay: float | Callable[[float], float] = 0.0,
                 delay_ba: float | Callable[[float], float] | None = None,
                 queue_ab: DropTailQueue | None = None,
                 queue_ba: DropTailQueue | None = None,
                 loss_ab: LossModel | None = None,
                 loss_ba: LossModel | None = None,
                 name: str = ""):
        self.a = a
        self.b = b
        self.name = name or f"{a.name}<->{b.name}"
        self.pipe_ab = Pipe(sim, b, rate=rate_ab, delay=delay,
                            queue=queue_ab, loss=loss_ab,
                            name=f"{a.name}->{b.name}")
        self.pipe_ba = Pipe(sim, a, rate=rate_ba,
                            delay=delay if delay_ba is None else delay_ba,
                            queue=queue_ba, loss=loss_ba,
                            name=f"{b.name}->{a.name}")
        a.attach(b.name, self.pipe_ab)
        b.attach(a.name, self.pipe_ba)

    def pipe_from(self, node) -> Pipe:
        """The egress pipe as seen from ``node``."""
        if node is self.a:
            return self.pipe_ab
        if node is self.b:
            return self.pipe_ba
        raise ConfigurationError(f"{node!r} is not an endpoint of {self!r}")

    def __repr__(self) -> str:
        return f"<Link {self.name}>"
