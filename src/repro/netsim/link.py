"""Links: serialisation, propagation, queueing and medium loss.

A :class:`Pipe` is one direction of a link. It models

* a finite transmission rate (serialisation delay, one packet at a
  time, FIFO queue while busy),
* a propagation delay, either fixed or time-varying (the Starlink
  path length changes with every satellite handover),
* a medium-loss process applied at transmission time.

A :class:`Link` bundles the two directions between two nodes.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.netsim.engine import Simulator
from repro.netsim.loss import LossModel, NoLoss
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue


class Pipe:
    """One direction of a link, from ``src`` node to ``dst`` node.

    Args:
        sim: the driving simulator.
        dst: destination node (must expose ``receive(packet, pipe)``).
        rate: transmission rate in bit/s, a callable
            ``rate(now) -> bit/s`` for time-varying capacity (the
            Starlink service link), or None for infinite.
        delay: propagation delay in seconds, or a callable
            ``delay(now) -> seconds`` for time-varying paths.
        queue: egress queue; an unbounded DropTailQueue by default.
        loss: medium loss process applied per transmitted packet.
        name: label used in traces and diagnostics.
    """

    def __init__(self, sim: Simulator, dst,
                 rate: float | Callable[[float], float] | None = None,
                 delay: float | Callable[[float], float] = 0.0,
                 queue: DropTailQueue | None = None,
                 loss: LossModel | None = None,
                 name: str = ""):
        if rate is not None and not callable(rate) and rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.dst = dst
        self._rate = rate
        self._delay = delay
        # Explicit None check: an empty DropTailQueue is falsy (len 0).
        self.queue = queue if queue is not None else DropTailQueue()
        if getattr(self.queue, "clock", "absent") is None:
            # AQM queues (CoDel) need the simulated clock for
            # sojourn-time measurements.
            self.queue.clock = lambda: self.sim.now
        self.loss = loss or NoLoss()
        self.name = name
        self._busy = False
        self._last_delivery_time = float("-inf")
        # statistics
        self.sent = 0
        self.delivered = 0
        self.lost_medium = 0
        self.bytes_delivered = 0
        # trace hooks
        self.on_transmit: Callable[[float, Packet], None] | None = None
        self.on_deliver: Callable[[float, Packet], None] | None = None
        self.on_loss: Callable[[float, Packet, str], None] | None = None

    @property
    def rate(self) -> float | None:
        """Transmission rate now, bit/s (None = infinite)."""
        if callable(self._rate):
            return self._rate(self.sim.now)
        return self._rate

    def set_rate(self,
                 rate: float | Callable[[float], float] | None) -> None:
        """Change the link rate (static value or callable)."""
        if rate is not None and not callable(rate) and rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self._rate = rate

    def propagation_delay(self, now: float) -> float:
        """Propagation delay that applies to a packet sent at ``now``."""
        if callable(self._delay):
            return self._delay(now)
        return self._delay

    def set_delay(self, delay: float | Callable[[float], float]) -> None:
        """Replace the propagation-delay model."""
        self._delay = delay

    def send(self, packet: Packet) -> None:
        """Entry point: enqueue ``packet`` for transmission."""
        self.sent += 1
        if self._rate is None:
            # Infinite-rate pipe: no serialisation, no queueing.
            self._launch(packet)
            return
        if self._busy:
            if not self.queue.push(packet):
                if self.on_loss is not None:
                    self.on_loss(self.sim.now, packet, "queue-drop")
            return
        self._start_transmission(packet)

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        rate = self._rate
        if callable(rate):
            rate = rate(self.sim.now)
        tx_time = packet.size * 8.0 / rate
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self._launch(packet)
        next_packet = self.queue.pop()
        if next_packet is not None:
            self._start_transmission(next_packet)
        else:
            self._busy = False

    def _launch(self, packet: Packet) -> None:
        """Apply medium loss, then schedule delivery after propagation."""
        now = self.sim.now
        if self.on_transmit is not None:
            self.on_transmit(now, packet)
        if self.loss.is_lost(now):
            self.lost_medium += 1
            if self.on_loss is not None:
                self.on_loss(now, packet, "medium")
            return
        # FIFO guarantee: random per-packet delay components (jitter)
        # must not reorder packets -- real link-layer schedulers delay
        # but do not overtake. Later packets queue behind the slowest
        # recent delivery.
        target = now + self.propagation_delay(now)
        if target < self._last_delivery_time:
            target = self._last_delivery_time
        self._last_delivery_time = target
        self.sim.at(target, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.delivered += 1
        self.bytes_delivered += packet.size
        if self.on_deliver is not None:
            self.on_deliver(self.sim.now, packet)
        self.dst.receive(packet, self)

    def __repr__(self) -> str:
        return f"<Pipe {self.name or id(self)} -> {self.dst!r}>"


class Link:
    """Bidirectional link between nodes ``a`` and ``b``.

    Each direction is an independent :class:`Pipe`; asymmetric rates
    (e.g. Starlink's ~200/17 Mbit/s) are expressed by passing
    different ``rate_ab`` and ``rate_ba``.
    """

    def __init__(self, sim: Simulator, a, b,
                 rate_ab: float | None = None,
                 rate_ba: float | None = None,
                 delay: float | Callable[[float], float] = 0.0,
                 delay_ba: float | Callable[[float], float] | None = None,
                 queue_ab: DropTailQueue | None = None,
                 queue_ba: DropTailQueue | None = None,
                 loss_ab: LossModel | None = None,
                 loss_ba: LossModel | None = None,
                 name: str = ""):
        self.a = a
        self.b = b
        self.name = name or f"{a.name}<->{b.name}"
        self.pipe_ab = Pipe(sim, b, rate=rate_ab, delay=delay,
                            queue=queue_ab, loss=loss_ab,
                            name=f"{a.name}->{b.name}")
        self.pipe_ba = Pipe(sim, a, rate=rate_ba,
                            delay=delay if delay_ba is None else delay_ba,
                            queue=queue_ba, loss=loss_ba,
                            name=f"{b.name}->{a.name}")
        a.attach(b.name, self.pipe_ab)
        b.attach(a.name, self.pipe_ba)

    def pipe_from(self, node) -> Pipe:
        """The egress pipe as seen from ``node``."""
        if node is self.a:
            return self.pipe_ab
        if node is self.b:
            return self.pipe_ba
        raise ConfigurationError(f"{node!r} is not an endpoint of {self!r}")

    def __repr__(self) -> str:
        return f"<Link {self.name}>"
