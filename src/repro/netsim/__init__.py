"""Packet-level discrete-event network simulator.

This package is the substrate everything else runs on: a simulated
clock and event heap (:mod:`engine`), packets with mutable header
fields (:mod:`packet`), links with finite rate, propagation delay,
queues and loss processes (:mod:`link`, :mod:`queues`, :mod:`loss`),
and nodes -- hosts, routers, NAT boxes, PEP boxes and traffic shapers
(:mod:`node`). :mod:`topology` offers a convenience builder that wires
nodes together and installs shortest-path routes.
"""

from repro.netsim.engine import Simulator, Event
from repro.netsim.packet import Packet, Protocol
from repro.netsim.link import Link, Pipe
from repro.netsim.queues import CoDelQueue, DropTailQueue
from repro.netsim.loss import (
    NoLoss,
    BernoulliLoss,
    GilbertElliottLoss,
    TimedGilbertElliottLoss,
    OutageSchedule,
    CompositeLoss,
)
from repro.netsim.node import Node, Host, Router, NatBox, Shaper
from repro.netsim.topology import Network

__all__ = [
    "Simulator",
    "Event",
    "Packet",
    "Protocol",
    "Link",
    "Pipe",
    "CoDelQueue",
    "DropTailQueue",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "TimedGilbertElliottLoss",
    "OutageSchedule",
    "CompositeLoss",
    "Node",
    "Host",
    "Router",
    "NatBox",
    "Shaper",
    "Network",
]
