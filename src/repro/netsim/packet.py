"""Packets and protocol identifiers.

A :class:`Packet` models one IP datagram. The transport payload is an
arbitrary Python object (a TCP segment, a QUIC packet, an application
record); ``size`` is the on-the-wire size in bytes and is what links
serialise. ``headers`` is a mutable dict of header fields that
middleboxes (NATs, PEPs, shapers) may rewrite -- the Tracebox
application detects middleboxes by comparing this dict hop by hop.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

#: Fixed overhead added on the wire for IP + transport framing, bytes.
IP_HEADER_SIZE = 20
UDP_HEADER_SIZE = 8
TCP_HEADER_SIZE = 20
ICMP_HEADER_SIZE = 8

#: Default IPv4 time-to-live.
DEFAULT_TTL = 64

_packet_ids = itertools.count(1)


class Protocol(enum.Enum):
    """Transport protocol carried by a packet."""

    ICMP = "icmp"
    TCP = "tcp"
    UDP = "udp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IcmpType(enum.Enum):
    """Subset of ICMP message types used by ping and traceroute."""

    ECHO_REQUEST = "echo-request"
    ECHO_REPLY = "echo-reply"
    TIME_EXCEEDED = "time-exceeded"
    DEST_UNREACHABLE = "dest-unreachable"


@dataclass
class Packet:
    """One simulated IP datagram.

    Attributes:
        src, dst: node addresses (dotted-quad strings).
        protocol: transport protocol of the payload.
        size: total on-the-wire size in bytes (headers included).
        src_port, dst_port: transport ports (0 for ICMP).
        ttl: remaining hop count; routers decrement it.
        payload: opaque transport/application object.
        headers: mutable header-field dict inspected by Tracebox.
        uid: globally unique packet id (diagnostics, NAT mapping).
        created_at: simulated time the packet was built, if known.
    """

    src: str
    dst: str
    protocol: Protocol
    size: int
    src_port: int = 0
    dst_port: int = 0
    ttl: int = DEFAULT_TTL
    payload: Any = None
    headers: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
        # Every packet carries a pseudo transport checksum so that NATs
        # have something observable to rewrite (Sec 3.5 of the paper:
        # "Only the TCP and UDP checksums are altered by the NATs").
        self.headers.setdefault("checksum", self._checksum())

    def _checksum(self) -> int:
        """Pseudo checksum over the addressing 5-tuple."""
        material = (self.src, self.src_port, self.dst, self.dst_port,
                    self.protocol.value)
        return hash(material) & 0xFFFF

    def refresh_checksum(self) -> None:
        """Recompute the pseudo checksum after a header rewrite."""
        self.headers["checksum"] = self._checksum()

    def copy_headers(self) -> dict[str, Any]:
        """Snapshot of the header dict (for ICMP quoting/Tracebox)."""
        return dict(self.headers)

    def reply_to(self) -> tuple[str, int]:
        """Address/port a response to this packet should target."""
        return self.src, self.src_port

    def __repr__(self) -> str:
        return (f"<Packet #{self.uid} {self.protocol.value} "
                f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port} "
                f"{self.size}B ttl={self.ttl}>")


@dataclass
class IcmpMessage:
    """Payload of an ICMP packet."""

    icmp_type: IcmpType
    ident: int = 0
    seq: int = 0
    #: Header snapshot of the offending packet (TIME_EXCEEDED quotes).
    quoted_headers: dict[str, Any] | None = None
    #: Address of the node that generated the message.
    origin: str = ""
    #: Echo payload timestamp for RTT computation.
    timestamp: float = 0.0
