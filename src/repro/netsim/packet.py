"""Packets and protocol identifiers.

A :class:`Packet` models one IP datagram. The transport payload is an
arbitrary Python object (a TCP segment, a QUIC packet, an application
record); ``size`` is the on-the-wire size in bytes and is what links
serialise. ``headers`` is a mutable dict of header fields that
middleboxes (NATs, PEPs, shapers) may rewrite -- the Tracebox
application detects middleboxes by comparing this dict hop by hop.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any

#: Fixed overhead added on the wire for IP + transport framing, bytes.
IP_HEADER_SIZE = 20
UDP_HEADER_SIZE = 8
TCP_HEADER_SIZE = 20
ICMP_HEADER_SIZE = 8

#: Default IPv4 time-to-live.
DEFAULT_TTL = 64

_packet_ids = itertools.count(1)


class Protocol(enum.Enum):
    """Transport protocol carried by a packet."""

    ICMP = "icmp"
    TCP = "tcp"
    UDP = "udp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IcmpType(enum.Enum):
    """Subset of ICMP message types used by ping and traceroute."""

    ECHO_REQUEST = "echo-request"
    ECHO_REPLY = "echo-reply"
    TIME_EXCEEDED = "time-exceeded"
    DEST_UNREACHABLE = "dest-unreachable"


class Packet:
    """One simulated IP datagram.

    Attributes:
        src, dst: node addresses (dotted-quad strings).
        protocol: transport protocol of the payload.
        size: total on-the-wire size in bytes (headers included).
        src_port, dst_port: transport ports (0 for ICMP).
        ttl: remaining hop count; routers decrement it.
        payload: opaque transport/application object.
        headers: mutable header-field dict inspected by Tracebox.
        uid: globally unique packet id (diagnostics, NAT mapping).
        created_at: simulated time the packet was built, if known.

    ``__slots__`` plus a lazily-allocated ``headers`` dict: bulk flows
    build millions of packets whose headers nobody reads (only
    Tracebox and the NAT/PEP middleboxes touch them), so the dict --
    and the pseudo checksum seeding it -- is materialised on first
    access rather than per construction. Reading ``headers`` always
    yields a dict containing at least ``checksum``, exactly as the
    eager constructor produced.

    The checksum itself is computed lazily too: it is a pure function
    of the addressing 5-tuple, and every rewrite site mutates the
    fields and then calls :meth:`refresh_checksum`, so deferring the
    hash to the next ``headers`` read yields the identical value the
    eager recompute produced (NAT boxes rewrite ~2x per forwarded
    packet while nothing reads the result on the fast path).
    """

    __slots__ = ("src", "dst", "protocol", "size", "src_port",
                 "dst_port", "ttl", "payload", "_headers", "uid",
                 "created_at", "_ck_stale")

    def __init__(self, src: str, dst: str, protocol: Protocol,
                 size: int, src_port: int = 0, dst_port: int = 0,
                 ttl: int = DEFAULT_TTL, payload: Any = None,
                 headers: dict[str, Any] | None = None,
                 uid: int | None = None, created_at: float = 0.0):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.size = size
        self.src_port = src_port
        self.dst_port = dst_port
        self.ttl = ttl
        self.payload = payload
        self.uid = next(_packet_ids) if uid is None else uid
        self.created_at = created_at
        if headers:
            # Every packet carries a pseudo transport checksum so that
            # NATs have something observable to rewrite (Sec 3.5 of
            # the paper: "Only the TCP and UDP checksums are altered
            # by the NATs"). Seeded on first read; a caller-supplied
            # checksum is kept, as setdefault would.
            self._headers = headers
            self._ck_stale = "checksum" not in headers
        else:
            # Empty/absent header dicts are deferred; the checksum is
            # seeded on first access, same content and key order as
            # the eager path.
            self._headers = None
            self._ck_stale = False

    @property
    def headers(self) -> dict[str, Any]:
        hdrs = self._headers
        if hdrs is None:
            hdrs = self._headers = {"checksum": self._checksum()}
            self._ck_stale = False
        elif self._ck_stale:
            hdrs["checksum"] = self._checksum()
            self._ck_stale = False
        return hdrs

    def _checksum(self) -> int:
        """Pseudo checksum over the addressing 5-tuple."""
        material = (self.src, self.src_port, self.dst, self.dst_port,
                    self.protocol.value)
        return hash(material) & 0xFFFF

    def refresh_checksum(self) -> None:
        """Mark the pseudo checksum for recomputation after a rewrite.

        The recompute is deferred to the next ``headers`` read: the
        checksum depends only on fields that every rewrite site
        updates *before* calling this, so the deferred hash sees the
        same field values the eager recompute would have.
        """
        self._ck_stale = True

    def copy_headers(self) -> dict[str, Any]:
        """Snapshot of the header dict (for ICMP quoting/Tracebox)."""
        return dict(self.headers)

    def reply_to(self) -> tuple[str, int]:
        """Address/port a response to this packet should target."""
        return self.src, self.src_port

    def __repr__(self) -> str:
        return (f"<Packet #{self.uid} {self.protocol.value} "
                f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port} "
                f"{self.size}B ttl={self.ttl}>")


@dataclass
class IcmpMessage:
    """Payload of an ICMP packet."""

    icmp_type: IcmpType
    ident: int = 0
    seq: int = 0
    #: Header snapshot of the offending packet (TIME_EXCEEDED quotes).
    quoted_headers: dict[str, Any] | None = None
    #: Address of the node that generated the message.
    origin: str = ""
    #: Echo payload timestamp for RTT computation.
    timestamp: float = 0.0
