"""Invariant checkers for the discrete-event core.

The checkers hook individual *instances* of :class:`Simulator`,
:class:`Pipe` and the queue classes by shadowing the relevant methods
with checking wrappers (instance attributes win over class
attributes), so nothing in the production code paths changes unless a
checker is attached. Four families of invariants are enforced:

* **clock monotonicity** -- events fire at exactly their scheduled
  time and the simulated clock never moves backwards;
* **per-pipe FIFO delivery** -- packets leave a pipe in the order they
  were transmitted, with non-decreasing delivery times;
* **packet conservation** -- every packet handed to a pipe is
  delivered, dropped (queue or medium), still queued, serialising, or
  in flight; none is duplicated or silently vanishes;
* **queue bounds** -- a queue never exceeds its byte/packet capacity
  and its byte accounting always matches its contents.

Use :func:`check_invariants` to watch specific objects::

    with check_invariants(access.net):
        run_speedtest(...)

or :func:`global_checking` / ``REPRO_INVARIANTS=1`` (see
``tests/conftest.py``) to transparently watch every simulator, pipe
and queue constructed while the context is active.

Violations raise :class:`repro.errors.InvariantViolation` at the
moment the rule breaks, so the failing event is at the top of the
traceback.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass, field

from repro.errors import InvariantViolation
from repro.netsim.engine import Simulator
from repro.netsim.link import Pipe
from repro.netsim.queues import DropTailQueue

#: Queues longer than this are byte-audited every N ops, not every op
#: (the audit is O(len); deep buffers would turn checking quadratic).
_FULL_AUDIT_MAX_LEN = 64
_SAMPLED_AUDIT_PERIOD = 16

_WATCH_MARK = "_repro_invariants_watched"


@dataclass
class _SimState:
    last_fire_time: float = float("-inf")
    events_checked: int = 0


@dataclass
class _PipeState:
    in_flight: deque = field(default_factory=deque)
    serialising: int = 0
    cleared: int = 0
    delivered: int = 0
    last_rx_time: float = float("-inf")


@dataclass
class _QueueState:
    ops: int = 0


class InvariantChecker:
    """Attaches checking wrappers to simulators, pipes and queues.

    Create one, :meth:`watch` the objects of interest (a
    :class:`Simulator`, :class:`Pipe`, ``Link``, ``DropTailQueue``,
    ``Network`` or any access object exposing ``.net``), run the
    experiment, then :meth:`verify` and :meth:`detach`. The
    :func:`check_invariants` context manager does all of that.
    """

    def __init__(self):
        self._restores: list[tuple[object, str]] = []
        self._sims: list[tuple[Simulator, _SimState]] = []
        self._pipes: list[tuple[Pipe, _PipeState]] = []
        self._queues: list[tuple[DropTailQueue, _QueueState]] = []
        #: Cleared on detach; wrappers captured by already-scheduled
        #: events keep firing afterwards and must become pass-throughs.
        self._active = True

    # -- attachment dispatch ---------------------------------------------

    def watch(self, obj) -> "InvariantChecker":
        """Attach checks to ``obj`` (dispatching on its type)."""
        if getattr(obj, _WATCH_MARK, None) is self:
            return self
        if isinstance(obj, Simulator):
            self._watch_sim(obj)
        elif isinstance(obj, Pipe):
            self._watch_pipe(obj)
        elif isinstance(obj, DropTailQueue):
            self._watch_queue(obj)
        elif hasattr(obj, "pipe_ab") and hasattr(obj, "pipe_ba"):
            self.watch(obj.pipe_ab)
            self.watch(obj.pipe_ba)
        elif hasattr(obj, "sim") and hasattr(obj, "links"):
            self._watch_network(obj)
        elif hasattr(obj, "net"):
            # Access objects (StarlinkAccess, GeoSatComAccess, ...).
            self.watch(obj.net)
        else:
            raise TypeError(f"cannot attach invariant checks to {obj!r}")
        return self

    def _mark(self, obj) -> None:
        setattr(obj, _WATCH_MARK, self)
        self._restores.append((obj, _WATCH_MARK))

    def _shadow(self, obj, name: str, wrapper) -> None:
        """Install ``wrapper`` as an instance attribute shadowing
        ``obj``'s class method ``name`` (recorded for detach)."""
        setattr(obj, name, wrapper)
        self._restores.append((obj, name))

    # -- simulator checks ------------------------------------------------

    def _watch_sim(self, sim: Simulator) -> None:
        self._mark(sim)
        state = _SimState()
        self._sims.append((sim, state))
        orig_at = sim.at  # bound class methods
        orig_post = sim.post

        def wrap_fire(time, fn):
            def checked_fn(*fn_args):
                if not self._active:
                    return fn(*fn_args)
                if sim.now != time:
                    raise InvariantViolation(
                        f"event scheduled for t={time!r} fired at "
                        f"t={sim.now!r}")
                if sim.now < state.last_fire_time:
                    raise InvariantViolation(
                        f"clock moved backwards: event at t={sim.now!r} "
                        f"after one at t={state.last_fire_time!r}")
                state.last_fire_time = sim.now
                state.events_checked += 1
                return fn(*fn_args)

            return checked_fn

        def checked_at(time, fn, *args):
            return orig_at(time, wrap_fire(time, fn), *args)

        def checked_post(time, fn, *args):
            # post() is the fire-and-forget fast path (no Event
            # handle); it must be observed exactly like at().
            return orig_post(time, wrap_fire(time, fn), *args)

        self._shadow(sim, "at", checked_at)
        self._shadow(sim, "post", checked_post)

    # -- network ----------------------------------------------------------

    def _watch_network(self, net) -> None:
        self._mark(net)
        self.watch(net.sim)
        for link in net.links:
            self.watch(link)
        orig_connect = net.connect

        def checked_connect(*args, **kwargs):
            link = orig_connect(*args, **kwargs)
            self.watch(link)
            return link

        self._shadow(net, "connect", checked_connect)

    # -- pipe checks -------------------------------------------------------

    def _watch_pipe(self, pipe: Pipe) -> None:
        self._mark(pipe)
        state = _PipeState()
        self._pipes.append((pipe, state))
        self.watch(pipe.queue)
        self._watch_pipe_queue_clear(pipe, state)

        orig_send = pipe.send
        orig_start = pipe._start_transmission
        orig_finish = pipe._finish_transmission
        orig_launch = pipe._launch
        orig_deliver = pipe._deliver

        def conservation_check() -> None:
            if not self._active:
                return
            accounted = (state.delivered + pipe.lost_medium
                         + pipe.queue.drops + len(pipe.queue)
                         + state.serialising + len(state.in_flight)
                         + state.cleared)
            if pipe.sent != accounted:
                raise InvariantViolation(
                    f"packet conservation broken on pipe {pipe.name!r}: "
                    f"sent={pipe.sent} but delivered={state.delivered} "
                    f"medium-lost={pipe.lost_medium} "
                    f"queue-dropped={pipe.queue.drops} "
                    f"queued={len(pipe.queue)} "
                    f"serialising={state.serialising} "
                    f"in-flight={len(state.in_flight)} "
                    f"cleared={state.cleared} "
                    f"(total {accounted})")

        def checked_send(packet):
            result = orig_send(packet)
            conservation_check()
            return result

        def checked_start(packet):
            if self._active:
                state.serialising += 1
            result = orig_start(packet)
            conservation_check()
            return result

        def checked_finish(packet):
            if self._active:
                state.serialising -= 1
            result = orig_finish(packet)
            conservation_check()
            return result

        def checked_launch(packet):
            lost_before = pipe.lost_medium
            result = orig_launch(packet)
            if self._active and pipe.lost_medium == lost_before:
                state.in_flight.append(packet)
            conservation_check()
            return result

        def checked_deliver(packet):
            if not self._active:
                return orig_deliver(packet)
            if not state.in_flight:
                raise InvariantViolation(
                    f"pipe {pipe.name!r} delivered {packet!r} which was "
                    "never transmitted")
            expected = state.in_flight.popleft()
            if expected is not packet:
                raise InvariantViolation(
                    f"FIFO order broken on pipe {pipe.name!r}: delivered "
                    f"{packet!r} before {expected!r}")
            now = pipe.sim.now
            if now < state.last_rx_time:
                raise InvariantViolation(
                    f"delivery time moved backwards on pipe {pipe.name!r}: "
                    f"{now!r} after {state.last_rx_time!r}")
            state.last_rx_time = now
            state.delivered += 1
            result = orig_deliver(packet)
            conservation_check()
            return result

        self._shadow(pipe, "send", checked_send)
        self._shadow(pipe, "_start_transmission", checked_start)
        self._shadow(pipe, "_finish_transmission", checked_finish)
        self._shadow(pipe, "_launch", checked_launch)
        self._shadow(pipe, "_deliver", checked_deliver)
        pipe._conservation_check = conservation_check
        self._restores.append((pipe, "_conservation_check"))

    def _watch_pipe_queue_clear(self, pipe: Pipe, state: _PipeState) -> None:
        """Account packets discarded by ``queue.clear()`` (teardown)."""
        queue = pipe.queue
        orig_clear = queue.clear

        def checked_clear():
            if self._active:
                state.cleared += len(queue)
            return orig_clear()

        self._shadow(queue, "clear", checked_clear)

    # -- queue checks -------------------------------------------------------

    def _watch_queue(self, queue: DropTailQueue) -> None:
        if getattr(queue, _WATCH_MARK, None) is self:
            return
        self._mark(queue)
        state = _QueueState()
        self._queues.append((queue, state))
        orig_push = type(queue).push.__get__(queue)
        orig_pop = type(queue).pop.__get__(queue)

        def audit() -> None:
            if not self._active:
                return
            state.ops += 1
            self._audit_queue(queue, state)

        def checked_push(packet):
            accepted = orig_push(packet)
            audit()
            return accepted

        def checked_pop():
            packet = orig_pop()
            audit()
            return packet

        self._shadow(queue, "push", checked_push)
        self._shadow(queue, "pop", checked_pop)

    def _audit_queue(self, queue: DropTailQueue,
                     state: _QueueState, force: bool = False) -> None:
        n = len(queue._queue)
        if (queue.capacity_packets is not None
                and n > queue.capacity_packets):
            raise InvariantViolation(
                f"queue over packet capacity: {n} > "
                f"{queue.capacity_packets}")
        if (queue.capacity_bytes is not None
                and queue._bytes > queue.capacity_bytes):
            raise InvariantViolation(
                f"queue over byte capacity: {queue._bytes} > "
                f"{queue.capacity_bytes}")
        if queue._bytes < 0:
            raise InvariantViolation(
                f"queue byte count went negative: {queue._bytes}")
        if (not force and n > _FULL_AUDIT_MAX_LEN
                and state.ops % _SAMPLED_AUDIT_PERIOD):
            return
        actual = sum(p.size for p in queue._queue)
        if queue._bytes != actual:
            raise InvariantViolation(
                f"queue byte accounting drifted: tracked {queue._bytes}, "
                f"contents sum to {actual}")

    # -- lifecycle ---------------------------------------------------------

    def verify(self) -> None:
        """Run the end-state checks (conservation, queue audits)."""
        for pipe, state in self._pipes:
            check = getattr(pipe, "_conservation_check", None)
            if check is not None:
                check()
        for queue, state in self._queues:
            self._audit_queue(queue, state, force=True)

    def detach(self) -> None:
        """Remove every wrapper, restoring the original methods."""
        self._active = False
        for obj, name in reversed(self._restores):
            try:
                delattr(obj, name)
            except AttributeError:
                pass
        self._restores.clear()

    @property
    def watched_counts(self) -> dict[str, int]:
        """How many objects of each kind are being checked."""
        return {"sims": len(self._sims), "pipes": len(self._pipes),
                "queues": len(self._queues)}


@contextlib.contextmanager
def check_invariants(*objects):
    """Watch ``objects`` for the duration of the block, then verify.

    Yields the :class:`InvariantChecker` so tests can watch more
    objects mid-flight (e.g. links created after the block starts).
    """
    checker = InvariantChecker()
    for obj in objects:
        checker.watch(obj)
    try:
        yield checker
        checker.verify()
    finally:
        checker.detach()


# -- process-global mode ---------------------------------------------------

_GLOBAL: InvariantChecker | None = None
_GLOBAL_DEPTH = 0
_PATCHED_INITS: list[tuple[type, object]] = []


def install_global_checks() -> InvariantChecker:
    """Auto-watch every Simulator/Pipe/queue built from now on.

    Patches the constructors so each new instance attaches itself to a
    shared checker. Call :func:`uninstall_global_checks` (or use
    :func:`global_checking`) to undo. Installs nest: a
    :func:`global_checking` block inside an already-installed mode
    (e.g. the suite-wide ``REPRO_INVARIANTS=1`` fixture) joins the
    existing checker, and only the outermost uninstall tears down.
    """
    global _GLOBAL, _GLOBAL_DEPTH
    _GLOBAL_DEPTH += 1
    if _GLOBAL is not None:
        return _GLOBAL
    checker = InvariantChecker()
    _GLOBAL = checker

    def patch_init(cls):
        orig_init = cls.__init__

        def watching_init(self, *args, **kwargs):
            orig_init(self, *args, **kwargs)
            checker.watch(self)

        cls.__init__ = watching_init
        _PATCHED_INITS.append((cls, orig_init))

    patch_init(Simulator)
    patch_init(Pipe)
    patch_init(DropTailQueue)
    return checker


def uninstall_global_checks(verify: bool = True) -> None:
    """Undo one :func:`install_global_checks`; verify end-state first.

    Only the outermost uninstall removes the constructor patches and
    detaches the shared checker; inner ones just verify.
    """
    global _GLOBAL, _GLOBAL_DEPTH
    if _GLOBAL is None:
        return
    checker = _GLOBAL
    _GLOBAL_DEPTH -= 1
    if _GLOBAL_DEPTH > 0:
        if verify:
            checker.verify()
        return
    try:
        for cls, orig_init in _PATCHED_INITS:
            cls.__init__ = orig_init
        _PATCHED_INITS.clear()
        if verify:
            checker.verify()
    finally:
        checker.detach()
        _GLOBAL = None


@contextlib.contextmanager
def global_checking():
    """Process-global invariant checking for the duration of the block."""
    checker = install_global_checks()
    try:
        yield checker
    except BaseException:
        uninstall_global_checks(verify=False)
        raise
    else:
        uninstall_global_checks(verify=True)
