"""Property-based scenario generation for replay checking.

Lightweight seeded generators (no third-party dependency) that build a
random topology plus a random packet workload, run it to completion,
and fingerprint the full packet trace. Running the same
:class:`Scenario` twice must produce bit-identical digests -- that is
the determinism property the paper's measurement pipeline (and every
figure-level benchmark) silently relies on.

On a failure, :func:`shrink` walks the scenario down (fewer packets,
links, nodes) while the failure reproduces, so the reported
counterexample is close to minimal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.disrupt.scenarios import Scenario as DisruptScenario
from repro.disrupt.scenarios import register_scenario, unregister_scenario
from repro.disrupt.schedule import DisruptionSchedule, DisruptionWindow
from repro.leo.ground import STARLINK_GATEWAYS
from repro.leo.mobility import (
    OBSTRUCTION_PROFILES,
    ObstructionTrace,
    StationaryTrajectory,
    Trajectory,
    drive_trajectory,
)
from repro.netsim.loss import BernoulliLoss
from repro.netsim.node import Host
from repro.netsim.packet import Packet, Protocol
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network
from repro.netsim.trace import PipeTracer
from repro.rng import make_rng
from repro.testing.digest import digest_records

#: Discard port for workload packets (never bound -> no replies).
_SINK_PORT = 9


@dataclass(frozen=True)
class Scenario:
    """A fully seeded topology + workload recipe.

    Every structural and stochastic choice downstream derives from
    these fields through :func:`repro.rng.make_rng`, so the scenario
    *is* the experiment: equal scenarios replay bit-identically.
    """

    seed: int
    n_hosts: int = 3
    n_routers: int = 2
    n_extra_links: int = 1
    n_packets: int = 30
    horizon_s: float = 5.0

    def __post_init__(self):
        if self.n_hosts < 2:
            raise ValueError("a scenario needs at least two hosts")


def random_scenario(seed: int, max_hosts: int = 6, max_routers: int = 4,
                    max_extra_links: int = 4,
                    max_packets: int = 60) -> Scenario:
    """Draw a random scenario, itself deterministic in ``seed``."""
    rng = make_rng(("scenario-shape", seed))
    return Scenario(
        seed=seed,
        n_hosts=2 + rng.randrange(max(1, max_hosts - 1)),
        n_routers=rng.randrange(max_routers + 1),
        n_extra_links=rng.randrange(max_extra_links + 1),
        n_packets=1 + rng.randrange(max_packets),
        horizon_s=1.0 + rng.random() * 9.0)


def build_network(sc: Scenario) -> tuple[Network, dict[str, PipeTracer]]:
    """Build the scenario's topology with a tracer on every pipe."""
    rng = make_rng(("scenario-topology", sc.seed, sc.n_hosts,
                    sc.n_routers, sc.n_extra_links))
    net = Network()
    names = [f"h{i}" for i in range(sc.n_hosts)]
    for name in names:
        net.add_host(name)
    for i in range(sc.n_routers):
        name = f"r{i}"
        net.add_router(name)
        names.append(name)

    def connect(a: str, b: str) -> None:
        rate = rng.choice([None, 1e6, 5e6, 2e7, 1e8])
        cap = rng.choice([None, 4, 16, 64])
        loss_p = rng.choice([0.0, 0.0, 0.0, 0.02, 0.1])
        net.connect(
            a, b, rate_ab=rate, rate_ba=rate,
            delay=rng.uniform(0.0005, 0.05),
            queue_ab=DropTailQueue(capacity_packets=cap),
            queue_ba=DropTailQueue(capacity_packets=cap),
            loss_ab=BernoulliLoss(
                loss_p, rng=make_rng((sc.seed, "loss", a, b))),
            loss_ba=BernoulliLoss(
                loss_p, rng=make_rng((sc.seed, "loss", b, a))))

    # Random spanning tree first (keeps every node reachable), then a
    # few extra links for alternative paths.
    for i in range(1, len(names)):
        connect(names[i], names[rng.randrange(i)])
    edges = {frozenset((link.a.name, link.b.name)) for link in net.links}
    for _ in range(sc.n_extra_links):
        a, b = rng.sample(names, 2)
        if frozenset((a, b)) in edges:
            continue
        edges.add(frozenset((a, b)))
        connect(a, b)
    net.finalize()
    tracers = {}
    for link in net.links:
        for pipe in (link.pipe_ab, link.pipe_ba):
            tracers[pipe.name] = PipeTracer(pipe)
    return net, tracers


def arm_workload(net: Network, sc: Scenario) -> None:
    """Schedule the scenario's random packet workload on ``net``."""
    rng = make_rng(("scenario-workload", sc.seed, sc.n_packets))
    hosts = [n for n in net.nodes.values() if isinstance(n, Host)]
    for _ in range(sc.n_packets):
        src = rng.choice(hosts)
        dst = rng.choice([h for h in hosts if h is not src])
        t = rng.random() * sc.horizon_s
        size = 64 + rng.randrange(1400)
        packet = Packet(src=src.address, dst=dst.address,
                        protocol=Protocol.TCP, size=size,
                        src_port=40000, dst_port=_SINK_PORT,
                        created_at=t)
        net.sim.at(t, src.send, packet)


def run_and_digest(sc: Scenario, max_events: int = 1_000_000) -> str:
    """Build, run to idle, and fingerprint one scenario execution."""
    net, tracers = build_network(sc)
    arm_workload(net, sc)
    net.sim.run_until_idle(max_events=max_events)
    return digest_records(
        {name: tracer.records for name, tracer in tracers.items()})


def replay_digests(sc: Scenario, runs: int = 2) -> list[str]:
    """Digests of ``runs`` independent executions of ``sc``."""
    return [run_and_digest(sc) for _ in range(runs)]


def replay_is_deterministic(sc: Scenario) -> bool:
    """Whether two fresh runs of ``sc`` produce identical traces."""
    first, second = replay_digests(sc)
    return first == second


def shrink(sc: Scenario, fails) -> Scenario:
    """Smallest scenario (greedily) for which ``fails`` still holds.

    ``fails(candidate) -> bool`` must return True while the failure
    reproduces. Shrinking lowers one dimension at a time (packets
    first, then links, routers, hosts, horizon) and restarts after
    every successful reduction, so the result is a local minimum.
    """
    current = sc
    improved = True
    while improved:
        improved = False
        for candidate in _shrink_candidates(current):
            if fails(candidate):
                current = candidate
                improved = True
                break
    return current


def _shrink_candidates(sc: Scenario):
    if sc.n_packets > 1:
        yield replace(sc, n_packets=max(1, sc.n_packets // 2))
        yield replace(sc, n_packets=sc.n_packets - 1)
    if sc.n_extra_links > 0:
        yield replace(sc, n_extra_links=sc.n_extra_links - 1)
    if sc.n_routers > 0:
        yield replace(sc, n_routers=sc.n_routers - 1)
    if sc.n_hosts > 2:
        yield replace(sc, n_hosts=sc.n_hosts - 1)
    if sc.horizon_s > 1.0:
        yield replace(sc, horizon_s=max(1.0, sc.horizon_s / 2))


# -- random disruption schedules (repro.disrupt) ------------------------
#
# The measurement apps promise the no-hang invariant: under *any*
# valid disruption schedule a campaign terminates and every unit
# reports a structured MeasurementOutcome. These generators draw
# arbitrary valid schedules so tests can assert that property instead
# of spot-checking the five named scenarios.

#: Window kinds the generator draws from; "route" selects a blackout
#: with route withdrawal (one logical kind, two installers).
_DISRUPT_DRAW_KINDS = ("fade", "blackout", "route", "gateway_out",
                       "surge")


def random_disruption_windows(seed: int, horizon_s: float,
                              max_windows: int = 5
                              ) -> tuple[DisruptionWindow, ...]:
    """Draw up to ``max_windows`` valid windows in ``[0, horizon_s)``.

    Every structural choice (count, kinds, placement, severity,
    targets) derives from ``seed`` through :func:`repro.rng.make_rng`,
    so a schedule is replayable from its seed alone. Windows may
    overlap — the schedule API composes overlapping effects — and
    blackouts may start at t=0 (the handshake-loss worst case).
    """
    rng = make_rng(("disrupt-windows", seed, max_windows))
    gateways = [g.name for g in STARLINK_GATEWAYS]
    windows = []
    for _ in range(rng.randrange(max_windows + 1)):
        kind = rng.choice(_DISRUPT_DRAW_KINDS)
        start = rng.random() * horizon_s * 0.8
        end = start + 0.5 + rng.random() * (horizon_s - start - 0.5)
        severity = 0.05 + rng.random() * 0.95
        if kind == "gateway_out":
            windows.append(DisruptionWindow(
                "gateway_out", start, end, target=rng.choice(gateways)))
        elif kind == "route":
            windows.append(DisruptionWindow(
                "blackout", start, end, target="route"))
        elif kind == "blackout":
            windows.append(DisruptionWindow("blackout", start, end))
        else:
            windows.append(DisruptionWindow(kind, start, end,
                                            severity=severity))
    return tuple(windows)


def random_disruption_schedule(seed: int, horizon_s: float = 60.0,
                               max_windows: int = 5
                               ) -> DisruptionSchedule:
    """One random valid :class:`DisruptionSchedule` for ``seed``."""
    return DisruptionSchedule(
        name=f"random-{seed}",
        windows=random_disruption_windows(seed, horizon_s,
                                          max_windows))


# -- random trajectories and obstruction traces (repro.leo.mobility) ----
#
# Mobile-terminal mode extends the no-hang promise: under *any*
# trajectory x obstruction x disruption composition the apps still
# terminate with structured outcomes. These generators draw the
# mobility side of that product space.


def random_trajectory(seed: int, max_speed_kmh: float = 150.0,
                      max_duration_s: float = 3600.0
                      ) -> Trajectory | None:
    """Draw a seeded trajectory (or None: the classic fixed dish).

    The mix deliberately includes the degenerate shapes the digest
    gates rely on — no trajectory, a provably-stationary one, and a
    parked (speed 0) drive — alongside genuinely moving drives.
    """
    rng = make_rng(("mobility-trajectory", seed))
    roll = rng.random()
    if roll < 0.25:
        return None
    if roll < 0.40:
        return StationaryTrajectory()
    speed = rng.random() * max_speed_kmh
    if rng.random() < 0.15:
        speed = 0.0
    duration = 300.0 + rng.random() * (max_duration_s - 300.0)
    n_legs = 1 + rng.randrange(12)
    return drive_trajectory(seed, speed_kmh=speed,
                            duration_s=duration, n_legs=n_legs)


def random_obstruction_trace(seed: int, horizon_slots: int = 240
                             ) -> ObstructionTrace | None:
    """Draw a seeded obstruction trace (or None: clear sky).

    Traces may start obstructed — slot 0 can even draw the full-sky
    mask, the drive-into-a-tunnel-at-t=0 worst case the no-hang tests
    must survive.
    """
    rng = make_rng(("mobility-obstruction", seed))
    if rng.random() < 0.30:
        return None
    profile = rng.choice(sorted(OBSTRUCTION_PROFILES))
    obstructed_at_start = rng.random() < 0.25
    end_slot = 1 + rng.randrange(horizon_slots)
    return ObstructionTrace(seed, profile=profile, end_slot=end_slot,
                            obstructed_at_start=obstructed_at_start)


def register_random_scenario(seed: int, campaign_horizon_s: float,
                             overlay_horizon_s: float = 30.0,
                             max_windows: int = 4) -> str:
    """Register a random scenario; returns its name.

    The campaign schedule covers ``[0, campaign_horizon_s)`` of the
    analytic ping timeline and the overlay covers
    ``[0, overlay_horizon_s)`` of every packet experiment. Callers
    must :func:`repro.disrupt.unregister_scenario` the name when done
    (tests: use a try/finally).
    """
    name = f"random-{seed}"

    def build(config) -> DisruptScenario:
        return DisruptScenario(
            name=name,
            campaign=DisruptionSchedule(
                name=name,
                windows=random_disruption_windows(
                    seed, campaign_horizon_s, max_windows)),
            overlay=random_disruption_windows(
                seed + 1, overlay_horizon_s, max_windows))

    register_scenario(name, build)
    return name
