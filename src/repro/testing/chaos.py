"""Executor-level chaos harness: deterministic work-unit sabotage.

:class:`ChaosUnit` wraps any campaign work unit and misbehaves on
chosen attempt numbers — raise a :class:`~repro.errors.ChaosError`,
hang past the unit timeout, ``SIGKILL`` its own worker process, or
raise :class:`KeyboardInterrupt` (what Ctrl-C delivers) — and
otherwise delegates to the wrapped unit. The wrapper exposes the
wrapped unit's ``label``/``kind``/``config``, so journal keys, timings
and dataset digests are identical to running the clean unit; a chaos
run that recovers must therefore be bit-identical to a calm one.

Attempt numbers are claimed through ``O_CREAT | O_EXCL`` marker files
in a state directory, so the count is exact across retries, process
pools and even workers that die mid-attempt. That makes every
injection deterministic: "kill the worker on attempt 1, succeed on
attempt 2" replays the same way on every run, which is how the
executor's recovery paths (retry, timeout re-dispatch, degrade-mode
completion, resume-from-journal) are pinned by tests rather than luck.

::

    spec = ChaosSpec(kill_on=(1,))            # die once, then behave
    units = wrap_units(campaign.ping_units(), state_dir,
                       {"ping:de-frankfurt": spec})
    execute_units(units, workers=4, retries=1, journal=journal)
"""

from __future__ import annotations

import os
import re
import signal
import time
from dataclasses import dataclass, field, replace

from repro.errors import ChaosError, ConfigurationError
from repro.exec.sharding import atom_count, shard_label
from repro.rng import make_rng


def _marker_stem(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "unit"


def claim_attempt(state_dir: str | os.PathLike, label: str) -> int:
    """Atomically claim the next attempt number for ``label``.

    Each call creates one ``<label>.attempt-<n>`` marker with
    ``O_CREAT | O_EXCL``, so concurrent claimants (or a re-run after a
    worker died mid-attempt) can never observe the same number twice.
    """
    os.makedirs(state_dir, exist_ok=True)
    stem = _marker_stem(label)
    for attempt in range(1, 100_000):
        path = os.path.join(state_dir, f"{stem}.attempt-{attempt}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return attempt
    raise ChaosError(f"unit {label!r} exceeded 100000 attempts")


def attempts_made(state_dir: str | os.PathLike, label: str) -> int:
    """How many attempts have been claimed for ``label`` so far."""
    stem = _marker_stem(label)
    count = 0
    while os.path.exists(os.path.join(
            state_dir, f"{stem}.attempt-{count + 1}")):
        count += 1
    return count


@dataclass(frozen=True)
class ChaosSpec:
    """Which attempt numbers misbehave, and how.

    Faults are checked in the order kill / hang / interrupt / memerr /
    raise, so one attempt can only trigger one fault. ``hang_s``
    should comfortably exceed the executor's ``unit_timeout`` under
    test. ``memerr_on`` raises a plain :class:`MemoryError` — the
    allocation-failure shape the resource-governance layer must
    survive. ``balloon_on`` is pressure rather than failure: the
    attempt allocates and holds ``balloon_mb`` MiB of ballast for the
    duration of the wrapped run, so ``tracemalloc`` peaks and RSS
    watchdogs observably spike on exactly the chosen attempts.
    """

    raise_on: tuple[int, ...] = ()
    kill_on: tuple[int, ...] = ()
    hang_on: tuple[int, ...] = ()
    interrupt_on: tuple[int, ...] = ()
    memerr_on: tuple[int, ...] = ()
    balloon_on: tuple[int, ...] = ()
    balloon_mb: int = 64
    hang_s: float = 3600.0
    message: str = "chaos: injected unit failure"


@dataclass(frozen=True)
class ChaosInjection:
    """Log entry for one seeded sabotage (what, where, when)."""

    label: str
    fault: str             # "raise" | "kill" | "hang"
    attempt: int


@dataclass(frozen=True)
class ChaosUnit:
    """A work unit that sabotages chosen attempts, then delegates.

    Splittable inner units stay splittable: the wrapper delegates the
    atoms contract, claims each *shard's* attempts under the shard
    label (``label#s<start>-<stop>``), and strikes a shard only when
    ``shard_specs`` names it — so a test can SIGKILL one shard of one
    unit and prove the others were never re-run.
    """

    inner: object
    spec: ChaosSpec
    state_dir: str
    shard_specs: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.inner.label

    @property
    def kind(self) -> str:
        return self.inner.kind

    @property
    def config(self):
        return self.inner.config

    def _strike(self, spec: ChaosSpec, attempt: int,
                label: str) -> bytearray | None:
        """Misbehave if told to; returns ballast to hold, if any."""
        if attempt in spec.kill_on:
            os.kill(os.getpid(), signal.SIGKILL)
        if attempt in spec.hang_on:
            time.sleep(spec.hang_s)
        if attempt in spec.interrupt_on:
            raise KeyboardInterrupt
        if attempt in spec.memerr_on:
            raise MemoryError(
                f"chaos: injected allocation failure "
                f"(unit {label!r}, attempt {attempt})")
        if attempt in spec.raise_on:
            raise ChaosError(f"{spec.message} "
                             f"(unit {label!r}, attempt {attempt})")
        if attempt in spec.balloon_on:
            return bytearray(spec.balloon_mb << 20)
        return None

    def run(self):
        attempt = claim_attempt(self.state_dir, self.label)
        ballast = self._strike(self.spec, attempt, self.label)
        try:
            return self.inner.run()
        finally:
            del ballast

    # -- atoms contract (delegated, per-shard sabotage) --------------------

    def n_atoms(self) -> int:
        return atom_count(self.inner)

    def run_atoms(self, start: int, stop: int):
        label = shard_label(self.inner.label, start, stop)
        attempt = claim_attempt(self.state_dir, label)
        spec = self.shard_specs.get(label)
        ballast = None
        if spec is not None:
            ballast = self._strike(spec, attempt, label)
        try:
            return self.inner.run_atoms(start, stop)
        finally:
            del ballast

    def merge_atoms(self, payloads):
        return self.inner.merge_atoms(payloads)

    # -- streaming reduce contract (delegated verbatim) --------------------

    @property
    def streaming(self) -> bool:
        return bool(getattr(self.inner, "streaming", False))

    def init_partial(self):
        return self.inner.init_partial()

    def merge_partial(self, acc, shard_payload):
        return self.inner.merge_partial(acc, shard_payload)

    def finalize(self, acc):
        return self.inner.finalize(acc)


def wrap_units(units, state_dir: str | os.PathLike,
               specs: dict[str, ChaosSpec] | None = None,
               default: ChaosSpec | None = None,
               shard_specs: dict[str, dict[str, ChaosSpec]] | None = None
               ) -> list[ChaosUnit]:
    """Wrap every unit; ``specs`` maps labels to their sabotage.

    Units without a spec get ``default`` (calm by default), so attempt
    counting stays uniform across the whole run. ``shard_specs`` maps
    a *unit* label to a dict of *shard* labels
    (``label#s<start>-<stop>``, see
    :func:`repro.exec.sharding.shard_label`) and strikes only those
    shards when the unit runs split.
    """
    specs = specs or {}
    default = default or ChaosSpec()
    shard_specs = shard_specs or {}
    return [ChaosUnit(unit, specs.get(unit.label, default),
                      str(state_dir),
                      shard_specs=shard_specs.get(unit.label, {}))
            for unit in units]


def seeded_chaos(units, state_dir: str | os.PathLike, seed: int = 0,
                 p_raise: float = 0.0, p_kill: float = 0.0,
                 p_hang: float = 0.0, p_memerr: float = 0.0,
                 max_attempt: int = 1, hang_s: float = 3600.0
                 ) -> tuple[list[ChaosUnit], list[ChaosInjection]]:
    """Sabotage a seeded-random subset of ``units``.

    Each unit independently draws one fault (or none) and the attempt
    it strikes on, all through :func:`repro.rng.make_rng` — the same
    seed injects the same faults on every run. Returns the wrapped
    units plus the injection log, so a test can assert the executor's
    failure report lists *exactly* what was injected. ``p_memerr``
    injects allocation failures (:class:`MemoryError`), the fault the
    resource-governance tests lean on.
    """
    total = p_raise + p_kill + p_hang + p_memerr
    if not 0.0 <= total <= 1.0:
        raise ConfigurationError(
            f"fault probabilities must sum into [0, 1], got {total}")
    if max_attempt < 1:
        raise ConfigurationError(
            f"max_attempt must be >= 1, got {max_attempt}")
    rng = make_rng(("chaos", seed))
    wrapped: list[ChaosUnit] = []
    injections: list[ChaosInjection] = []
    for unit in units:
        draw = rng.random()
        attempt = 1 + rng.randrange(max_attempt)
        spec = ChaosSpec(hang_s=hang_s)
        fault = None
        if draw < p_raise:
            spec, fault = replace(spec, raise_on=(attempt,)), "raise"
        elif draw < p_raise + p_kill:
            spec, fault = replace(spec, kill_on=(attempt,)), "kill"
        elif draw < p_raise + p_kill + p_hang:
            spec, fault = replace(spec, hang_on=(attempt,)), "hang"
        elif draw < total:
            spec, fault = replace(spec, memerr_on=(attempt,)), "memerr"
        if fault is not None:
            injections.append(ChaosInjection(unit.label, fault, attempt))
        wrapped.append(ChaosUnit(unit, spec, str(state_dir)))
    return wrapped, injections
