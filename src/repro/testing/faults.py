"""Deterministic fault injection for netsim and leo.scheduling.

A :class:`FaultPlan` is a seeded recipe of faults -- link flaps,
satellite outages at 15 s reallocation boundaries, queue-overflow
storms, event-cancellation races -- built up with the ``inject_*``
methods (or :meth:`randomize`) and applied with :meth:`arm`. All
randomness flows through :func:`repro.rng.make_rng`, so a plan with a
given seed injects the exact same faults on every run; robustness of
the transport and campaign layers is exercised on purpose rather than
by luck.

::

    plan = FaultPlan(seed=3)
    plan.inject_link_flap(access.space_link, at=2.0, duration=0.5)
    plan.inject_queue_storm(access.space_link.pipe_ab, at=3.0)
    plan.arm(access.sim)
    access.run(10.0)
    plan.assert_cancellation_clean()
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.netsim.engine import Simulator
from repro.netsim.link import Link, Pipe
from repro.netsim.loss import CompositeLoss, OutageSchedule
from repro.netsim.packet import Packet, Protocol
from repro.rng import make_rng

#: TEST-NET-3 source address stamped on storm filler packets.
STORM_SRC = "203.0.113.250"
#: Discard port: hosts and routers silently consume unbound TCP.
STORM_PORT = 9


@dataclass(frozen=True)
class InjectedFault:
    """Log entry describing one armed fault (for test diagnostics)."""

    kind: str
    at: float
    detail: str


def _pipes_of(target) -> list[Pipe]:
    if isinstance(target, Pipe):
        return [target]
    if isinstance(target, Link):
        return [target.pipe_ab, target.pipe_ba]
    raise ConfigurationError(
        f"expected a Pipe or Link to inject into, got {target!r}")


class FaultPlan:
    """A seeded, replayable set of faults to inject into one run."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = make_rng(("fault-plan", seed))
        self.log: list[InjectedFault] = []
        self._arm_fns: list = []
        self._cancelled_fired = 0
        self._races_armed = 0

    # -- individual faults ----------------------------------------------

    def inject_link_flap(self, target, at: float,
                         duration: float) -> "FaultPlan":
        """Blackout every packet on ``target`` during the window.

        Models a micro-outage / obstruction sweep: the pipe's loss
        model is wrapped so the flap composes with (and keeps
        advancing) whatever loss process the link already has.
        """
        if duration <= 0:
            raise ConfigurationError(
                f"flap duration must be positive, got {duration}")
        pipes = _pipes_of(target)

        def arm(sim: Simulator) -> None:
            for pipe in pipes:
                pipe.loss = CompositeLoss(
                    [pipe.loss, OutageSchedule([(at, duration)])])

        self._arm_fns.append(arm)
        self.log.append(InjectedFault(
            "link-flap", at,
            f"{duration:.3f}s blackout on {len(pipes)} pipe(s)"))
        return self

    def inject_satellite_outage(self, scheduler, at: float,
                                slots: int = 2) -> "FaultPlan":
        """Fail the satellite serving at ``at`` from the next
        reallocation boundary, for ``slots`` scheduler slots.

        Starting at the boundary (not mid-slot) matches how the real
        scheduler reacts: the 15 s allocation in force is never
        revoked, the *next* allocation simply avoids the failed bird.
        """
        slot = scheduler.slot_of(at)
        sat = scheduler.snapshot(at).sat_index

        def arm(sim: Simulator) -> None:
            scheduler.add_outage(sat, slot + 1, slot + 1 + slots)

        self._arm_fns.append(arm)
        self.log.append(InjectedFault(
            "satellite-outage", (slot + 1) * 15.0,
            f"sat {sat} out for {slots} slot(s)"))
        return self

    def inject_queue_storm(self, pipe: Pipe, at: float,
                           packets: int = 80,
                           size: int = 1200) -> "FaultPlan":
        """Flood ``pipe`` with filler traffic at time ``at``.

        The burst saturates the serialiser and overflows the egress
        queue, producing the drop storm; filler packets are addressed
        to the pipe's own destination on the TCP discard port so they
        terminate there without generating replies.
        """
        if not isinstance(pipe, Pipe):
            raise ConfigurationError(
                f"queue storms target a single Pipe, got {pipe!r}")

        def storm() -> None:
            dst = getattr(pipe.dst, "address", "0.0.0.0")
            for _ in range(packets):
                pipe.send(Packet(
                    src=STORM_SRC, dst=dst, protocol=Protocol.TCP,
                    size=size, dst_port=STORM_PORT,
                    created_at=pipe.sim.now))

        def arm(sim: Simulator) -> None:
            sim.at(at, storm)

        self._arm_fns.append(arm)
        self.log.append(InjectedFault(
            "queue-storm", at, f"{packets} x {size}B into {pipe.name!r}"))
        return self

    def inject_cancellation_race(self, at: float) -> "FaultPlan":
        """Schedule a cancel/fire race at exactly time ``at``.

        Two events share the timestamp: the first (by insertion order,
        so by tie-break the first to run) cancels the second. A
        correct engine must skip the cancelled victim even though it
        was already due; :meth:`assert_cancellation_clean` verifies no
        victim ever fired.
        """

        def arm(sim: Simulator) -> None:
            def victim() -> None:
                self._cancelled_fired += 1

            canceller_slot: list = []

            def canceller() -> None:
                canceller_slot[0].cancel()

            canceller_event = sim.at(at, canceller)  # noqa: F841
            canceller_slot.append(sim.at(at, victim))

        self._arm_fns.append(arm)
        self._races_armed += 1
        self.log.append(InjectedFault(
            "cancellation-race", at, "cancel-at-same-timestamp pair"))
        return self

    # -- random plans -----------------------------------------------------

    def randomize(self, pipes: list[Pipe], start: float, horizon: float,
                  n_faults: int = 4, scheduler=None) -> "FaultPlan":
        """Add ``n_faults`` seeded-random faults in ``[start, start+horizon)``.

        Satellite outages are only drawn when a ``scheduler`` is
        supplied; everything else targets the given pipes.
        """
        if not pipes:
            raise ConfigurationError("randomize needs at least one pipe")
        kinds = ["flap", "storm", "race"]
        if scheduler is not None:
            kinds.append("outage")
        for _ in range(n_faults):
            kind = self.rng.choice(kinds)
            at = start + self.rng.random() * horizon
            if kind == "flap":
                self.inject_link_flap(
                    self.rng.choice(pipes), at,
                    duration=0.05 + self.rng.random() * 0.5)
            elif kind == "storm":
                self.inject_queue_storm(
                    self.rng.choice(pipes), at,
                    packets=20 + self.rng.randrange(100))
            elif kind == "race":
                self.inject_cancellation_race(at)
            else:
                self.inject_satellite_outage(
                    scheduler, at, slots=1 + self.rng.randrange(3))
        return self

    # -- application -------------------------------------------------------

    def arm(self, sim: Simulator) -> "FaultPlan":
        """Apply every fault to ``sim`` (idempotence not supported:
        arm a fresh plan per run so replays stay deterministic)."""
        for fn in self._arm_fns:
            fn(sim)
        self._arm_fns.clear()
        return self

    def assert_cancellation_clean(self) -> None:
        """Raise if any cancelled victim event fired."""
        if self._cancelled_fired:
            raise AssertionError(
                f"{self._cancelled_fired} cancelled event(s) fired "
                f"(of {self._races_armed} races armed)")

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.seed} faults={len(self.log)} "
                f"armed={not self._arm_fns}>")
