"""Deterministic-simulation test harness for the netsim core.

Three layers, each usable on its own:

* :mod:`repro.testing.invariants` -- pluggable invariant checkers
  (clock monotonicity, per-pipe FIFO delivery, packet conservation,
  queue-bound respect) that any test or benchmark can enable with one
  ``with check_invariants(...):`` line, plus a process-global mode the
  pytest suite switches on via ``REPRO_INVARIANTS=1``.
* :mod:`repro.testing.faults` -- a :class:`FaultPlan` API that
  deterministically injects link flaps, satellite outages at 15 s
  reallocation boundaries, queue-overflow storms and event-cancellation
  races, so robustness is exercised on purpose rather than by luck.
* :mod:`repro.testing.scenarios` -- seeded property-based scenario
  generators (random topologies + workloads) with trace-digest replay
  comparison and simple shrinking, proving bit-identical replay.
* :mod:`repro.testing.chaos` -- executor-level chaos: deterministic
  :class:`ChaosUnit` wrappers that make campaign work units raise,
  hang, or SIGKILL their own worker on chosen attempts, with
  cross-process attempt tracking, so every crash-recovery path of
  :mod:`repro.exec` is pinned by tests rather than luck.

:mod:`repro.testing.digest` holds the canonical trace/dataset
fingerprints the replay checks compare.
"""

from repro.errors import InvariantViolation
from repro.testing.chaos import (
    ChaosInjection,
    ChaosSpec,
    ChaosUnit,
    attempts_made,
    claim_attempt,
    seeded_chaos,
    wrap_units,
)
from repro.testing.digest import digest_dataset, digest_records, digest_value
from repro.testing.faults import FaultPlan
from repro.testing.invariants import (
    InvariantChecker,
    check_invariants,
    global_checking,
    install_global_checks,
    uninstall_global_checks,
)
from repro.testing.scenarios import (
    Scenario,
    build_network,
    random_scenario,
    replay_digests,
    run_and_digest,
    shrink,
)

__all__ = [
    "ChaosInjection",
    "ChaosSpec",
    "ChaosUnit",
    "FaultPlan",
    "InvariantChecker",
    "attempts_made",
    "claim_attempt",
    "seeded_chaos",
    "wrap_units",
    "InvariantViolation",
    "Scenario",
    "build_network",
    "check_invariants",
    "digest_dataset",
    "digest_records",
    "digest_value",
    "global_checking",
    "install_global_checks",
    "random_scenario",
    "replay_digests",
    "run_and_digest",
    "shrink",
    "uninstall_global_checks",
]
