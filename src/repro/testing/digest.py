"""Canonical fingerprints of traces and campaign datasets.

Replay checks compare runs by digest rather than record-by-record so a
mismatch is cheap to detect and stable to report. Two normalisations
matter:

* packet ``uid`` values come from a process-global counter, so two
  runs of the same scenario in one process produce different raw uids;
  digests renumber uids by first appearance, which is deterministic
  under the engine's FIFO/tie-break guarantees;
* floats are hashed via ``float.hex()`` so the digest captures every
  bit of the value (a ulp of drift counts as a replay failure).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Iterable, Mapping

import numpy as np

from repro.netsim.trace import TraceRecord


def normalize_records(records_by_pipe: Mapping[str, Iterable[TraceRecord]]
                      ) -> list[tuple]:
    """Flatten per-pipe trace records with uids renumbered.

    Pipes are visited in sorted-name order; uids are replaced by their
    first-appearance index over that whole visit order.
    """
    uid_map: dict[int, int] = {}
    rows: list[tuple] = []
    for name in sorted(records_by_pipe):
        for r in records_by_pipe[name]:
            local = uid_map.setdefault(r.uid, len(uid_map))
            rows.append((name, float(r.time).hex(), r.event, local,
                         r.size, r.src, r.dst, r.protocol, r.info))
    return rows


def digest_records(records_by_pipe: Mapping[str, Iterable[TraceRecord]]
                   ) -> str:
    """SHA-256 hex digest of the normalised trace of a whole run."""
    h = hashlib.sha256()
    for row in normalize_records(records_by_pipe):
        _feed(h, row)
    return h.hexdigest()


def digest_value(obj) -> str:
    """SHA-256 hex digest of an arbitrary result object.

    Handles dataclasses, numpy arrays, containers and scalars
    recursively; floats are hashed bit-exactly.
    """
    h = hashlib.sha256()
    _feed(h, obj)
    return h.hexdigest()


def digest_dataset(data) -> str:
    """Digest of a :class:`~repro.core.datasets.CampaignDatasets`.

    Plain alias of :func:`digest_value`, named for the call sites that
    assert campaign-level determinism (seed -> RNG -> engine chain).
    """
    return digest_value(data)


def _feed(h, obj) -> None:
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, bool):
        h.update(b"\x00B" + (b"1" if obj else b"0"))
    elif isinstance(obj, int):
        h.update(b"\x00I" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"\x00F" + float(obj).hex().encode())
    elif isinstance(obj, str):
        h.update(b"\x00S" + obj.encode("utf-8"))
    elif isinstance(obj, bytes):
        h.update(b"\x00Y" + obj)
    elif isinstance(obj, np.ndarray):
        h.update(b"\x00A" + str(obj.dtype).encode()
                 + str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _feed(h, obj.item())
    elif isinstance(obj, enum.Enum):
        h.update(b"\x00E" + type(obj).__name__.encode())
        _feed(h, obj.value)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"\x00D" + type(obj).__name__.encode())
        for f in dataclasses.fields(obj):
            # Fields declared with ``field(metadata={"digest": False})``
            # are bookkeeping (measurement outcomes, attribution aids)
            # layered on top of the measured payload; excluding them
            # keeps dataset digests comparable across library versions
            # that merely added observability.
            if f.metadata.get("digest", True) is False:
                continue
            h.update(b"\x00f" + f.name.encode())
            _feed(h, getattr(obj, f.name))
    elif isinstance(obj, Mapping):
        h.update(b"\x00M")
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        h.update(b"\x00L" + str(len(obj)).encode())
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, (set, frozenset)):
        h.update(b"\x00T")
        for item in sorted(obj, key=repr):
            _feed(h, item)
    else:
        raise TypeError(
            f"cannot digest {type(obj).__name__!r}; add a handler or "
            "convert to a dataclass/container first")
