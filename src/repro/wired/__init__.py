"""Wired campus access (the paper's PC-Wired baseline)."""

from repro.wired.access import WiredAccess, WiredParams, WiredPathModel

__all__ = ["WiredAccess", "WiredParams", "WiredPathModel"]
