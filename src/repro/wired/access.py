"""Campus wired access network.

PC-Wired sits on the UCLouvain campus network behind a 1 Gbit/s
Ethernet port. Latency to Belgian destinations is a few milliseconds
and jitter is tiny; this is the paper's best-case baseline for the
browsing comparison (Fig. 6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rng import make_rng
from repro.leo.geometry import GeoPoint, fiber_path_delay
from repro.netsim.engine import Simulator
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network
from repro.units import gbps, kib, ms

#: Campus location (same site as the Starlink dish).
CAMPUS = GeoPoint(50.668, 4.611)


@dataclass
class WiredParams:
    """Tunables of the wired baseline."""

    access_rate_bps: float = gbps(1)
    lan_delay_s: float = ms(0.15)
    #: Campus -> national backbone handoff.
    backbone_delay_s: float = ms(0.8)
    jitter_shape: float = 1.2
    jitter_scale_s: float = ms(0.35)
    jitter_frame_s: float = ms(5.0)
    queue_bytes: int = kib(1024)


class WiredPathModel:
    """Analytic delay model of the wired access."""

    def __init__(self, params: WiredParams | None = None, seed: int = 0):
        self.params = params or WiredParams()
        self.seed = seed
        self._jitter_cache: dict[tuple[str, int], float] = {}

    def base_one_way(self, t: float) -> float:
        """Deterministic one-way delay client->backbone, seconds."""
        return self.params.lan_delay_s + self.params.backbone_delay_s

    def jitter(self, rng: random.Random, direction: str,
               t: float | None = None) -> float:
        """Jitter sample (bucketed per 5 ms frame when ``t`` given)."""
        if t is None:
            return rng.gammavariate(self.params.jitter_shape,
                                    self.params.jitter_scale_s)
        frame = int(t / self.params.jitter_frame_s)
        key = (direction, frame)
        cached = self._jitter_cache.get(key)
        if cached is None:
            frame_rng = make_rng((self.seed, "wired-jit", direction,
                                  frame))
            cached = frame_rng.gammavariate(self.params.jitter_shape,
                                            self.params.jitter_scale_s)
            if len(self._jitter_cache) > 50_000:
                self._jitter_cache.clear()
            self._jitter_cache[key] = cached
        return cached

    def one_way_delay(self, t: float, rng: random.Random,
                      direction: str) -> float:
        """One-way delay including jitter, seconds."""
        return self.base_one_way(t) + self.jitter(rng, direction, t)

    def idle_rtt(self, t: float, rng: random.Random,
                 remote_rtt_s: float = 0.0) -> float:
        """One idle RTT sample, seconds."""
        return (2.0 * self.base_one_way(t) + self.jitter(rng, "up", t)
                + self.jitter(rng, "down", t) + remote_rtt_s)


class WiredAccess:
    """Packet-level wired access network for one experiment epoch."""

    CLIENT_ADDRESS = "130.104.10.20"
    GATEWAY_ADDRESS = "130.104.254.1"

    def __init__(self, params: WiredParams | None = None, seed: int = 0,
                 epoch_t: float = 0.0):
        self.params = params or WiredParams()
        self.seed = seed
        self.epoch_t = epoch_t
        self.path_model = WiredPathModel(self.params, seed=seed)
        self.net = Network(Simulator(start_time=epoch_t))
        self._build()

    @property
    def sim(self):
        """The simulator driving this access network."""
        return self.net.sim

    @property
    def client(self):
        """PC-Wired."""
        return self.net.host("client")

    @property
    def has_pep(self) -> bool:
        """Wired paths carry no PEP."""
        return False

    def _build(self) -> None:
        p = self.params
        self.net.add_host("client", self.CLIENT_ADDRESS)
        self.net.add_router("campus-gw", self.GATEWAY_ADDRESS)
        rng = make_rng((self.seed, "wired-jitter"))

        def delay(now: float) -> float:
            return (self.path_model.base_one_way(now)
                    + self.path_model.jitter(rng, "any", now))

        self.net.connect(
            "client", "campus-gw",
            rate_ab=p.access_rate_bps, rate_ba=p.access_rate_bps,
            delay=delay,
            queue_ab=DropTailQueue(capacity_bytes=p.queue_bytes),
            queue_ba=DropTailQueue(capacity_bytes=p.queue_bytes))

    def add_remote_host(self, name: str, address: str,
                        location: GeoPoint,
                        access_rate_bps: float = gbps(1),
                        server_lan_delay_s: float = ms(0.3)):
        """Attach a server reachable through the campus gateway."""
        host = self.net.add_host(name, address)
        delay = fiber_path_delay(CAMPUS, location) + server_lan_delay_s
        self.net.connect("campus-gw", name, rate_ab=access_rate_bps,
                         rate_ba=access_rate_bps, delay=delay)
        return host

    def finalize(self) -> None:
        """Install routes; call after all remote hosts are added."""
        self.net.finalize()

    def run(self, duration: float) -> None:
        """Run the simulation ``duration`` seconds past the epoch."""
        self.net.sim.run(until=self.net.sim.now + duration)
