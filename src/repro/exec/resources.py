"""Resource governance for long (month-scale) campaigns.

A longitudinal campaign must never OOM-kill itself: when residency
grows past its budget the pipeline *degrades precision* instead of
crashing, one recorded stage at a time:

1. ``EXACT -> STREAMING`` — exact sample buffers collapse into
   t-digest sketches (quantiles gain a bounded rank error, counts and
   extremes stay exact);
2. ``-> SHRUNK_RESERVOIRS`` — the seeded ECDF reservoirs halve;
3. ``-> SPILLED`` — cold per-anchor reservoir blocks move to disk and
   are reloaded only when a figure asks for them;
4. past the hard cap there is nothing left to shed:
   :class:`~repro.errors.MemoryBudgetError` — the journal already
   checkpoints every completed unit, so the run exits cleanly and a
   ``--resume`` continues where it died.

Every transition is a :class:`PrecisionEvent`; reports render them as
PARTIAL-PRECISION notes so a degraded figure can never masquerade as
an exact one. Stage selection follows the executor's
``failure_policy`` convention: ``degrade`` (default) walks the
ladder, ``raise`` escalates the first soft-budget breach instead.

The :class:`MemoryWatchdog` supplies the measurements: ``tracemalloc``
(when tracing is active) plus the process RSS from ``/proc``; both
are advisory — the deterministic triggers are the sample counts the
sinks report, so tests and digest gates behave identically on any
machine.
"""

from __future__ import annotations

import os
import tracemalloc
from dataclasses import dataclass, field

from repro.errors import MemoryBudgetError, ResourceError

#: Governance policies, mirroring ``repro.exec.runner.FAILURE_POLICIES``.
RESOURCE_POLICIES = ("degrade", "raise")

#: The degradation ladder, in order. ``EXACT`` is the initial stage.
STAGES = ("EXACT", "STREAMING", "SHRUNK_RESERVOIRS", "SPILLED")


@dataclass(frozen=True)
class PrecisionEvent:
    """One recorded degradation-ladder transition."""

    #: Stage entered (one of :data:`STAGES` past the first).
    stage: str
    #: Campaign-level trigger, e.g. ``"resident samples 120000 >
    #: budget 100000"``.
    reason: str
    #: What precision was given up, for the rendered note.
    consequence: str


@dataclass(frozen=True)
class MemorySample:
    """One watchdog measurement."""

    rss_bytes: int
    traced_bytes: int
    traced_peak_bytes: int


class MemoryWatchdog:
    """Polls ``tracemalloc`` + RSS; purely observational.

    Reads ``VmRSS`` from ``/proc/self/status`` (zero where /proc is
    unavailable) and the traced heap when ``tracemalloc`` is active.
    The governor treats these as advisory signals beside the
    deterministic sample-count triggers.
    """

    def __init__(self) -> None:
        self.samples: list[MemorySample] = []

    @staticmethod
    def rss_bytes() -> int:
        try:
            with open("/proc/self/status") as fh:
                for line in fh:
                    if line.startswith("VmRSS:"):
                        return int(line.split()[1]) * 1024
        except OSError:
            pass
        return 0

    def poll(self) -> MemorySample:
        traced = peak = 0
        if tracemalloc.is_tracing():
            traced, peak = tracemalloc.get_traced_memory()
        sample = MemorySample(rss_bytes=self.rss_bytes(),
                              traced_bytes=traced,
                              traced_peak_bytes=peak)
        self.samples.append(sample)
        return sample

    @property
    def peak_rss_bytes(self) -> int:
        return max((s.rss_bytes for s in self.samples), default=0)


class ResourceBudget:
    """Budget + degradation ladder for one streaming campaign.

    ``max_resident_samples`` is the deterministic governor: streaming
    sinks report how many raw samples they still hold, and crossing
    the budget advances the ladder. ``max_bytes`` arms the
    opportunistic governor on the watchdog's RSS/tracemalloc
    readings. ``hard_cap_bytes`` is the line past which the run
    raises :class:`MemoryBudgetError` rather than degrade further.
    """

    def __init__(self,
                 max_resident_samples: int | None = None,
                 max_bytes: int | None = None,
                 hard_cap_bytes: int | None = None,
                 policy: str = "degrade") -> None:
        if policy not in RESOURCE_POLICIES:
            raise ResourceError(
                f"unknown resource policy {policy!r}; "
                f"choose from {RESOURCE_POLICIES}")
        for name, value in (("max_resident_samples", max_resident_samples),
                            ("max_bytes", max_bytes),
                            ("hard_cap_bytes", hard_cap_bytes)):
            if value is not None and value <= 0:
                raise ResourceError(f"{name} must be positive, "
                                    f"got {value}")
        self.max_resident_samples = max_resident_samples
        self.max_bytes = max_bytes
        self.hard_cap_bytes = hard_cap_bytes
        self.policy = policy
        self.watchdog = MemoryWatchdog()
        self.events: list[PrecisionEvent] = []
        self._stage_idx = 0

    # -- state -------------------------------------------------------

    @property
    def stage(self) -> str:
        return STAGES[self._stage_idx]

    @property
    def degraded(self) -> bool:
        return self._stage_idx > 0

    def record(self, stage: str, reason: str, consequence: str) -> None:
        self.events.append(PrecisionEvent(stage=stage, reason=reason,
                                          consequence=consequence))

    # -- governance --------------------------------------------------

    def over_soft_budget(self, resident_samples: int) -> str | None:
        """The triggering description, or None while within budget."""
        if (self.max_resident_samples is not None
                and resident_samples > self.max_resident_samples):
            return (f"resident samples {resident_samples} > "
                    f"budget {self.max_resident_samples}")
        if self.max_bytes is not None:
            sample = self.watchdog.poll()
            observed = max(sample.traced_bytes, sample.rss_bytes)
            if observed > self.max_bytes:
                return (f"resident bytes {observed} > "
                        f"budget {self.max_bytes}")
        return None

    def next_stage(self, reason: str, consequence: str) -> str:
        """Advance the ladder (or escalate, or hit the hard cap).

        Returns the stage just entered. Under ``policy="raise"`` the
        first breach raises :class:`MemoryBudgetError` immediately —
        the all-or-nothing counterpart of ``failure_policy="raise"``.
        """
        if self.policy == "raise":
            raise MemoryBudgetError(
                f"memory budget exceeded under policy='raise': "
                f"{reason}")
        if self._stage_idx + 1 >= len(STAGES):
            self.hard_cap(reason)
        self._stage_idx += 1
        entered = self.stage
        self.record(entered, reason, consequence)
        return entered

    def hard_cap(self, reason: str) -> None:
        """The end of the ladder: checkpoint is on disk, exit cleanly."""
        raise MemoryBudgetError(
            "hard memory cap: every degradation stage exhausted "
            f"({reason}); completed units are checkpointed — "
            "rerun with --resume to continue")

    def check_hard_cap(self) -> None:
        """Advisory byte-level hard cap (watchdog-measured)."""
        if self.hard_cap_bytes is None:
            return
        sample = self.watchdog.poll()
        observed = max(sample.traced_bytes, sample.rss_bytes)
        if observed > self.hard_cap_bytes:
            raise MemoryBudgetError(
                f"hard memory cap: resident bytes {observed} > "
                f"cap {self.hard_cap_bytes}; completed units are "
                "checkpointed — rerun with --resume to continue")

    # -- reporting ---------------------------------------------------

    def notes(self) -> list[str]:
        """PARTIAL-PRECISION notes for the report renderer."""
        return [f"[PARTIAL PRECISION: entered {e.stage}: {e.reason}; "
                f"{e.consequence}]" for e in self.events]
