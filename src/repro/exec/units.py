"""Self-contained campaign work units.

The five-month campaign decomposes into independent measurement units
(Table 1): one per anchor ping series, one per speedtest / bulk /
messages epoch x direction, one per web network x visit round. Every
unit carries its own :class:`~repro.core.campaign.CampaignConfig`
plus an explicit seed tuple, so ``unit.run()`` produces the same
bytes no matter which process executes it, in which order, or next to
which other units.

Shared model state (constellation geometry, campaign timeline, the
analytic path model, the materialised disruption scenario) is rebuilt
once per process and memoised per (seed, scenario) in
:func:`context_for`. That sharing is safe because the model is
order-independent by construction: scheduler snapshots are seeded per
slot, and the fibre/jitter caches are pure memo tables whose values
depend only on their key and the seed. Scenarios get *separate*
contexts because gateway outages mutate the shared scheduler — a
clear-sky unit must never see a scheduler another scenario poked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.apps.bulk import BulkTransferResult, run_bulk_transfer
from repro.apps.messages import run_messages_workload
from repro.apps.speedtest import SpeedtestResult, run_speedtest
from repro.apps.web.browser import BrowserEngine
from repro.apps.web.corpus import build_corpus
from repro.apps.web.profiles import (
    satcom_profile,
    starlink_profile,
    wired_profile,
)
from repro.core.anchors import anchor_by_name
from repro.apps.outcome import MeasurementOutcome
from repro.core.datasets import (
    BulkSample,
    FleetTerminalResult,
    MessagesSample,
    SpeedtestSample,
    VisitSample,
)
from repro.disrupt.apply import apply_to_access, apply_to_scheduler
from repro.disrupt.scenarios import Scenario, build_scenario
from repro.geo.satcom import GeoSatComAccess
from repro.errors import ConfigurationError
from repro.leo.access import StarlinkAccess, StarlinkPathModel
from repro.leo.constellation import Constellation
from repro.leo.events import CampaignTimeline
from repro.leo.fleet import (
    FleetScheduler,
    FleetSpec,
    FleetTerminalView,
    build_fleet_terminals,
)
from repro.leo.geometry import GeoPoint
from repro.leo.ground import STARLINK_GATEWAYS
from repro.leo.mobility import build_mobility
from repro.rng import make_rng, stable_seed
from repro.transport.quic import QuicConfig
from repro.transport.tcp import TcpConfig
from repro.units import days

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.campaign import CampaignConfig


@runtime_checkable
class CampaignUnit(Protocol):
    """The executor contract: what ``repro.exec`` runs, journals,
    retries and reports on.

    ``label`` is a stable identity (it keys journal entries and names
    failures), ``kind`` buckets timings and coverage, and ``run()``
    must be a pure function of the unit's own fields — re-running it
    after a crash, on another process, or from a resumed journal must
    reproduce identical bytes. Units that carry a ``config`` attribute
    (all campaign units do) get it fingerprinted into their journal
    key, so checkpoints can never leak across configurations. Wrappers
    such as :class:`repro.testing.chaos.ChaosUnit` satisfy the same
    protocol by delegation.
    """

    @property
    def label(self) -> str: ...

    @property
    def kind(self) -> str: ...

    def run(self) -> object: ...

#: Campus server (UCLouvain) and nearby Ookla server locations.
CAMPUS_SERVER = GeoPoint(50.670, 4.615)
OOKLA_BRUSSELS = GeoPoint(50.85, 4.35)

_WEB_PROFILES = {
    "starlink": starlink_profile,
    "satcom": satcom_profile,
    "wired": wired_profile,
}


@dataclass
class WorkerContext:
    """Per-process shared model state for one (seed, scenario)."""

    timeline: CampaignTimeline
    constellation: Constellation
    path_model: StarlinkPathModel
    scenario: Scenario


_CONTEXTS: dict[tuple, WorkerContext] = {}


def context_for(config: "CampaignConfig") -> WorkerContext:
    """The process-local :class:`WorkerContext` for a campaign config.

    Built lazily and memoised, so a worker pays the constellation
    setup once no matter how many units it executes. The memo key
    covers the seed, the scenario name, every config knob the
    scenario's campaign schedule is derived from, AND the mobility
    knobs — a context armed with one trajectory must never serve a
    config describing another (the position-dependent caches inside
    the scheduler would silently be stale for the second config).
    """
    key = (config.seed, config.scenario, config.ping_days,
           config.ping_interval_s, config.pings_per_round,
           config.trajectory, config.speed_kmh,
           config.drive_duration_s, config.obstruction)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        timeline = CampaignTimeline()
        constellation = Constellation()
        scenario = build_scenario(config.scenario, config)
        trajectory, obstruction = build_mobility(config)
        path_model = StarlinkPathModel(constellation=constellation,
                                       timeline=timeline,
                                       seed=config.seed,
                                       trajectory=trajectory,
                                       obstruction=obstruction)
        # Campaign-scale gateway outages live in the shared scheduler
        # (a no-op for clear_sky: the empty schedule installs nothing).
        apply_to_scheduler(path_model.scheduler, scenario.campaign)
        ctx = WorkerContext(
            timeline=timeline, constellation=constellation,
            path_model=path_model, scenario=scenario)
        _CONTEXTS[key] = ctx
    return ctx


def _starlink_access(config: "CampaignConfig", epoch: float,
                     run_seed: int,
                     capacity_share: float = 1.0) -> StarlinkAccess:
    ctx = context_for(config)
    scheduler = ctx.path_model.scheduler
    access = StarlinkAccess(seed=run_seed, epoch_t=epoch,
                            timeline=ctx.timeline,
                            constellation=ctx.constellation,
                            capacity_share=capacity_share,
                            trajectory=scheduler.trajectory,
                            obstruction=scheduler.obstruction)
    # Shift the scenario's experiment overlay to this epoch and
    # install it on the freshly built (private) access. Clear-sky
    # overlays are empty, and installing an empty schedule touches
    # neither RNG streams nor the event queue.
    apply_to_access(access, ctx.scenario.experiment_schedule(epoch))
    return access


@dataclass
class FleetContext:
    """Per-process shared fleet state for one (seed, scenario, spec).

    One :class:`FleetScheduler` serves every terminal unit the
    process executes, so a slot's batched geometry is computed once
    no matter how many terminals sample it. Path models are built
    lazily per terminal around a :class:`FleetTerminalView`, each
    seeded with that terminal's scheduler seed.
    """

    timeline: CampaignTimeline
    constellation: Constellation
    fleet: FleetScheduler
    scenario: Scenario
    models: dict[int, StarlinkPathModel] = field(default_factory=dict)

    def model_for(self, index: int) -> StarlinkPathModel:
        """The path model of terminal ``index`` (memoised)."""
        model = self.models.get(index)
        if model is None:
            model = StarlinkPathModel(
                timeline=self.timeline,
                seed=self.fleet.seeds[index],
                scheduler=FleetTerminalView(self.fleet, index))
            self.models[index] = model
        return model


_FLEET_CONTEXTS: dict[tuple, FleetContext] = {}


def fleet_spec_for(config: "CampaignConfig") -> FleetSpec:
    """The terminal-placement spec a campaign config describes."""
    return FleetSpec(terminals=config.fleet_terminals,
                     lat_bands=config.fleet_lat_bands,
                     lon_range=config.fleet_lon_range,
                     seed=config.seed)


def fleet_context_for(config: "CampaignConfig") -> FleetContext:
    """The process-local :class:`FleetContext` for a campaign config.

    Memoised like :func:`context_for`; the key additionally covers
    the fleet shape so two configs that place terminals differently
    never share a scheduler.

    Cache audit (mobility): fleet terminals are deliberately fixed —
    the config's trajectory/obstruction knobs apply to the classic
    single-dish pipeline only, so omitting them from this key is
    correct (two configs differing only in mobility produce identical
    fleet datasets and may share the context). The fleet's
    per-(slot, satellite) gateway memo is position-independent too:
    gateway geometry relates satellites to *gateways*, never to
    terminal positions.
    """
    key = (config.seed, config.scenario, config.ping_days,
           config.ping_interval_s, config.pings_per_round,
           config.fleet_terminals, config.fleet_lat_bands,
           config.fleet_lon_range)
    ctx = _FLEET_CONTEXTS.get(key)
    if ctx is None:
        timeline = CampaignTimeline()
        constellation = Constellation()
        terminals = build_fleet_terminals(fleet_spec_for(config))
        fleet = FleetScheduler(constellation, terminals,
                               STARLINK_GATEWAYS, seed=config.seed)
        scenario = build_scenario(config.scenario, config)
        # Campaign-scale gateway outages are fleet-wide, exactly as
        # they are for the single-dish scheduler.
        apply_to_scheduler(fleet, scenario.campaign)
        ctx = FleetContext(timeline=timeline,
                           constellation=constellation,
                           fleet=fleet, scenario=scenario)
        _FLEET_CONTEXTS[key] = ctx
    return ctx


def _ping_chunk_probes(cfg: "CampaignConfig", anchor_name: str,
                       atom: int) -> tuple[list[float], list[float]]:
    """Probe ``(times, rtts)`` of ping-round chunk ``atom``.

    The single source of the per-chunk stream seeded
    ``(cfg.seed, "ping-campaign", anchor_name, "chunk", atom)`` —
    shared by the batch :class:`PingSeriesUnit` and the streaming
    :class:`StreamingPingUnit`, so both emit identical bytes and the
    streamed campaign stays digest-identical to the batch one.

    Disruption guards are ordered to keep the clear-sky RNG stream
    byte-identical whether or not a schedule is installed: an empty
    schedule answers False/0.0 everywhere, so exactly the same draws
    happen in exactly the same order.

    Unservable slots (a mobile/obstructed terminal with no visible
    satellite-gateway pair) lose their probes: the
    :class:`~repro.errors.ConfigurationError` the scheduler raises
    becomes a NaN RTT, never an aborted series. The guards cost no
    draws, and the obstruction chain is a pure function of
    (seed, slot), so the probe bytes stay identical across processes,
    shard granularities and resumes.
    """
    anchor = anchor_by_name(anchor_name)
    ctx = context_for(cfg)
    model = ctx.path_model
    disruption = ctx.scenario.campaign
    round_times = np.arange(0.0, days(cfg.ping_days),
                            cfg.ping_interval_s)
    chunk = cfg.ping_shard_rounds
    rng = make_rng((cfg.seed, "ping-campaign", anchor_name,
                    "chunk", atom))
    times: list[float] = []
    rtts: list[float] = []
    for t in round_times[atom * chunk:(atom + 1) * chunk]:
        try:
            pop = model.pop_location(t)
        except ConfigurationError:
            pop = None
        remote = (anchor.remote_rtt_from(pop)
                  if pop is not None else math.nan)
        for probe in range(cfg.pings_per_round):
            probe_t = t + probe * 1.0
            times.append(probe_t)
            if disruption.blackout_at(probe_t):
                rtts.append(math.nan)
                continue
            if rng.random() < cfg.ping_loss_prob:
                rtts.append(math.nan)
            else:
                extra = disruption.extra_loss_prob(probe_t)
                if extra > 0.0 and rng.random() < extra:
                    rtts.append(math.nan)
                elif pop is None:
                    rtts.append(math.nan)
                else:
                    try:
                        rtts.append(model.idle_rtt(
                            probe_t, rng, remote_rtt_s=remote))
                    except ConfigurationError:
                        rtts.append(math.nan)
    return times, rtts


@dataclass(frozen=True)
class PingSeriesUnit:
    """The full five-month ping series toward one anchor.

    Atoms are chunks of ``config.ping_shard_rounds`` consecutive ping
    rounds; chunk ``k`` draws from the stream seeded
    ``(config.seed, "ping-campaign", anchor_name, "chunk", k)``, so
    any contiguous grouping of chunks reproduces the same bytes — the
    series never threads one RNG across a shard boundary.
    """

    config: "CampaignConfig"
    anchor_name: str

    kind = "ping"

    @property
    def label(self) -> str:
        return f"ping:{self.anchor_name}"

    def _round_times(self) -> np.ndarray:
        cfg = self.config
        return np.arange(0.0, days(cfg.ping_days), cfg.ping_interval_s)

    def n_atoms(self) -> int:
        chunk = self.config.ping_shard_rounds
        return max(1, -(-len(self._round_times()) // chunk))

    def cost_hint(self) -> float:
        return (len(self._round_times())
                * self.config.pings_per_round * 1e-3)

    def run_atoms(self, start: int, stop: int
                  ) -> list[tuple[list[float], list[float]]]:
        return [_ping_chunk_probes(self.config, self.anchor_name, atom)
                for atom in range(start, stop)]

    def merge_atoms(self, payloads) -> tuple[str, np.ndarray,
                                             np.ndarray,
                                             MeasurementOutcome]:
        times: list[float] = []
        rtts: list[float] = []
        for chunk_times, chunk_rtts in payloads:
            times.extend(chunk_times)
            rtts.extend(chunk_rtts)
        rtts_arr = np.array(rtts)
        lost = int(np.isnan(rtts_arr).sum()) if rtts_arr.size else 0
        if rtts_arr.size and lost == rtts_arr.size:
            outcome = MeasurementOutcome(
                "unreachable",
                detail=f"all {lost} probes to {self.anchor_name} lost")
        else:
            outcome = MeasurementOutcome(
                detail=f"{lost}/{rtts_arr.size} probes lost")
        return self.anchor_name, np.array(times), rtts_arr, outcome

    def run(self) -> tuple[str, np.ndarray, np.ndarray,
                           MeasurementOutcome]:
        return self.merge_atoms(self.run_atoms(0, self.n_atoms()))


@dataclass(frozen=True)
class StreamingPingUnit:
    """The same ping series as :class:`PingSeriesUnit`, reduced into a
    constant-memory :class:`~repro.core.datasets.PingAnchorSink`.

    Atoms draw from the **identical** per-chunk RNG streams (shared
    :func:`_ping_chunk_probes`), so a streamed campaign that stays in
    exact mode is digest-identical to the batch one. The unit opts
    into the executor's arrival-order reduce
    (:class:`~repro.exec.sharding.StreamingUnit`): each shard ships
    per-atom sinks, the executor folds them in shard order and only
    one sink per anchor is ever resident — never the full atom list.
    Reservoir keys are identity-derived per global probe index
    (:meth:`~repro.core.stats.BottomKReservoir.keys_for` on the
    anchor-tagged stream), so the ECDF subsample is independent of
    sharding and merge order too.
    """

    config: "CampaignConfig"
    anchor_name: str
    #: Raw-sample residency above which each per-atom/merged sink
    #: collapses to sketches. Month-scale campaigns pass a budgeted
    #: value; the default keeps micro-campaigns exact (digest gate).
    exact_threshold: int = 100_000
    reservoir_k: int = 2048
    max_centroids: int = 512

    kind = "pingstream"
    streaming = True

    @property
    def label(self) -> str:
        return f"pingstream:{self.anchor_name}"

    def _round_times(self) -> np.ndarray:
        cfg = self.config
        return np.arange(0.0, days(cfg.ping_days), cfg.ping_interval_s)

    def n_atoms(self) -> int:
        chunk = self.config.ping_shard_rounds
        return max(1, -(-len(self._round_times()) // chunk))

    def cost_hint(self) -> float:
        return (len(self._round_times())
                * self.config.pings_per_round * 1e-3)

    def _new_sink(self):
        from repro.core.datasets import PingAnchorSink
        return PingAnchorSink(
            self.anchor_name, exact_threshold=self.exact_threshold,
            reservoir_k=self.reservoir_k,
            max_centroids=self.max_centroids,
            reservoir_seed=self.config.seed)

    def run_atoms(self, start: int, stop: int) -> list:
        from repro.core.stats import BottomKReservoir
        cfg = self.config
        probes_per_atom = cfg.ping_shard_rounds * cfg.pings_per_round
        payloads = []
        for atom in range(start, stop):
            times, rtts = _ping_chunk_probes(cfg, self.anchor_name,
                                             atom)
            keys = BottomKReservoir.keys_for(
                cfg.seed, self.anchor_name, count=len(times),
                base=atom * probes_per_atom)
            sink = self._new_sink()
            sink.add_chunk(np.asarray(times, dtype=float),
                           np.asarray(rtts, dtype=float), keys=keys)
            payloads.append(sink)
        return payloads

    # -- streaming reduce contract ------------------------------------

    def init_partial(self):
        return self._new_sink()

    def merge_partial(self, acc, shard_payload):
        for sink in shard_payload:
            acc.merge(sink)
        return acc

    def finalize(self, acc):
        lost, total = acc.lost_probes, acc.total_probes
        if total and lost == total:
            acc.outcome = MeasurementOutcome(
                "unreachable",
                detail=f"all {lost} probes to {self.anchor_name} lost")
        else:
            acc.outcome = MeasurementOutcome(
                detail=f"{lost}/{total} probes lost")
        return acc

    # ``merge_atoms`` exists so granularity=1 / journal replay paths
    # that treat the unit as a plain splittable one still work; it is
    # the same in-order fold.
    def merge_atoms(self, payloads):
        return self.finalize(self.merge_partial(self.init_partial(),
                                                list(payloads)))

    def run(self):
        # Stream atom by atom: serial memory stays one sink deep no
        # matter the campaign duration.
        acc = self.init_partial()
        for atom in range(self.n_atoms()):
            acc = self.merge_partial(acc, self.run_atoms(atom, atom + 1))
        return self.finalize(acc)


@dataclass(frozen=True)
class SpeedtestUnit:
    """One Ookla-like test: a single network x direction x epoch.

    Atoms are the parallel TCP connections. Connection ``i`` runs as
    a single-flow speedtest on its own access instance seeded
    ``stable_seed(run_seed, "st-conn", i)`` with
    ``capacity_share=1/connections`` — the fair-share stand-in for N
    flows contending on one terminal — so every connection's bytes
    are independent of which shard executes it. The merge sums the
    measured bytes over the common measurement window, which is
    exactly how the multi-connection test computes throughput.
    """

    config: "CampaignConfig"
    network: str           # "starlink" | "satcom"
    direction: str         # "down" | "up"
    epoch: float
    run_seed: int

    kind = "speedtest"

    @property
    def label(self) -> str:
        return f"speedtest:{self.network}:{self.direction}:{self.run_seed}"

    def n_atoms(self) -> int:
        return max(1, self.config.speedtest_connections)

    def cost_hint(self) -> float:
        cfg = self.config
        warmup = (cfg.satcom_warmup_s if self.network == "satcom"
                  else cfg.speedtest_warmup_s)
        scale = 4.0 if self.network == "satcom" else 1.0
        return ((warmup + cfg.speedtest_measure_s)
                * self.n_atoms() * scale)

    def run_atoms(self, start: int, stop: int) -> list[SpeedtestResult]:
        cfg = self.config
        share = 1.0 / self.n_atoms()
        results = []
        for conn in range(start, stop):
            conn_seed = stable_seed(self.run_seed, "st-conn", conn)
            if self.network == "starlink":
                access = _starlink_access(cfg, self.epoch, conn_seed,
                                          capacity_share=share)
                warmup = cfg.speedtest_warmup_s
            else:
                access = GeoSatComAccess(seed=conn_seed,
                                         epoch_t=self.epoch,
                                         capacity_share=share)
                warmup = cfg.satcom_warmup_s
            server = access.add_remote_host("ookla", "62.4.0.10",
                                            OOKLA_BRUSSELS)
            access.finalize()
            results.append(run_speedtest(
                access.client, server, self.direction, connections=1,
                warmup_s=warmup, measure_s=cfg.speedtest_measure_s,
                config=TcpConfig(cc=cfg.cc)))
        return results

    def merge_atoms(self, results) -> SpeedtestSample:
        cfg = self.config
        total = sum(r.measured_bytes for r in results)
        handshakes = [rtt for r in results for rtt in r.handshake_rtts]
        elapsed = max(r.outcome.elapsed_s for r in results)
        # Mirror run_speedtest's classification over the merged flows.
        if total > 0:
            outcome = MeasurementOutcome(elapsed_s=elapsed)
        elif not handshakes:
            outcome = MeasurementOutcome(
                "unreachable",
                detail=f"0/{len(results)} TCP handshakes completed",
                elapsed_s=elapsed)
        else:
            outcome = MeasurementOutcome(
                "stalled",
                detail="connections established but no byte delivered "
                       "inside the measurement window",
                elapsed_s=elapsed)
        merged = SpeedtestResult(
            direction=self.direction, connections=len(results),
            measured_bytes=total,
            measure_window_s=cfg.speedtest_measure_s,
            handshake_rtts=handshakes, outcome=outcome)
        return SpeedtestSample(t=self.epoch, network=self.network,
                               direction=self.direction,
                               throughput_mbps=merged.throughput_mbps,
                               outcome=merged.outcome)

    def run(self) -> SpeedtestSample:
        return self.merge_atoms(self.run_atoms(0, self.n_atoms()))


@dataclass(frozen=True)
class BulkUnit:
    """One H3 bulk transfer: a single session x direction x epoch.

    Atoms are back-to-back payload segments of
    ``config.bulk_segment_bytes``; segment ``i`` transfers on its own
    access instance seeded ``stable_seed(run_seed, "bulk-seg", i)``.
    The merge splices segments into one transfer record: RTT-sample
    and loss-event clocks shift by the cumulative segment duration,
    receiver packet numbers by the cumulative packet count, so the
    per-transfer loss ratio and Fig. 3 RTT series read exactly as one
    long transfer would.
    """

    config: "CampaignConfig"
    session: int
    direction: str
    epoch: float
    run_seed: int

    kind = "bulk"

    @property
    def label(self) -> str:
        return f"bulk:s{self.session}:{self.direction}:{self.run_seed}"

    def _segment_sizes(self) -> list[int]:
        cfg = self.config
        seg = cfg.bulk_segment_bytes
        n = max(1, -(-cfg.bulk_bytes // seg))
        return [seg] * (n - 1) + [cfg.bulk_bytes - seg * (n - 1)]

    def n_atoms(self) -> int:
        return len(self._segment_sizes())

    def cost_hint(self) -> float:
        return self.config.bulk_bytes / 1e6

    def run_atoms(self, start: int, stop: int
                  ) -> list[BulkTransferResult]:
        cfg = self.config
        sizes = self._segment_sizes()
        results = []
        for seg in range(start, stop):
            access = _starlink_access(
                cfg, self.epoch,
                stable_seed(self.run_seed, "bulk-seg", seg))
            server = access.add_remote_host("campus", "130.104.1.1",
                                            CAMPUS_SERVER)
            access.finalize()
            results.append(run_bulk_transfer(
                access.client, server, self.direction,
                payload_bytes=sizes[seg],
                config=QuicConfig(cc=cfg.cc)))
        return results

    def merge_atoms(self, results) -> BulkSample:
        cfg = self.config
        completed = all(r.completed for r in results)
        merged = BulkTransferResult(
            direction=self.direction, payload_bytes=cfg.bulk_bytes,
            completed=completed,
            duration_s=(sum(r.duration_s for r in results)
                        if completed else None),
            handshake_rtt_s=results[0].handshake_rtt_s)
        t_off = 0.0
        pn_off = 0
        elapsed = 0.0
        first_bad = None
        for r in results:
            merged.rtt_samples.extend(
                (t_off + t, rtt) for t, rtt in r.rtt_samples)
            merged.receiver_lost_pns.extend(
                pn_off + pn for pn in r.receiver_lost_pns)
            merged.loss_event_durations_s.extend(
                r.loss_event_durations_s)
            merged.loss_burst_lengths.extend(r.loss_burst_lengths)
            merged.loss_event_times_s.extend(
                t_off + t for t in r.loss_event_times_s)
            pn_off += r.receiver_max_pn + 1
            t_off += (r.duration_s if r.duration_s is not None
                      else r.outcome.elapsed_s)
            elapsed += r.outcome.elapsed_s
            if first_bad is None and not r.outcome.is_ok:
                first_bad = r.outcome
        merged.receiver_max_pn = pn_off - 1
        if first_bad is None:
            merged.outcome = MeasurementOutcome(elapsed_s=elapsed)
        else:
            merged.outcome = MeasurementOutcome(
                first_bad.status, detail=first_bad.detail,
                elapsed_s=elapsed)
        return BulkSample(t=self.epoch, direction=self.direction,
                          session=self.session, result=merged)

    def run(self) -> BulkSample:
        return self.merge_atoms(self.run_atoms(0, self.n_atoms()))


@dataclass(frozen=True)
class MessagesUnit:
    """One low-bitrate message run: a single direction x epoch.

    Deliberately unsplittable: the workload is one ordered message
    stream over one connection, so it always dispatches whole.
    """

    config: "CampaignConfig"
    direction: str
    epoch: float
    run_seed: int
    workload_seed: int

    kind = "messages"

    @property
    def label(self) -> str:
        return f"messages:{self.direction}:{self.run_seed}"

    def cost_hint(self) -> float:
        return self.config.messages_duration_s * 0.1

    def run(self) -> MessagesSample:
        cfg = self.config
        access = _starlink_access(cfg, self.epoch, self.run_seed)
        server = access.add_remote_host("campus", "130.104.1.1",
                                        CAMPUS_SERVER)
        access.finalize()
        result = run_messages_workload(
            access.client, server, self.direction,
            duration_s=cfg.messages_duration_s, seed=self.workload_seed,
            config=QuicConfig(cc=cfg.cc))
        return MessagesSample(t=self.epoch, direction=self.direction,
                              result=result)


@dataclass(frozen=True)
class WebRoundUnit:
    """One browsing round: every corpus page over one network, once.

    The corpus is rebuilt inside the unit (it is deterministic for
    ``config.seed``), so the unit ships only scalars across the
    process boundary.
    """

    config: "CampaignConfig"
    network: str
    visit_id: int
    epoch: float

    kind = "web"

    @property
    def label(self) -> str:
        return f"web:{self.network}:v{self.visit_id}"

    def n_atoms(self) -> int:
        return max(1, self.config.web_sites)

    def cost_hint(self) -> float:
        return self.config.web_sites * 0.5

    def run_atoms(self, start: int, stop: int) -> list[VisitSample]:
        # One atom per corpus page. The engine draws each visit's RNG
        # from (seed, profile, url, visit_id) with no cross-visit
        # state, so per-page shards are bit-identical to a full round.
        cfg = self.config
        corpus = build_corpus(cfg.web_sites, seed=cfg.seed)
        profile = _WEB_PROFILES[self.network](epoch_t=self.epoch,
                                              seed=cfg.seed)
        engine = BrowserEngine(profile, seed=cfg.seed + self.visit_id,
                               visit_deadline_s=cfg.web_visit_deadline_s)
        visits = []
        for page in corpus[start:stop]:
            result = engine.visit(page, visit_id=self.visit_id)
            visits.append(VisitSample(
                t=self.epoch, network=self.network, url=page.url,
                onload_s=result.onload_s,
                speed_index_s=result.speed_index_s,
                n_connections=result.n_connections,
                connection_setup_s=result.connection_setup_s,
                outcome=result.outcome))
        return visits

    def merge_atoms(self, payloads) -> list[VisitSample]:
        return list(payloads)

    def run(self) -> list[VisitSample]:
        return self.merge_atoms(self.run_atoms(0, self.n_atoms()))


@dataclass(frozen=True)
class FleetTerminalUnit:
    """One fleet terminal's campaign: idle-latency series plus
    contended speed tests.

    Atoms are ping-round chunks (chunk ``k`` draws from the stream
    seeded ``(config.seed, "fleet-ping", index, "chunk", k)``)
    followed by ``config.fleet_speedtest_epochs`` single-connection
    speed tests whose ``capacity_share`` is the terminal's fair share
    of its serving satellite at the epoch — the oversubscription
    mechanism from the fleet scheduler feeding the PR-6 fair-share
    knob. Every atom derives its own RNG stream, so any contiguous
    shard grouping reproduces the same bytes.

    Ping RTTs are measured to the terminal's PoP (``remote_rtt_s=0``):
    the fleet mode studies the access network under contention, not
    anchor geography.
    """

    config: "CampaignConfig"
    index: int

    kind = "fleet"

    @property
    def label(self) -> str:
        return f"fleet:ut{self.index:04d}"

    def _round_times(self) -> np.ndarray:
        cfg = self.config
        return np.arange(0.0, days(cfg.ping_days), cfg.ping_interval_s)

    def _n_ping_atoms(self) -> int:
        chunk = self.config.ping_shard_rounds
        return max(1, -(-len(self._round_times()) // chunk))

    def n_atoms(self) -> int:
        return self._n_ping_atoms() + self.config.fleet_speedtest_epochs

    def cost_hint(self) -> float:
        cfg = self.config
        return (len(self._round_times()) * cfg.pings_per_round * 1e-3
                + cfg.fleet_speedtest_epochs
                * (cfg.speedtest_warmup_s + cfg.speedtest_measure_s))

    def _speedtest_epochs(self) -> list[float]:
        """Fleet-wide speed-test epochs (shared by every terminal, so
        the fleet contends at the same instants)."""
        cfg = self.config
        rng = make_rng((cfg.seed, "fleet-st-epochs"))
        return sorted(rng.random() * days(cfg.ping_days)
                      for _ in range(cfg.fleet_speedtest_epochs))

    def run_atoms(self, start: int, stop: int) -> list[tuple]:
        n_ping = self._n_ping_atoms()
        payloads: list[tuple] = []
        for atom in range(start, stop):
            if atom < n_ping:
                payloads.append(("ping", self._ping_chunk(atom)))
            else:
                payloads.append(
                    ("speedtest", self._speedtest(atom - n_ping)))
        return payloads

    def _ping_chunk(self, atom: int) -> tuple[list[float], list[float],
                                              list[float]]:
        cfg = self.config
        ctx = fleet_context_for(cfg)
        model = ctx.model_for(self.index)
        disruption = ctx.scenario.campaign
        chunk = cfg.ping_shard_rounds
        rng = make_rng((cfg.seed, "fleet-ping", self.index,
                        "chunk", atom))
        times: list[float] = []
        rtts: list[float] = []
        shares: list[float] = []
        for t in self._round_times()[atom * chunk:(atom + 1) * chunk]:
            try:
                shares.append(
                    ctx.fleet.capacity_share(self.index, float(t)))
            except ConfigurationError:
                shares.append(math.nan)
            for probe in range(cfg.pings_per_round):
                probe_t = float(t) + probe * 1.0
                times.append(probe_t)
                if disruption.blackout_at(probe_t):
                    rtts.append(math.nan)
                    continue
                if rng.random() < cfg.ping_loss_prob:
                    rtts.append(math.nan)
                    continue
                extra = disruption.extra_loss_prob(probe_t)
                if extra > 0.0 and rng.random() < extra:
                    rtts.append(math.nan)
                    continue
                try:
                    rtts.append(model.idle_rtt(probe_t, rng))
                except ConfigurationError:
                    # Unservable slot (e.g. a polar-band terminal):
                    # the probe is simply lost.
                    rtts.append(math.nan)
        return times, rtts, shares

    def _speedtest(self, epoch_idx: int) -> SpeedtestSample:
        cfg = self.config
        ctx = fleet_context_for(cfg)
        epoch = self._speedtest_epochs()[epoch_idx]
        run_seed = stable_seed(cfg.seed, "fleet-st", self.index,
                               epoch_idx)
        try:
            share = ctx.fleet.capacity_share(self.index, epoch)
        except ConfigurationError as exc:
            return SpeedtestSample(
                t=epoch, network="starlink", direction="down",
                throughput_mbps=0.0,
                outcome=MeasurementOutcome(
                    "unreachable", detail=str(exc)))
        access = StarlinkAccess(seed=run_seed, epoch_t=epoch,
                                timeline=ctx.timeline,
                                path_model=ctx.model_for(self.index),
                                capacity_share=share)
        apply_to_access(access, ctx.scenario.experiment_schedule(epoch))
        server = access.add_remote_host("ookla", "62.4.0.10",
                                        OOKLA_BRUSSELS)
        access.finalize()
        result = run_speedtest(
            access.client, server, "down", connections=1,
            warmup_s=cfg.speedtest_warmup_s,
            measure_s=cfg.speedtest_measure_s,
            config=TcpConfig(cc=cfg.cc))
        return SpeedtestSample(t=epoch, network="starlink",
                               direction="down",
                               throughput_mbps=result.throughput_mbps,
                               outcome=result.outcome)

    def merge_atoms(self, payloads) -> FleetTerminalResult:
        cfg = self.config
        times: list[float] = []
        rtts: list[float] = []
        shares: list[float] = []
        speedtests: list[SpeedtestSample] = []
        for tag, payload in payloads:
            if tag == "ping":
                chunk_times, chunk_rtts, chunk_shares = payload
                times.extend(chunk_times)
                rtts.extend(chunk_rtts)
                shares.extend(chunk_shares)
            else:
                speedtests.append(payload)
        # Placement is a pure function of the config, so the merge can
        # rebuild it without shipping coordinates through every atom.
        site = build_fleet_terminals(fleet_spec_for(cfg))[self.index]
        rtts_arr = np.array(rtts)
        lost = int(np.isnan(rtts_arr).sum()) if rtts_arr.size else 0
        if rtts_arr.size and lost == rtts_arr.size:
            outcome = MeasurementOutcome(
                "unreachable",
                detail=f"all {lost} probes from {site.name} lost")
        else:
            outcome = MeasurementOutcome(
                detail=f"{lost}/{rtts_arr.size} probes lost")
        return FleetTerminalResult(
            index=self.index, name=site.name,
            lat_deg=site.location.lat_deg,
            lon_deg=site.location.lon_deg,
            times=np.array(times), rtts=rtts_arr,
            shares=np.array(shares), speedtests=speedtests,
            outcome=outcome)

    def run(self) -> FleetTerminalResult:
        return self.merge_atoms(self.run_atoms(0, self.n_atoms()))


#: Everything the executor accepts.
WorkUnit = (PingSeriesUnit | StreamingPingUnit | SpeedtestUnit | BulkUnit
            | MessagesUnit | WebRoundUnit | FleetTerminalUnit)
