"""Self-contained campaign work units.

The five-month campaign decomposes into independent measurement units
(Table 1): one per anchor ping series, one per speedtest / bulk /
messages epoch x direction, one per web network x visit round. Every
unit carries its own :class:`~repro.core.campaign.CampaignConfig`
plus an explicit seed tuple, so ``unit.run()`` produces the same
bytes no matter which process executes it, in which order, or next to
which other units.

Shared model state (constellation geometry, campaign timeline, the
analytic path model) is rebuilt once per process and memoised by
campaign seed in :func:`context_for`. That sharing is safe because
the model is order-independent by construction: scheduler snapshots
are seeded per slot, and the fibre/jitter caches are pure memo tables
whose values depend only on their key and the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.apps.bulk import run_bulk_transfer
from repro.apps.messages import run_messages_workload
from repro.apps.speedtest import run_speedtest
from repro.apps.web.browser import BrowserEngine
from repro.apps.web.corpus import build_corpus
from repro.apps.web.profiles import (
    satcom_profile,
    starlink_profile,
    wired_profile,
)
from repro.core.anchors import anchor_by_name
from repro.core.datasets import (
    BulkSample,
    MessagesSample,
    SpeedtestSample,
    VisitSample,
)
from repro.geo.satcom import GeoSatComAccess
from repro.leo.access import StarlinkAccess, StarlinkPathModel
from repro.leo.constellation import Constellation
from repro.leo.events import CampaignTimeline
from repro.leo.geometry import GeoPoint
from repro.rng import make_rng
from repro.units import days

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.campaign import CampaignConfig


@runtime_checkable
class CampaignUnit(Protocol):
    """The executor contract: what ``repro.exec`` runs, journals,
    retries and reports on.

    ``label`` is a stable identity (it keys journal entries and names
    failures), ``kind`` buckets timings and coverage, and ``run()``
    must be a pure function of the unit's own fields — re-running it
    after a crash, on another process, or from a resumed journal must
    reproduce identical bytes. Units that carry a ``config`` attribute
    (all campaign units do) get it fingerprinted into their journal
    key, so checkpoints can never leak across configurations. Wrappers
    such as :class:`repro.testing.chaos.ChaosUnit` satisfy the same
    protocol by delegation.
    """

    @property
    def label(self) -> str: ...

    @property
    def kind(self) -> str: ...

    def run(self) -> object: ...

#: Campus server (UCLouvain) and nearby Ookla server locations.
CAMPUS_SERVER = GeoPoint(50.670, 4.615)
OOKLA_BRUSSELS = GeoPoint(50.85, 4.35)

_WEB_PROFILES = {
    "starlink": starlink_profile,
    "satcom": satcom_profile,
    "wired": wired_profile,
}


@dataclass
class WorkerContext:
    """Per-process shared model state for one campaign seed."""

    timeline: CampaignTimeline
    constellation: Constellation
    path_model: StarlinkPathModel


_CONTEXTS: dict[int, WorkerContext] = {}


def context_for(seed: int) -> WorkerContext:
    """The process-local :class:`WorkerContext` for a campaign seed.

    Built lazily and memoised, so a worker pays the constellation
    setup once no matter how many units it executes.
    """
    ctx = _CONTEXTS.get(seed)
    if ctx is None:
        timeline = CampaignTimeline()
        constellation = Constellation()
        ctx = WorkerContext(
            timeline=timeline, constellation=constellation,
            path_model=StarlinkPathModel(constellation=constellation,
                                         timeline=timeline, seed=seed))
        _CONTEXTS[seed] = ctx
    return ctx


def _starlink_access(config: "CampaignConfig", epoch: float,
                     run_seed: int) -> StarlinkAccess:
    ctx = context_for(config.seed)
    return StarlinkAccess(seed=run_seed, epoch_t=epoch,
                          timeline=ctx.timeline,
                          constellation=ctx.constellation)


@dataclass(frozen=True)
class PingSeriesUnit:
    """The full five-month ping series toward one anchor.

    Seed tuple: ``(config.seed, "ping-campaign", anchor_name)``.
    """

    config: "CampaignConfig"
    anchor_name: str

    kind = "ping"

    @property
    def label(self) -> str:
        return f"ping:{self.anchor_name}"

    def run(self) -> tuple[str, np.ndarray, np.ndarray]:
        cfg = self.config
        anchor = anchor_by_name(self.anchor_name)
        rng = make_rng((cfg.seed, "ping-campaign", self.anchor_name))
        model = context_for(cfg.seed).path_model
        round_times = np.arange(0.0, days(cfg.ping_days),
                                cfg.ping_interval_s)
        times = []
        rtts = []
        for t in round_times:
            pop = model.pop_location(t)
            remote = anchor.remote_rtt_from(pop)
            for probe in range(cfg.pings_per_round):
                probe_t = t + probe * 1.0
                times.append(probe_t)
                if rng.random() < cfg.ping_loss_prob:
                    rtts.append(math.nan)
                else:
                    rtts.append(model.idle_rtt(probe_t, rng,
                                               remote_rtt_s=remote))
        return self.anchor_name, np.array(times), np.array(rtts)


@dataclass(frozen=True)
class SpeedtestUnit:
    """One Ookla-like test: a single network x direction x epoch."""

    config: "CampaignConfig"
    network: str           # "starlink" | "satcom"
    direction: str         # "down" | "up"
    epoch: float
    run_seed: int

    kind = "speedtest"

    @property
    def label(self) -> str:
        return f"speedtest:{self.network}:{self.direction}:{self.run_seed}"

    def run(self) -> SpeedtestSample:
        cfg = self.config
        if self.network == "starlink":
            access = _starlink_access(cfg, self.epoch, self.run_seed)
            warmup = cfg.speedtest_warmup_s
        else:
            access = GeoSatComAccess(seed=self.run_seed,
                                     epoch_t=self.epoch)
            warmup = cfg.satcom_warmup_s
        server = access.add_remote_host("ookla", "62.4.0.10",
                                        OOKLA_BRUSSELS)
        access.finalize()
        result = run_speedtest(
            access.client, server, self.direction,
            connections=cfg.speedtest_connections,
            warmup_s=warmup, measure_s=cfg.speedtest_measure_s)
        return SpeedtestSample(t=self.epoch, network=self.network,
                               direction=self.direction,
                               throughput_mbps=result.throughput_mbps)


@dataclass(frozen=True)
class BulkUnit:
    """One H3 bulk transfer: a single session x direction x epoch."""

    config: "CampaignConfig"
    session: int
    direction: str
    epoch: float
    run_seed: int

    kind = "bulk"

    @property
    def label(self) -> str:
        return f"bulk:s{self.session}:{self.direction}:{self.run_seed}"

    def run(self) -> BulkSample:
        cfg = self.config
        access = _starlink_access(cfg, self.epoch, self.run_seed)
        server = access.add_remote_host("campus", "130.104.1.1",
                                        CAMPUS_SERVER)
        access.finalize()
        result = run_bulk_transfer(access.client, server, self.direction,
                                   payload_bytes=cfg.bulk_bytes)
        return BulkSample(t=self.epoch, direction=self.direction,
                          session=self.session, result=result)


@dataclass(frozen=True)
class MessagesUnit:
    """One low-bitrate message run: a single direction x epoch."""

    config: "CampaignConfig"
    direction: str
    epoch: float
    run_seed: int
    workload_seed: int

    kind = "messages"

    @property
    def label(self) -> str:
        return f"messages:{self.direction}:{self.run_seed}"

    def run(self) -> MessagesSample:
        cfg = self.config
        access = _starlink_access(cfg, self.epoch, self.run_seed)
        server = access.add_remote_host("campus", "130.104.1.1",
                                        CAMPUS_SERVER)
        access.finalize()
        result = run_messages_workload(
            access.client, server, self.direction,
            duration_s=cfg.messages_duration_s, seed=self.workload_seed)
        return MessagesSample(t=self.epoch, direction=self.direction,
                              result=result)


@dataclass(frozen=True)
class WebRoundUnit:
    """One browsing round: every corpus page over one network, once.

    The corpus is rebuilt inside the unit (it is deterministic for
    ``config.seed``), so the unit ships only scalars across the
    process boundary.
    """

    config: "CampaignConfig"
    network: str
    visit_id: int
    epoch: float

    kind = "web"

    @property
    def label(self) -> str:
        return f"web:{self.network}:v{self.visit_id}"

    def run(self) -> list[VisitSample]:
        cfg = self.config
        corpus = build_corpus(cfg.web_sites, seed=cfg.seed)
        profile = _WEB_PROFILES[self.network](epoch_t=self.epoch,
                                              seed=cfg.seed)
        engine = BrowserEngine(profile, seed=cfg.seed + self.visit_id)
        visits = []
        for page in corpus:
            result = engine.visit(page, visit_id=self.visit_id)
            visits.append(VisitSample(
                t=self.epoch, network=self.network, url=page.url,
                onload_s=result.onload_s,
                speed_index_s=result.speed_index_s,
                n_connections=result.n_connections,
                connection_setup_s=result.connection_setup_s))
        return visits


#: Everything the executor accepts.
WorkUnit = (PingSeriesUnit | SpeedtestUnit | BulkUnit
            | MessagesUnit | WebRoundUnit)
