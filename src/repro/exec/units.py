"""Self-contained campaign work units.

The five-month campaign decomposes into independent measurement units
(Table 1): one per anchor ping series, one per speedtest / bulk /
messages epoch x direction, one per web network x visit round. Every
unit carries its own :class:`~repro.core.campaign.CampaignConfig`
plus an explicit seed tuple, so ``unit.run()`` produces the same
bytes no matter which process executes it, in which order, or next to
which other units.

Shared model state (constellation geometry, campaign timeline, the
analytic path model, the materialised disruption scenario) is rebuilt
once per process and memoised per (seed, scenario) in
:func:`context_for`. That sharing is safe because the model is
order-independent by construction: scheduler snapshots are seeded per
slot, and the fibre/jitter caches are pure memo tables whose values
depend only on their key and the seed. Scenarios get *separate*
contexts because gateway outages mutate the shared scheduler — a
clear-sky unit must never see a scheduler another scenario poked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.apps.bulk import run_bulk_transfer
from repro.apps.messages import run_messages_workload
from repro.apps.speedtest import run_speedtest
from repro.apps.web.browser import BrowserEngine
from repro.apps.web.corpus import build_corpus
from repro.apps.web.profiles import (
    satcom_profile,
    starlink_profile,
    wired_profile,
)
from repro.core.anchors import anchor_by_name
from repro.apps.outcome import MeasurementOutcome
from repro.core.datasets import (
    BulkSample,
    MessagesSample,
    SpeedtestSample,
    VisitSample,
)
from repro.disrupt.apply import apply_to_access, apply_to_scheduler
from repro.disrupt.scenarios import Scenario, build_scenario
from repro.geo.satcom import GeoSatComAccess
from repro.leo.access import StarlinkAccess, StarlinkPathModel
from repro.leo.constellation import Constellation
from repro.leo.events import CampaignTimeline
from repro.leo.geometry import GeoPoint
from repro.rng import make_rng
from repro.units import days

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.campaign import CampaignConfig


@runtime_checkable
class CampaignUnit(Protocol):
    """The executor contract: what ``repro.exec`` runs, journals,
    retries and reports on.

    ``label`` is a stable identity (it keys journal entries and names
    failures), ``kind`` buckets timings and coverage, and ``run()``
    must be a pure function of the unit's own fields — re-running it
    after a crash, on another process, or from a resumed journal must
    reproduce identical bytes. Units that carry a ``config`` attribute
    (all campaign units do) get it fingerprinted into their journal
    key, so checkpoints can never leak across configurations. Wrappers
    such as :class:`repro.testing.chaos.ChaosUnit` satisfy the same
    protocol by delegation.
    """

    @property
    def label(self) -> str: ...

    @property
    def kind(self) -> str: ...

    def run(self) -> object: ...

#: Campus server (UCLouvain) and nearby Ookla server locations.
CAMPUS_SERVER = GeoPoint(50.670, 4.615)
OOKLA_BRUSSELS = GeoPoint(50.85, 4.35)

_WEB_PROFILES = {
    "starlink": starlink_profile,
    "satcom": satcom_profile,
    "wired": wired_profile,
}


@dataclass
class WorkerContext:
    """Per-process shared model state for one (seed, scenario)."""

    timeline: CampaignTimeline
    constellation: Constellation
    path_model: StarlinkPathModel
    scenario: Scenario


_CONTEXTS: dict[tuple, WorkerContext] = {}


def context_for(config: "CampaignConfig") -> WorkerContext:
    """The process-local :class:`WorkerContext` for a campaign config.

    Built lazily and memoised, so a worker pays the constellation
    setup once no matter how many units it executes. The memo key
    covers the seed, the scenario name and every config knob the
    scenario's campaign schedule is derived from, so two configs that
    would materialise different disruption timelines never share a
    scheduler.
    """
    key = (config.seed, config.scenario, config.ping_days,
           config.ping_interval_s, config.pings_per_round)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        timeline = CampaignTimeline()
        constellation = Constellation()
        scenario = build_scenario(config.scenario, config)
        path_model = StarlinkPathModel(constellation=constellation,
                                       timeline=timeline,
                                       seed=config.seed)
        # Campaign-scale gateway outages live in the shared scheduler
        # (a no-op for clear_sky: the empty schedule installs nothing).
        apply_to_scheduler(path_model.scheduler, scenario.campaign)
        ctx = WorkerContext(
            timeline=timeline, constellation=constellation,
            path_model=path_model, scenario=scenario)
        _CONTEXTS[key] = ctx
    return ctx


def _starlink_access(config: "CampaignConfig", epoch: float,
                     run_seed: int) -> StarlinkAccess:
    ctx = context_for(config)
    access = StarlinkAccess(seed=run_seed, epoch_t=epoch,
                            timeline=ctx.timeline,
                            constellation=ctx.constellation)
    # Shift the scenario's experiment overlay to this epoch and
    # install it on the freshly built (private) access. Clear-sky
    # overlays are empty, and installing an empty schedule touches
    # neither RNG streams nor the event queue.
    apply_to_access(access, ctx.scenario.experiment_schedule(epoch))
    return access


@dataclass(frozen=True)
class PingSeriesUnit:
    """The full five-month ping series toward one anchor.

    Seed tuple: ``(config.seed, "ping-campaign", anchor_name)``.
    """

    config: "CampaignConfig"
    anchor_name: str

    kind = "ping"

    @property
    def label(self) -> str:
        return f"ping:{self.anchor_name}"

    def run(self) -> tuple[str, np.ndarray, np.ndarray,
                           MeasurementOutcome]:
        cfg = self.config
        anchor = anchor_by_name(self.anchor_name)
        rng = make_rng((cfg.seed, "ping-campaign", self.anchor_name))
        ctx = context_for(cfg)
        model = ctx.path_model
        disruption = ctx.scenario.campaign
        round_times = np.arange(0.0, days(cfg.ping_days),
                                cfg.ping_interval_s)
        times = []
        rtts = []
        # Disruption guards are ordered to keep the clear-sky RNG
        # stream byte-identical to the historical loop: an empty
        # schedule answers False/0.0 everywhere, so exactly the same
        # draws happen in exactly the same order.
        for t in round_times:
            pop = model.pop_location(t)
            remote = anchor.remote_rtt_from(pop)
            for probe in range(cfg.pings_per_round):
                probe_t = t + probe * 1.0
                times.append(probe_t)
                if disruption.blackout_at(probe_t):
                    rtts.append(math.nan)
                    continue
                if rng.random() < cfg.ping_loss_prob:
                    rtts.append(math.nan)
                else:
                    extra = disruption.extra_loss_prob(probe_t)
                    if extra > 0.0 and rng.random() < extra:
                        rtts.append(math.nan)
                    else:
                        rtts.append(model.idle_rtt(probe_t, rng,
                                                   remote_rtt_s=remote))
        rtts_arr = np.array(rtts)
        lost = int(np.isnan(rtts_arr).sum()) if rtts_arr.size else 0
        if rtts_arr.size and lost == rtts_arr.size:
            outcome = MeasurementOutcome(
                "unreachable",
                detail=f"all {lost} probes to {self.anchor_name} lost")
        else:
            outcome = MeasurementOutcome(
                detail=f"{lost}/{rtts_arr.size} probes lost")
        return self.anchor_name, np.array(times), rtts_arr, outcome


@dataclass(frozen=True)
class SpeedtestUnit:
    """One Ookla-like test: a single network x direction x epoch."""

    config: "CampaignConfig"
    network: str           # "starlink" | "satcom"
    direction: str         # "down" | "up"
    epoch: float
    run_seed: int

    kind = "speedtest"

    @property
    def label(self) -> str:
        return f"speedtest:{self.network}:{self.direction}:{self.run_seed}"

    def run(self) -> SpeedtestSample:
        cfg = self.config
        if self.network == "starlink":
            access = _starlink_access(cfg, self.epoch, self.run_seed)
            warmup = cfg.speedtest_warmup_s
        else:
            access = GeoSatComAccess(seed=self.run_seed,
                                     epoch_t=self.epoch)
            warmup = cfg.satcom_warmup_s
        server = access.add_remote_host("ookla", "62.4.0.10",
                                        OOKLA_BRUSSELS)
        access.finalize()
        result = run_speedtest(
            access.client, server, self.direction,
            connections=cfg.speedtest_connections,
            warmup_s=warmup, measure_s=cfg.speedtest_measure_s)
        return SpeedtestSample(t=self.epoch, network=self.network,
                               direction=self.direction,
                               throughput_mbps=result.throughput_mbps,
                               outcome=result.outcome)


@dataclass(frozen=True)
class BulkUnit:
    """One H3 bulk transfer: a single session x direction x epoch."""

    config: "CampaignConfig"
    session: int
    direction: str
    epoch: float
    run_seed: int

    kind = "bulk"

    @property
    def label(self) -> str:
        return f"bulk:s{self.session}:{self.direction}:{self.run_seed}"

    def run(self) -> BulkSample:
        cfg = self.config
        access = _starlink_access(cfg, self.epoch, self.run_seed)
        server = access.add_remote_host("campus", "130.104.1.1",
                                        CAMPUS_SERVER)
        access.finalize()
        result = run_bulk_transfer(access.client, server, self.direction,
                                   payload_bytes=cfg.bulk_bytes)
        return BulkSample(t=self.epoch, direction=self.direction,
                          session=self.session, result=result)


@dataclass(frozen=True)
class MessagesUnit:
    """One low-bitrate message run: a single direction x epoch."""

    config: "CampaignConfig"
    direction: str
    epoch: float
    run_seed: int
    workload_seed: int

    kind = "messages"

    @property
    def label(self) -> str:
        return f"messages:{self.direction}:{self.run_seed}"

    def run(self) -> MessagesSample:
        cfg = self.config
        access = _starlink_access(cfg, self.epoch, self.run_seed)
        server = access.add_remote_host("campus", "130.104.1.1",
                                        CAMPUS_SERVER)
        access.finalize()
        result = run_messages_workload(
            access.client, server, self.direction,
            duration_s=cfg.messages_duration_s, seed=self.workload_seed)
        return MessagesSample(t=self.epoch, direction=self.direction,
                              result=result)


@dataclass(frozen=True)
class WebRoundUnit:
    """One browsing round: every corpus page over one network, once.

    The corpus is rebuilt inside the unit (it is deterministic for
    ``config.seed``), so the unit ships only scalars across the
    process boundary.
    """

    config: "CampaignConfig"
    network: str
    visit_id: int
    epoch: float

    kind = "web"

    @property
    def label(self) -> str:
        return f"web:{self.network}:v{self.visit_id}"

    def run(self) -> list[VisitSample]:
        cfg = self.config
        corpus = build_corpus(cfg.web_sites, seed=cfg.seed)
        profile = _WEB_PROFILES[self.network](epoch_t=self.epoch,
                                              seed=cfg.seed)
        engine = BrowserEngine(profile, seed=cfg.seed + self.visit_id,
                               visit_deadline_s=cfg.web_visit_deadline_s)
        visits = []
        for page in corpus:
            result = engine.visit(page, visit_id=self.visit_id)
            visits.append(VisitSample(
                t=self.epoch, network=self.network, url=page.url,
                onload_s=result.onload_s,
                speed_index_s=result.speed_index_s,
                n_connections=result.n_connections,
                connection_setup_s=result.connection_setup_s,
                outcome=result.outcome))
        return visits


#: Everything the executor accepts.
WorkUnit = (PingSeriesUnit | SpeedtestUnit | BulkUnit
            | MessagesUnit | WebRoundUnit)
