"""Splittable work units: deterministic shards with an ordered merge.

A campaign unit that implements the *atoms* contract can be split
across workers:

* ``n_atoms()`` — how many indivisible pieces the unit decomposes
  into (per-connection for speedtests, per-segment for bulk
  transfers, per-page for web rounds, per-round-chunk for ping
  series). The count is a pure function of the unit's config.
* ``run_atoms(start, stop)`` — execute atoms ``[start, stop)`` and
  return one payload per atom. Each atom derives its own RNG stream
  from the unit seed tuple plus the atom index, so the payload list
  is identical no matter how the range is cut.
* ``merge_atoms(payloads)`` — reassemble the full, ordered atom
  payload list into the unit's payload. ``unit.run()`` is defined as
  ``merge_atoms(run_atoms(0, n_atoms()))``, so for every granularity
  the sharded result is *bit-identical to serial by construction*:
  both paths run the same atoms and the same merge, only on
  different processes.

:func:`plan_shards` groups atoms into at most ``granularity``
balanced contiguous shards per unit; the executor dispatches shards
largest-first (work stealing: an idle worker always takes the biggest
remaining shard) and merges results by ``(unit index, shard index)``.
Units without the atoms contract — or runs at ``granularity=1`` —
pass through unchanged, keeping their historical labels and journal
keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError


@runtime_checkable
class SplittableUnit(Protocol):
    """The optional splitting contract on top of ``CampaignUnit``.

    Implementations must guarantee that ``run_atoms`` is a pure
    function of ``(unit fields, start, stop)`` and that atom payloads
    do not depend on how the ``[0, n_atoms())`` range is partitioned —
    the differential suite in ``tests/exec/`` pins exactly that.
    """

    def n_atoms(self) -> int: ...

    def run_atoms(self, start: int, stop: int) -> list: ...

    def merge_atoms(self, payloads: Sequence) -> object: ...


@runtime_checkable
class StreamingUnit(Protocol):
    """The optional *streaming reduce* contract on top of the atoms one.

    A splittable unit that additionally sets ``streaming = True`` and
    implements this contract has its shard payloads folded by the
    executor **as they arrive** instead of being held until every
    shard lands:

    * ``init_partial()`` — a fresh, empty accumulator;
    * ``merge_partial(acc, shard_payload)`` — fold one shard's payload
      (the list returned by ``run_atoms``) into the accumulator and
      return it. Folding happens strictly in shard order (the executor
      buffers out-of-order arrivals and reduces the contiguous
      prefix), so the final value is deterministic regardless of
      worker scheduling;
    * ``finalize(acc)`` — turn the accumulator into the unit payload.

    ``run()`` must equal ``finalize`` over the in-order fold of all
    shards — the differential suite in ``tests/exec/`` pins that the
    streamed result is digest-identical to the batch path.
    """

    streaming: bool

    def init_partial(self) -> object: ...

    def merge_partial(self, acc: object, shard_payload: list) -> object: ...

    def finalize(self, acc: object) -> object: ...


def is_streaming_unit(unit) -> bool:
    """Whether ``unit`` opted into the arrival-order streaming reduce.

    Duck-typed like :func:`atom_count`: the ``streaming`` flag must be
    truthy *and* the three reduce hooks must exist. Wrappers (e.g.
    chaos) that forward attributes qualify automatically.
    """
    return bool(getattr(unit, "streaming", False)) and all(
        callable(getattr(unit, name, None))
        for name in ("init_partial", "merge_partial", "finalize"))


def shard_label(parent_label: str, start: int, stop: int) -> str:
    """Stable label of the shard covering atoms ``[start, stop)``.

    The parent label plus the atom range keys journal entries and
    chaos attempt markers, so shard checkpoints can never collide
    with whole-unit checkpoints or with a different split plan.
    """
    return f"{parent_label}#s{start}-{stop}"


def atom_count(unit) -> int:
    """How many atoms ``unit`` splits into (1 when unsplittable).

    Duck-typed on purpose: wrappers such as
    :class:`repro.testing.chaos.ChaosUnit` delegate, and plain units
    without the contract simply report one atom.
    """
    probe = getattr(unit, "n_atoms", None)
    if probe is None:
        return 1
    return max(1, int(probe()))


def task_cost(runnable) -> float:
    """Relative size hint used for largest-first dispatch.

    Purely a scheduling hint — results are merged by index, so a bad
    estimate costs wall clock, never correctness. Units without a
    ``cost_hint`` weigh 1.
    """
    hint = getattr(runnable, "cost_hint", None)
    if hint is None:
        return 1.0
    try:
        return max(0.0, float(hint()))
    except Exception:
        return 1.0


@dataclass(frozen=True)
class UnitShard:
    """One contiguous atom range of a splittable unit.

    Satisfies the executor contract itself (``label`` / ``kind`` /
    ``run()``), so the journal, retry, timeout and failure machinery
    apply per shard with no special cases. ``config`` is the parent's,
    which fingerprints shard journal keys exactly like whole units.
    """

    unit: object
    shard_index: int
    n_shards: int
    start: int
    stop: int

    @property
    def label(self) -> str:
        return shard_label(self.unit.label, self.start, self.stop)

    @property
    def parent_label(self) -> str:
        return self.unit.label

    @property
    def kind(self) -> str:
        return self.unit.kind

    @property
    def config(self):
        return getattr(self.unit, "config", None)

    def run(self) -> list:
        return self.unit.run_atoms(self.start, self.stop)

    def cost_hint(self) -> float:
        span = self.stop - self.start
        return task_cost(self.unit) * span / max(1, atom_count(self.unit))


def plan_shards(units: Sequence, granularity: int) -> list[list]:
    """Per-unit dispatch plan: ``[unit]`` or its list of shards.

    Each splittable unit is cut into ``min(granularity, n_atoms)``
    balanced contiguous shards (``start = j*n//k``), so shard sizes
    differ by at most one atom. ``granularity=1`` and unsplittable
    units pass through as themselves — identical labels, journal keys
    and code path as before sharding existed.
    """
    if granularity < 1:
        raise ConfigurationError(
            f"granularity must be >= 1, got {granularity}")
    plan: list[list] = []
    for unit in units:
        n = atom_count(unit) if granularity > 1 else 1
        k = min(granularity, n)
        if k <= 1:
            plan.append([unit])
            continue
        plan.append([
            UnitShard(unit=unit, shard_index=j, n_shards=k,
                      start=j * n // k, stop=(j + 1) * n // k)
            for j in range(k)])
    return plan
