"""Campaign execution substrate: work units and the parallel runner.

``repro.exec`` decomposes the measurement campaign into independent,
picklable work units (:mod:`repro.exec.units`) and executes them
serially or on a process pool with a deterministic ordered merge
(:mod:`repro.exec.runner`). Parallel output is bit-identical to the
serial run for the same seed; ``tests/core/test_campaign_parallel.py``
pins that with the trace-digest machinery.
"""

from repro.exec.runner import (
    UnitTiming,
    default_workers,
    execute_units,
    render_timings,
    timing_breakdown,
)
from repro.exec.units import (
    BulkUnit,
    MessagesUnit,
    PingSeriesUnit,
    SpeedtestUnit,
    WebRoundUnit,
    WorkUnit,
    context_for,
)

__all__ = [
    "BulkUnit",
    "MessagesUnit",
    "PingSeriesUnit",
    "SpeedtestUnit",
    "UnitTiming",
    "WebRoundUnit",
    "WorkUnit",
    "context_for",
    "default_workers",
    "execute_units",
    "render_timings",
    "timing_breakdown",
]
