"""Campaign execution substrate: work units and the parallel runner.

``repro.exec`` decomposes the measurement campaign into independent,
picklable work units (:mod:`repro.exec.units`) and executes them
serially or on a process pool with a deterministic ordered merge
(:mod:`repro.exec.runner`). Parallel output is bit-identical to the
serial run for the same seed; ``tests/core/test_campaign_parallel.py``
pins that with the trace-digest machinery.

The runner is crash-safe: a :class:`~repro.exec.journal.Journal`
checkpoints every completed unit atomically (kill the run at any
instant and resume digest-identically), unit exceptions / worker
deaths / timeouts become structured :class:`UnitFailure` records with
bounded deterministic retry, and ``failure_policy="degrade"`` finishes
with partial output plus a :class:`DegradationReport`.
``tests/exec/`` pins every recovery path with the chaos harness in
:mod:`repro.testing.chaos`.
"""

from repro.exec.journal import Journal
from repro.exec.resources import (
    RESOURCE_POLICIES,
    STAGES,
    MemoryWatchdog,
    PrecisionEvent,
    ResourceBudget,
)
from repro.exec.sharding import (
    SplittableUnit,
    StreamingUnit,
    UnitShard,
    atom_count,
    is_streaming_unit,
    plan_shards,
    shard_label,
    task_cost,
)
from repro.exec.runner import (
    FAILURE_POLICIES,
    DegradationReport,
    UnitFailure,
    UnitTiming,
    default_workers,
    execute_units,
    render_timings,
    timing_breakdown,
)
from repro.exec.units import (
    BulkUnit,
    CampaignUnit,
    FleetTerminalUnit,
    MessagesUnit,
    PingSeriesUnit,
    SpeedtestUnit,
    StreamingPingUnit,
    WebRoundUnit,
    WorkUnit,
    context_for,
    fleet_context_for,
)

__all__ = [
    "BulkUnit",
    "CampaignUnit",
    "DegradationReport",
    "FAILURE_POLICIES",
    "FleetTerminalUnit",
    "Journal",
    "MemoryWatchdog",
    "MessagesUnit",
    "PingSeriesUnit",
    "PrecisionEvent",
    "RESOURCE_POLICIES",
    "ResourceBudget",
    "STAGES",
    "SpeedtestUnit",
    "SplittableUnit",
    "StreamingPingUnit",
    "StreamingUnit",
    "UnitFailure",
    "UnitShard",
    "UnitTiming",
    "WebRoundUnit",
    "WorkUnit",
    "atom_count",
    "context_for",
    "default_workers",
    "fleet_context_for",
    "execute_units",
    "is_streaming_unit",
    "plan_shards",
    "render_timings",
    "shard_label",
    "task_cost",
    "timing_breakdown",
]
