"""Work-unit executor: serial or process-parallel, identical output.

The contract is strict: ``execute_units(units, workers=N)`` returns
payloads in the order the units were given, bit-identical for every
``N``. Serial execution (``workers=1``) is the degenerate case — it
calls ``unit.run()`` in-process through the exact same code path a
pool worker uses, so there is no separate serial implementation to
drift. Parallel execution uses :class:`~concurrent.futures.\
ProcessPoolExecutor` with ``chunksize=1`` and an ordered merge via
``Executor.map``, which yields results in submission order no matter
which worker finished first.
"""

from __future__ import annotations

import cProfile
import functools
import os
import pathlib
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class UnitTiming:
    """Wall-clock record for one executed work unit."""

    label: str
    kind: str
    elapsed_s: float


def default_workers() -> int:
    """A sensible worker count for this machine (>= 1)."""
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        usable = os.cpu_count() or 1
    return max(1, usable)


def _profile_stem(label: str) -> str:
    """Filesystem-safe stem for a unit label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "unit"


def _run_one(unit, profile_dir: str | None = None
             ) -> tuple[object, UnitTiming]:
    profiler = None
    if profile_dir is not None:
        profiler = cProfile.Profile()
        profiler.enable()
    began = time.perf_counter()
    payload = unit.run()
    elapsed = time.perf_counter() - began
    if profiler is not None:
        profiler.disable()
        out_dir = pathlib.Path(profile_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(
            out_dir / f"{_profile_stem(unit.label)}.pstats")
    return payload, UnitTiming(label=unit.label, kind=unit.kind,
                               elapsed_s=elapsed)


def execute_units(units: Sequence, workers: int = 1,
                  timings: list[UnitTiming] | None = None,
                  profile_dir: str | None = None) -> list:
    """Run ``units`` and return their payloads in input order.

    ``workers=1`` executes in-process; ``workers>1`` fans out over a
    process pool. Per-unit wall clock (as seen by the process that
    ran the unit) is appended to ``timings`` when given, also in
    input order. With ``profile_dir`` set, each unit runs under
    cProfile and dumps ``<label>.pstats`` into that directory (the
    timing then includes profiler overhead; use it for hotspot
    hunting, not for benchmark numbers).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    units = list(units)
    if not units:
        return []
    run_one = functools.partial(_run_one, profile_dir=profile_dir)
    if workers == 1 or len(units) == 1:
        outcomes = [run_one(unit) for unit in units]
    else:
        with ProcessPoolExecutor(max_workers=min(workers,
                                                 len(units))) as pool:
            outcomes = list(pool.map(run_one, units, chunksize=1))
    if timings is not None:
        timings.extend(timing for _, timing in outcomes)
    return [payload for payload, _ in outcomes]


def timing_breakdown(timings: Sequence[UnitTiming]) -> list[dict]:
    """Aggregate per-kind rows: count, total/mean/max wall clock."""
    by_kind: dict[str, list[float]] = {}
    for timing in timings:
        by_kind.setdefault(timing.kind, []).append(timing.elapsed_s)
    rows = []
    for kind in sorted(by_kind):
        elapsed = by_kind[kind]
        rows.append({
            "kind": kind, "units": len(elapsed),
            "total_s": sum(elapsed),
            "mean_s": sum(elapsed) / len(elapsed),
            "max_s": max(elapsed),
        })
    return rows


def render_timings(timings: Sequence[UnitTiming]) -> str:
    """Human-readable per-kind timing table for the CLI."""
    lines = ["Unit timing (wall clock per executing process)",
             f"{'kind':<12} {'units':>6} {'total':>9} "
             f"{'mean':>9} {'max':>9}"]
    for row in timing_breakdown(timings):
        lines.append(
            f"{row['kind']:<12} {row['units']:>6} "
            f"{row['total_s']:>8.2f}s {row['mean_s']:>8.3f}s "
            f"{row['max_s']:>8.3f}s")
    total = sum(t.elapsed_s for t in timings)
    lines.append(f"{'all':<12} {len(timings):>6} {total:>8.2f}s")
    return "\n".join(lines)
