"""Work-unit executor: serial or process-parallel, identical output.

The contract is strict: ``execute_units(units, workers=N,
granularity=g)`` returns payloads in the order the units were given,
bit-identical for every ``(N, g)``. Serial execution (``workers=1``)
is the degenerate case — it calls the same task code path a pool
worker uses, so there is no separate serial implementation to drift.
Parallel execution keeps one task per free worker slot in flight and
merges results by input index, which preserves submission order no
matter which worker finished first.

``granularity > 1`` additionally splits units that implement the
atoms contract (:mod:`repro.exec.sharding`) into up to ``g`` shards
each. Dispatch is work-stealing in spirit: every free worker slot is
handed the *largest remaining* runnable shard, so a long-pole unit's
shards spread across the pool instead of serialising behind one
worker. Results are merged by ``(unit index, shard index)`` through
the unit's ordered ``merge_atoms``, which is the same merge
``unit.run()`` itself performs — sharded output is therefore
identical to serial by construction, not by scheduling luck.

On top of that sits the crash-safety layer:

* **journal** — each completed unit's payload is persisted atomically
  (:class:`repro.exec.journal.Journal`); on restart, journaled units
  are loaded instead of re-run, and the resumed output is
  digest-identical to an uninterrupted run.
* **failure isolation** — a raising unit, a dying worker process or a
  unit that exceeds ``unit_timeout`` becomes a structured
  :class:`UnitFailure` instead of tearing down the run, after a
  bounded deterministic retry with exponential backoff.
* **failure policy** — ``"raise"`` aborts on the first exhausted unit
  (:class:`~repro.errors.UnitExecutionError`); ``"degrade"`` finishes
  the run and returns the :class:`UnitFailure` records in place of the
  missing payloads, so callers can assemble partial datasets.
* **interrupt safety** — ``KeyboardInterrupt`` cancels pending work,
  kills the pool's worker processes (no orphans), and propagates; the
  journal already holds every unit completed so far, so the run is
  resumable.

Attribution caveats, by construction of ``ProcessPoolExecutor``: a
worker death breaks the whole pool, so every in-flight unit is charged
an attempt (the pool cannot say which unit killed it); a timed-out
unit cannot be killed individually, so the pool is rebuilt — timed-out
units are charged, innocent in-flight units are re-dispatched free.
Keeping at most ``workers`` units in flight bounds both effects.
"""

from __future__ import annotations

import cProfile
import os
import pathlib
import re
import time
import traceback
import tracemalloc
from concurrent import futures as _cf
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigurationError, UnitExecutionError
from repro.exec.sharding import (UnitShard, is_streaming_unit,
                                 plan_shards, task_cost)

#: Poll interval of the pool supervisor loop (seconds). Short enough
#: that timeout enforcement is prompt, long enough to stay off the CPU.
_POLL_S = 0.05

#: Accepted ``failure_policy`` values.
FAILURE_POLICIES = ("raise", "degrade")


@dataclass(frozen=True)
class UnitTiming:
    """Wall-clock (and optional peak-memory) record for one unit."""

    label: str
    kind: str
    elapsed_s: float
    #: Peak traced allocation during the unit's run, KiB
    #: (``tracemalloc``); 0.0 unless the run tracked memory (or the
    #: timing was restored from a journal, which stores wall clock
    #: only).
    peak_kb: float = 0.0


@dataclass(frozen=True)
class UnitFailure:
    """Structured record of one unit that exhausted its attempts.

    Under ``failure_policy="degrade"`` these take the failed unit's
    place in the payload list (and in the ``failures`` out-parameter),
    so callers can both skip and report them.

    When the failing task was a shard of a splittable unit, ``label``
    still names the *parent* unit (one failure record stands for the
    whole unit, whose merged payload is lost) and the shard fields
    say which piece died: ``shard_index`` (0-based), ``n_shards`` and
    the shard's own ``shard_label``. Whole-unit failures leave the
    shard fields at their defaults.
    """

    label: str
    kind: str
    error_type: str
    message: str
    traceback: str
    attempts: int
    shard_index: int | None = None
    n_shards: int = 0
    shard_label: str = ""


@dataclass
class DegradationReport:
    """Unit coverage of a (possibly partial) campaign run.

    ``coverage`` maps dataset name to ``(completed, total)`` unit
    counts; ``failures`` lists every unit that was lost. Rendered for
    humans by :func:`repro.core.reporting.render_degradation`.
    """

    total_units: int = 0
    completed_units: int = 0
    failures: list[UnitFailure] = field(default_factory=list)
    coverage: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    def coverage_fraction(self, dataset: str) -> float:
        completed, total = self.coverage.get(dataset, (0, 0))
        return completed / total if total else 1.0


def default_workers() -> int:
    """A sensible worker count for this machine (>= 1)."""
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        usable = os.cpu_count() or 1
    return max(1, usable)


def _profile_stem(label: str) -> str:
    """Filesystem-safe stem for a unit label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "unit"


def _backoff_s(retry_backoff_s: float, attempt: int) -> float:
    """Deterministic exponential backoff before attempt ``attempt+1``."""
    return retry_backoff_s * (2 ** (attempt - 1))


def _describe_task(runnable) -> str:
    """Human name of a task for error messages (shard-aware)."""
    if isinstance(runnable, UnitShard):
        return (f"unit {runnable.parent_label!r} shard "
                f"{runnable.shard_index + 1}/{runnable.n_shards} "
                f"({runnable.label!r})")
    return f"unit {runnable.label!r}"


def _failure_for(runnable, error_type: str, message: str, tb: str,
                 attempts: int) -> UnitFailure:
    """Build the :class:`UnitFailure` for an exhausted task."""
    if isinstance(runnable, UnitShard):
        return UnitFailure(
            label=runnable.parent_label, kind=runnable.kind,
            error_type=error_type, message=message, traceback=tb,
            attempts=attempts, shard_index=runnable.shard_index,
            n_shards=runnable.n_shards, shard_label=runnable.label)
    return UnitFailure(label=runnable.label, kind=runnable.kind,
                       error_type=error_type, message=message,
                       traceback=tb, attempts=attempts)


def _run_one(unit, profile_dir: str | None = None, index: int = 0,
             track_memory: bool = False) -> tuple[object, UnitTiming]:
    profiler = None
    if profile_dir is not None:
        profiler = cProfile.Profile()
        profiler.enable()
    peak_kb = 0.0
    started_tracing = False
    if track_memory:
        if tracemalloc.is_tracing():
            # Nest inside an outer trace (e.g. the benchmark harness):
            # reset the peak marker instead of restarting.
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            started_tracing = True
    began = time.perf_counter()
    try:
        payload = unit.run()
        elapsed = time.perf_counter() - began
        if track_memory:
            _, peak = tracemalloc.get_traced_memory()
            peak_kb = peak / 1024.0
    finally:
        if started_tracing:
            tracemalloc.stop()
    if profiler is not None:
        profiler.disable()
        out_dir = pathlib.Path(profile_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        # The unit index disambiguates labels that sanitize to the
        # same stem, which would otherwise overwrite each other.
        profiler.dump_stats(
            out_dir / f"{index:04d}-{_profile_stem(unit.label)}.pstats")
    return payload, UnitTiming(label=unit.label, kind=unit.kind,
                               elapsed_s=elapsed, peak_kb=peak_kb)


def _pool_run_one(unit, profile_dir: str | None, index: int,
                  track_memory: bool = False) -> tuple:
    """Worker-side wrapper: exceptions become data, never pool poison."""
    try:
        payload, timing = _run_one(unit, profile_dir, index,
                                   track_memory)
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc),
                traceback.format_exc())
    return ("ok", payload, timing)


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without orphaning workers: kill, cancel, reap."""
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        if proc.is_alive():
            proc.kill()
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        proc.join(timeout=5.0)


class _PoolSupervisor:
    """Submit-window pool driver with retry, timeout and rebuild.

    At most ``workers`` tasks are in flight at any moment; completed
    futures are reaped by index, a broken pool is rebuilt, and tasks
    whose wall clock exceeds ``unit_timeout`` are abandoned by killing
    the pool and re-dispatching survivors to a fresh one. Dispatch
    order is largest-cost-first among runnable tasks (the work-
    stealing rule), which only shapes wall clock — the ordered merge
    by index makes the output independent of scheduling.
    """

    def __init__(self, todo: list[tuple[int, object]], workers: int,
                 profile_dir: str | None, retries: int,
                 retry_backoff_s: float, unit_timeout: float | None,
                 failure_policy: str,
                 record_ok: Callable[[int, object, UnitTiming], object],
                 track_memory: bool = False):
        self.pending = [(i, u, 1) for i, u in todo]  # attempt to run next
        self.costs = {i: task_cost(u) for i, u in todo}
        self.workers = workers
        self.profile_dir = profile_dir
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.unit_timeout = unit_timeout
        self.failure_policy = failure_policy
        self.record_ok = record_ok
        self.track_memory = track_memory
        self.ready_at: dict[int, float] = {}   # backoff gates by index
        self.inflight: dict = {}               # future -> (i, unit, attempt, t0)
        self.outcomes: dict[int, object] = {}

    def run(self) -> dict[int, object]:
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while self.pending or self.inflight:
                self._dispatch()
                self._reap()
            self.pool.shutdown()
        except BaseException:
            # KeyboardInterrupt and UnitExecutionError both land here:
            # cancel pending futures, kill workers, leave no orphans.
            _stop_pool(self.pool)
            raise
        return self.outcomes

    # -- submission --------------------------------------------------------

    def _dispatch(self) -> None:
        now = time.monotonic()
        while self.pending and len(self.inflight) < self.workers:
            # Steal the biggest runnable task for the free slot (ties
            # break toward the earlier task index, deterministically).
            ready = [k for k, (i, _, _) in enumerate(self.pending)
                     if self.ready_at.get(i, 0.0) <= now]
            if not ready:
                break
            slot = max(ready,
                       key=lambda k: (self.costs[self.pending[k][0]],
                                      -self.pending[k][0]))
            index, unit, attempt = self.pending.pop(slot)
            try:
                future = self.pool.submit(_pool_run_one, unit,
                                          self.profile_dir, index,
                                          self.track_memory)
            except _cf.BrokenExecutor:
                # Pool died between reaps; put the unit back and let
                # the reap path drain the doomed futures and rebuild.
                self.pending.append((index, unit, attempt))
                return
            self.inflight[future] = (index, unit, attempt,
                                     time.monotonic())

    # -- completion / failure ----------------------------------------------

    def _reap(self) -> None:
        if not self.inflight:
            if self.pending:
                # Everything runnable is gated on backoff; sleep to
                # the earliest gate (capped so interrupts stay snappy).
                gate = min(self.ready_at.get(i, 0.0)
                           for i, _, _ in self.pending)
                time.sleep(max(0.0, min(gate - time.monotonic(), 0.5)))
            return
        done, _ = _cf.wait(set(self.inflight), timeout=_POLL_S,
                           return_when=_cf.FIRST_COMPLETED)
        broken = False
        for future in done:
            index, unit, attempt, _ = self.inflight.pop(future)
            exc = future.exception()
            if exc is None:
                status = future.result()
                if status[0] == "ok":
                    _, payload, timing = status
                    # record_ok may consume the payload (streaming
                    # reduce): keep whatever it hands back.
                    self.outcomes[index] = (
                        self.record_ok(index, payload, timing), timing)
                else:
                    _, error_type, message, tb = status
                    self._attempt_failed(index, unit, attempt,
                                         error_type, message, tb)
            elif isinstance(exc, KeyboardInterrupt):
                # A worker saw Ctrl-C: the signal went to the whole
                # process group, so treat it as a driver interrupt.
                raise KeyboardInterrupt
            elif isinstance(exc, _cf.BrokenExecutor):
                broken = True
                self._attempt_failed(
                    index, unit, attempt, "WorkerCrash",
                    "worker process died before returning a result", "")
            else:
                self._attempt_failed(index, unit, attempt,
                                     type(exc).__name__, str(exc), "")
        if broken:
            self._rebuild_after_break()
        elif self.unit_timeout is not None and self.inflight:
            self._enforce_timeout()

    def _rebuild_after_break(self) -> None:
        # The pool is unusable and every other in-flight future is
        # doomed with it. Each such unit is charged an attempt — the
        # pool cannot attribute which one killed the worker.
        for future, (index, unit, attempt, _) in list(
                self.inflight.items()):
            self._attempt_failed(
                index, unit, attempt, "WorkerCrash",
                "worker pool broke while the unit was in flight", "")
        self.inflight.clear()
        _stop_pool(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.workers)

    def _enforce_timeout(self) -> None:
        now = time.monotonic()
        expired = {future for future, (_, _, _, t0)
                   in self.inflight.items()
                   if now - t0 > self.unit_timeout and not future.done()}
        if not expired:
            return
        # A single worker cannot be killed through the pool API, so
        # kill the whole pool: expired units are charged an attempt,
        # innocent in-flight units are re-dispatched free of charge.
        for future, (index, unit, attempt, _) in list(
                self.inflight.items()):
            if future in expired:
                self._attempt_failed(
                    index, unit, attempt, "UnitTimeout",
                    f"unit exceeded the {self.unit_timeout:.6g}s "
                    "wall-clock budget", "")
            else:
                self.pending.append((index, unit, attempt))
        self.inflight.clear()
        _stop_pool(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.workers)

    def _attempt_failed(self, index: int, unit, attempt: int,
                        error_type: str, message: str, tb: str) -> None:
        if attempt <= self.retries:
            self.ready_at[index] = time.monotonic() + _backoff_s(
                self.retry_backoff_s, attempt)
            self.pending.append((index, unit, attempt + 1))
            return
        failure = _failure_for(unit, error_type, message, tb, attempt)
        if self.failure_policy == "raise":
            raise UnitExecutionError(
                f"{_describe_task(unit)} failed after {attempt} "
                f"attempt(s): {error_type}: {message}")
        self.outcomes[index] = failure


class _PrefixReducer:
    """Arrival-order streaming reduce for one splittable unit.

    Shard payloads are merged into a single accumulator the moment
    the merged prefix is contiguous; later arrivals wait in ``held``
    (bounded by the in-flight window, i.e. the worker count). Merges
    therefore always happen in shard order — deterministic no matter
    which worker finishes first — and the raw shard payloads are
    dropped as they fold in, which is what keeps a month-scale unit's
    memory constant during the run instead of spiking at the final
    merge.
    """

    def __init__(self, unit):
        self.unit = unit
        self.acc = unit.init_partial()
        self.next = 0
        self.held: dict[int, object] = {}

    def feed(self, position: int, shard_payload) -> None:
        if position < self.next or position in self.held:
            return  # duplicate delivery (journal replay)
        self.held[position] = shard_payload
        while self.next in self.held:
            self.acc = self.unit.merge_partial(
                self.acc, self.held.pop(self.next))
            self.next += 1

    def finalize(self):
        return self.unit.finalize(self.acc)


#: Placeholder kept in ``outcomes`` once a reducer consumed a shard's
#: payload (the timing half of the tuple stays live).
_REDUCED = "<reduced>"


def _execute_serial(todo: list[tuple[int, object]],
                    profile_dir: str | None, retries: int,
                    retry_backoff_s: float, failure_policy: str,
                    record_ok: Callable[[int, object, UnitTiming], object],
                    track_memory: bool = False) -> dict[int, object]:
    outcomes: dict[int, object] = {}
    for index, unit in todo:
        attempt = 1
        while True:
            try:
                payload, timing = _run_one(unit, profile_dir, index,
                                           track_memory)
            except KeyboardInterrupt:
                # Completed units are already journaled (stores are
                # per-unit and atomic), so the run is resumable as-is.
                raise
            except Exception as exc:
                if attempt <= retries:
                    delay = _backoff_s(retry_backoff_s, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                failure = _failure_for(
                    unit, type(exc).__name__, str(exc),
                    traceback.format_exc(), attempt)
                if failure_policy == "raise":
                    raise UnitExecutionError(
                        f"{_describe_task(unit)} failed after "
                        f"{attempt} attempt(s): "
                        f"{type(exc).__name__}: {exc}") from exc
                outcomes[index] = failure
                break
            else:
                outcomes[index] = (record_ok(index, payload, timing),
                                   timing)
                break
    return outcomes


def execute_units(units: Sequence, workers: int = 1,
                  timings: list[UnitTiming] | None = None,
                  profile_dir: str | None = None, *,
                  journal=None, retries: int = 0,
                  retry_backoff_s: float = 0.0,
                  unit_timeout: float | None = None,
                  failure_policy: str = "raise",
                  failures: list[UnitFailure] | None = None,
                  granularity: int = 1,
                  shard_timings: list[UnitTiming] | None = None,
                  track_memory: bool = False
                  ) -> list:
    """Run ``units`` and return their payloads in input order.

    ``workers=1`` executes in-process; ``workers>1`` fans out over a
    process pool. Per-unit wall clock (as seen by the process that
    ran the unit) is appended to ``timings`` when given, also in
    input order. With ``profile_dir`` set, each unit runs under
    cProfile and dumps ``<index>-<label>.pstats`` into that directory
    (the timing then includes profiler overhead; use it for hotspot
    hunting, not for benchmark numbers).

    ``granularity`` splits each splittable unit into up to that many
    shards (:func:`repro.exec.sharding.plan_shards`); the pool steals
    the largest remaining shard per free slot and the ordered merge
    makes the payloads bit-identical to ``granularity=1`` for every
    worker count. Retry, timeout, journaling and failure policy all
    apply per shard — journal keys include the shard's atom range, so
    a resume at the *same* granularity never re-runs a completed
    shard (a different granularity re-runs cheaply but stays
    digest-identical). ``timings`` still records one entry per unit
    (the sum of its shard wall clocks); ``shard_timings`` additionally
    records each executed shard under its ``label#s<start>-<stop>``
    shard label.

    Crash safety:

    * ``journal`` (a :class:`repro.exec.journal.Journal`) persists each
      completed payload atomically and skips already-journaled units on
      restart; the assembled output is digest-identical either way.
    * ``retries`` grants each unit up to ``retries`` extra attempts
      after a failure (exception, worker death, timeout), with
      deterministic exponential backoff ``retry_backoff_s * 2**(k-1)``.
    * ``unit_timeout`` bounds each attempt's wall clock; enforcing it
      requires a worker process, so the pool path is used even with
      ``workers=1``. A timed-out unit is re-dispatched to a fresh pool.
    * ``failure_policy="raise"`` (default) aborts on the first unit
      that exhausts its attempts; ``"degrade"`` finishes the run and
      returns the :class:`UnitFailure` record *in place of* that
      unit's payload (and appends it to ``failures`` when given) —
      callers filter with ``isinstance(p, UnitFailure)``.
    * ``KeyboardInterrupt`` cancels pending work, kills pool workers
      (no orphans) and propagates; journaled progress survives.

    ``track_memory=True`` additionally records each task's peak traced
    allocation (``tracemalloc``) in ``UnitTiming.peak_kb`` — measured
    in the process that ran the task, so pool workers report their own
    heaps. Tracing roughly doubles allocation cost; leave it off for
    benchmark timing runs.

    Units with a truthy ``streaming`` attribute implementing the
    partial-aggregate contract (``init_partial`` / ``merge_partial`` /
    ``finalize``, see :mod:`repro.exec.sharding`) are reduced in
    *arrival order*: each shard's partial aggregate folds into the
    unit's accumulator as soon as the shard-index prefix is
    contiguous, instead of accumulating every shard payload for one
    big ``merge_atoms`` at the end. The fold always proceeds in shard
    order, so the result is deterministic (and digest-identical to
    serial) for every worker count; journaled shards replay through
    the same fold on resume, without re-running the slice.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if retry_backoff_s < 0:
        raise ConfigurationError(
            f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
    if unit_timeout is not None and not unit_timeout > 0:
        raise ConfigurationError(
            f"unit_timeout must be positive, got {unit_timeout}")
    if failure_policy not in FAILURE_POLICIES:
        raise ConfigurationError(
            f"failure_policy must be one of {FAILURE_POLICIES}, "
            f"got {failure_policy!r}")
    if granularity < 1:
        raise ConfigurationError(
            f"granularity must be >= 1, got {granularity}")
    units = list(units)
    if not units:
        return []

    # Flatten the per-unit shard plan into one task list. With
    # granularity=1 every task *is* its unit, so task ids, journal
    # keys and profile-dump names match the pre-sharding executor.
    plan = plan_shards(units, granularity)
    tasks: list = []
    unit_tasks: list[list[int]] = []
    for group in plan:
        ids = []
        for runnable in group:
            ids.append(len(tasks))
            tasks.append(runnable)
        unit_tasks.append(ids)

    # Streaming units reduce shard payloads as they arrive instead of
    # holding them all for the final merge. ``task_pos`` maps a task
    # id to (unit index, shard position) for tasks owned by a reducer.
    reducers: dict[int, _PrefixReducer] = {}
    task_pos: dict[int, tuple[int, int]] = {}
    for u_idx, ids in enumerate(unit_tasks):
        unit = units[u_idx]
        if (is_streaming_unit(unit)
                and isinstance(tasks[ids[0]], UnitShard)):
            reducers[u_idx] = _PrefixReducer(unit)
            for pos, task_id in enumerate(ids):
                task_pos[task_id] = (u_idx, pos)

    def feed_reducer(index: int, payload) -> object:
        """Fold a shard payload; return what ``outcomes`` should keep."""
        if index not in task_pos:
            return payload
        u_idx, pos = task_pos[index]
        reducers[u_idx].feed(pos, payload)
        return _REDUCED

    outcomes: dict[int, object] = {}
    keys: list[str] | None = None
    if journal is not None:
        keys = [journal.key_for(task) for task in tasks]
        for i, task in enumerate(tasks):
            entry = journal.load(keys[i], label=task.label)
            if entry is not None:
                payload, elapsed = entry
                # Journaled streaming shards replay through the same
                # arrival-order fold — the slice is not re-run.
                outcomes[i] = (feed_reducer(i, payload), UnitTiming(
                    label=task.label, kind=task.kind,
                    elapsed_s=elapsed))

    def record_ok(index: int, payload, timing: UnitTiming) -> object:
        if journal is not None:
            journal.store(keys[index], payload,
                          elapsed_s=timing.elapsed_s,
                          label=timing.label)
        return feed_reducer(index, payload)

    todo = [(i, task) for i, task in enumerate(tasks)
            if i not in outcomes]
    if todo:
        if workers == 1 and unit_timeout is None:
            outcomes.update(_execute_serial(
                todo, profile_dir, retries, retry_backoff_s,
                failure_policy, record_ok, track_memory))
        else:
            supervisor = _PoolSupervisor(
                todo, min(workers, len(todo)), profile_dir, retries,
                retry_backoff_s, unit_timeout, failure_policy,
                record_ok, track_memory)
            outcomes.update(supervisor.run())

    payloads: list = []
    for i, unit in enumerate(units):
        ids = unit_tasks[i]
        shard_failures = [outcomes[t] for t in ids
                          if isinstance(outcomes[t], UnitFailure)]
        if shard_failures:
            # One record stands for the whole unit (its merged
            # payload is lost); the lowest failing shard index wins
            # deterministically.
            failure = shard_failures[0]
            if failures is not None:
                failures.append(failure)
            payloads.append(failure)
            continue
        results = [outcomes[t] for t in ids]
        if i in reducers:
            payload = reducers[i].finalize()
            unit_timing = UnitTiming(
                label=unit.label, kind=unit.kind,
                elapsed_s=sum(t.elapsed_s for _, t in results),
                peak_kb=max((t.peak_kb for _, t in results),
                            default=0.0))
        elif len(ids) == 1 and not isinstance(tasks[ids[0]], UnitShard):
            payload, unit_timing = results[0]
        else:
            atoms: list = []
            for shard_payload, _ in results:
                atoms.extend(shard_payload)
            payload = unit.merge_atoms(atoms)
            unit_timing = UnitTiming(
                label=unit.label, kind=unit.kind,
                elapsed_s=sum(t.elapsed_s for _, t in results),
                peak_kb=max((t.peak_kb for _, t in results),
                            default=0.0))
        if timings is not None:
            timings.append(unit_timing)
        if shard_timings is not None:
            shard_timings.extend(t for _, t in results)
        payloads.append(payload)
    return payloads


def timing_breakdown(timings: Sequence[UnitTiming]) -> list[dict]:
    """Aggregate per-kind rows: count, total/mean/max wall clock plus
    the max traced-allocation peak (0 unless ``track_memory``)."""
    by_kind: dict[str, list[UnitTiming]] = {}
    for timing in timings:
        by_kind.setdefault(timing.kind, []).append(timing)
    rows = []
    for kind in sorted(by_kind):
        group = by_kind[kind]
        elapsed = [t.elapsed_s for t in group]
        rows.append({
            "kind": kind, "units": len(elapsed),
            "total_s": sum(elapsed),
            "mean_s": sum(elapsed) / len(elapsed),
            "max_s": max(elapsed),
            "peak_kb": max(t.peak_kb for t in group),
        })
    return rows


def render_timings(timings: Sequence[UnitTiming]) -> str:
    """Human-readable per-kind timing table for the CLI.

    The ``peak`` column (max tracemalloc peak of any unit of the
    kind) appears only when at least one timing carries a nonzero
    measurement, so runs without ``track_memory`` render as before.
    """
    with_memory = any(t.peak_kb > 0.0 for t in timings)
    header = (f"{'kind':<12} {'units':>6} {'total':>9} "
              f"{'mean':>9} {'max':>9}")
    if with_memory:
        header += f" {'peak':>10}"
    lines = ["Unit timing (wall clock per executing process)", header]
    for row in timing_breakdown(timings):
        line = (f"{row['kind']:<12} {row['units']:>6} "
                f"{row['total_s']:>8.2f}s {row['mean_s']:>8.3f}s "
                f"{row['max_s']:>8.3f}s")
        if with_memory:
            line += f" {row['peak_kb']:>8.0f}kB"
        lines.append(line)
    total = sum(t.elapsed_s for t in timings)
    lines.append(f"{'all':<12} {len(timings):>6} {total:>8.2f}s")
    return "\n".join(lines)
