"""Checkpoint journal: one atomically written file per completed unit.

The journal is what makes a long campaign crash-safe. Every time a
work unit completes, its payload is pickled into the journal directory
under a key derived from the unit's identity; when the same campaign is
started again with the same journal, :func:`repro.exec.execute_units`
loads the journaled payloads instead of re-running the units. Because a
journaled payload is the exact object the unit returned (pickle
round-trips floats and numpy arrays bit-exactly), a resumed dataset is
digest-identical to an uninterrupted run.

Keys are a SHA-256 digest of ``(unit label, unit kind, campaign-config
fingerprint)``, where the fingerprint is :func:`~repro.testing.digest.\
digest_value` of the unit's ``config`` dataclass. The campaign seed and
every scale knob are part of the key, so resuming with a different
configuration can never reuse stale payloads, and several
configurations can safely share one directory.

Crash safety is per entry: payloads are written to a temp file, fsynced
and ``os.replace``d into place, so a ``kill -9`` at any instant leaves
either a complete entry or no entry — never a torn one. Stale temp
files and corrupt entries are discarded on the next run, which merely
re-executes the affected units.
"""

from __future__ import annotations

import os
import pathlib
import pickle

from repro.errors import JournalError
from repro.testing.digest import digest_value


class Journal:
    """Directory of per-unit checkpoints for crash-safe execution.

    ``resume=False`` refuses a directory that already holds entries,
    which protects interactive runs from silently reusing a previous
    campaign's checkpoints (the CLI maps ``--resume`` onto it).
    """

    def __init__(self, directory: str | os.PathLike,
                 resume: bool = True):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # A crash can strand temp files mid-write; they are garbage by
        # construction (the atomic rename never happened).
        for stale in self.directory.glob("*.tmp-*"):
            stale.unlink(missing_ok=True)
        if not resume and len(self):
            raise JournalError(
                f"journal directory {str(self.directory)!r} already "
                f"holds {len(self)} completed unit(s); pass "
                "resume=True (CLI: --resume) to continue that run, or "
                "point the journal at a fresh directory")

    # -- keys --------------------------------------------------------------

    def key_for(self, unit) -> str:
        """Stable journal key for one work unit."""
        config = getattr(unit, "config", None)
        fingerprint = digest_value(config) if config is not None else ""
        return digest_value((unit.label, unit.kind, fingerprint))

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.pkl"

    # -- entries -----------------------------------------------------------

    def has(self, key: str) -> bool:
        """Whether a completed payload is journaled under ``key``."""
        return self._path(key).exists()

    def store(self, key: str, payload, elapsed_s: float = 0.0,
              label: str = "") -> None:
        """Persist one completed unit's payload, atomically."""
        record = {"label": label, "elapsed_s": float(elapsed_s),
                  "payload": payload}
        tmp = self.directory / f"{key}.tmp-{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._path(key))

    def load(self, key: str, label: str | None = None
             ) -> tuple[object, float] | None:
        """``(payload, elapsed_s)`` for a journaled unit, or ``None``.

        A corrupt entry (disk fault, partial copy) is discarded and
        reported as missing, so a resume re-runs that unit instead of
        wedging the campaign. When ``label`` is given, a mismatching
        recorded label raises :class:`JournalError` — the journal is
        then not from the campaign being resumed.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                record = pickle.load(fh)
            if not isinstance(record, dict) or "payload" not in record:
                raise ValueError("malformed journal record")
        except FileNotFoundError:
            return None
        except Exception:
            path.unlink(missing_ok=True)
            return None
        recorded = record.get("label", "")
        if label is not None and recorded and recorded != label:
            raise JournalError(
                f"journal entry {key[:12]}... records unit "
                f"{recorded!r} but {label!r} was expected; refusing "
                "to resume from a mismatched journal")
        return record["payload"], float(record.get("elapsed_s", 0.0))

    # -- inventory ---------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def labels(self) -> list[str]:
        """Recorded labels of every journaled unit (sorted)."""
        found = []
        for path in self.directory.glob("*.pkl"):
            try:
                with open(path, "rb") as fh:
                    record = pickle.load(fh)
                found.append(str(record.get("label", "")))
            except Exception:
                continue
        return sorted(found)

    def __repr__(self) -> str:
        return (f"<Journal dir={str(self.directory)!r} "
                f"entries={len(self)}>")
