"""Command-line interface: regenerate paper artefacts on demand.

Usage::

    python -m repro table1
    python -m repro fig1 --ping-days 20
    python -m repro fig6 --sites 40
    python -m repro all --workers 4 --timing
    python -m repro middlebox
    python -m repro errant

Artefact generation uses the quick campaign configuration by default;
``--full`` switches to the bench-scale configuration (slower, closer
to the paper's sample counts). ``--workers N`` fans the campaign's
work units out over N processes — the datasets are bit-identical to
the serial run — and ``--shard-granularity G`` additionally splits
each splittable unit into up to G shards that the pool steals
largest-first, so a single long unit no longer caps the speedup
(again bit-identical for every G). ``--timing`` prints a
per-unit-kind wall-clock breakdown after the artefacts. ``--profile DIR`` runs every work unit
under ``cProfile`` and dumps one ``*.pstats`` file per unit into DIR
(load with :mod:`pstats` to find hot spots).

Crash safety: ``--journal DIR`` checkpoints every completed work unit
into DIR, so a campaign killed at any instant can be rerun with
``--journal DIR --resume`` and finish from where it stopped — the
resumed dataset is bit-identical to an uninterrupted run. ``--retries
N`` re-attempts failing units with deterministic backoff,
``--unit-timeout S`` bounds one attempt's wall clock (the unit is
re-dispatched to a fresh worker), and ``--failure-policy degrade``
finishes with partial datasets plus a degradation report instead of
aborting on the first exhausted unit.

Adverse conditions: ``--scenario NAME`` runs the whole campaign under
a named disruption scenario (rain fade, satellite outage, gateway
flap, storm, generated Markov weather; see :mod:`repro.disrupt`), and
the ``availability`` artefact renders outage episodes,
time-to-recovery, the availability percentage and slot-aligned
loss-burst attribution::

    python -m repro availability --scenario sat_outage

Mobile-terminal mode: ``--trajectory drive`` puts the terminal on a
seeded random drive (``--speed-kmh`` sets the pace, implying the
drive when given alone) and ``--obstruction
{roadside,urban_canyon}`` adds seeded Markov sky shadowing; the
``mobility`` artefact renders the handover-episode analysis — churn
per hour by change kind, per-outage cause attribution (obstruction
vs weather vs handover) and recovery times::

    python -m repro mobility --trajectory drive --speed-kmh 90 \\
        --obstruction roadside

The default ``--trajectory stationary`` is bit-identical to the
classic fixed-terminal pipeline.

Longitudinal (month-scale) campaigns: ``--streaming`` routes the ping
pipeline through constant-memory sinks (bit-identical to the batch
path while exact), ``--duration-days D`` stretches the campaign,
``--memory-budget-mb M`` arms the resource governor (degrade
precision in recorded stages instead of OOMing; ``--resource-policy
raise`` escalates the first breach instead) and ``--track-memory``
adds per-unit peak-heap columns to ``--timing``. A run that exhausts
every degradation stage exits with status 3, its completed units
checkpointed in the journal for ``--resume``::

    python -m repro availability --streaming --scenario wet_month \\
        --duration-days 30 --memory-budget-mb 64 --journal DIR
"""

from __future__ import annotations

import argparse
import sys

from repro.core.availability import analyze_availability
from repro.core.campaign import Campaign, CampaignConfig, quick_config
from repro.core.browsing import figure6_browsing
from repro.core.datasets import CampaignDatasets
from repro.core.loss_events import table2_loss_ratios
from repro.core.middlebox import run_middlebox_study
from repro.core.reporting import (
    coverage_note,
    render_availability,
    render_degradation,
    render_mobility,
    render_precision_notes,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_fleet,
    render_middlebox,
    render_table1,
    render_table2,
)
from repro.core.rtt import (
    figure1_rtt_boxplots,
    figure2_timeseries,
    figure3_loaded_rtt,
)
from repro.core.throughput import figure5_throughput
from repro.disrupt.scenarios import scenario_names
from repro.leo.mobility import OBSTRUCTION_KINDS, TRAJECTORY_KINDS
from repro.transport.cc import CC_KINDS
from repro.errors import JournalError, MemoryBudgetError
from repro.exec.journal import Journal
from repro.exec.resources import RESOURCE_POLICIES
from repro.exec.runner import FAILURE_POLICIES, UnitTiming, render_timings
from repro.units import minutes

ARTEFACTS = ("table1", "fig1", "fig2", "fig3", "table2", "fig4",
             "fig5", "fig6", "middlebox", "errant", "availability",
             "mobility", "fleet", "all")

#: Which campaign datasets each artefact is derived from (for the
#: per-figure unit-coverage note of degraded runs).
ARTEFACT_DATASETS = {
    "table1": ("pings", "speedtests", "bulk", "messages", "visits"),
    "fig1": ("pings",),
    "fig2": ("pings",),
    "fig3": ("bulk", "messages"),
    "table2": ("bulk", "messages"),
    "fig4": ("bulk", "messages"),
    "fig5": ("speedtests", "bulk"),
    "fig6": ("visits",),
    "middlebox": (),
    "errant": ("pings", "speedtests", "messages"),
    "availability": ("pings", "speedtests", "bulk", "messages",
                     "visits"),
    "mobility": ("pings", "speedtests", "bulk", "messages",
                 "visits"),
    "fleet": ("fleet",),
}

#: Terminals the ``fleet`` artefact runs when fleet mode is enabled
#: without an explicit ``--terminals``.
DEFAULT_FLEET_TERMINALS = 16

#: Drive pace when ``--trajectory drive`` is given without an
#: explicit ``--speed-kmh``.
DEFAULT_DRIVE_SPEED_KMH = 60.0


def _build_config(args: argparse.Namespace) -> CampaignConfig:
    config = quick_config(seed=args.seed)
    if args.full:
        config = CampaignConfig(seed=args.seed)
    ping_days = args.ping_days
    if args.duration_days is not None:
        ping_days = args.duration_days
    if ping_days is not None:
        config.ping_days = ping_days
        config.ping_interval_s = minutes(20)
    if args.sites is not None:
        config.web_sites = args.sites
    if args.scenario is not None:
        config.scenario = args.scenario
    if args.cc is not None:
        config.cc = args.cc
    if args.terminals is not None:
        config.fleet_terminals = args.terminals
    if (args.fleet or args.artefact == "fleet") \
            and config.fleet_terminals < 1:
        config.fleet_terminals = DEFAULT_FLEET_TERMINALS
    if args.streaming:
        config.streaming_pings = True
    if args.memory_budget_mb is not None:
        config.memory_budget_mb = args.memory_budget_mb
        config.streaming_pings = True   # a budget implies the sinks
    if args.resource_policy is not None:
        config.resource_policy = args.resource_policy
    if args.trajectory is not None:
        config.trajectory = args.trajectory
    if args.speed_kmh is not None:
        config.speed_kmh = args.speed_kmh
        if args.trajectory is None:
            config.trajectory = "drive"  # a pace implies the drive
    elif config.trajectory == "drive":
        config.speed_kmh = DEFAULT_DRIVE_SPEED_KMH
    if args.obstruction is not None:
        config.obstruction = args.obstruction
    return config


def _emit(text: str) -> None:
    print(text)
    print()


def run_artefact(name: str, campaign: Campaign, cache: dict,
                 workers: int = 1,
                 timings: list[UnitTiming] | None = None,
                 profile_dir: str | None = None,
                 exec_kwargs: dict | None = None) -> None:
    """Generate and print one artefact, reusing cached datasets.

    ``exec_kwargs`` carries the crash-safety options (journal,
    retries, unit timeout, failure policy) through to every campaign
    run; with ``failure_policy="degrade"`` each artefact is followed
    by a unit-coverage note naming the datasets it was derived from.
    """
    exec_kwargs = exec_kwargs or {}

    def streaming_pings():
        if "pings_streaming" not in cache:
            cache["pings_streaming"] = campaign.run_pings_streaming(
                workers=workers, timings=timings,
                profile_dir=profile_dir, **exec_kwargs)
        return cache["pings_streaming"]

    def pings():
        if "pings" not in cache:
            if campaign.config.streaming_pings:
                # Exact-mode reconstruction is bit-identical to the
                # batch pipeline; once the budget has degraded a sink
                # the raw series is gone and the sink says so.
                cache["pings"] = streaming_pings().to_ping_dataset()
            else:
                cache["pings"] = campaign.run_pings(
                    workers=workers, timings=timings,
                    profile_dir=profile_dir, **exec_kwargs)
        return cache["pings"]

    def bulk():
        if "bulk" not in cache:
            cache["bulk"] = campaign.run_bulk(workers=workers,
                                              timings=timings,
                                              profile_dir=profile_dir,
                                              **exec_kwargs)
        return cache["bulk"]

    def messages():
        if "messages" not in cache:
            cache["messages"] = campaign.run_messages(
                workers=workers, timings=timings,
                profile_dir=profile_dir, **exec_kwargs)
        return cache["messages"]

    def speedtests():
        if "speedtests" not in cache:
            cache["speedtests"] = campaign.run_speedtests(
                workers=workers, timings=timings,
                profile_dir=profile_dir, **exec_kwargs)
        return cache["speedtests"]

    def visits():
        if "visits" not in cache:
            cache["visits"] = campaign.run_web(workers=workers,
                                               timings=timings,
                                               profile_dir=profile_dir,
                                               **exec_kwargs)
        return cache["visits"]

    def fleet():
        if "fleet" not in cache:
            cache["fleet"] = campaign.run_fleet(workers=workers,
                                                timings=timings,
                                                profile_dir=profile_dir,
                                                **exec_kwargs)
        return cache["fleet"]

    if name == "table1":
        data = CampaignDatasets(pings=pings(), bulk=bulk(),
                                messages=messages(),
                                speedtests=speedtests(),
                                visits=visits())
        _emit(render_table1(data.table1_rows()))
    elif name == "fig1":
        _emit(render_figure1(figure1_rtt_boxplots(pings())))
    elif name == "fig2":
        _emit(render_figure2(figure2_timeseries(pings())))
    elif name == "fig3":
        _emit(render_figure3(figure3_loaded_rtt(bulk(), messages())))
    elif name == "table2":
        _emit(render_table2(table2_loss_ratios(bulk(), messages())))
    elif name == "fig4":
        _emit(render_figure4(table2_loss_ratios(bulk(), messages())))
    elif name == "fig5":
        _emit(render_figure5(figure5_throughput(speedtests(), bulk())))
    elif name == "fig6":
        _emit(render_figure6(figure6_browsing(visits())))
    elif name == "availability":
        if campaign.config.streaming_pings:
            # Streaming-native: incremental counts straight from the
            # sinks, exact at every degradation stage. Bulk loss-burst
            # attribution needs the batch datasets and is omitted.
            _emit(render_availability(
                streaming_pings().availability_report(
                    scenario=campaign.config.scenario)))
        else:
            data = CampaignDatasets(pings=pings(), bulk=bulk(),
                                    messages=messages(),
                                    speedtests=speedtests(),
                                    visits=visits())
            _emit(render_availability(analyze_availability(
                data, scenario=campaign.config.scenario)))
    elif name == "mobility":
        data = CampaignDatasets(pings=pings(), bulk=bulk(),
                                messages=messages(),
                                speedtests=speedtests(),
                                visits=visits())
        availability = analyze_availability(
            data, scenario=campaign.config.scenario)
        _emit(render_mobility(
            campaign.mobility_report(data, availability)))
    elif name == "fleet":
        _emit(render_fleet(fleet()))
    elif name == "middlebox":
        _emit(render_middlebox(run_middlebox_study(
            seed=campaign.config.seed)))
    elif name == "errant":
        from repro.errant import fit_profiles, to_json

        data = CampaignDatasets(pings=pings(),
                                speedtests=speedtests(),
                                messages=messages())
        _emit(to_json(fit_profiles(data)))
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(f"unknown artefact {name!r}")

    report = campaign.degradation_report()
    if report.degraded:
        note = coverage_note(report, ARTEFACT_DATASETS.get(name, ()))
        if note:
            _emit(note)
    streamed = cache.get("pings_streaming")
    if streamed is not None \
            and "pings" in ARTEFACT_DATASETS.get(name, ()):
        notes = render_precision_notes(streamed.precision_notes())
        if notes:
            _emit(notes)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts from 'A First Look at "
                    "Starlink Performance' (IMC 2022).")
    parser.add_argument("artefact", choices=ARTEFACTS,
                        help="which table/figure to regenerate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--full", action="store_true",
                        help="bench-scale campaign (slow)")
    parser.add_argument("--ping-days", type=float, default=None,
                        help="override the ping-campaign length")
    parser.add_argument("--duration-days", type=float, default=None,
                        metavar="D",
                        help="campaign length in days (synonym of "
                             "--ping-days, named for the month-scale "
                             "longitudinal runs)")
    parser.add_argument("--sites", type=int, default=None,
                        help="override the web-corpus size")
    parser.add_argument("--scenario", choices=scenario_names(),
                        default=None,
                        help="adverse-conditions scenario the campaign "
                             "runs under (default clear_sky: disrupt "
                             "nothing)")
    parser.add_argument("--cc", choices=CC_KINDS, default=None,
                        help="congestion controller for the bulk "
                             "senders of every measurement app "
                             "(default cubic; cross with --scenario "
                             "for the CC x conditions matrix)")
    parser.add_argument("--trajectory", choices=TRAJECTORY_KINDS,
                        default=None,
                        help="terminal motion: 'stationary' (default, "
                             "bit-identical to the classic pipeline) "
                             "or 'drive' (seeded random road trip)")
    parser.add_argument("--speed-kmh", type=float, default=None,
                        metavar="V",
                        help="drive pace; given alone it implies "
                             "--trajectory drive (default "
                             f"{DEFAULT_DRIVE_SPEED_KMH:.0f} when "
                             "driving)")
    parser.add_argument("--obstruction", choices=OBSTRUCTION_KINDS,
                        default=None,
                        help="seeded Markov sky shadowing along the "
                             "route (default none)")
    parser.add_argument("--fleet", action="store_true",
                        help="enable fleet mode: N terminals sharing "
                             "one constellation; adds the 'fleet' "
                             "artefact to 'all'")
    parser.add_argument("--terminals", type=int, default=None,
                        metavar="N",
                        help="fleet size (implies nothing on its own; "
                             f"default {DEFAULT_FLEET_TERMINALS} when "
                             "fleet mode is enabled)")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes (default 1; "
                             "results are identical for any value)")
    parser.add_argument("--shard-granularity", type=int, default=None,
                        metavar="G",
                        help="split each splittable work unit into up "
                             "to G shards for work-stealing dispatch "
                             "(default: the config's value, 1); "
                             "results are identical for any value")
    parser.add_argument("--timing", action="store_true",
                        help="print a per-unit wall-clock breakdown")
    parser.add_argument("--profile", metavar="DIR", default=None,
                        help="dump per-work-unit cProfile stats "
                             "(*.pstats) into DIR")
    parser.add_argument("--journal", metavar="DIR", default=None,
                        help="checkpoint each completed work unit "
                             "into DIR; already-journaled units are "
                             "skipped, so a killed run is resumable")
    parser.add_argument("--resume", action="store_true",
                        help="allow --journal to reuse a directory "
                             "that already holds checkpoints "
                             "(continue an interrupted campaign)")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts per failing work unit "
                             "(default 0)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="S",
                        help="base backoff before a retry, doubled "
                             "per attempt (default 0.5s)")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="S",
                        help="per-attempt wall-clock budget; a unit "
                             "exceeding it is re-dispatched to a "
                             "fresh worker")
    parser.add_argument("--failure-policy", choices=FAILURE_POLICIES,
                        default="raise",
                        help="'raise' aborts on the first exhausted "
                             "unit; 'degrade' finishes with partial "
                             "datasets plus a degradation report")
    parser.add_argument("--streaming", action="store_true",
                        help="run the ping campaign through constant-"
                             "memory streaming sinks (bit-identical "
                             "to the batch path while exact)")
    parser.add_argument("--memory-budget-mb", type=float, default=None,
                        metavar="M",
                        help="memory budget for the streaming ping "
                             "pipeline, MiB (implies --streaming); "
                             "breaches degrade precision in recorded "
                             "stages, the exhausted ladder exits with "
                             "status 3")
    parser.add_argument("--resource-policy", choices=RESOURCE_POLICIES,
                        default=None,
                        help="'degrade' (default) walks the precision "
                             "ladder on a budget breach; 'raise' "
                             "escalates the first breach")
    parser.add_argument("--track-memory", action="store_true",
                        help="measure each work unit's peak heap "
                             "(tracemalloc) and add a peak column to "
                             "--timing")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.shard_granularity is not None \
            and args.shard_granularity < 1:
        parser.error(f"--shard-granularity must be >= 1, got "
                     f"{args.shard_granularity}")
    if args.terminals is not None and args.terminals < 1:
        parser.error(f"--terminals must be >= 1, got {args.terminals}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.speed_kmh is not None and not args.speed_kmh >= 0:
        parser.error(f"--speed-kmh must be >= 0, got "
                     f"{args.speed_kmh}")
    if args.trajectory == "stationary" and args.speed_kmh:
        parser.error(f"--speed-kmh {args.speed_kmh} contradicts "
                     "--trajectory stationary")
    if args.resume and args.journal is None:
        parser.error("--resume requires --journal DIR")
    if args.ping_days is not None and args.duration_days is not None \
            and args.ping_days != args.duration_days:
        parser.error(f"--ping-days {args.ping_days} and "
                     f"--duration-days {args.duration_days} disagree; "
                     "they are synonyms, give one")
    if args.memory_budget_mb is not None \
            and not args.memory_budget_mb > 0:
        parser.error(f"--memory-budget-mb must be positive, got "
                     f"{args.memory_budget_mb}")

    journal = None
    if args.journal is not None:
        try:
            journal = Journal(args.journal, resume=args.resume)
        except JournalError as exc:
            parser.error(str(exc))
        if len(journal):
            print(f"journal: resuming, {len(journal)} unit(s) "
                  "already completed\n")

    campaign = Campaign(_build_config(args))
    cache: dict = {}
    timings: list[UnitTiming] = []
    exec_kwargs = {
        "journal": journal,
        "retries": args.retries,
        "retry_backoff_s": args.retry_backoff,
        "unit_timeout": args.unit_timeout,
        "failure_policy": args.failure_policy,
        "granularity": args.shard_granularity,
        "track_memory": args.track_memory,
    }
    if args.artefact == "all":
        # Fleet mode is opt-in: 'all' keeps its historical output
        # unless --fleet asks for the extra artefact.
        names = [a for a in ARTEFACTS if a not in ("all", "fleet")]
        if args.fleet:
            names.append("fleet")
    else:
        names = [args.artefact]
    try:
        for name in names:
            run_artefact(name, campaign, cache, workers=args.workers,
                         timings=timings, profile_dir=args.profile,
                         exec_kwargs=exec_kwargs)
    except MemoryBudgetError as exc:
        # The governor ran out of ladder (or policy='raise' chose to
        # stop early). Completed units are already journaled, so the
        # exit is clean and a --journal DIR --resume run continues.
        print(f"memory budget exhausted: {exc}", file=sys.stderr)
        return 3
    if args.timing:
        _emit(render_timings(timings))
    report = campaign.degradation_report()
    if report.degraded:
        _emit(render_degradation(report))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
