"""Deterministic random-stream derivation.

Experiments need many independent random streams (per slot, per
direction, per experiment) that are reproducible across processes.
``hash()`` is salted per process, so streams are derived by hashing
the human-readable key parts with SHA-256 instead.
"""

from __future__ import annotations

import hashlib
import random


def stable_seed(*parts: object) -> int:
    """A process-independent 64-bit seed derived from ``parts``."""
    material = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(*parts: object) -> random.Random:
    """A fresh :class:`random.Random` seeded from ``parts``."""
    return random.Random(stable_seed(*parts))
