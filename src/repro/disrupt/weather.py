"""Seeded Markov weather: month-scale rain traces and fade windows.

The built-in scenarios pin a handful of hand-placed windows — fine
for micro-campaigns, useless for the month-scale longitudinal runs
the streaming pipeline exists for. This module generates weather the
way Ku-band link budgets experience it:

1. a three-state Markov chain (dry / light rain / heavy rain) steps
   every :attr:`WeatherParams.step_s` seconds of campaign clock and
   is the *only* RNG consumer, seeded
   ``(seed, "weather", "rain")`` — the trace is a pure function of
   ``(seed, duration, params)``;
2. each wet step draws a rain rate (mm/h) from its state's range,
   producing a rate trace;
3. contiguous wet runs coalesce into ``fade``
   :class:`~repro.disrupt.schedule.DisruptionWindow`\\ s whose
   severity tracks the run's **mean** rain rate, so a drizzle
   attenuates a little and a cloudburst a lot.

:class:`WeatherScenario` couples the trace to experiments
differently from the fixed-overlay scenarios: a packet experiment at
epoch ``t`` sees exactly the campaign-clock windows overlapping its
own horizon, clipped and translated to its clock — the speedtest that
runs during Tuesday's storm is the one that suffers, instead of every
experiment suffering an identical synthetic overlay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.disrupt.scenarios import Scenario
from repro.disrupt.schedule import DisruptionSchedule, DisruptionWindow
from repro.errors import DisruptionError
from repro.rng import make_rng
from repro.units import days

#: Markov rain states, in drying order.
DRY, LIGHT, HEAVY = "dry", "light", "heavy"
RAIN_STATES = (DRY, LIGHT, HEAVY)


@dataclass(frozen=True)
class WeatherParams:
    """Knobs of the rain chain and the rate-to-fade mapping.

    Defaults give temperate-maritime weather (Belgium, where the
    paper's dish sits): rain ~8% of the time, mostly light, heavy
    cells lasting under an hour. Transition probabilities are per
    ``step_s`` step; each row's stay-probability is the remainder.
    """

    #: Markov step, seconds of campaign clock (15 min).
    step_s: float = 900.0
    p_dry_to_light: float = 0.06
    p_light_to_dry: float = 0.35
    p_light_to_heavy: float = 0.08
    p_heavy_to_light: float = 0.50
    #: Uniform rain-rate ranges per wet state, mm/h.
    light_rate_mm_h: tuple[float, float] = (0.5, 4.0)
    heavy_rate_mm_h: tuple[float, float] = (4.0, 25.0)
    #: Mean rain rate that maps to ``max_severity`` fade.
    rate_at_full_fade_mm_h: float = 30.0
    #: Fade severity ceiling — heavy rain degrades, only a
    #: ``blackout`` window severs the link entirely.
    max_severity: float = 0.9

    def __post_init__(self) -> None:
        if self.step_s <= 0.0:
            raise DisruptionError(
                f"weather step_s must be positive, got {self.step_s}")
        for name in ("p_dry_to_light", "p_light_to_dry",
                     "p_light_to_heavy", "p_heavy_to_light"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise DisruptionError(
                    f"weather {name} must be in [0, 1], got {p}")
        if self.p_light_to_dry + self.p_light_to_heavy > 1.0:
            raise DisruptionError(
                "light-state exit probabilities exceed 1")
        if not 0.0 < self.max_severity <= 1.0:
            raise DisruptionError(
                f"max_severity must be in (0, 1], got "
                f"{self.max_severity}")

    def severity_for_rate(self, rate_mm_h: float) -> float:
        """Fade severity for a mean rain rate; in ``(0, max_severity]``
        for any positive rate."""
        frac = min(1.0, rate_mm_h / self.rate_at_full_fade_mm_h)
        return max(1e-6, frac * self.max_severity)


def generate_rain_trace(seed: int, duration_s: float,
                        params: WeatherParams = WeatherParams()
                        ) -> tuple[np.ndarray, np.ndarray]:
    """``(step_times, rain rate mm/h per step)`` over the campaign.

    Steps start at 0 and cover ``duration_s``; dry steps rate 0. One
    ``random()`` drives each transition and one more each wet step's
    rate, all from the single ``(seed, "weather", "rain")`` stream —
    regenerating with the same arguments is bit-identical, and no
    other subsystem shares the stream.
    """
    if duration_s <= 0.0:
        raise DisruptionError(
            f"weather duration must be positive, got {duration_s}")
    rng = make_rng((seed, "weather", "rain"))
    n = max(1, math.ceil(duration_s / params.step_s))
    rates = np.zeros(n)
    state = DRY
    for step in range(n):
        u = rng.random()
        if state == DRY:
            if u < params.p_dry_to_light:
                state = LIGHT
        elif state == LIGHT:
            if u < params.p_light_to_heavy:
                state = HEAVY
            elif u < params.p_light_to_heavy + params.p_light_to_dry:
                state = DRY
        else:
            if u < params.p_heavy_to_light:
                state = LIGHT
        if state != DRY:
            lo, hi = (params.light_rate_mm_h if state == LIGHT
                      else params.heavy_rate_mm_h)
            rates[step] = lo + rng.random() * (hi - lo)
    times = np.arange(n) * params.step_s
    return times, rates


def fade_windows_from_rain(times: np.ndarray, rates: np.ndarray,
                           params: WeatherParams = WeatherParams()
                           ) -> tuple[DisruptionWindow, ...]:
    """Coalesce contiguous wet steps into fade windows.

    Each maximal run of steps with positive rain rate becomes one
    ``fade`` window spanning the run, with severity from the run's
    mean rate — one window per rain cell, not one per step, so a
    month of weather stays a few hundred windows.
    """
    times = np.asarray(times, dtype=float)
    rates = np.asarray(rates, dtype=float)
    if times.shape != rates.shape:
        raise DisruptionError("rain trace times and rates must align")
    if times.size == 0:
        return ()
    step = params.step_s
    windows: list[DisruptionWindow] = []
    run_start: float | None = None
    run_rates: list[float] = []
    for t, rate in zip(times, rates):
        if rate > 0.0:
            if run_start is None:
                run_start = float(t)
            run_rates.append(float(rate))
        elif run_start is not None:
            windows.append(DisruptionWindow(
                "fade", run_start, float(t),
                severity=params.severity_for_rate(
                    sum(run_rates) / len(run_rates))))
            run_start, run_rates = None, []
    if run_start is not None:
        windows.append(DisruptionWindow(
            "fade", run_start, float(times[-1]) + step,
            severity=params.severity_for_rate(
                sum(run_rates) / len(run_rates))))
    return tuple(windows)


def wet_fraction(rates: np.ndarray) -> float:
    """Fraction of steps with any rain (sanity metric for tests)."""
    rates = np.asarray(rates, dtype=float)
    if rates.size == 0:
        return 0.0
    return float((rates > 0.0).mean())


@dataclass(frozen=True)
class WeatherScenario(Scenario):
    """A scenario whose experiments feel the campaign-clock weather.

    The fixed-overlay scenarios give every packet experiment the same
    synthetic conditions; here :meth:`experiment_schedule` instead
    intersects the campaign windows with the experiment's own horizon
    ``[epoch, epoch + experiment_horizon_s)`` and translates them to
    the experiment clock — clipped so installed windows never start
    before the experiment does. Experiments scheduled in dry spells
    get the canonical empty schedule (bit-identical clear-sky path).
    """

    #: How much campaign clock one packet experiment can observe.
    experiment_horizon_s: float = 14_400.0

    def experiment_schedule(self, epoch_t: float) -> DisruptionSchedule:
        end = epoch_t + self.experiment_horizon_s
        clipped = tuple(
            replace(w, start_t=max(w.start_t, epoch_t) - epoch_t,
                    end_t=min(w.end_t, end) - epoch_t)
            for w in self.campaign.overlapping(epoch_t, end))
        return DisruptionSchedule(name=self.name, windows=clipped)


def build_wet_month(config) -> WeatherScenario:
    """The ``wet_month`` scenario: Markov rain over the whole campaign.

    Weather is derived from ``config.seed`` and spans
    ``config.ping_days`` — the same seed that fixes the probe streams
    fixes the storms, so the campaign is reproducible end to end.
    """
    times, rates = generate_rain_trace(config.seed,
                                       days(config.ping_days))
    windows = fade_windows_from_rain(times, rates)
    return WeatherScenario(
        name="wet_month",
        campaign=DisruptionSchedule("wet_month", windows))
