"""Named, reproducible adverse-conditions scenarios.

A :class:`Scenario` couples two views of the same weather:

* ``campaign`` — windows on the campaign clock, driving the analytic
  ping series and the availability analysis (these are what the
  outage-episode detector must find);
* ``overlay`` — windows *relative to an experiment epoch*, installed
  into every packet-level experiment (:class:`repro.leo.access.
  StarlinkAccess`) the campaign runs under this scenario. Packet
  epochs are sampled across months, so without the overlay an
  hour-long storm would almost never intersect a 30-second transfer.

Campaign windows are aligned to ping probe rounds (the builders read
``config.ping_interval_s``), so a blackout reliably swallows whole
rounds instead of falling between probes.

Builders are registered in a table; :func:`register_scenario` lets
tests and downstream studies add their own (the property-based
no-hang suite generates random ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.disrupt.schedule import DisruptionSchedule, DisruptionWindow
from repro.errors import DisruptionError
from repro.units import days

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.campaign import CampaignConfig

#: The scenario every config uses unless told otherwise.
DEFAULT_SCENARIO = "clear_sky"

#: Gateways the flap scenarios take down (see repro.leo.ground).
FLAP_GATEWAYS = ("gw-gravelines-fr", "gw-turnhout-be")


@dataclass(frozen=True)
class Scenario:
    """One named adverse-conditions setup for a whole campaign."""

    name: str
    campaign: DisruptionSchedule
    #: Epoch-relative windows for packet-level experiments.
    overlay: tuple[DisruptionWindow, ...] = ()

    def experiment_schedule(self, epoch_t: float) -> DisruptionSchedule:
        """The overlay translated to one experiment's epoch."""
        if not self.overlay:
            return DisruptionSchedule(name=self.name)
        return DisruptionSchedule(name=self.name,
                                  windows=self.overlay).shifted(epoch_t)

    @property
    def is_clear(self) -> bool:
        """True when the scenario disrupts nothing at all."""
        return self.campaign.is_empty and not self.overlay


def _round_window(config: "CampaignConfig", first_round: int,
                  n_rounds: int) -> tuple[float, float]:
    """Campaign window covering ``n_rounds`` ping rounds.

    Starts one second before the first probe of ``first_round`` and
    ends one second after the last probe of the last covered round,
    so every probe of those rounds falls inside.
    """
    interval = config.ping_interval_s
    start = first_round * interval - 1.0
    end = ((first_round + n_rounds - 1) * interval
           + config.pings_per_round + 1.0)
    return start, end


def _total_rounds(config: "CampaignConfig") -> int:
    return max(1, int(days(config.ping_days) // config.ping_interval_s))


def _clear_sky(config: "CampaignConfig") -> Scenario:
    return Scenario(name="clear_sky",
                    campaign=DisruptionSchedule(name="clear_sky"))


def _rain_fade(config: "CampaignConfig") -> Scenario:
    """Three rain cells across the campaign, one steady over epochs."""
    total = _total_rounds(config)
    windows = []
    for frac, severity in ((0.2, 0.5), (0.5, 0.7), (0.8, 0.6)):
        first = max(1, int(total * frac))
        start, end = _round_window(config, first, n_rounds=3)
        windows.append(DisruptionWindow("fade", start, end,
                                        severity=severity))
    overlay = (DisruptionWindow("fade", 0.0, 14_400.0, severity=0.6),)
    return Scenario(name="rain_fade",
                    campaign=DisruptionSchedule("rain_fade",
                                                tuple(windows)),
                    overlay=overlay)


def _sat_outage(config: "CampaignConfig") -> Scenario:
    """A failed serving satellite: total blackout over >= 2 slots.

    The campaign blackout swallows two consecutive ping rounds, so
    episode start/end/recovery are exactly derivable; the overlay
    blackout covers [8 s, 43 s) of every packet experiment — 35 s,
    i.e. at least two full 15 s reallocation slots.
    """
    total = _total_rounds(config)
    first = max(1, total // 3)
    start, end = _round_window(config, first, n_rounds=2)
    campaign = DisruptionSchedule(
        "sat_outage", (DisruptionWindow("blackout", start, end),))
    overlay = (DisruptionWindow("blackout", 8.0, 43.0),)
    return Scenario(name="sat_outage", campaign=campaign,
                    overlay=overlay)


def _gateway_flap(config: "CampaignConfig") -> Scenario:
    """Gateway maintenance plus an exit-PoP route withdrawal."""
    total = _total_rounds(config)
    windows = []
    for i, gateway in enumerate(FLAP_GATEWAYS):
        first = max(1, int(total * (0.3 + 0.3 * i)))
        start, end = _round_window(config, first, n_rounds=2)
        windows.append(DisruptionWindow("gateway_out", start, end,
                                        target=gateway))
    flap_first = max(1, int(total * 0.5))
    start, end = _round_window(config, flap_first, n_rounds=1)
    windows.append(DisruptionWindow("blackout", start, end,
                                    target="route"))
    overlay = (
        DisruptionWindow("gateway_out", 0.0, 14_400.0,
                         target=FLAP_GATEWAYS[0]),
        DisruptionWindow("blackout", 20.0, 26.0, target="route"),
    )
    return Scenario(name="gateway_flap",
                    campaign=DisruptionSchedule("gateway_flap",
                                                tuple(windows)),
                    overlay=overlay)


def _storm(config: "CampaignConfig") -> Scenario:
    """Everything at once: heavy fade, a blackout, a flash crowd."""
    total = _total_rounds(config)
    fade_first = max(1, int(total * 0.35))
    fade_start, fade_end = _round_window(config, fade_first, n_rounds=5)
    out_first = max(1, int(total * 0.55))
    out_start, out_end = _round_window(config, out_first, n_rounds=2)
    surge_first = max(1, int(total * 0.75))
    surge_start, surge_end = _round_window(config, surge_first,
                                           n_rounds=3)
    campaign = DisruptionSchedule("storm", (
        DisruptionWindow("fade", fade_start, fade_end, severity=0.8),
        DisruptionWindow("blackout", out_start, out_end),
        DisruptionWindow("surge", surge_start, surge_end,
                         severity=0.9),
    ))
    overlay = (
        DisruptionWindow("fade", 0.0, 14_400.0, severity=0.8),
        DisruptionWindow("blackout", 15.0, 50.0),
        DisruptionWindow("surge", 0.0, 14_400.0, severity=0.9),
    )
    return Scenario(name="storm", campaign=campaign, overlay=overlay)


def _wet_month(config: "CampaignConfig") -> Scenario:
    """Month-scale Markov weather (lazy import: weather.py needs
    :class:`Scenario`, so importing it here at module load would
    cycle)."""
    from repro.disrupt.weather import build_wet_month
    return build_wet_month(config)


_SCENARIOS: dict[str, Callable[["CampaignConfig"], Scenario]] = {
    "clear_sky": _clear_sky,
    "rain_fade": _rain_fade,
    "sat_outage": _sat_outage,
    "gateway_flap": _gateway_flap,
    "storm": _storm,
    "wet_month": _wet_month,
}


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, registration order."""
    return tuple(_SCENARIOS)


def register_scenario(name: str,
                      builder: Callable[["CampaignConfig"], Scenario],
                      replace: bool = False) -> None:
    """Add a scenario builder to the registry.

    Used by the property-based no-hang suite to run campaigns under
    randomly generated schedules; ``replace=True`` allows re-runs in
    one process.
    """
    if name in _SCENARIOS and not replace:
        raise DisruptionError(
            f"scenario {name!r} is already registered")
    _SCENARIOS[name] = builder


def unregister_scenario(name: str) -> None:
    """Remove a registered scenario (built-ins are protected)."""
    if name in ("clear_sky", "rain_fade", "sat_outage",
                "gateway_flap", "storm", "wet_month"):
        raise DisruptionError(
            f"refusing to unregister built-in scenario {name!r}")
    _SCENARIOS.pop(name, None)


def build_scenario(name: str, config: "CampaignConfig") -> Scenario:
    """Materialise the named scenario for one campaign config."""
    builder = _SCENARIOS.get(name)
    if builder is None:
        raise DisruptionError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(_SCENARIOS)}")
    return builder(config)
