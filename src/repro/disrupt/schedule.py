"""Disruption windows and schedules.

A :class:`DisruptionWindow` is one adverse condition over a time
interval of the campaign clock; a :class:`DisruptionSchedule` is a
named, validated collection of windows plus the query API the rest of
the library uses to ask "what is wrong with the network at time t?".

Window kinds and what their ``severity`` means:

``fade``
    Rain attenuation on the service link. Capacity is multiplied by
    ``1 - severity`` (floored) and packets suffer an extra Bernoulli
    loss probability of ``FADE_LOSS_COEFF * severity`` — heavier rain
    both shrinks the granted rate and pushes the modem past its
    coding margin.
``blackout``
    Total connectivity loss. With an empty ``target`` the space link
    drops every packet (a failed serving satellite); with
    ``target="route"`` the exit PoP withdraws its routes instead
    (maintenance), so packets are blackholed *behind* the access —
    the two look identical to a ping but differ for traceroute.
``gateway_out``
    The gateway named by ``target`` is out of service; the scheduler
    must pick paths through the remaining gateways (possibly moving
    the exit PoP). ``severity`` is ignored.
``surge``
    A flash crowd in the cell. The competing load consumes
    ``SURGE_CAPACITY_COEFF * severity`` of the granted capacity.

All effects are deterministic functions of (window set, seed): an
empty schedule is guaranteed to leave every code path and RNG stream
untouched, which is what keeps the ``clear_sky`` scenario
digest-identical to a scenario-less run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DisruptionError

#: Valid window kinds.
WINDOW_KINDS = ("fade", "blackout", "gateway_out", "surge")

#: Extra loss probability per unit of fade severity.
FADE_LOSS_COEFF = 0.3

#: Fraction of capacity a full-severity surge consumes.
SURGE_CAPACITY_COEFF = 0.6

#: Capacity never drops below this fraction of nominal under fades
#: and surges (the modem keeps a trickle going; total loss is what
#: ``blackout`` windows are for).
CAPACITY_FLOOR = 0.05


@dataclass(frozen=True)
class DisruptionWindow:
    """One adverse condition over ``[start_t, end_t)`` campaign time."""

    kind: str
    start_t: float
    end_t: float
    severity: float = 1.0
    #: Kind-specific target: gateway name for ``gateway_out``;
    #: ``"route"`` selects route withdrawal for ``blackout``.
    target: str = ""

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_KINDS:
            raise DisruptionError(
                f"unknown disruption kind {self.kind!r}; expected one "
                f"of {WINDOW_KINDS}")
        if not self.end_t > self.start_t:
            raise DisruptionError(
                f"{self.kind} window is empty or inverted: "
                f"[{self.start_t}, {self.end_t})")
        if not 0.0 < self.severity <= 1.0:
            raise DisruptionError(
                f"{self.kind} window severity must be in (0, 1], got "
                f"{self.severity!r}")
        if self.kind == "gateway_out" and not self.target:
            raise DisruptionError(
                "gateway_out window needs a gateway name in 'target'")
        if self.kind == "blackout" and self.target not in ("", "route"):
            raise DisruptionError(
                f"blackout target must be '' (link) or 'route', got "
                f"{self.target!r}")

    def active(self, t: float) -> bool:
        """Whether ``t`` falls inside this window."""
        return self.start_t <= t < self.end_t

    @property
    def duration_s(self) -> float:
        """Window length, seconds."""
        return self.end_t - self.start_t


@dataclass(frozen=True)
class DisruptionSchedule:
    """A named set of disruption windows with a time-query API."""

    name: str
    windows: tuple[DisruptionWindow, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists from callers; normalise to a tuple so the
        # schedule stays hashable/frozen.
        if not isinstance(self.windows, tuple):
            object.__setattr__(self, "windows", tuple(self.windows))

    @property
    def is_empty(self) -> bool:
        """True when the schedule disrupts nothing (clear sky)."""
        return not self.windows

    def _active(self, t: float, kind: str):
        return (w for w in self.windows
                if w.kind == kind and w.active(t))

    # -- channel-facing queries ----------------------------------------

    def capacity_factor(self, t: float) -> float:
        """Multiplier on the granted link capacity at time ``t``."""
        factor = 1.0
        for w in self._active(t, "fade"):
            factor *= max(CAPACITY_FLOOR, 1.0 - w.severity)
        for w in self._active(t, "surge"):
            factor *= max(CAPACITY_FLOOR,
                          1.0 - SURGE_CAPACITY_COEFF * w.severity)
        return max(CAPACITY_FLOOR, factor)

    def extra_loss_prob(self, t: float) -> float:
        """Additional medium-loss probability from active fades."""
        keep = 1.0
        for w in self._active(t, "fade"):
            keep *= 1.0 - FADE_LOSS_COEFF * w.severity
        return 1.0 - keep

    def blackout_at(self, t: float) -> bool:
        """Whether any blackout (link or route) covers ``t``."""
        return any(True for w in self._active(t, "blackout"))

    # -- window extraction for installers ------------------------------

    def link_blackouts(self) -> list[tuple[float, float]]:
        """(start, duration) of space-link blackouts, outage format."""
        return [(w.start_t, w.duration_s) for w in self.windows
                if w.kind == "blackout" and w.target != "route"]

    def route_blackouts(self) -> list[tuple[float, float]]:
        """(start, end) of exit-PoP route withdrawals."""
        return [(w.start_t, w.end_t) for w in self.windows
                if w.kind == "blackout" and w.target == "route"]

    def gateway_outages(self) -> list[tuple[str, float, float]]:
        """(gateway name, start, end) of gateway maintenance windows."""
        return [(w.target, w.start_t, w.end_t) for w in self.windows
                if w.kind == "gateway_out"]

    def has_capacity_effects(self) -> bool:
        """Whether any window touches capacity (fade or surge)."""
        return any(w.kind in ("fade", "surge") for w in self.windows)

    def has_fades(self) -> bool:
        """Whether any fade window exists (extra medium loss)."""
        return any(w.kind == "fade" for w in self.windows)

    # -- transforms ----------------------------------------------------

    def shifted(self, dt: float) -> "DisruptionSchedule":
        """The same schedule translated by ``dt`` seconds."""
        if self.is_empty or dt == 0.0:
            return self
        return DisruptionSchedule(
            name=self.name,
            windows=tuple(replace(w, start_t=w.start_t + dt,
                                  end_t=w.end_t + dt)
                          for w in self.windows))

    def overlapping(self, start: float, end: float
                    ) -> list[DisruptionWindow]:
        """Windows intersecting ``[start, end)``."""
        return [w for w in self.windows
                if w.start_t < end and w.end_t > start]


#: The canonical do-nothing schedule.
CLEAR_SKY = DisruptionSchedule(name="clear_sky")
