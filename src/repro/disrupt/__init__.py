"""Adverse-conditions subsystem: seeded, named network disruptions.

Schedules rain-fade attenuation, satellite/gateway outages, exit-PoP
route withdrawals and load surges into the simulated Starlink access,
composed into reproducible named scenarios (``clear_sky``,
``rain_fade``, ``sat_outage``, ``gateway_flap``, ``storm``,
``wet_month``) selected via
:class:`repro.core.campaign.CampaignConfig.scenario` or
``python -m repro ... --scenario NAME``. ``wet_month`` is generated
rather than hand-placed: a seeded Markov rain chain
(:mod:`repro.disrupt.weather`) produces month-scale fade windows
whose packet experiments see the campaign-clock weather overlapping
their own epoch.
"""

from repro.disrupt.apply import (
    ScheduledExtraLoss,
    apply_to_access,
    apply_to_scheduler,
)
from repro.disrupt.scenarios import (
    DEFAULT_SCENARIO,
    Scenario,
    build_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.disrupt.schedule import (
    CLEAR_SKY,
    DisruptionSchedule,
    DisruptionWindow,
)
from repro.disrupt.weather import (
    RAIN_STATES,
    WeatherParams,
    WeatherScenario,
    build_wet_month,
    fade_windows_from_rain,
    generate_rain_trace,
    wet_fraction,
)

__all__ = [
    "CLEAR_SKY",
    "DEFAULT_SCENARIO",
    "DisruptionSchedule",
    "DisruptionWindow",
    "RAIN_STATES",
    "Scenario",
    "ScheduledExtraLoss",
    "WeatherParams",
    "WeatherScenario",
    "apply_to_access",
    "apply_to_scheduler",
    "build_scenario",
    "build_wet_month",
    "fade_windows_from_rain",
    "generate_rain_trace",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
    "wet_fraction",
]
