"""Adverse-conditions subsystem: seeded, named network disruptions.

Schedules rain-fade attenuation, satellite/gateway outages, exit-PoP
route withdrawals and load surges into the simulated Starlink access,
composed into reproducible named scenarios (``clear_sky``,
``rain_fade``, ``sat_outage``, ``gateway_flap``, ``storm``) selected
via :class:`repro.core.campaign.CampaignConfig.scenario` or
``python -m repro ... --scenario NAME``.
"""

from repro.disrupt.apply import (
    ScheduledExtraLoss,
    apply_to_access,
    apply_to_scheduler,
)
from repro.disrupt.scenarios import (
    DEFAULT_SCENARIO,
    Scenario,
    build_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.disrupt.schedule import (
    CLEAR_SKY,
    DisruptionSchedule,
    DisruptionWindow,
)

__all__ = [
    "CLEAR_SKY",
    "DEFAULT_SCENARIO",
    "DisruptionSchedule",
    "DisruptionWindow",
    "Scenario",
    "ScheduledExtraLoss",
    "apply_to_access",
    "apply_to_scheduler",
    "build_scenario",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
