"""Installers: wire a disruption schedule into a simulated network.

Two installation targets:

* :func:`apply_to_access` — a packet-level
  :class:`~repro.leo.access.StarlinkAccess`: fades attach capacity
  attenuation and extra medium loss, blackouts compose an outage
  window onto the space link, gateway windows feed the satellite
  scheduler and route blackouts schedule a withdraw/restore pair on
  the exit PoP.
* :func:`apply_to_scheduler` — the shared analytic scheduler behind
  the five-month ping series (gateway outages change which PoP the
  path exits at, which the latency series must reflect).

Installation with an empty schedule is a no-op by construction: no
hook is attached, no loss model wrapped, no event scheduled and no
RNG stream consumed, so ``clear_sky`` runs stay bit-identical to a
scenario-less build.
"""

from __future__ import annotations

import math
import random

from repro.disrupt.schedule import DisruptionSchedule
from repro.leo.scheduling import SLOT_DURATION
from repro.netsim.loss import CompositeLoss, OutageSchedule
from repro.rng import make_rng


class ScheduledExtraLoss:
    """Time-varying Bernoulli medium loss driven by a schedule.

    During active fade windows every packet is additionally lost with
    :meth:`DisruptionSchedule.extra_loss_prob`; outside them the model
    draws nothing, so the composed chain's RNG streams stay untouched
    whenever the weather is clear.
    """

    def __init__(self, schedule: DisruptionSchedule,
                 rng: random.Random):
        self.schedule = schedule
        self._rng = rng

    def is_lost(self, now: float) -> bool:
        p = self.schedule.extra_loss_prob(now)
        if p <= 0.0:
            return False
        return self._rng.random() < p


def _slot_span(start_t: float, end_t: float) -> tuple[int, int]:
    """Slot window [first, last) fully covering ``[start_t, end_t)``."""
    first = int(start_t // SLOT_DURATION)
    last = int(math.ceil(end_t / SLOT_DURATION))
    return first, max(last, first + 1)


def apply_to_scheduler(scheduler, schedule: DisruptionSchedule) -> None:
    """Install gateway maintenance windows into a satellite scheduler."""
    for gateway, start_t, end_t in schedule.gateway_outages():
        first, last = _slot_span(start_t, end_t)
        scheduler.add_gateway_outage(gateway, first, last)


def apply_to_access(access, schedule: DisruptionSchedule) -> None:
    """Install every effect of ``schedule`` into a StarlinkAccess.

    Must be called after construction and before the experiment
    starts driving the simulator. A no-op for empty schedules.
    """
    if schedule.is_empty:
        return

    # Capacity: fades and surges shrink the granted rate.
    if schedule.has_capacity_effects():
        access.channel.downlink.attenuation = schedule.capacity_factor
        access.channel.uplink.attenuation = schedule.capacity_factor

    # Medium loss: fades push the modem past its coding margin.
    if schedule.has_fades():
        for direction, pipe in (("up", access.space_link.pipe_ab),
                                ("down", access.space_link.pipe_ba)):
            extra = ScheduledExtraLoss(
                schedule,
                make_rng((access.seed, "disrupt-fade", direction)))
            pipe.loss = CompositeLoss([pipe.loss, extra])

    # Space-link blackouts: total loss during the window.
    blackouts = schedule.link_blackouts()
    if blackouts:
        for pipe in (access.space_link.pipe_ab,
                     access.space_link.pipe_ba):
            pipe.loss = CompositeLoss(
                [pipe.loss, OutageSchedule(blackouts)])

    # Gateway maintenance: the experiment's own scheduler re-plans
    # around the missing gateway (the access builds a private path
    # model, so this never leaks into other experiments).
    apply_to_scheduler(access.path_model.scheduler, schedule)

    # Exit-PoP route withdrawal: the pop blackholes everything during
    # the window (silent drops, as during route-convergence gaps).
    route_windows = schedule.route_blackouts()
    if route_windows:
        pop = access.net.node("pop")
        sim = access.sim
        for start_t, end_t in route_windows:
            if start_t > sim.now:
                sim.at(start_t, pop.withdraw_routes)
            else:
                pop.withdraw_routes()
            sim.at(end_t, pop.restore_routes)
