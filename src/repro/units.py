"""Unit helpers and physical constants.

All simulator-internal quantities use SI base units: seconds for time,
bits per second for rates, bytes for data sizes, metres for distances.
These helpers exist so that calling code reads naturally
(``mbps(100)``, ``ms(50)``) instead of sprinkling magic factors.
"""

from __future__ import annotations

# -- physical constants -------------------------------------------------

#: Speed of light in vacuum, m/s. Radio propagation to satellites.
SPEED_OF_LIGHT = 299_792_458.0

#: Effective propagation speed in optical fibre, m/s (~2/3 c).
FIBER_SPEED = SPEED_OF_LIGHT * 2.0 / 3.0

#: Mean Earth radius, metres (spherical model).
EARTH_RADIUS = 6_371_000.0

#: Standard gravitational parameter of the Earth, m^3/s^2.
EARTH_MU = 3.986_004_418e14

#: Sidereal day, seconds (Earth rotation period).
SIDEREAL_DAY = 86_164.0905

#: Geostationary orbit altitude above the surface, metres.
GEO_ALTITUDE = 35_786_000.0


# -- time ---------------------------------------------------------------

def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def minutes(value: float) -> float:
    """Minutes to seconds."""
    return value * 60.0


def hours(value: float) -> float:
    """Hours to seconds."""
    return value * 3600.0


def days(value: float) -> float:
    """Days to seconds."""
    return value * 86_400.0


def to_ms(seconds: float) -> float:
    """Seconds to milliseconds."""
    return seconds * 1e3


def to_us(seconds: float) -> float:
    """Seconds to microseconds."""
    return seconds * 1e6


# -- data rates ---------------------------------------------------------

def kbps(value: float) -> float:
    """Kilobits per second to bits per second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Megabits per second to bits per second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Gigabits per second to bits per second."""
    return value * 1e9


def to_mbps(bits_per_second: float) -> float:
    """Bits per second to megabits per second."""
    return bits_per_second / 1e6


# -- data sizes ---------------------------------------------------------

def kib(value: float) -> int:
    """Kibibytes to bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """Mebibytes to bytes."""
    return int(value * 1024 * 1024)


def kb(value: float) -> int:
    """Kilobytes (10^3) to bytes."""
    return int(value * 1e3)


def mb(value: float) -> int:
    """Megabytes (10^6) to bytes."""
    return int(value * 1e6)


# -- distances ----------------------------------------------------------

def km(value: float) -> float:
    """Kilometres to metres."""
    return value * 1e3


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Serialisation time of ``size_bytes`` on a link of ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes * 8.0 / rate_bps
