"""repro -- reproduction of "A First Look at Starlink Performance".

The package is layered:

* :mod:`repro.netsim` -- packet-level discrete-event network simulator;
* :mod:`repro.leo` / :mod:`repro.geo` / :mod:`repro.wired` -- the three
  access technologies the paper compares (Starlink, geostationary
  SatCom, campus Ethernet);
* :mod:`repro.transport` -- simplified TCP (Cubic) and QUIC stacks;
* :mod:`repro.apps` -- the measurement tools (ping, traceroute,
  Tracebox, Ookla-like speedtest, HTTP/3 bulk, QUIC messages, Wehe,
  web browsing);
* :mod:`repro.core` -- the measurement campaign, the analysis
  pipeline and report generation (the paper's contribution);
* :mod:`repro.errant` -- the ERRANT emulation-profile artefact.

Quickstart::

    from repro.core.campaign import CampaignConfig, run_quick_campaign
    results = run_quick_campaign(CampaignConfig(seed=1))
    print(results.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
