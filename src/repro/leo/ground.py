"""Ground segment: user terminals, gateways and points of presence.

Gateway and PoP locations approximate the Starlink ground segment
reachable from Belgium during the paper's campaign (winter 2021 to
spring 2022). The paper's traceroutes saw exactly two exits, one in
the Netherlands and one in Germany; our gateway-to-PoP mapping
reproduces that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.leo.geometry import GeoPoint


@dataclass(frozen=True)
class GroundStation:
    """A gateway (dish farm) or PoP site."""

    name: str
    location: GeoPoint
    #: Name of the PoP this gateway feeds (gateways only).
    pop: str = ""

    def ecef(self) -> np.ndarray:
        """ECEF position, metres."""
        return self.location.to_ecef()


@dataclass(frozen=True)
class UserTerminal:
    """A subscriber dish."""

    name: str
    location: GeoPoint

    def ecef(self) -> np.ndarray:
        """ECEF position, metres."""
        return self.location.to_ecef()


#: The paper's vantage point: UCLouvain, Louvain-la-Neuve, Belgium.
LOUVAIN_LA_NEUVE = GeoPoint(50.668, 4.611)

#: Gateways a Belgian terminal's serving satellites can reach
#: (bent-pipe: the same satellite must see both the dish and a
#: gateway). Sites follow publicly mapped 2021/22 gateway builds.
STARLINK_GATEWAYS: list[GroundStation] = [
    GroundStation("gw-gravelines-fr", GeoPoint(50.99, 2.13),
                  pop="pop-frankfurt"),
    GroundStation("gw-aerzen-de", GeoPoint(52.05, 9.26),
                  pop="pop-frankfurt"),
    GroundStation("gw-middenmeer-nl", GeoPoint(52.81, 4.99),
                  pop="pop-amsterdam"),
    GroundStation("gw-turnhout-be", GeoPoint(51.32, 4.95),
                  pop="pop-amsterdam"),
    GroundStation("gw-isle-of-man", GeoPoint(54.23, -4.53),
                  pop="pop-london"),
]

#: Points of presence where Starlink traffic exits to the Internet.
STARLINK_POPS: dict[str, GroundStation] = {
    "pop-frankfurt": GroundStation("pop-frankfurt", GeoPoint(50.11, 8.68)),
    "pop-amsterdam": GroundStation("pop-amsterdam", GeoPoint(52.37, 4.90)),
    "pop-london": GroundStation("pop-london", GeoPoint(51.51, -0.13)),
}


def default_terminal() -> UserTerminal:
    """The campaign's user terminal (PC-Starlink's dish)."""
    return UserTerminal("ut-louvain", LOUVAIN_LA_NEUVE)
