"""Starlink-like LEO constellation substrate.

The chain is: orbital geometry (:mod:`geometry`, :mod:`orbits`,
:mod:`constellation`) -> ground segment (:mod:`ground`) -> serving-
satellite selection and handover (:mod:`scheduling`) -> radio capacity
and medium loss (:mod:`channel`) -> campaign-scale exogenous events
(:mod:`events`) -> an assembled access network ready for experiments
(:mod:`access`).

Everything is driven by the same :class:`StarlinkPathModel`, so the
fast analytic latency samples used for the five-month ping campaign
and the per-packet delays seen by the packet-level simulator are the
same model by construction.
"""

from repro.leo.geometry import (
    GeoPoint,
    azimuth_angle,
    ecef,
    slant_range,
    elevation_angle,
)
from repro.leo.constellation import WalkerShell, Constellation
from repro.leo.ground import (
    GroundStation,
    UserTerminal,
    STARLINK_GATEWAYS,
    STARLINK_POPS,
)
from repro.leo.scheduling import (
    HandoverEvent,
    PathSnapshot,
    SatelliteScheduler,
    scan_handover_events,
)
from repro.leo.mobility import (
    ObstructionTrace,
    SkyMask,
    SkySector,
    StationaryTrajectory,
    Trajectory,
    WaypointTrajectory,
    build_obstruction,
    build_trajectory,
    drive_trajectory,
)
from repro.leo.fleet import (
    FleetScheduler,
    FleetSpec,
    FleetTerminalView,
    build_fleet_terminals,
    fleet_seeds,
)
from repro.leo.channel import CapacityProcess, StarlinkChannel
from repro.leo.events import CampaignTimeline
from repro.leo.access import StarlinkAccess, StarlinkParams, StarlinkPathModel

__all__ = [
    "GeoPoint",
    "azimuth_angle",
    "ecef",
    "slant_range",
    "elevation_angle",
    "WalkerShell",
    "Constellation",
    "GroundStation",
    "UserTerminal",
    "STARLINK_GATEWAYS",
    "STARLINK_POPS",
    "SatelliteScheduler",
    "PathSnapshot",
    "HandoverEvent",
    "scan_handover_events",
    "Trajectory",
    "StationaryTrajectory",
    "WaypointTrajectory",
    "drive_trajectory",
    "ObstructionTrace",
    "SkyMask",
    "SkySector",
    "build_trajectory",
    "build_obstruction",
    "FleetScheduler",
    "FleetSpec",
    "FleetTerminalView",
    "build_fleet_terminals",
    "fleet_seeds",
    "CapacityProcess",
    "StarlinkChannel",
    "CampaignTimeline",
    "StarlinkAccess",
    "StarlinkParams",
    "StarlinkPathModel",
]
