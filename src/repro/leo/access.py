"""Assembled Starlink access network.

Two views of the same model:

* :class:`StarlinkPathModel` -- analytic per-packet delay samples
  (geometry + processing + scheduling jitter). The five-month ping
  campaign samples this directly, which is what makes simulating
  months of latency data tractable.
* :class:`StarlinkAccess` -- a packet-level topology for transport
  experiments: client -> dish NAT (192.168.1.1) -> service link
  (time-varying rate/delay/loss) -> CGNAT (100.64.0.1) -> PoP ->
  servers. The service-link delay callables *wrap the same path
  model*, so both views agree by construction.

Topology note: the netsim PoP is one logical exit node; per-server
fibre legs are computed from the PoP in force at the experiment epoch.
Mid-experiment gateway switches still move the delay through the
snapshot term of the path model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.rng import make_rng
from repro.errors import ConfigurationError
from repro.leo.channel import StarlinkChannel
from repro.leo.constellation import Constellation
from repro.leo.events import CampaignTimeline
from repro.leo.geometry import GeoPoint, fiber_path_delay
from repro.leo.ground import (
    STARLINK_GATEWAYS,
    STARLINK_POPS,
    UserTerminal,
    default_terminal,
)
from repro.leo.scheduling import SLOT_DURATION, SatelliteScheduler
from repro.netsim.engine import Simulator
from repro.netsim.loss import CompositeLoss, UnservedLoss
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network
from repro.units import gbps, kib, mbps, ms

#: Deterministic stand-in for the slot-constant base delay while no
#: path is servable (drive-through outage). Packets in such slots are
#: dropped by :class:`~repro.netsim.loss.UnservedLoss`, so this value
#: only shapes stragglers already in flight — it just has to be a
#: plausible constant, not geometry.
UNSERVED_FALLBACK_BASE_S = ms(30.0)


@dataclass
class StarlinkParams:
    """Every tunable of the Starlink model, with calibrated defaults.

    Calibration targets are the paper's measurements; see
    EXPERIMENTS.md for the fit. Defaults aim at: idle RTT median
    ~47 ms / min ~21 ms to Belgian anchors, Ookla-style download
    median ~178 Mbit/s, upload ~17 Mbit/s, H3 loaded RTT medians
    ~95/104 ms (down/up), loss ratios of Table 2.
    """

    #: Mean granted capacity before protocol overhead, bit/s.
    down_mean_bps: float = mbps(230)
    up_mean_bps: float = mbps(21)

    #: One-way modem + gateway processing, seconds.
    processing_one_way_s: float = ms(1.2)

    #: Per-direction scheduling-jitter gamma parameters. Jitter is a
    #: *process*: one draw per scheduling frame (``jitter_frame_s``),
    #: shared by all packets in the frame, plus a small per-packet
    #: dither. Independent per-packet draws would let the FIFO link
    #: serialise on the jitter and collapse throughput.
    jitter_shape_down: float = 1.8
    jitter_scale_down_s: float = ms(4.2)
    jitter_shape_up: float = 2.0
    jitter_scale_up_s: float = ms(4.6)
    jitter_floor_s: float = ms(1.0)
    jitter_frame_s: float = ms(15.0)
    jitter_dither_s: float = ms(0.8)

    #: Service-link buffer sizes (same order as the paper suggests:
    #: byte-sized queues, so the slow uplink drains much slower).
    down_queue_bytes: int = kib(3000)
    up_queue_bytes: int = kib(300)

    #: CGNAT + PoP processing, one way.
    pop_processing_s: float = ms(0.5)

    #: LAN between PC-Starlink and the dish router.
    lan_rate_bps: float = gbps(1)
    lan_delay_s: float = ms(0.2)

    #: Amplitude of an optional hour-of-day latency wobble. The paper
    #: found no diurnal pattern (Mood's test), so the default is zero;
    #: set it non-zero for what-if studies of loaded constellations.
    diurnal_amplitude_s: float = 0.0


class StarlinkPathModel:
    """Analytic one-way/RTT delay model of the Starlink access."""

    #: Class-level default for the per-slot base-delay cache (fast
    #: path); equivalence tests flip it to prove digests do not
    #: depend on it.
    base_cache_enabled = True

    def __init__(self, params: StarlinkParams | None = None,
                 constellation: Constellation | None = None,
                 terminal: UserTerminal | None = None,
                 timeline: CampaignTimeline | None = None,
                 seed: int = 0,
                 scheduler: SatelliteScheduler | None = None,
                 trajectory=None,
                 obstruction=None):
        self.params = params or StarlinkParams()
        self.timeline = timeline or CampaignTimeline()
        self.seed = seed
        if scheduler is not None:
            # Injected scheduler (e.g. a FleetTerminalView sharing one
            # FleetScheduler across terminals): the model follows its
            # constellation/terminal instead of building its own.
            # Injected schedulers manage their own mobility state.
            self.scheduler = scheduler
            self.constellation = scheduler.constellation
            self.terminal = scheduler.terminal
        else:
            self.constellation = constellation or Constellation()
            self.terminal = terminal or default_terminal()
            self.scheduler = SatelliteScheduler(
                self.constellation, self.terminal, STARLINK_GATEWAYS,
                seed=seed, trajectory=trajectory,
                obstruction=obstruction)
        self._fiber_cache: dict[str, float] = {}
        self._jitter_cache: dict[tuple[str, int], float] = {}
        #: Slot -> slot-constant part of base_one_way; valid only
        #: while the scheduler stays at ``_base_cache_version``.
        self._base_cache: dict[int, float] = {}
        self._base_cache_version = self.scheduler.version

    # -- building blocks ----------------------------------------------

    def base_one_way(self, t: float) -> float:
        """Deterministic one-way UT->PoP delay at time ``t``.

        Radio propagation over the bent pipe, gateway->PoP fibre,
        processing, the campaign-timeline adjustment and the diurnal
        wobble -- everything except per-packet jitter.

        The geometry + processing part is constant within one 15 s
        scheduler slot, so it is memoized per slot (the cached value
        is the identical left-to-right float sum the uncached
        expression produces -- only the time-varying timeline and
        diurnal terms are re-added per call). The cache is discarded
        whenever :attr:`SatelliteScheduler.version` moves, i.e. when
        outage injection retroactively changes slot allocations.
        """
        if self.base_cache_enabled:
            scheduler = self.scheduler
            if scheduler.version != self._base_cache_version:
                self._base_cache.clear()
                self._base_cache_version = scheduler.version
            slot = scheduler.slot_of(t)
            base = self._base_cache.get(slot)
            if base is None:
                base = self._slot_base(t)
                if len(self._base_cache) > 50_000:
                    self._base_cache.clear()
                self._base_cache[slot] = base
        else:
            base = self._slot_base(t)
        return (base
                + self.timeline.extra_latency(t)
                + self._diurnal(t))

    def _slot_base(self, t: float) -> float:
        """Slot-constant part of :meth:`base_one_way` at time ``t``."""
        snap = self.scheduler.snapshot(t)
        gw_to_pop = self._fiber_one_way(snap.gateway.name,
                                        snap.gateway.location,
                                        self.pop_location(t))
        return (snap.one_way_propagation + gw_to_pop
                + self.params.processing_one_way_s
                + self.params.pop_processing_s)

    def _fiber_one_way(self, key: str, a: GeoPoint, b: GeoPoint) -> float:
        cached = self._fiber_cache.get(key)
        if cached is None:
            cached = fiber_path_delay(a, b)
            self._fiber_cache[key] = cached
        return cached

    def _diurnal(self, t: float) -> float:
        amplitude = self.params.diurnal_amplitude_s
        if amplitude == 0.0:
            # Default configuration (the paper found no diurnal
            # pattern); skip the sin() -- the product below is +0.0
            # for every t, so the early-out is value-identical.
            return 0.0
        hour_angle = 2.0 * math.pi * (t % 86_400.0) / 86_400.0
        return amplitude * 0.5 * (1.0 + math.sin(hour_angle))

    def jitter(self, rng: random.Random, direction: str,
               t: float | None = None) -> float:
        """Scheduling-jitter sample for a packet sent at ``t``.

        The dominant component is drawn once per scheduling frame
        (time-bucketed, seeded), so packets within a frame share it;
        ``rng`` only adds sub-millisecond dither.
        """
        p = self.params
        if t is None:
            # No timestamp (pure statistical sampling): fresh draw.
            draw = self._jitter_draw(rng, direction)
        else:
            frame = int(t / p.jitter_frame_s)
            key = (direction, frame)
            draw = self._jitter_cache.get(key)
            if draw is None:
                frame_rng = make_rng((self.seed, "jit", direction, frame))
                draw = self._jitter_draw(frame_rng, direction)
                if len(self._jitter_cache) > 50_000:
                    self._jitter_cache.clear()
                self._jitter_cache[key] = draw
        return p.jitter_floor_s + draw + rng.uniform(0, p.jitter_dither_s)

    def _jitter_draw(self, rng: random.Random, direction: str) -> float:
        p = self.params
        if direction == "up":
            return rng.gammavariate(p.jitter_shape_up, p.jitter_scale_up_s)
        return rng.gammavariate(p.jitter_shape_down,
                                p.jitter_scale_down_s)

    def one_way_delay(self, t: float, rng: random.Random,
                      direction: str) -> float:
        """One-way UT->PoP (or PoP->UT) delay including jitter."""
        return self.base_one_way(t) + self.jitter(rng, direction, t)

    def pop_location(self, t: float) -> GeoPoint:
        """Location of the PoP in force at time ``t``."""
        pop_name = self.scheduler.snapshot(t).pop
        return STARLINK_POPS[pop_name].location

    def pop_name(self, t: float) -> str:
        """Name of the PoP in force at time ``t``."""
        return self.scheduler.snapshot(t).pop

    # -- mobility / obstruction hardening ------------------------------

    @property
    def mobility_armed(self) -> bool:
        """Whether slots can be unservable from motion/obstruction."""
        scheduler = self.scheduler
        return bool(getattr(scheduler, "_mobile", False)
                    or getattr(scheduler, "obstruction", None)
                    is not None)

    def is_unserved(self, t: float) -> bool:
        """Whether the slot under ``t`` has no servable path."""
        try:
            self.scheduler.snapshot(t)
        except ConfigurationError:
            return True
        return False

    def fallback_one_way_delay(self, t: float, rng: random.Random,
                               direction: str) -> float:
        """Delay stand-in for packets crossing an unservable slot.

        Consumes exactly the same RNG draws as
        :meth:`one_way_delay` (jitter frame + dither), so packet
        streams that straddle an outage keep their sibling draws
        aligned with a run where the slot was servable.
        """
        return (UNSERVED_FALLBACK_BASE_S
                + self.timeline.extra_latency(t)
                + self._diurnal(t)
                + self.jitter(rng, direction, t))

    def pop_location_or_default(self, t: float,
                                scan_slots: int = 240) -> GeoPoint:
        """PoP location at ``t``, surviving unservable epochs.

        A full-sky obstruction at the experiment epoch must not crash
        topology construction: scan forward up to ``scan_slots``
        slots for the first servable path, falling back to the first
        gateway's PoP (the terminal's usual exit) if the whole scan
        window is dark.
        """
        for k in range(scan_slots):
            try:
                pop = self.scheduler.snapshot(t + k * SLOT_DURATION).pop
            except ConfigurationError:
                continue
            return STARLINK_POPS[pop].location
        return STARLINK_POPS[self.scheduler.gateways[0].pop].location

    # -- campaign-level sampling ---------------------------------------

    def idle_rtt(self, t: float, rng: random.Random,
                 remote_rtt_s: float = 0.0) -> float:
        """One idle-link RTT sample at campaign time ``t``.

        ``remote_rtt_s`` is the PoP<->destination round trip (fibre
        path plus server turnaround), computed by the caller from the
        anchor's geography.
        """
        return (2.0 * self.base_one_way(t)
                + self.jitter(rng, "up", t)
                + self.jitter(rng, "down", t)
                + remote_rtt_s)


class StarlinkAccess:
    """Packet-level Starlink access network for one experiment epoch.

    Builds the topology the paper's traceroute saw: the client behind
    the dish router NAT (192.168.1.1), a CGNAT at the network exit
    (100.64.0.1) and the PoP. Call :meth:`add_remote_host` for every
    server/anchor the experiment needs, then :meth:`finalize`.
    """

    CLIENT_ADDRESS = "192.168.1.10"
    DISH_ADDRESS = "192.168.1.1"
    CGNAT_ADDRESS = "100.64.0.1"
    POP_ADDRESS = "149.6.128.1"

    def __init__(self, params: StarlinkParams | None = None,
                 seed: int = 0, epoch_t: float = 0.0,
                 timeline: CampaignTimeline | None = None,
                 constellation: Constellation | None = None,
                 path_model: StarlinkPathModel | None = None,
                 capacity_share: float = 1.0,
                 trajectory=None,
                 obstruction=None):
        self.params = params or StarlinkParams()
        self.seed = seed
        self.epoch_t = epoch_t
        #: Fraction of the terminal's capacity this access models (a
        #: per-connection shard of a multi-connection experiment runs
        #: at ``1/N``); rates and queue depth scale with it, latency
        #: and loss do not.
        self.capacity_share = capacity_share
        self.timeline = timeline or CampaignTimeline()
        # trajectory/obstruction must be armed before _build_access so
        # mobility_armed wires UnservedLoss onto the space link.
        self.path_model = path_model or StarlinkPathModel(
            params=self.params, constellation=constellation,
            timeline=self.timeline, seed=seed, trajectory=trajectory,
            obstruction=obstruction)
        self.channel = StarlinkChannel(
            down_mean=self.params.down_mean_bps,
            up_mean=self.params.up_mean_bps, seed=seed,
            share=capacity_share)
        self.channel.downlink.scale = self.timeline.capacity_scale(epoch_t)

        # The simulator clock runs at campaign time so geometry and
        # capacity are evaluated at the right epoch.
        self.net = Network(Simulator(start_time=epoch_t))
        self._build_access()
        self._remote_count = 0

    @property
    def sim(self):
        """The simulator driving this access network."""
        return self.net.sim

    @property
    def client(self):
        """PC-Starlink."""
        return self.net.host("client")

    def _build_access(self) -> None:
        p = self.params
        self.net.add_host("client", self.CLIENT_ADDRESS)
        self.net.add_nat("dish", self.DISH_ADDRESS, inside_neighbor="client")
        self.net.add_nat("cgnat", self.CGNAT_ADDRESS, inside_neighbor="dish")
        self.net.add_router("pop", self.POP_ADDRESS)

        self.net.connect("client", "dish", rate_ab=p.lan_rate_bps,
                         rate_ba=p.lan_rate_bps, delay=p.lan_delay_s)

        up_rng = make_rng((self.seed, "jitter", "up"))
        down_rng = make_rng((self.seed, "jitter", "down"))

        def up_delay(now: float) -> float:
            try:
                return self.path_model.one_way_delay(now, up_rng, "up")
            except ConfigurationError:
                return self.path_model.fallback_one_way_delay(
                    now, up_rng, "up")

        def down_delay(now: float) -> float:
            try:
                return self.path_model.one_way_delay(now, down_rng,
                                                     "down")
            except ConfigurationError:
                return self.path_model.fallback_one_way_delay(
                    now, down_rng, "down")

        loss_up = self.channel.make_loss_model("up")
        loss_down = self.channel.make_loss_model("down")
        if self.path_model.mobility_armed:
            # A moving/obstructed terminal can hit unservable slots;
            # packets crossing one are lost outright (geometry-driven
            # drive-through outage). Wired only when mobility is armed
            # so the classic pipeline pays zero per-packet probes.
            loss_up = CompositeLoss(
                [loss_up, UnservedLoss(self.path_model.is_unserved)])
            loss_down = CompositeLoss(
                [loss_down, UnservedLoss(self.path_model.is_unserved)])

        share = self.capacity_share
        space = self.net.connect(
            "dish", "cgnat",
            rate_ab=self.channel.uplink.rate_at,
            rate_ba=self._scaled_downlink_rate,
            delay=up_delay, delay_ba=down_delay,
            queue_ab=DropTailQueue(
                capacity_bytes=max(1, int(p.up_queue_bytes * share))),
            queue_ba=DropTailQueue(
                capacity_bytes=max(1, int(p.down_queue_bytes * share))),
            loss_ab=loss_up,
            loss_ba=loss_down)
        self.space_link = space

        self.net.connect("cgnat", "pop", rate_ab=gbps(10), rate_ba=gbps(10),
                         delay=ms(0.1))

    def _scaled_downlink_rate(self, now: float) -> float:
        return self.channel.downlink.rate_at(now)

    def add_remote_host(self, name: str, address: str,
                        location: GeoPoint,
                        access_rate_bps: float = gbps(1),
                        server_lan_delay_s: float = ms(0.3)):
        """Attach a server/anchor reachable through the PoP.

        The PoP->server delay is the fibre path from the PoP (as of
        the experiment epoch) to ``location`` plus a small server-side
        LAN delay.
        """
        host = self.net.add_host(name, address)
        pop_loc = self.path_model.pop_location_or_default(self.epoch_t)
        delay = fiber_path_delay(pop_loc, location) + server_lan_delay_s
        self.net.connect("pop", name, rate_ab=access_rate_bps,
                         rate_ba=access_rate_bps, delay=delay)
        self._remote_count += 1
        return host

    def finalize(self) -> None:
        """Install routes; call after all remote hosts are added."""
        self.net.finalize()

    def run(self, duration: float) -> None:
        """Run the simulation for ``duration`` seconds past the epoch."""
        self.net.sim.run(until=self.net.sim.now + duration)
