"""Fleet-scale scheduling: many terminals on one shared constellation.

The paper measures a single dish; its follow-ons (and the roadmap's
"millions of users" north star) need thousands of vantage points on
the *same* constellation. Running one :class:`SatelliteScheduler` per
terminal repeats the expensive work T times per slot: every scheduler
re-propagates visibility over all N satellites and — the dominant
cost — re-derives per-satellite gateway geometry candidate by
candidate (O(visible x gateways) scalar Python calls).

:class:`FleetScheduler` computes a whole slot for T terminals in one
batched pass and is **bit-identical** per terminal to a scalar
``SatelliteScheduler(seed=seeds[i])`` (pinned by
``tests/leo/test_fleet_differential.py`` and the ``fleet-smoke`` CI
digest gate). The trick is to vectorise only where floats cannot
move:

* One conservative **prefilter** per slot: a single (T, 3) x (3, N)
  matmul of unit vectors bounds the central angle between every
  satellite and every terminal. Satellites that cannot possibly clear
  ``min_elevation_deg - prefilter_margin_deg`` are dropped *before*
  any exact math runs. The bound is analytic (spherical geometry,
  widest shell) with a 10-degree elevation margin and an epsilon of
  cosine slack, so the surviving set is a strict superset of the
  visible set.
* Exact per-terminal geometry on the surviving subset with the *same*
  vectorised kernels the scalar path uses: numpy row-subset
  elementwise ops, ``@`` with a fixed unit vector and
  ``norm(axis=1)`` produce bit-identical floats on a subset of rows,
  so elevations/ranges match the scalar scheduler byte for byte.
  (A broadcast (T, N) formulation would *not*: scalar BLAS dot/norm
  round through FMA contractions that numpy's broadcast kernels
  don't reproduce.)
* Per-satellite **gateway geometry memoised once per slot** and
  shared by every terminal. The scalar scheduler recomputes it per
  candidate per terminal even though two terminals considering the
  same satellite get the same answer; the fleet pays the scalar-op
  cost once per distinct satellite actually considered.

Selection itself stays per terminal: the same descending-elevation
candidate walk, the same ``candidate_pool`` cutoff, and the same
``make_rng((seed, slot)).choice(...)`` draw, so snapshots — and every
digest derived from them — are unchanged.

Fleet placement (:class:`FleetSpec`) assigns terminals to latitude
bands round-robin with per-terminal seeded jitter, which is how the
multi-vantage campaign mode spreads its dishes.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.leo.constellation import Constellation
from repro.leo.geometry import GeoPoint, elevation_and_range, unit_up
from repro.leo.ground import GroundStation, UserTerminal
from repro.leo.scheduling import (
    SLOT_DURATION,
    PathSnapshot,
    _NO_OUTAGES,
    build_outage_index,
    gateway_geometry,
    scan_handover_events,
    select_gateway,
)
from repro.rng import make_rng, stable_seed

__all__ = [
    "FleetScheduler",
    "FleetSpec",
    "FleetTerminalView",
    "build_fleet_terminals",
    "fleet_seeds",
]


@dataclass(frozen=True)
class FleetSpec:
    """Seeded placement of a terminal fleet across latitude bands."""

    terminals: int
    #: (low, high) latitude bands, degrees; terminals are assigned
    #: round-robin so every band gets an even share.
    lat_bands: tuple[tuple[float, float], ...] = ((48.5, 52.5),)
    #: (low, high) longitude range shared by all bands, degrees.
    lon_range: tuple[float, float] = (2.0, 7.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.terminals < 1:
            raise ConfigurationError(
                f"FleetSpec.terminals must be >= 1, got {self.terminals}")
        if not self.lat_bands:
            raise ConfigurationError("FleetSpec.lat_bands is empty")
        for lo, hi in self.lat_bands:
            if not lo <= hi:
                raise ConfigurationError(
                    f"inverted latitude band ({lo}, {hi})")
        lo, hi = self.lon_range
        if not lo <= hi:
            raise ConfigurationError(
                f"inverted longitude range ({lo}, {hi})")


def build_fleet_terminals(spec: FleetSpec) -> list[UserTerminal]:
    """The spec's terminals, deterministically placed.

    Terminal ``i`` draws its site from the stream seeded
    ``(spec.seed, "fleet-site", i)``, so growing the fleet never
    moves an existing terminal.
    """
    terminals = []
    for i in range(spec.terminals):
        lo_lat, hi_lat = spec.lat_bands[i % len(spec.lat_bands)]
        lo_lon, hi_lon = spec.lon_range
        rng = make_rng((spec.seed, "fleet-site", i))
        lat = lo_lat + rng.random() * (hi_lat - lo_lat)
        lon = lo_lon + rng.random() * (hi_lon - lo_lon)
        terminals.append(
            UserTerminal(f"ut-fleet-{i:04d}", GeoPoint(lat, lon)))
    return terminals


def fleet_seeds(seed: int, n: int) -> list[int]:
    """Per-terminal scheduler seeds derived from a fleet seed."""
    return [stable_seed(seed, "fleet-terminal", i) for i in range(n)]


def _max_central_angle_deg(rg_m: float, rs_m: float,
                           elevation_deg: float) -> float:
    """Largest Earth-central angle at which a satellite on a circular
    orbit of radius ``rs_m`` can appear at or above ``elevation_deg``
    from a ground site at radius ``rg_m`` (spherical geometry)."""
    e = math.radians(elevation_deg)
    x = (rg_m / rs_m) * math.cos(e)
    if x >= 1.0:
        return 0.0
    psi = math.acos(x) - e
    return math.degrees(psi)


class FleetScheduler:
    """Per-slot scheduling for T terminals sharing one constellation.

    Terminal ``i`` is bit-identical to
    ``SatelliteScheduler(constellation, terminals[i], gateways,
    seed=seeds[i], candidate_pool=candidate_pool)`` — snapshots,
    outage behaviour and error messages included. Satellite and
    gateway outages injected here are fleet-wide, exactly as a failed
    bird or a gateway in maintenance affects every dish at once.
    """

    #: Whole slots (all T snapshots) the LRU retains.
    slot_cache_slots = 4096
    #: Elevation safety margin of the visibility prefilter, degrees.
    #: The analytic bound is exact on a sphere; the margin absorbs
    #: every rounding concern by many orders of magnitude. Shrinking
    #: it below ~1 degree is the only way to make the prefilter
    #: unsound; the differential suite pins the superset property.
    prefilter_margin_deg = 10.0

    def __init__(self, constellation: Constellation,
                 terminals: list[UserTerminal],
                 gateways: list[GroundStation],
                 seeds: list[int] | None = None,
                 seed: int = 0,
                 candidate_pool: int = 4,
                 prefilter: bool = True):
        if not terminals:
            raise ConfigurationError(
                "a fleet needs at least one terminal")
        if not gateways:
            raise ConfigurationError("at least one gateway is required")
        if seeds is not None and len(seeds) != len(terminals):
            raise ConfigurationError(
                f"got {len(seeds)} seeds for {len(terminals)} terminals")
        self.constellation = constellation
        self.terminals = list(terminals)
        self.gateways = list(gateways)
        self.seeds = (list(seeds) if seeds is not None
                      else fleet_seeds(seed, len(terminals)))
        self.candidate_pool = candidate_pool
        self.prefilter = prefilter
        # Exact per-terminal ground state, byte-for-byte what a scalar
        # scheduler would hold: 1-D ecef vectors and their unit ups.
        self._ut_ecef = [t.ecef() for t in self.terminals]
        self._ut_ups = [unit_up(g) for g in self._ut_ecef]
        self._gw_ecef = np.array([gw.ecef() for gw in self.gateways])
        self._gw_ups = [unit_up(gw) for gw in self._gw_ecef]
        # Prefilter state: unit directions as a (T, 3) matrix and the
        # per-terminal cosine thresholds (approximate math is fine
        # here; the threshold only has to be conservative). Row-major
        # so each terminal's keep row comes out contiguous.
        self._ut_units = np.ascontiguousarray(np.stack(self._ut_ups))
        self._inv_radii = 1.0 / self.constellation.orbit_radii()
        self._max_radius = float(self.constellation.orbit_radii().max())
        self._cos_thresh: np.ndarray | None = None
        self._thresh_min_el: float | None = None
        #: slot -> per-terminal entries (PathSnapshot, or the
        #: ConfigurationError that terminal's scalar twin would raise).
        self._slot_cache: OrderedDict[
            int, list[PathSnapshot | ConfigurationError]] = OrderedDict()
        self._outages: list[tuple[int, int, int]] = []
        self._gateway_outages: list[tuple[int, int, int]] = []
        self._out_index: dict[int, frozenset[int]] | None = {}
        self._gw_out_index: dict[int, frozenset[int]] | None = {}
        self._index_version = 0
        #: Bumped on outage injection; downstream per-slot caches
        #: (e.g. the path model's base-delay memo) key on it.
        self.version = 0
        #: Prefilter effectiveness counters (candidates kept / total
        #: satellite-terminal pairs examined); observability only.
        self.prefilter_kept = 0
        self.prefilter_total = 0

    # -- fleet shape --------------------------------------------------

    @property
    def size(self) -> int:
        """Number of terminals in the fleet."""
        return len(self.terminals)

    def slot_of(self, t: float) -> int:
        """Scheduler slot index containing time ``t``."""
        return int(t // SLOT_DURATION)

    # -- outage injection (fleet-wide) --------------------------------

    def add_outage(self, sat_index: int, start_slot: int,
                   end_slot: int) -> None:
        """Take a satellite out of service for every terminal."""
        if end_slot <= start_slot:
            raise ConfigurationError(
                f"outage window is empty: [{start_slot}, {end_slot})")
        self._outages.append((sat_index, start_slot, end_slot))
        self._bump(start_slot, end_slot)

    def add_gateway_outage(self, gateway_name: str, start_slot: int,
                           end_slot: int) -> None:
        """Take a gateway out of service for every terminal."""
        names = [gw.name for gw in self.gateways]
        if gateway_name not in names:
            raise ConfigurationError(
                f"unknown gateway {gateway_name!r}; have {names}")
        if end_slot <= start_slot:
            raise ConfigurationError(
                f"gateway outage window is empty: "
                f"[{start_slot}, {end_slot})")
        self._gateway_outages.append(
            (names.index(gateway_name), start_slot, end_slot))
        self._bump(start_slot, end_slot)

    def _bump(self, start_slot: int, end_slot: int) -> None:
        self.version += 1
        for slot in range(start_slot, end_slot):
            self._slot_cache.pop(slot, None)

    def _refresh_outage_index(self) -> None:
        if self._index_version == self.version:
            return
        self._out_index = build_outage_index(self._outages)
        self._gw_out_index = build_outage_index(self._gateway_outages)
        self._index_version = self.version

    def out_sats_at(self, slot: int) -> frozenset[int]:
        """Satellite indices out of service during ``slot``."""
        self._refresh_outage_index()
        if self._out_index is None:
            return frozenset(
                sat for sat, start, end in self._outages
                if start <= slot < end)
        return self._out_index.get(slot, _NO_OUTAGES)

    def out_gateways_at(self, slot: int) -> frozenset[int]:
        """Gateway indices out of service during ``slot``."""
        self._refresh_outage_index()
        if self._gw_out_index is None:
            return frozenset(
                gw for gw, start, end in self._gateway_outages
                if start <= slot < end)
        return self._gw_out_index.get(slot, _NO_OUTAGES)

    # -- queries ------------------------------------------------------

    def snapshot_at(self, index: int, t: float) -> PathSnapshot:
        """Terminal ``index``'s path in force at time ``t``.

        Raises exactly the :class:`ConfigurationError` the terminal's
        scalar scheduler would raise when nothing is visible or no
        visible satellite sees a gateway.
        """
        entry = self._slot_entries(self.slot_of(t))[index]
        if isinstance(entry, ConfigurationError):
            raise entry
        return entry

    def snapshots(self, t: float) -> list[PathSnapshot | None]:
        """All terminals' paths at ``t``; ``None`` where unservable."""
        return [entry if isinstance(entry, PathSnapshot) else None
                for entry in self._slot_entries(self.slot_of(t))]

    def user_counts(self, t: float) -> dict[int, int]:
        """Served terminals per satellite index during ``t``'s slot."""
        counts: dict[int, int] = {}
        for entry in self._slot_entries(self.slot_of(t)):
            if isinstance(entry, PathSnapshot):
                counts[entry.sat_index] = \
                    counts.get(entry.sat_index, 0) + 1
        return counts

    def capacity_share(self, index: int, t: float) -> float:
        """Terminal ``index``'s fair share of its serving satellite.

        ``1 / (terminals served by the same satellite this slot)`` —
        the oversubscription knob the campaign's fleet mode feeds into
        :class:`repro.leo.access.StarlinkAccess`'s ``capacity_share``.
        """
        snap = self.snapshot_at(index, t)
        return 1.0 / self.user_counts(t)[snap.sat_index]

    # -- the batched slot computation ---------------------------------

    def _slot_entries(self, slot: int
                      ) -> list[PathSnapshot | ConfigurationError]:
        entries = self._slot_cache.get(slot)
        if entries is None:
            entries = self._compute_slot(slot)
            self._slot_cache[slot] = entries
            while len(self._slot_cache) > self.slot_cache_slots:
                self._slot_cache.popitem(last=False)
        else:
            self._slot_cache.move_to_end(slot)
        return entries

    def _thresholds(self, min_el: float) -> np.ndarray:
        """Per-terminal prefilter cosine thresholds, recomputed only
        when the constellation's minimum elevation changes."""
        if self._cos_thresh is None or self._thresh_min_el != min_el:
            margin_el = min_el - self.prefilter_margin_deg
            thresh = np.empty(len(self.terminals))
            for i, ground in enumerate(self._ut_ecef):
                psi = _max_central_angle_deg(
                    float(np.linalg.norm(ground)), self._max_radius,
                    margin_el)
                # A hair of cosine slack on top of the 10-degree
                # elevation margin; cos is decreasing, so lower
                # threshold == more satellites kept.
                thresh[i] = math.cos(math.radians(min(psi, 180.0))) \
                    - 1e-9
            self._cos_thresh = thresh
            self._thresh_min_el = min_el
        return self._cos_thresh

    def _compute_slot(self, slot: int
                      ) -> list[PathSnapshot | ConfigurationError]:
        t = slot * SLOT_DURATION
        positions = self.constellation.positions(t)
        min_el = self.constellation.min_elevation_deg
        if self.prefilter:
            # One (T, 3) x (3, N) pass bounds every satellite-terminal
            # central angle; exact math below runs on survivors only.
            sat_units = positions * self._inv_radii[:, None]
            cos_angles = self._ut_units @ sat_units.T
            keep = cos_angles >= self._thresholds(min_el)[:, None]
            self.prefilter_kept += int(np.count_nonzero(keep))
            self.prefilter_total += keep.size
        out_sats = (self.out_sats_at(slot) if self._outages
                    else _NO_OUTAGES)
        out_gws = (self.out_gateways_at(slot)
                   if self._gateway_outages else _NO_OUTAGES)
        # Best-gateway choice per satellite, shared across terminals:
        # the scalar scheduler's dominant cost, paid here once per
        # distinct satellite actually walked. The memoised value is
        # the full selection, valid slot-wide because the gateway
        # outage set is fixed within a slot.
        gw_memo: dict[int, tuple[int, float] | None] = {}
        entries: list[PathSnapshot | ConfigurationError] = []
        for i, ground in enumerate(self._ut_ecef):
            entries.append(self._terminal_slot(
                i, slot, t, positions, min_el, ground,
                keep[i] if self.prefilter else None,
                out_sats, out_gws, gw_memo))
        return entries

    def _terminal_slot(self, i, slot, t, positions, min_el, ground,
                       keep_mask, out_sats, out_gws, gw_memo
                       ) -> PathSnapshot | ConfigurationError:
        if keep_mask is None:
            indices, elevations, ranges = \
                self.constellation.visible_from(
                    ground, t, up=self._ut_ups[i])
        else:
            cand = np.nonzero(keep_mask)[0]
            # Row-subset computation with the exact kernels the full
            # visible_from pass uses: bit-identical on the subset.
            elev, rng_m = elevation_and_range(ground, positions[cand],
                                              self._ut_ups[i])
            mask = elev >= min_el
            indices = cand[mask]
            if indices.size:
                elevations = elev[mask]
                ranges = rng_m[mask]
                order = np.argsort(-elevations)
                indices = indices[order]
                elevations = elevations[order]
                ranges = ranges[order]
            else:
                elevations = ranges = np.array([])
        if indices.size == 0:
            return ConfigurationError(
                f"no satellite visible from {self.terminals[i].name} "
                f"at t={t}; constellation too sparse for this latitude")
        candidates = []
        for sat, elev_deg, rng_m in zip(indices.tolist(),
                                        elevations.tolist(),
                                        ranges.tolist()):
            if sat in out_sats:
                continue
            if sat in gw_memo:
                gw_choice = gw_memo[sat]
            else:
                gw_choice = select_gateway(
                    *gateway_geometry(self._gw_ecef, self._gw_ups,
                                      positions[sat]),
                    out_gws)
                gw_memo[sat] = gw_choice
            if gw_choice is None:
                continue
            gw_pos_idx, gw_range = gw_choice
            candidates.append((sat, float(elev_deg), float(rng_m),
                               gw_pos_idx, gw_range))
            if len(candidates) >= self.candidate_pool:
                break
        if not candidates:
            return ConfigurationError(
                f"no visible satellite sees a gateway at t={t}")
        rng = make_rng((self.seeds[i], slot))
        sat_idx, elev_deg, ut_range, gw_idx, gw_range = \
            rng.choice(candidates)
        return PathSnapshot(
            slot=slot, sat_index=sat_idx, gateway=self.gateways[gw_idx],
            ut_range_m=ut_range, gw_range_m=gw_range,
            elevation_deg=elev_deg)


class FleetTerminalView:
    """One terminal's scheduler-shaped window onto a fleet.

    Duck-compatible with :class:`SatelliteScheduler` where
    :class:`repro.leo.access.StarlinkPathModel` (and the disruption
    installers) touch it: ``slot_of`` / ``snapshot`` / ``version`` /
    outage injection. Outages injected through a view are fleet-wide
    by design — a failed satellite fails for every dish.
    """

    def __init__(self, fleet: FleetScheduler, index: int):
        if not 0 <= index < fleet.size:
            raise ConfigurationError(
                f"terminal index {index} outside fleet of {fleet.size}")
        self.fleet = fleet
        self.index = index

    @property
    def terminal(self) -> UserTerminal:
        """The viewed terminal."""
        return self.fleet.terminals[self.index]

    @property
    def constellation(self) -> Constellation:
        """The shared constellation."""
        return self.fleet.constellation

    @property
    def gateways(self) -> list[GroundStation]:
        """The shared gateways."""
        return self.fleet.gateways

    @property
    def seed(self) -> int:
        """The terminal's selection seed."""
        return self.fleet.seeds[self.index]

    @property
    def version(self) -> int:
        """The fleet's invalidation counter."""
        return self.fleet.version

    def slot_of(self, t: float) -> int:
        """Scheduler slot index containing time ``t``."""
        return self.fleet.slot_of(t)

    def snapshot(self, t: float) -> PathSnapshot:
        """The terminal's path in force at time ``t``."""
        return self.fleet.snapshot_at(self.index, t)

    def add_outage(self, sat_index: int, start_slot: int,
                   end_slot: int) -> None:
        """Fleet-wide satellite outage (see class docstring)."""
        self.fleet.add_outage(sat_index, start_slot, end_slot)

    def add_gateway_outage(self, gateway_name: str, start_slot: int,
                           end_slot: int) -> None:
        """Fleet-wide gateway outage (see class docstring)."""
        self.fleet.add_gateway_outage(gateway_name, start_slot,
                                      end_slot)

    def handover_events(self, start: float, end: float):
        """Every path-change boundary with kinds (shared scan)."""
        return scan_handover_events(self.snapshot, self.slot_of,
                                    start, end)

    def handover_times(self, start: float, end: float) -> list[float]:
        """Slot boundaries where the serving path changes.

        Same all-kinds semantics (satellite, gateway, PoP, service)
        as :meth:`SatelliteScheduler.handover_times` — both delegate
        to the shared :func:`scan_handover_events`.
        """
        return [event.t
                for event in self.handover_events(start, end)]
