"""Mobile terminals: seeded trajectories and obstruction shadowing.

The paper measures a fixed dish; "Starlink on the Road" (PAPERS.md)
mounts one on a vehicle and finds that the dominant outage causes
become *handover churn* (the geometry under the dish changes faster
than the 15 s reallocation can follow) and *roadside obstruction*
(trees, buildings, overpasses shadowing sectors of the sky). This
module makes both emerge from geometry instead of being scripted:

* :class:`Trajectory` — where the terminal is at campaign time ``t``.
  :class:`StationaryTrajectory` is provably equivalent to today's
  fixed :class:`~repro.leo.ground.UserTerminal` (it evaluates the
  exact same ECEF floats, pinned by ``tests/leo/test_mobility.py``),
  and :class:`WaypointTrajectory` moves along seeded waypoints at a
  ground speed. :func:`drive_trajectory` draws a seeded random-heading
  road trip.
* :class:`ObstructionTrace` — a seeded two-state Markov chain over
  scheduler slots. While obstructed, a :class:`SkyMask` blocks one or
  more azimuth sectors up to a sector elevation (with a small
  probability the whole sky: an overpass or tunnel). Satellites whose
  (azimuth, elevation) falls inside a blocked sector are invisible to
  candidate selection for that slot.

Both are *pure functions of (seed, slot)* once constructed: any query
order, any process, any resume replays the same positions and masks,
which is what lets the campaign digests stay deterministic while the
dish drives through outages.

Determinism contract: a trajectory with zero net movement (stationary,
or a drive at ``speed_kmh=0``) combined with no obstruction must leave
every scheduler byte untouched — ``scripts/mobility_smoke.py`` and the
``mobility-smoke`` CI job pin that a speed-0 run is digest-identical
to the classic fixed-terminal pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.leo.geometry import GeoPoint, great_circle_distance
from repro.leo.ground import LOUVAIN_LA_NEUVE
from repro.rng import make_rng

__all__ = [
    "ObstructionTrace",
    "SkyMask",
    "SkySector",
    "StationaryTrajectory",
    "Trajectory",
    "WaypointTrajectory",
    "build_mobility",
    "build_obstruction",
    "build_trajectory",
    "drive_trajectory",
    "OBSTRUCTION_KINDS",
    "TRAJECTORY_KINDS",
]

#: Obstruction profiles the campaign config can name.
OBSTRUCTION_KINDS = ("none", "roadside", "urban_canyon")

#: Trajectory kinds the campaign config can name.
TRAJECTORY_KINDS = ("stationary", "drive")

#: Ground speed a ``drive`` trajectory uses when the config leaves
#: ``speed_kmh`` at 0 would make it stationary — callers pass the
#: knob explicitly; this is only the CLI example default.
DEFAULT_DRIVE_SPEED_KMH = 60.0

#: How long a built ``drive`` trajectory keeps moving before parking
#: (seconds). Bounded so month-scale campaigns do not drive across
#: the planet: the interesting churn happens inside the drive window
#: and the analysis scans exactly that window.
DEFAULT_DRIVE_DURATION_S = 3600.0


class Trajectory:
    """Where the terminal is at campaign time ``t``.

    Subclasses are frozen dataclasses: a trajectory can never mutate
    under a scheduler's feet — replacing one requires
    :meth:`~repro.leo.scheduling.SatelliteScheduler.set_trajectory`,
    which invalidates every position-dependent cache.
    """

    def position_at(self, t: float) -> GeoPoint:  # pragma: no cover
        raise NotImplementedError

    @property
    def is_stationary(self) -> bool:
        """Whether the position is the same for every ``t``."""
        return False


@dataclass(frozen=True)
class StationaryTrajectory(Trajectory):
    """The degenerate trajectory: the classic fixed dish.

    ``position_at`` returns the same :class:`GeoPoint` for every
    ``t``, so a scheduler driving it computes byte-for-byte the same
    ECEF vector and unit-up as one built from a fixed
    :class:`~repro.leo.ground.UserTerminal` at the same location.
    """

    location: GeoPoint = LOUVAIN_LA_NEUVE

    def position_at(self, t: float) -> GeoPoint:
        return self.location

    @property
    def is_stationary(self) -> bool:
        return True


@dataclass(frozen=True)
class WaypointTrajectory(Trajectory):
    """Piecewise path through waypoints at a constant ground speed.

    The terminal starts at ``waypoints[0]`` at ``start_t``, moves
    leg by leg at ``speed_kmh`` (positions interpolated linearly in
    latitude/longitude, which is accurate to well under the slot
    geometry noise at road-trip scales) and parks at the final
    waypoint once the path is exhausted. ``speed_kmh=0`` never leaves
    the first waypoint — the provably-stationary digest gate.
    """

    waypoints: tuple[GeoPoint, ...]
    speed_kmh: float
    start_t: float = 0.0

    def __post_init__(self) -> None:
        if not self.waypoints:
            raise ConfigurationError(
                "WaypointTrajectory needs at least one waypoint")
        if not self.speed_kmh >= 0.0:   # also rejects NaN
            raise ConfigurationError(
                f"speed_kmh must be >= 0, got {self.speed_kmh!r}")

    def _leg_lengths_m(self) -> list[float]:
        return [great_circle_distance(a, b)
                for a, b in zip(self.waypoints, self.waypoints[1:])]

    def position_at(self, t: float) -> GeoPoint:
        if (self.speed_kmh == 0.0 or len(self.waypoints) == 1
                or t <= self.start_t):
            return self.waypoints[0]
        travelled = (t - self.start_t) * self.speed_kmh / 3.6
        for (a, b), leg in zip(zip(self.waypoints, self.waypoints[1:]),
                               self._leg_lengths_m()):
            if travelled <= leg or leg == 0.0:
                frac = 0.0 if leg == 0.0 else travelled / leg
                return GeoPoint(
                    a.lat_deg + frac * (b.lat_deg - a.lat_deg),
                    a.lon_deg + frac * (b.lon_deg - a.lon_deg),
                    a.alt_m + frac * (b.alt_m - a.alt_m))
            travelled -= leg
        return self.waypoints[-1]

    @property
    def is_stationary(self) -> bool:
        return self.speed_kmh == 0.0 or len(self.waypoints) == 1

    @property
    def parked_after_s(self) -> float:
        """Seconds after ``start_t`` at which the path is exhausted."""
        if self.is_stationary:
            return 0.0
        return sum(self._leg_lengths_m()) / (self.speed_kmh / 3.6)


def drive_trajectory(seed: int,
                     origin: GeoPoint = LOUVAIN_LA_NEUVE,
                     speed_kmh: float = DEFAULT_DRIVE_SPEED_KMH,
                     duration_s: float = DEFAULT_DRIVE_DURATION_S,
                     n_legs: int = 12) -> WaypointTrajectory:
    """A seeded random road trip from ``origin``.

    Heading starts uniform and random-walks ±45 degrees per leg, the
    way a road network meanders without doubling back every turn.
    Deterministic in ``seed`` — identical waypoints in every process.
    A ``speed_kmh`` of 0 yields a trajectory that provably never
    leaves ``origin`` (the digest gate for mobility plumbing).
    """
    if not duration_s > 0:
        raise ConfigurationError(
            f"drive duration_s must be positive, got {duration_s!r}")
    if n_legs < 1:
        raise ConfigurationError(
            f"drive n_legs must be >= 1, got {n_legs}")
    rng = make_rng((seed, "mobility-drive"))
    heading = rng.random() * 360.0
    leg_s = duration_s / n_legs
    points = [origin]
    lat, lon = origin.lat_deg, origin.lon_deg
    for _ in range(n_legs):
        heading += rng.uniform(-45.0, 45.0)
        step_m = max(speed_kmh, 1.0) / 3.6 * leg_s
        dlat = step_m * math.cos(math.radians(heading)) / 111_320.0
        dlon = (step_m * math.sin(math.radians(heading))
                / (111_320.0 * max(0.1,
                                   math.cos(math.radians(lat)))))
        lat += dlat
        lon += dlon
        points.append(GeoPoint(lat, lon, origin.alt_m))
    return WaypointTrajectory(waypoints=tuple(points),
                              speed_kmh=speed_kmh)


# -- obstruction shadowing ----------------------------------------------


@dataclass(frozen=True)
class SkySector:
    """One blocked azimuth arc, opaque below ``max_elevation_deg``.

    The arc runs clockwise from ``az_start_deg`` for ``width_deg``
    degrees (wrapping through north), the way a tree line or building
    front shadows one side of the road.
    """

    az_start_deg: float
    width_deg: float
    max_elevation_deg: float

    def blocks(self, az_deg: float, elevation_deg: float) -> bool:
        """Whether a satellite at (az, el) is shadowed by this arc."""
        if elevation_deg > self.max_elevation_deg:
            return False
        span = (az_deg - self.az_start_deg) % 360.0
        return span < self.width_deg


@dataclass(frozen=True)
class SkyMask:
    """The blocked portion of the sky during one scheduler slot."""

    sectors: tuple[SkySector, ...]

    def blocks(self, az_deg: float, elevation_deg: float) -> bool:
        """Whether any sector shadows a satellite at (az, el)."""
        return any(s.blocks(az_deg, elevation_deg)
                   for s in self.sectors)

    @property
    def full_sky(self) -> bool:
        """Whether the mask blocks everything (overpass / tunnel)."""
        covered = sum(min(s.width_deg, 360.0) for s in self.sectors
                      if s.max_elevation_deg >= 90.0)
        return covered >= 360.0


#: The mask an overpass/tunnel slot applies: everything blocked.
FULL_SKY_MASK = SkyMask(sectors=(
    SkySector(az_start_deg=0.0, width_deg=360.0,
              max_elevation_deg=90.0),))


@dataclass(frozen=True)
class ObstructionProfile:
    """Transition and severity parameters of one obstruction regime."""

    #: Per-slot probability of entering the obstructed state.
    p_enter: float
    #: Per-slot probability of leaving it again.
    p_exit: float
    #: Probability an obstructed slot is a full-sky blackout.
    p_full_sky: float
    #: (low, high) blocked-arc width draw, degrees.
    width_deg: tuple[float, float]
    #: (low, high) blocked-arc top elevation draw, degrees.
    max_el_deg: tuple[float, float]
    #: (min, max) distinct blocked arcs per obstructed slot.
    sectors: tuple[int, int]


#: Named profiles: roadside trees/buildings vs a dense city canyon.
OBSTRUCTION_PROFILES: dict[str, ObstructionProfile] = {
    "roadside": ObstructionProfile(
        p_enter=0.18, p_exit=0.45, p_full_sky=0.12,
        width_deg=(60.0, 160.0), max_el_deg=(35.0, 70.0),
        sectors=(1, 2)),
    "urban_canyon": ObstructionProfile(
        p_enter=0.35, p_exit=0.30, p_full_sky=0.20,
        width_deg=(100.0, 220.0), max_el_deg=(50.0, 85.0),
        sectors=(2, 3)),
}


class ObstructionTrace:
    """Seeded Markov roadside/overpass shadowing, one state per slot.

    The chain starts clear at ``start_slot`` (unless
    ``obstructed_at_start``) and flips between *clear* and
    *obstructed* with the profile's per-slot transition coins; each
    obstructed slot draws its own :class:`SkyMask` from a slot-keyed
    stream, so the mask of slot ``k`` is identical no matter the
    query order or process. Outside ``[start_slot, end_slot)`` the
    sky is clear.

    The state walk is memoised as a growing prefix (one bool per
    slot), so querying slot ``k`` costs O(k) once and O(1) after —
    and a bounded window keeps month-scale campaigns cheap.
    """

    #: Refuse traces that would materialise more per-slot states than
    #: this (a year of 15 s slots is ~2.1 M; the prefix list is one
    #: bool each, but an unbounded trace is almost always a config
    #: error).
    MAX_TRACE_SLOTS = 2_000_000

    def __init__(self, seed: int, profile: str = "roadside",
                 start_slot: int = 0, end_slot: int | None = None,
                 obstructed_at_start: bool = False):
        if profile not in OBSTRUCTION_PROFILES:
            raise ConfigurationError(
                f"unknown obstruction profile {profile!r}; expected "
                f"one of {sorted(OBSTRUCTION_PROFILES)}")
        if end_slot is not None and end_slot <= start_slot:
            raise ConfigurationError(
                f"obstruction window is empty: "
                f"[{start_slot}, {end_slot})")
        if end_slot is not None \
                and end_slot - start_slot > self.MAX_TRACE_SLOTS:
            raise ConfigurationError(
                f"obstruction trace spans {end_slot - start_slot} "
                f"slots, more than MAX_TRACE_SLOTS="
                f"{self.MAX_TRACE_SLOTS}")
        self.seed = seed
        self.profile_name = profile
        self.profile = OBSTRUCTION_PROFILES[profile]
        self.start_slot = start_slot
        self.end_slot = end_slot
        self.obstructed_at_start = obstructed_at_start
        #: Memoised chain states from ``start_slot`` on.
        self._states: list[bool] = [obstructed_at_start]
        #: Memoised per-slot masks (only obstructed slots appear).
        self._masks: dict[int, SkyMask] = {}

    def _state_at(self, slot: int) -> bool:
        """Chain state (obstructed?) for an in-window ``slot``."""
        index = slot - self.start_slot
        if index - len(self._states) + 1 > self.MAX_TRACE_SLOTS:
            raise ConfigurationError(
                f"obstruction query at slot {slot} would walk more "
                f"than MAX_TRACE_SLOTS={self.MAX_TRACE_SLOTS} states; "
                "bound the trace with end_slot")
        while len(self._states) <= index:
            k = self.start_slot + len(self._states)
            prev = self._states[-1]
            coin = make_rng((self.seed, "obst-chain", k)).random()
            if prev:
                self._states.append(coin >= self.profile.p_exit)
            else:
                self._states.append(coin < self.profile.p_enter)
        return self._states[index]

    def mask_at(self, slot: int) -> SkyMask | None:
        """The sky mask in force during ``slot`` (None: clear)."""
        if slot < self.start_slot:
            return None
        if self.end_slot is not None and slot >= self.end_slot:
            return None
        if not self._state_at(slot):
            return None
        mask = self._masks.get(slot)
        if mask is None:
            mask = self._draw_mask(slot)
            self._masks[slot] = mask
        return mask

    def _draw_mask(self, slot: int) -> SkyMask:
        p = self.profile
        rng = make_rng((self.seed, "obst-mask", slot))
        if rng.random() < p.p_full_sky:
            return FULL_SKY_MASK
        n = rng.randint(*p.sectors)
        sectors = tuple(
            SkySector(az_start_deg=rng.random() * 360.0,
                      width_deg=rng.uniform(*p.width_deg),
                      max_elevation_deg=rng.uniform(*p.max_el_deg))
            for _ in range(n))
        return SkyMask(sectors=sectors)

    def obstructed_windows(self, start_t: float, end_t: float,
                           slot_duration_s: float = 15.0
                           ) -> list[tuple[float, float]]:
        """Contiguous obstructed intervals inside ``[start_t, end_t)``.

        Campaign-clock ``(start, end)`` pairs, one per run of
        obstructed slots — what outage attribution overlaps episodes
        against.
        """
        first = int(start_t // slot_duration_s)
        last = int(math.ceil(end_t / slot_duration_s))
        windows: list[tuple[float, float]] = []
        run_start: int | None = None
        for slot in range(first, last):
            if self.mask_at(slot) is not None:
                if run_start is None:
                    run_start = slot
            elif run_start is not None:
                windows.append((run_start * slot_duration_s,
                                slot * slot_duration_s))
                run_start = None
        if run_start is not None:
            windows.append((run_start * slot_duration_s,
                            last * slot_duration_s))
        return windows


# -- campaign-config builders -------------------------------------------


def build_trajectory(kind: str, seed: int,
                     speed_kmh: float,
                     origin: GeoPoint = LOUVAIN_LA_NEUVE,
                     duration_s: float = DEFAULT_DRIVE_DURATION_S
                     ) -> Trajectory | None:
    """The trajectory a campaign config describes, or None.

    ``None`` (for ``"stationary"``) keeps the scheduler on its classic
    fixed-terminal fast path — the digest-neutral default. A ``drive``
    at any speed (including 0, which provably never moves) returns a
    seeded :class:`WaypointTrajectory`.
    """
    if kind not in TRAJECTORY_KINDS:
        raise ConfigurationError(
            f"unknown trajectory kind {kind!r}; expected one of "
            f"{TRAJECTORY_KINDS}")
    if kind == "stationary":
        return None
    return drive_trajectory(seed, origin=origin, speed_kmh=speed_kmh,
                            duration_s=duration_s)


def build_obstruction(kind: str, seed: int,
                      end_slot: int | None = None
                      ) -> ObstructionTrace | None:
    """The obstruction trace a campaign config describes, or None."""
    if kind not in OBSTRUCTION_KINDS:
        raise ConfigurationError(
            f"unknown obstruction kind {kind!r}; expected one of "
            f"{OBSTRUCTION_KINDS}")
    if kind == "none":
        return None
    return ObstructionTrace(seed, profile=kind, end_slot=end_slot)


def build_mobility(config):
    """``(trajectory, obstruction)`` a campaign config describes.

    ``config`` is any object with ``trajectory`` / ``speed_kmh`` /
    ``drive_duration_s`` / ``obstruction`` / ``seed`` attributes
    (duck-typed to avoid the campaign import cycle). The default
    config maps to ``(None, None)`` — the digest-neutral classic
    pipeline. Both the trajectory and the obstruction trace are
    bounded by the drive window: the terminal parks and the sky
    clears after ``drive_duration_s``, which keeps month-scale
    campaigns cheap while all the churn happens inside the window.
    """
    trajectory = build_trajectory(
        config.trajectory, config.seed, config.speed_kmh,
        duration_s=config.drive_duration_s)
    end_slot = max(1, int(math.ceil(config.drive_duration_s / 15.0)))
    obstruction = build_obstruction(config.obstruction, config.seed,
                                    end_slot=end_slot)
    return trajectory, obstruction
