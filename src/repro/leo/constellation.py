"""Walker-delta constellations and visibility search.

Starlink shell 1 (the operational shell during the paper's campaign)
is a Walker-delta pattern: 72 planes at 53 degrees inclination and
~550 km altitude, 22 satellites per plane. The phasing factor spreads
satellites of adjacent planes so coverage gaps do not line up.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.leo.geometry import elevation_angle, slant_range
from repro.leo.orbits import propagate_ecef
from repro.units import EARTH_RADIUS, km


@dataclass(frozen=True)
class WalkerShell:
    """One Walker-delta shell: i:T/P/F in Walker notation."""

    altitude_m: float = km(550)
    inclination_deg: float = 53.0
    planes: int = 72
    sats_per_plane: int = 22
    phasing: int = 39          # F in Walker notation, [0, planes)

    def __post_init__(self) -> None:
        if self.planes <= 0 or self.sats_per_plane <= 0:
            raise ConfigurationError("planes and sats_per_plane must be > 0")
        if not 0 <= self.phasing < self.planes:
            raise ConfigurationError(
                f"phasing must be in [0, {self.planes}), got {self.phasing}")

    @property
    def total_satellites(self) -> int:
        """Number of satellites in the shell."""
        return self.planes * self.sats_per_plane

    def element_arrays(self) -> tuple[np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray]:
        """Vectorised element arrays (altitude, inclination, RAAN,
        argument of latitude), one entry per satellite, radians."""
        total = self.total_satellites
        plane_idx = np.repeat(np.arange(self.planes), self.sats_per_plane)
        slot_idx = np.tile(np.arange(self.sats_per_plane), self.planes)
        raan = 2.0 * np.pi * plane_idx / self.planes
        in_plane = 2.0 * np.pi * slot_idx / self.sats_per_plane
        phase_shift = (2.0 * np.pi * self.phasing
                       * plane_idx / (self.planes * self.sats_per_plane))
        arg_lat = in_plane + phase_shift
        altitudes = np.full(total, self.altitude_m)
        inclinations = np.full(total, np.radians(self.inclination_deg))
        return altitudes, inclinations, raan, arg_lat


@dataclass
class Constellation:
    """A set of shells with position and visibility queries.

    The default constellation is Starlink shell 1 as deployed during
    the measurement campaign. Positions are cached per query time, as
    scheduling evaluates several ground sites at the same instant.
    """

    shells: list[WalkerShell] = field(
        default_factory=lambda: [WalkerShell()])
    #: Minimum usable elevation for the user terminal, degrees.
    min_elevation_deg: float = 25.0
    #: Distinct query times the position cache holds. One entry
    #: suffices for a single scheduler, but a fleet interleaves
    #: queries at alternating times (slot sweeps, handover scans) and
    #: would thrash a single-entry cache.
    position_cache_size: int = 8

    def __post_init__(self) -> None:
        arrays = [shell.element_arrays() for shell in self.shells]
        self._altitudes = np.concatenate([a[0] for a in arrays])
        self._inclinations = np.concatenate([a[1] for a in arrays])
        self._raans = np.concatenate([a[2] for a in arrays])
        self._arg_lats = np.concatenate([a[3] for a in arrays])
        self._position_cache: OrderedDict[float, np.ndarray] = \
            OrderedDict()
        #: Position-cache effectiveness counters (observability for
        #: the fleet access pattern; not part of any digest).
        self.position_cache_hits = 0
        self.position_cache_misses = 0

    @property
    def size(self) -> int:
        """Total number of satellites across all shells."""
        return int(self._altitudes.shape[0])

    def orbit_radii(self) -> np.ndarray:
        """(N,) orbit radii (Earth centre to satellite), metres.

        Circular orbits: the radius is exactly altitude + Earth
        radius at every instant, which makes unit direction vectors
        cheap -- ``positions(t) / orbit_radii()[:, None]`` -- without
        any per-time norm.
        """
        return self._altitudes + EARTH_RADIUS

    def positions(self, t: float) -> np.ndarray:
        """(N, 3) ECEF positions at time ``t``, metres.

        Cached per query time in a small LRU
        (:attr:`position_cache_size` entries), so interleaved queries
        at a handful of alternating times -- the multi-terminal access
        pattern -- all hit.
        """
        cached = self._position_cache.get(t)
        if cached is not None:
            self._position_cache.move_to_end(t)
            self.position_cache_hits += 1
            return cached
        self.position_cache_misses += 1
        positions = propagate_ecef(
            self._altitudes, self._inclinations,
            self._raans, self._arg_lats, t)
        self._position_cache[t] = positions
        while len(self._position_cache) > self.position_cache_size:
            self._position_cache.popitem(last=False)
        return positions

    def visible_from(self, ground_ecef: np.ndarray, t: float,
                     min_elevation_deg: float | None = None,
                     up: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Satellites visible from a ground point at time ``t``.

        Returns ``(indices, elevations_deg, ranges_m)`` sorted by
        descending elevation. ``up`` optionally passes the
        precomputed :func:`repro.leo.geometry.unit_up` of the ground
        point through to :func:`elevation_angle` (bit-identical).
        """
        min_el = (self.min_elevation_deg if min_elevation_deg is None
                  else min_elevation_deg)
        positions = self.positions(t)
        elevations = elevation_angle(ground_ecef, positions, up=up)
        mask = elevations >= min_el
        indices = np.nonzero(mask)[0]
        if indices.size == 0:
            return indices, np.array([]), np.array([])
        elev = elevations[indices]
        ranges = slant_range(ground_ecef, positions[indices])
        order = np.argsort(-elev)
        return indices[order], elev[order], ranges[order]

    def range_to(self, ground_ecef: np.ndarray, sat_index: int,
                 t: float) -> float:
        """Slant range from a ground point to one satellite, metres."""
        return float(slant_range(ground_ecef,
                                 self.positions(t)[sat_index]))
