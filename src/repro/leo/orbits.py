"""Circular-orbit propagation.

Starlink shell-1 satellites fly near-circular orbits, so a circular
two-body propagator is sufficient: eccentricity effects move the
slant range by a few kilometres (tens of microseconds of delay),
negligible against the tens-of-milliseconds RTT the paper measures.

Positions are produced directly in the Earth-fixed frame (ECEF) by
rotating the inertial orbital position against Earth rotation, so they
are directly comparable with ground-site ECEF coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import EARTH_MU, EARTH_RADIUS, SIDEREAL_DAY

#: Earth rotation rate, rad/s.
EARTH_ROTATION_RATE = 2.0 * np.pi / SIDEREAL_DAY


@dataclass(frozen=True)
class OrbitalElements:
    """Minimal element set for one circular-orbit satellite."""

    altitude_m: float
    inclination_deg: float
    raan_deg: float            # right ascension of the ascending node
    arg_latitude_deg: float    # argument of latitude at epoch t=0

    @property
    def semi_major_axis(self) -> float:
        """Orbit radius, metres."""
        return EARTH_RADIUS + self.altitude_m

    @property
    def mean_motion(self) -> float:
        """Angular rate, rad/s."""
        return float(np.sqrt(EARTH_MU / self.semi_major_axis ** 3))

    @property
    def period(self) -> float:
        """Orbital period, seconds."""
        return 2.0 * np.pi / self.mean_motion


def propagate_ecef(altitudes: np.ndarray, inclinations: np.ndarray,
                   raans: np.ndarray, args_latitude: np.ndarray,
                   t: float) -> np.ndarray:
    """Vectorised ECEF positions of many satellites at time ``t``.

    All element arrays must have the same shape (N,); angles are in
    radians. Returns an (N, 3) array in metres.
    """
    a = EARTH_RADIUS + altitudes
    n = np.sqrt(EARTH_MU / a ** 3)
    u = args_latitude + n * t            # argument of latitude now
    # Inertial position of a circular orbit.
    cos_u, sin_u = np.cos(u), np.sin(u)
    cos_raan, sin_raan = np.cos(raans), np.sin(raans)
    cos_i, sin_i = np.cos(inclinations), np.sin(inclinations)
    x_eci = a * (cos_u * cos_raan - sin_u * sin_raan * cos_i)
    y_eci = a * (cos_u * sin_raan + sin_u * cos_raan * cos_i)
    z_eci = a * (sin_u * sin_i)
    # Rotate into the Earth-fixed frame.
    theta = EARTH_ROTATION_RATE * t
    cos_t, sin_t = np.cos(theta), np.sin(theta)
    x = cos_t * x_eci + sin_t * y_eci
    y = -sin_t * x_eci + cos_t * y_eci
    return np.column_stack([x, y, z_eci])


def single_position_ecef(elements: OrbitalElements, t: float) -> np.ndarray:
    """ECEF position of one satellite at time ``t``, metres."""
    return propagate_ecef(
        np.array([elements.altitude_m]),
        np.array([np.radians(elements.inclination_deg)]),
        np.array([np.radians(elements.raan_deg)]),
        np.array([np.radians(elements.arg_latitude_deg)]),
        t,
    )[0]
