"""Radio capacity and medium-loss model of the Starlink service link.

Two time scales drive the capacity a subscriber sees:

* per-slot allocation (every 15 s the scheduler re-plans the cell,
  so the granted rate is resampled per slot), and
* fast fading / PHY adaptation, modelled as an AR(1) multiplier with
  a sub-second coherence time.

Both are evaluated *by time bucket with per-bucket seeding*, so any
query order yields the same capacity trajectory -- experiments that
sample the channel at different instants remain reproducible.

Medium loss is a continuous-time Gilbert-Elliott channel plus a rare
outage schedule (see :mod:`repro.netsim.loss`); congestion loss is
NOT modelled here -- it emerges from queues in the simulator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.rng import make_rng
from repro.errors import ConfigurationError
from repro.netsim.loss import (
    CompositeLoss,
    OutageSchedule,
    TimedGilbertElliottLoss,
)
from repro.units import mbps

#: Capacity is re-granted on the scheduler slot cycle.
SLOT_DURATION = 15.0


class CapacityProcess:
    """Time-varying capacity of one link direction, bit/s.

    ``rate_at(t)`` = slot_grant(slot(t)) * fast_fading(bucket(t)),
    clamped to [min_rate, max_rate]. Slot grants are lognormal around
    ``mean_rate`` with coefficient of variation ``slot_cv``; fast
    fading is an AR(1) log-multiplier with standard deviation
    ``fast_sigma`` and bucket length ``fast_bucket_s``.
    """

    def __init__(self, mean_rate: float, slot_cv: float = 0.2,
                 fast_sigma: float = 0.08, fast_bucket_s: float = 0.1,
                 fast_rho: float = 0.7,
                 min_rate: float | None = None,
                 max_rate: float | None = None,
                 seed: int = 0):
        if mean_rate <= 0:
            raise ConfigurationError("mean_rate must be positive")
        if not 0.0 <= fast_rho < 1.0:
            raise ConfigurationError("fast_rho must be in [0,1)")
        self.mean_rate = mean_rate
        self.slot_cv = slot_cv
        self.fast_sigma = fast_sigma
        self.fast_bucket_s = fast_bucket_s
        self.fast_rho = fast_rho
        self.min_rate = min_rate if min_rate is not None else mean_rate * 0.2
        self.max_rate = max_rate if max_rate is not None else mean_rate * 2.2
        self.seed = seed
        # lognormal parameters so that E[grant] == mean_rate
        self._sigma_log = math.sqrt(math.log(1.0 + slot_cv ** 2))
        self._mu_log = math.log(mean_rate) - self._sigma_log ** 2 / 2.0
        #: Multiplier applied on top (campaign events adjust this).
        self.scale = 1.0
        #: Optional time-varying attenuation, ``t -> factor`` in
        #: (0, 1] (rain fades, load surges; see :mod:`repro.disrupt`).
        #: Applied *after* the [min_rate, max_rate] clamp so a deep
        #: fade is not silently clamped back to min_rate.
        self.attenuation = None
        self._slot_cache: dict[int, float] = {}
        self._fast_cache: dict[int, float] = {}

    def _slot_grant(self, slot: int) -> float:
        cached = self._slot_cache.get(slot)
        if cached is None:
            rng = make_rng((self.seed, "slot", slot))
            cached = math.exp(rng.gauss(self._mu_log, self._sigma_log))
            if len(self._slot_cache) > 20_000:
                self._slot_cache.clear()
            self._slot_cache[slot] = cached
        return cached

    def _fast_multiplier(self, bucket: int) -> float:
        # AR(1) in log space, reconstructed independently per bucket:
        # x_b = rho * x_{b-1} + e_b. Unrolling a few steps gives the
        # stationary correlation structure without global state.
        cached = self._fast_cache.get(bucket)
        if cached is None:
            x = 0.0
            depth = 8
            for k in range(bucket - depth, bucket + 1):
                rng = make_rng((self.seed, "fast", k))
                innovation = rng.gauss(0.0, self.fast_sigma)
                x = self.fast_rho * x + innovation
            cached = math.exp(x)
            if len(self._fast_cache) > 50_000:
                self._fast_cache.clear()
            self._fast_cache[bucket] = cached
        return cached

    def rate_at(self, t: float) -> float:
        """Capacity in bit/s at simulated time ``t``."""
        slot = int(t // SLOT_DURATION)
        bucket = int(t // self.fast_bucket_s)
        rate = (self._slot_grant(slot) * self._fast_multiplier(bucket)
                * self.scale)
        rate = min(self.max_rate, max(self.min_rate, rate))
        attenuation = self.attenuation
        if attenuation is not None:
            rate = max(rate * attenuation(t), self.mean_rate * 0.01)
        return rate


@dataclass
class ChannelParams:
    """Medium-loss knobs of the service link (both directions)."""

    #: Mean sojourn in the Good state, seconds. With 25 ms Bad
    #: sojourns this yields ~0.4 % time-in-fade, matching the
    #: messages-transfer loss ratios of Table 2.
    mean_good_s: float = 6.5
    mean_bad_s: float = 0.025
    loss_in_bad: float = 0.95
    #: Rare long outages (paper: loss events > 1 s).
    outage_rate_per_hour: float = 0.5
    outage_mean_duration_s: float = 1.8
    outage_horizon_s: float = 48 * 3600.0


class StarlinkChannel:
    """Bundles capacity processes and loss models for both directions.

    ``share`` scales the granted capacity (mean and clamps alike) to a
    fraction of the subscriber terminal's allocation. Per-connection
    work-unit shards use it to model one TCP flow's fair share of the
    dish: N single-connection channels at ``share=1/N`` stand in for N
    flows contending on one full-capacity channel. Loss is a property
    of the medium, not of the share, so the loss models are unscaled.
    """

    def __init__(self, down_mean: float = mbps(210),
                 up_mean: float = mbps(19),
                 params: ChannelParams | None = None,
                 seed: int = 0, share: float = 1.0):
        if not 0.0 < share <= 1.0:
            raise ConfigurationError(
                f"share must be within (0, 1], got {share!r}")
        self.params = params or ChannelParams()
        self.share = share
        self.downlink = CapacityProcess(
            down_mean * share, slot_cv=0.22, seed=seed * 7 + 1,
            min_rate=mbps(90) * share, max_rate=mbps(400) * share)
        self.uplink = CapacityProcess(
            up_mean * share, slot_cv=0.25, fast_sigma=0.04,
            seed=seed * 7 + 2,
            min_rate=mbps(6) * share, max_rate=mbps(70) * share)
        self._seed = seed

    def make_loss_model(self, direction: str) -> CompositeLoss:
        """Fresh medium-loss model for one direction.

        A *new* model is returned each call because the Gilbert-
        Elliott chain is stateful; each experiment gets its own.
        """
        if direction not in ("down", "up"):
            raise ConfigurationError(
                f"direction must be 'down' or 'up', got {direction!r}")
        offset = 0 if direction == "down" else 1
        p = self.params
        ge = TimedGilbertElliottLoss(
            mean_good_s=p.mean_good_s, mean_bad_s=p.mean_bad_s,
            loss_bad=p.loss_in_bad,
            rng=make_rng((self._seed, "ge", direction)))
        outages = OutageSchedule.poisson(
            horizon=p.outage_horizon_s,
            rate_per_hour=p.outage_rate_per_hour,
            mean_duration=p.outage_mean_duration_s,
            rng=make_rng((self._seed, "outage", offset)))
        return CompositeLoss([ge, outages])
