"""Inter-satellite-link (ISL) routing -- the paper's future work.

During the measurement campaign ISLs were not enabled: all traffic
went dish -> satellite -> nearby gateway, so reaching Singapore meant
exiting in Germany and riding terrestrial fibre (Sec. 3.1, Sec. 4).
The paper anticipates ISL activation "by the end of 2022".

This module implements that future: a +grid ISL topology (each
satellite links to its in-plane neighbours and the nearest satellites
of adjacent planes), shortest-delay routing over the constellation
with networkx, and an RTT estimator for dish -> sky path -> remote
ground station. Comparing it against the bent-pipe model reproduces
the Hypatia-style prediction the paper cites: long-haul RTTs drop
substantially once packets route through the sky.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import RoutingError
from repro.leo.constellation import Constellation, WalkerShell
from repro.leo.geometry import GeoPoint, elevation_angle, slant_range
from repro.units import SPEED_OF_LIGHT, ms

#: Minimum elevation for the ground <-> satellite legs.
GROUND_MIN_ELEVATION_DEG = 25.0

#: Per-satellite forwarding/processing latency.
SATELLITE_PROCESSING_S = ms(0.3)


@dataclass(frozen=True)
class IslPath:
    """One sky route between two ground points."""

    satellite_hops: tuple[int, ...]
    distance_m: float

    @property
    def hop_count(self) -> int:
        """Number of satellites traversed."""
        return len(self.satellite_hops)

    @property
    def one_way_delay(self) -> float:
        """Propagation plus per-hop processing, seconds."""
        return (self.distance_m / SPEED_OF_LIGHT
                + self.hop_count * SATELLITE_PROCESSING_S)

    @property
    def rtt(self) -> float:
        """Symmetric-path round trip, seconds."""
        return 2.0 * self.one_way_delay


class IslRouter:
    """Shortest-delay routing over a +grid ISL constellation."""

    def __init__(self, constellation: Constellation | None = None):
        self.constellation = constellation or Constellation()
        shell = self.constellation.shells[0]
        self._planes = shell.planes
        self._per_plane = shell.sats_per_plane

    def _neighbors(self, index: int) -> list[int]:
        """+grid: two in-plane neighbours, two cross-plane."""
        plane, slot = divmod(index, self._per_plane)
        in_plane = [plane * self._per_plane
                    + ((slot + d) % self._per_plane) for d in (-1, 1)]
        cross = [((plane + d) % self._planes) * self._per_plane + slot
                 for d in (-1, 1)]
        return in_plane + cross

    def graph_at(self, t: float) -> nx.Graph:
        """ISL graph with distance-weighted edges at time ``t``."""
        positions = self.constellation.positions(t)
        graph = nx.Graph()
        n = self.constellation.size
        graph.add_nodes_from(range(n))
        for index in range(n):
            for neighbor in self._neighbors(index):
                if neighbor <= index:
                    continue
                weight = float(np.linalg.norm(
                    positions[index] - positions[neighbor]))
                graph.add_edge(index, neighbor, weight=weight)
        return graph

    def _visible(self, ground: GeoPoint, t: float) -> tuple:
        ecef = ground.to_ecef()
        indices, _, ranges = self.constellation.visible_from(
            ecef, t, min_elevation_deg=GROUND_MIN_ELEVATION_DEG)
        if indices.size == 0:
            raise RoutingError(
                f"no satellite visible from {ground} at t={t}")
        return indices, ranges

    def path(self, src: GeoPoint, dst: GeoPoint, t: float) -> IslPath:
        """Shortest sky route from ``src`` to ``dst`` at time ``t``.

        Up- and downlink satellites are chosen *jointly*: virtual
        ground nodes attach to every visible satellite, so the
        ground-to-ground shortest path picks the pair that minimises
        the total route. (Two physically close satellites on crossing
        planes can be many grid hops apart -- greedy highest-elevation
        selection would route half way around the grid.)
        """
        graph = self.graph_at(t)
        src_vis, src_ranges = self._visible(src, t)
        dst_vis, dst_ranges = self._visible(dst, t)
        for idx, rng_m in zip(src_vis, src_ranges):
            graph.add_edge("src", int(idx), weight=float(rng_m))
        for idx, rng_m in zip(dst_vis, dst_ranges):
            graph.add_edge("dst", int(idx), weight=float(rng_m))
        try:
            route = nx.shortest_path(graph, "src", "dst",
                                     weight="weight")
        except nx.NetworkXNoPath as exc:  # pragma: no cover
            raise RoutingError("ISL grid is disconnected") from exc
        hops = [n for n in route if isinstance(n, int)]
        distance = sum(graph[a][b]["weight"]
                       for a, b in zip(route, route[1:]))
        return IslPath(satellite_hops=tuple(hops),
                       distance_m=float(distance))

    def rtt_estimate(self, src: GeoPoint, dst: GeoPoint,
                     t: float) -> float:
        """One ISL RTT sample (no queueing/jitter), seconds."""
        return self.path(src, dst, t).rtt


def bent_pipe_vs_isl(src: GeoPoint, dst: GeoPoint,
                     bent_pipe_rtt_s: float, t: float = 0.0,
                     router: IslRouter | None = None) -> dict:
    """Compare the measured bent-pipe RTT with the ISL prediction."""
    router = router or IslRouter()
    isl_rtt = router.rtt_estimate(src, dst, t)
    return {
        "bent_pipe_rtt_s": bent_pipe_rtt_s,
        "isl_rtt_s": isl_rtt,
        "improvement_s": bent_pipe_rtt_s - isl_rtt,
        "speedup": (bent_pipe_rtt_s / isl_rtt
                    if isl_rtt > 0 else float("inf")),
    }
