"""Campaign-scale exogenous events.

The paper's five-month latency series (Fig. 2) is mostly flat but
shows two features the authors call out:

* a small *downward* step around February 11, attributed to new
  satellites joining the constellation in early 2022;
* an RTT *increase* during the last week of April and the first week
  of May, attributed to load or reorganisation.

The paper also reports that the QUIC download throughput was higher
in the measurement session that started on April 25. This module
encodes those dates (as offsets from the campaign start) and exposes
the resulting latency/capacity adjustments to the rest of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.units import days, ms

#: Campaign origin: ping collection started mid-December 2021.
CAMPAIGN_START = datetime(2021, 12, 15)

#: Campaign length covered by the latency dataset (five months).
CAMPAIGN_DAYS = 151


def date_to_t(when: datetime) -> float:
    """Seconds since campaign start for a calendar date."""
    return (when - CAMPAIGN_START).total_seconds()


def t_to_date(t: float) -> datetime:
    """Calendar date for a campaign time in seconds."""
    return CAMPAIGN_START + timedelta(seconds=t)


@dataclass
class CampaignTimeline:
    """Adjustments applied to the base model as the campaign unfolds."""

    #: New satellites improve scheduling slightly from this date on.
    fleet_improvement_t: float = date_to_t(datetime(2022, 2, 11))
    fleet_improvement_gain_s: float = ms(3.0)

    #: Elevated load window observed late April / early May.
    load_window_start_t: float = date_to_t(datetime(2022, 4, 24))
    load_window_end_t: float = date_to_t(datetime(2022, 5, 8))
    load_window_extra_s: float = ms(7.0)

    #: QUIC download capacity increased in the second session.
    capacity_step_t: float = date_to_t(datetime(2022, 4, 25))
    capacity_step_scale: float = 1.25

    def extra_latency(self, t: float) -> float:
        """Additive one-way latency adjustment at campaign time ``t``."""
        extra = 0.0
        if t < self.fleet_improvement_t:
            extra += self.fleet_improvement_gain_s / 2.0
        if self.load_window_start_t <= t < self.load_window_end_t:
            extra += self.load_window_extra_s / 2.0
        return extra

    def capacity_scale(self, t: float) -> float:
        """Multiplicative downlink capacity adjustment at time ``t``."""
        if t >= self.capacity_step_t:
            return self.capacity_step_scale
        return 1.0

    def in_campaign(self, t: float) -> bool:
        """Whether ``t`` falls inside the five-month campaign."""
        return 0.0 <= t <= days(CAMPAIGN_DAYS)
