"""Serving-satellite selection and handover.

Starlink reallocates the serving satellite on a fixed 15-second cycle.
Within a slot the dish tracks one satellite, so path length (and hence
the latency floor) is piecewise-continuous with small jumps at slot
boundaries -- the jitter visible in the paper's idle-latency
distributions.

Selection is randomised among the best candidates rather than purely
greedy: the real scheduler balances load across cells, which shows up
to a single user as *not always* getting the highest-elevation
satellite. Randomness is seeded per slot, so a snapshot for a given
time is reproducible no matter the query order.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng
from repro.errors import ConfigurationError
from repro.leo.constellation import Constellation
from repro.leo.geometry import (azimuth_angle, elevation_angle,
                                slant_range, unit_up)
from repro.leo.ground import GroundStation, UserTerminal
from repro.units import SPEED_OF_LIGHT

#: Reallocation period of the Starlink scheduler, seconds.
SLOT_DURATION = 15.0

#: Gateways track satellites down to lower elevations than dishes.
GATEWAY_MIN_ELEVATION_DEG = 10.0

#: Refuse to materialise an outage interval index covering more slots
#: than this (a pathological years-long window would allocate a dict
#: entry per slot); membership falls back to the linear window scan.
MAX_INDEXED_OUTAGE_SLOTS = 250_000

_NO_OUTAGES: frozenset[int] = frozenset()


def build_outage_index(windows: list[tuple[int, int, int]]
                       ) -> dict[int, frozenset[int]] | None:
    """Interval index ``slot -> frozenset(out identifiers)``.

    ``windows`` holds ``(identifier, start_slot, end_slot)`` triples.
    Candidate selection probes outage membership once per candidate
    per slot; the index turns the per-probe linear window scan into a
    dict lookup. Returns ``None`` when the windows span more than
    :data:`MAX_INDEXED_OUTAGE_SLOTS` slots (callers keep the scan).
    """
    total = sum(end - start for _, start, end in windows)
    if total > MAX_INDEXED_OUTAGE_SLOTS:
        return None
    accum: dict[int, set[int]] = {}
    for ident, start, end in windows:
        for slot in range(start, end):
            accum.setdefault(slot, set()).add(ident)
    return {slot: frozenset(out) for slot, out in accum.items()}


def gateway_geometry(gw_ecef: np.ndarray, gw_ups: list[np.ndarray],
                     sat_pos: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Per-gateway ``(elevations_deg, ranges_m)`` of one satellite.

    Deliberately evaluated with the scalar :func:`elevation_angle` /
    :func:`slant_range` ops: these floats feed digest-pinned
    :class:`PathSnapshot` fields, and the scalar BLAS kernels round
    differently from their broadcast counterparts. The fleet layer
    gets its speedup by *memoizing* this function per (slot,
    satellite) across terminals, not by re-deriving it vectorised.
    """
    n = len(gw_ecef)
    elevations = np.empty(n)
    ranges = np.empty(n)
    for i in range(n):
        elevations[i] = elevation_angle(gw_ecef[i], sat_pos,
                                        up=gw_ups[i])
        ranges[i] = slant_range(gw_ecef[i], sat_pos)
    return elevations, ranges


def select_gateway(elevations: np.ndarray, ranges: np.ndarray,
                   out: frozenset[int] = _NO_OUTAGES
                   ) -> tuple[int, float] | None:
    """Closest in-service gateway given per-gateway geometry.

    ``out`` names gateway indices out of service for the slot under
    consideration. Returns ``(gateway_index, range_m)`` or ``None``
    when no usable gateway sees the satellite.
    """
    usable = np.nonzero(elevations >= GATEWAY_MIN_ELEVATION_DEG)[0]
    if out:
        usable = np.array([i for i in usable if int(i) not in out],
                          dtype=int)
    if usable.size == 0:
        return None
    best = int(usable[np.argmin(ranges[usable])])
    return best, float(ranges[best])


#: Change kinds a slot boundary can carry: the serving satellite, the
#: landing gateway, the exit PoP (each causes a latency step), and
#: ``service`` for servable <-> unservable transitions.
HANDOVER_KINDS = ("satellite", "gateway", "pop", "service")


@dataclass(frozen=True)
class HandoverEvent:
    """One slot boundary where the serving path changed.

    ``kinds`` names every change the boundary carries — a satellite
    switch usually moves the gateway too, and either can move the
    exit PoP. A ``service`` kind marks a transition into or out of an
    unservable slot (no visible satellite/gateway pair, e.g. under a
    full-sky obstruction).
    """

    t: float
    kinds: frozenset[str]


def scan_handover_events(snapshot_fn, slot_of, start: float,
                         end: float) -> list[HandoverEvent]:
    """All path-change boundaries in ``[start, end)``.

    Shared by the scalar scheduler and the fleet terminal view so
    both report identical events. ``snapshot_fn`` may raise
    :class:`ConfigurationError` for unservable slots; those become
    ``service`` transitions rather than propagating.
    """
    def state_at(t: float):
        try:
            snap = snapshot_fn(t)
        except ConfigurationError:
            return None
        return (snap.sat_index, snap.gateway.name, snap.pop)

    events: list[HandoverEvent] = []
    previous = state_at(start)
    slot = slot_of(start) + 1
    while slot * SLOT_DURATION < end:
        t = slot * SLOT_DURATION
        current = state_at(t)
        if current != previous:
            kinds = set()
            if (current is None) != (previous is None):
                kinds.add("service")
            if current is not None and previous is not None:
                if current[0] != previous[0]:
                    kinds.add("satellite")
                if current[1] != previous[1]:
                    kinds.add("gateway")
                if current[2] != previous[2]:
                    kinds.add("pop")
            events.append(HandoverEvent(t=t, kinds=frozenset(kinds)))
            previous = current
        slot += 1
    return events


@dataclass(frozen=True)
class PathSnapshot:
    """The bent-pipe path in force during one scheduler slot."""

    slot: int
    sat_index: int
    gateway: GroundStation
    ut_range_m: float
    gw_range_m: float
    elevation_deg: float

    @property
    def one_way_propagation(self) -> float:
        """UT -> satellite -> gateway radio propagation, seconds."""
        return (self.ut_range_m + self.gw_range_m) / SPEED_OF_LIGHT

    @property
    def pop(self) -> str:
        """Name of the PoP this path exits at."""
        return self.gateway.pop


class SatelliteScheduler:
    """Chooses the serving satellite and gateway per 15 s slot."""

    #: Bound on distinct slots the snapshot cache retains; beyond it
    #: the least-recently-used slot is evicted (a wholesale clear
    #: would make a long campaign's periodic revisits recompute the
    #: whole working set).
    snapshot_cache_slots = 10_000

    #: Bound on distinct slots the mobile terminal-state memo holds
    #: (ECEF + up per slot); evicted LRU like the snapshot cache.
    terminal_state_cache_slots = 10_000

    def __init__(self, constellation: Constellation,
                 terminal: UserTerminal,
                 gateways: list[GroundStation],
                 seed: int = 0,
                 candidate_pool: int = 4,
                 trajectory=None,
                 obstruction=None):
        if not gateways:
            raise ConfigurationError("at least one gateway is required")
        self.constellation = constellation
        self.terminal = terminal
        self.gateways = list(gateways)
        self.seed = seed
        self.candidate_pool = candidate_pool
        self._ut_ecef = terminal.ecef()
        self._gw_ecef = np.array([gw.ecef() for gw in self.gateways])
        # Unit up-vectors, precomputed once per ground site and passed
        # back through elevation_angle(up=...): same bytes, one norm
        # per site instead of one per call on the hot path.
        self._ut_up = unit_up(self._ut_ecef)
        self._gw_ups = [unit_up(gw) for gw in self._gw_ecef]
        self._cache: OrderedDict[
            int, PathSnapshot | ConfigurationError] = OrderedDict()
        # Mobility state. ``mobility_epoch`` is the position analogue
        # of ``version``: every cache entry derived from the terminal
        # position is stamped with it, and set_trajectory() bumping it
        # makes stale reuse an assertion failure rather than silently
        # wrong geometry. ``_armed_*`` mirror the public attributes so
        # direct assignment (bypassing set_trajectory) trips the guard.
        self.mobility_epoch = 0
        self.trajectory = None
        self.obstruction = None
        self._armed_trajectory = None
        self._armed_obstruction = None
        self._mobile = False
        self._ut_state_cache: OrderedDict[
            int, tuple[int, np.ndarray, np.ndarray]] = OrderedDict()
        #: Injected satellite outages: (sat_index, start_slot, end_slot).
        self._outages: list[tuple[int, int, int]] = []
        #: Injected gateway outages: (gw_index, start_slot, end_slot).
        self._gateway_outages: list[tuple[int, int, int]] = []
        # Interval indices over the outage windows (slot -> frozenset
        # of out identifiers), rebuilt lazily whenever ``version``
        # moves; None means "too large to materialise, scan instead".
        self._out_index: dict[int, frozenset[int]] | None = {}
        self._gw_out_index: dict[int, frozenset[int]] | None = {}
        self._index_version = 0
        #: Bumped whenever snapshots may change retroactively (outage
        #: injection); downstream per-slot caches key on it to
        #: invalidate without subscribing to individual slots.
        self.version = 0
        if trajectory is not None or obstruction is not None:
            self.set_trajectory(trajectory, obstruction)

    def set_trajectory(self, trajectory, obstruction=None) -> None:
        """Arm (or clear) the terminal's trajectory and obstruction.

        The only supported way to change terminal motion: it bumps
        both ``version`` (so downstream per-slot delay caches drop
        their entries) and ``mobility_epoch`` (so every memoised
        terminal position is provably from the current trajectory),
        and clears the snapshot cache. Assigning ``self.trajectory``
        directly leaves the armed copy behind and trips the stale-
        geometry assertion on the next snapshot.
        """
        if trajectory is not None and trajectory.is_stationary:
            # A provably-fixed trajectory collapses to the classic
            # fast path: position evaluated once, same float pipeline
            # as a fixed UserTerminal at that location.
            self._ut_ecef = trajectory.position_at(0.0).to_ecef()
            self._ut_up = unit_up(self._ut_ecef)
        self.trajectory = trajectory
        self.obstruction = obstruction
        self._armed_trajectory = trajectory
        self._armed_obstruction = obstruction
        self._mobile = (trajectory is not None
                        and not trajectory.is_stationary)
        self.mobility_epoch += 1
        self.version += 1
        self._cache.clear()
        self._ut_state_cache.clear()

    def _terminal_state(self, slot: int
                        ) -> tuple[np.ndarray, np.ndarray]:
        """``(ecef, unit_up)`` of the terminal during ``slot``.

        The stationary fast path returns the vectors precomputed at
        construction — byte-identical to the pre-mobility scheduler.
        Mobile terminals memoise per slot, entries stamped with
        ``mobility_epoch`` and asserted fresh on every read.
        """
        if not self._mobile:
            return self._ut_ecef, self._ut_up
        entry = self._ut_state_cache.get(slot)
        if entry is not None and entry[0] != self.mobility_epoch:
            raise AssertionError(
                f"stale terminal-state cache: slot {slot} entry from "
                f"mobility epoch {entry[0]}, scheduler at "
                f"{self.mobility_epoch}")
        if entry is None:
            pos = self.trajectory.position_at(slot * SLOT_DURATION)
            ecef = pos.to_ecef()
            entry = (self.mobility_epoch, ecef, unit_up(ecef))
            self._ut_state_cache[slot] = entry
            while (len(self._ut_state_cache)
                   > self.terminal_state_cache_slots):
                self._ut_state_cache.popitem(last=False)
        else:
            self._ut_state_cache.move_to_end(slot)
        return entry[1], entry[2]

    def slot_of(self, t: float) -> int:
        """Scheduler slot index containing time ``t``."""
        return int(t // SLOT_DURATION)

    def snapshot(self, t: float) -> PathSnapshot:
        """The path in force at time ``t`` (cached per slot, LRU).

        Unservable slots (no visible satellite/gateway pair — sparse
        constellation, injected outages, or a full-sky obstruction)
        raise :class:`ConfigurationError`; the error is cached like a
        snapshot so a drive-through outage costs one geometry scan
        per slot, not one per packet.
        """
        if (self.trajectory is not self._armed_trajectory
                or self.obstruction is not self._armed_obstruction):
            raise AssertionError(
                "trajectory/obstruction replaced without "
                "set_trajectory(); position caches may be stale")
        slot = self.slot_of(t)
        cached = self._cache.get(slot)
        if cached is None:
            try:
                cached = self._compute_slot(slot)
            except ConfigurationError as exc:
                cached = exc
            self._cache[slot] = cached
            while len(self._cache) > self.snapshot_cache_slots:
                self._cache.popitem(last=False)
        else:
            self._cache.move_to_end(slot)
        if isinstance(cached, ConfigurationError):
            raise cached
        return cached

    def add_outage(self, sat_index: int, start_slot: int,
                   end_slot: int) -> None:
        """Take ``sat_index`` out of service for ``[start_slot, end_slot)``.

        Fault-injection hook (:mod:`repro.testing.faults`): an out
        satellite is skipped during candidate selection, forcing a
        handover at the outage boundary exactly as a failed bird
        would. Cached snapshots inside the window are recomputed.
        """
        if end_slot <= start_slot:
            raise ConfigurationError(
                f"outage window is empty: [{start_slot}, {end_slot})")
        self._outages.append((sat_index, start_slot, end_slot))
        self.version += 1
        for slot in range(start_slot, end_slot):
            self._cache.pop(slot, None)

    def add_gateway_outage(self, gateway_name: str, start_slot: int,
                           end_slot: int) -> None:
        """Take a gateway out of service for ``[start_slot, end_slot)``.

        Maintenance / weather hook (:mod:`repro.disrupt`): an out
        gateway is excluded from per-slot gateway selection, so paths
        re-plan through the remaining gateways — possibly moving the
        exit PoP, exactly as the paper's traceroutes would observe.
        Cached snapshots inside the window are recomputed.
        """
        names = [gw.name for gw in self.gateways]
        if gateway_name not in names:
            raise ConfigurationError(
                f"unknown gateway {gateway_name!r}; have {names}")
        if end_slot <= start_slot:
            raise ConfigurationError(
                f"gateway outage window is empty: "
                f"[{start_slot}, {end_slot})")
        self._gateway_outages.append(
            (names.index(gateway_name), start_slot, end_slot))
        self.version += 1
        for slot in range(start_slot, end_slot):
            self._cache.pop(slot, None)

    def _refresh_outage_index(self) -> None:
        if self._index_version == self.version:
            return
        self._out_index = build_outage_index(self._outages)
        self._gw_out_index = build_outage_index(self._gateway_outages)
        self._index_version = self.version

    def out_sats_at(self, slot: int) -> frozenset[int]:
        """Satellite indices out of service during ``slot``."""
        self._refresh_outage_index()
        if self._out_index is None:
            return frozenset(
                sat for sat, start, end in self._outages
                if start <= slot < end)
        return self._out_index.get(slot, _NO_OUTAGES)

    def out_gateways_at(self, slot: int) -> frozenset[int]:
        """Gateway indices out of service during ``slot``."""
        self._refresh_outage_index()
        if self._gw_out_index is None:
            return frozenset(
                gw for gw, start, end in self._gateway_outages
                if start <= slot < end)
        return self._gw_out_index.get(slot, _NO_OUTAGES)

    def _is_out(self, sat_index: int, slot: int) -> bool:
        return sat_index in self.out_sats_at(slot)

    def _gw_is_out(self, gw_index: int, slot: int) -> bool:
        return gw_index in self.out_gateways_at(slot)

    def _compute_slot(self, slot: int) -> PathSnapshot:
        t = slot * SLOT_DURATION
        ut_ecef, ut_up = self._terminal_state(slot)
        mask = (self.obstruction.mask_at(slot)
                if self.obstruction is not None else None)
        if mask is not None and mask.full_sky:
            raise ConfigurationError(
                f"sky fully obstructed at {self.terminal.name} at "
                f"t={t} (overpass/tunnel slot)")
        indices, elevations, ranges = self.constellation.visible_from(
            ut_ecef, t, up=ut_up)
        if indices.size == 0:
            raise ConfigurationError(
                f"no satellite visible from {self.terminal.name} at t={t}; "
                "constellation too sparse for this latitude")
        positions = self.constellation.positions(t)
        out_sats = (self.out_sats_at(slot) if self._outages
                    else _NO_OUTAGES)
        candidates = []
        for idx, elev, rng_m in zip(indices, elevations, ranges):
            if int(idx) in out_sats:
                continue
            if mask is not None and mask.blocks(
                    azimuth_angle(ut_ecef, positions[idx], up=ut_up),
                    float(elev)):
                continue
            gw_choice = self._best_gateway(positions[idx], slot)
            if gw_choice is None:
                continue
            gw_pos_idx, gw_range = gw_choice
            candidates.append((int(idx), float(elev), float(rng_m),
                               gw_pos_idx, gw_range))
            if len(candidates) >= self.candidate_pool:
                break
        if not candidates:
            if mask is not None:
                raise ConfigurationError(
                    f"all visible satellites obstructed at t={t}")
            raise ConfigurationError(
                f"no visible satellite sees a gateway at t={t}")
        rng = make_rng((self.seed, slot))
        sat_idx, elev, ut_range, gw_idx, gw_range = rng.choice(candidates)
        return PathSnapshot(
            slot=slot, sat_index=sat_idx, gateway=self.gateways[gw_idx],
            ut_range_m=ut_range, gw_range_m=gw_range, elevation_deg=elev)

    def _best_gateway(self, sat_pos: np.ndarray, slot: int | None = None
                      ) -> tuple[int, float] | None:
        """Closest in-service gateway this satellite can serve."""
        elevations, ranges = gateway_geometry(
            self._gw_ecef, self._gw_ups, sat_pos)
        out = (self.out_gateways_at(slot)
               if self._gateway_outages and slot is not None
               else _NO_OUTAGES)
        return select_gateway(elevations, ranges, out)

    def handover_events(self, start: float,
                        end: float) -> list[HandoverEvent]:
        """Every path-change boundary in ``[start, end)`` with kinds.

        Unlike the pre-fix ``handover_times``, gateway and PoP
        switches that leave the satellite unchanged are reported too
        — they step the latency floor just like satellite handovers.
        """
        return scan_handover_events(self.snapshot, self.slot_of,
                                    start, end)

    def handover_times(self, start: float, end: float) -> list[float]:
        """Slot boundaries where the serving path changes.

        Reports every change kind (satellite, gateway, PoP, service),
        not just satellite switches — a gateway swap under an
        unchanged satellite still moves the latency floor.
        """
        return [event.t
                for event in self.handover_events(start, end)]
