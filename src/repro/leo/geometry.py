"""Spherical-Earth geometry for satellite links.

A spherical Earth (mean radius) is accurate to well under 1 % for the
path-length and elevation computations the latency model needs; WGS-84
flattening would change Starlink RTTs by tens of microseconds, far
below the scheduling jitter the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import EARTH_RADIUS, SPEED_OF_LIGHT


@dataclass(frozen=True)
class GeoPoint:
    """A point given in geodetic coordinates (degrees, metres)."""

    lat_deg: float
    lon_deg: float
    alt_m: float = 0.0

    def to_ecef(self) -> np.ndarray:
        """Earth-centred Earth-fixed position vector, metres."""
        return ecef(self.lat_deg, self.lon_deg, self.alt_m)


def ecef(lat_deg: float, lon_deg: float, alt_m: float = 0.0) -> np.ndarray:
    """Geodetic (spherical) to ECEF coordinates, metres."""
    lat = np.radians(lat_deg)
    lon = np.radians(lon_deg)
    r = EARTH_RADIUS + alt_m
    return np.array([
        r * np.cos(lat) * np.cos(lon),
        r * np.cos(lat) * np.sin(lon),
        r * np.sin(lat),
    ])


def slant_range(a: np.ndarray, b: np.ndarray) -> float | np.ndarray:
    """Straight-line distance between ECEF positions, metres.

    ``b`` may be an (N, 3) array of satellite positions, in which case
    an (N,) array of ranges is returned.
    """
    diff = np.asarray(b) - np.asarray(a)
    if diff.ndim == 1:
        # sqrt(x . x) is exactly what np.linalg.norm computes for a
        # 1-D real vector (after a no-op ravel); spelling it out
        # skips the linalg dispatch on this per-satellite hot path.
        return float(np.sqrt(diff.dot(diff)))
    return np.linalg.norm(diff, axis=1)


def unit_up(ground: np.ndarray) -> np.ndarray:
    """Local unit up-vector at an ECEF ground position.

    Exactly the expression :func:`elevation_angle` evaluates
    internally, split out so schedulers can precompute it once per
    ground site and pass it back through ``up=`` — same bytes, one
    norm instead of one per call.
    """
    ground = np.asarray(ground, dtype=float)
    return ground / np.linalg.norm(ground)


def elevation_angle(ground: np.ndarray,
                    sat: np.ndarray,
                    up: np.ndarray | None = None) -> float | np.ndarray:
    """Elevation of ``sat`` above the local horizon at ``ground``, degrees.

    ``sat`` may be an (N, 3) array; an (N,) array is then returned.
    Negative values mean the satellite is below the horizon.
    ``up`` optionally supplies the precomputed :func:`unit_up` of
    ``ground`` (hot-path callers evaluate it once per site instead of
    once per call; passing it never changes a single bit).
    """
    ground = np.asarray(ground, dtype=float)
    sat = np.asarray(sat, dtype=float)
    if up is None:
        up = ground / np.linalg.norm(ground)
    los = sat - ground
    if los.ndim == 1:
        # sqrt(x . x) == np.linalg.norm for 1-D real input, minus
        # the dispatch overhead (see slant_range).
        rng = np.sqrt(los.dot(los))
        sin_el = np.dot(los, up) / rng
        return float(np.degrees(np.arcsin(np.clip(sin_el, -1.0, 1.0))))
    rng = np.linalg.norm(los, axis=1)
    sin_el = los @ up / rng
    return np.degrees(np.arcsin(np.clip(sin_el, -1.0, 1.0)))


def azimuth_angle(ground: np.ndarray, sat: np.ndarray,
                  up: np.ndarray | None = None) -> float | np.ndarray:
    """Compass azimuth of ``sat`` seen from ``ground``, degrees.

    Measured clockwise from true north in the local tangent plane
    (0 = north, 90 = east), the convention obstruction sky masks use.
    ``sat`` may be an (N, 3) array; an (N,) array is then returned.
    A satellite at the zenith has an ill-defined azimuth; 0.0 is
    returned there (its horizontal projection vanishes).
    """
    ground = np.asarray(ground, dtype=float)
    sat = np.asarray(sat, dtype=float)
    if up is None:
        up = ground / np.linalg.norm(ground)
    # Local east/north unit vectors from the spherical up-vector.
    east = np.array([-up[1], up[0], 0.0])
    east_norm = np.linalg.norm(east)
    if east_norm == 0.0:
        # At the poles every horizontal direction is "south"/"north";
        # pick the prime-meridian tangent for a stable frame.
        east = np.array([0.0, 1.0, 0.0])
        east_norm = 1.0
    east = east / east_norm
    north = np.cross(up, east)
    los = sat - ground
    e = los @ east
    n = los @ north
    az = np.degrees(np.arctan2(e, n)) % 360.0
    if np.ndim(az) == 0:
        return float(az)
    return az


def elevation_and_range(ground: np.ndarray, sat: np.ndarray,
                        up: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """``(elevations_deg, ranges_m)`` for an (N, 3) satellite array.

    One pass sharing the line-of-sight norm: the norm
    :func:`elevation_angle` divides by *is* the slant range, so
    separate calls compute it twice. Bit-identical to
    ``(elevation_angle(ground, sat, up), slant_range(ground, sat))``
    — both evaluate ``norm(sat - ground, axis=1)`` on the same rows.
    """
    ground = np.asarray(ground, dtype=float)
    sat = np.asarray(sat, dtype=float)
    los = sat - ground
    rng = np.linalg.norm(los, axis=1)
    sin_el = los @ up / rng
    return np.degrees(np.arcsin(np.clip(sin_el, -1.0, 1.0))), rng


def great_circle_distance(a: GeoPoint, b: GeoPoint) -> float:
    """Surface distance between two geodetic points, metres."""
    lat1, lon1 = np.radians(a.lat_deg), np.radians(a.lon_deg)
    lat2, lon2 = np.radians(b.lat_deg), np.radians(b.lon_deg)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (np.sin(dlat / 2) ** 2
         + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2) ** 2)
    return float(2 * EARTH_RADIUS * np.arcsin(np.sqrt(h)))


def propagation_delay(distance_m: float,
                      speed: float = SPEED_OF_LIGHT) -> float:
    """One-way propagation delay for ``distance_m``, seconds."""
    return distance_m / speed


def fiber_path_delay(a: GeoPoint, b: GeoPoint,
                     stretch: float = 1.5) -> float:
    """One-way delay of a terrestrial fibre path between two sites.

    Real fibre routes are longer than the great circle; ``stretch``
    (default 1.5) captures routing detours, and propagation uses the
    ~2/3 c speed of light in glass.
    """
    from repro.units import FIBER_SPEED

    distance = great_circle_distance(a, b) * stretch
    return distance / FIBER_SPEED
