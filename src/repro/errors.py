"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class InvariantViolation(SimulationError):
    """An invariant checker caught the simulation breaking a rule.

    Raised by :mod:`repro.testing.invariants` the moment a watched
    component violates clock monotonicity, FIFO delivery, packet
    conservation or a queue bound.
    """


class ConfigurationError(ReproError):
    """A component was built with invalid or contradictory parameters."""


class RoutingError(ReproError):
    """No route exists between two simulated hosts."""


class TransportError(ReproError):
    """A TCP or QUIC endpoint hit a protocol violation or failure."""


class ConnectionClosedError(TransportError):
    """An operation was attempted on a closed transport connection."""


class FlowControlError(TransportError):
    """A sender exceeded the peer's advertised flow-control limits."""


class HandshakeTimeoutError(TransportError):
    """The transport handshake did not complete in time."""


class CampaignError(ReproError):
    """A measurement campaign was misconfigured or failed to run."""


class UnitExecutionError(CampaignError):
    """A work unit exhausted its retry budget under ``failure_policy="raise"``.

    Raised by :func:`repro.exec.execute_units` the moment a unit's last
    attempt fails (exception, worker death, or wall-clock timeout) when
    the caller asked for all-or-nothing semantics. Under
    ``failure_policy="degrade"`` the same condition is recorded as a
    :class:`repro.exec.UnitFailure` instead.
    """


class JournalError(CampaignError):
    """A checkpoint journal was misused (mismatched entry, stale dir)."""


class ChaosError(ReproError):
    """A failure injected on purpose by the executor chaos harness."""


class AnalysisError(ReproError):
    """An analysis routine received unusable data (e.g. empty samples)."""


class MeasurementError(ReproError, ValueError):
    """A measurement app was invoked with unusable arguments.

    Raised by the tools in :mod:`repro.apps` (speedtest, bulk,
    messages, ...) with the offending measurement named in the
    message. Derives from :class:`ValueError` too, so legacy callers
    that caught the apps' original ``ValueError`` keep working.
    """


class ResourceError(ReproError):
    """The resource-governance layer was misused (bad budget, spill
    directory trouble, watchdog misconfiguration)."""


class MemoryBudgetError(ResourceError, MemoryError):
    """A campaign crossed its hard memory cap.

    Raised by :class:`repro.exec.resources.ResourceBudget` once every
    graceful-degradation stage is exhausted and residency still
    exceeds the hard cap. Derives from :class:`MemoryError` so
    generic out-of-memory handlers treat it as the real thing; the
    raising path checkpoints first (the journal already holds every
    completed unit), so a rerun with ``--resume`` continues instead
    of starting over.
    """


class DisruptionError(ReproError):
    """The adverse-conditions subsystem was misused.

    Raised by :mod:`repro.disrupt` for unknown scenario names,
    contradictory disruption windows or invalid severities -- always
    naming the offending scenario or window in the message.
    """
