"""Split-TCP performance-enhancing proxy (PEP).

SatCom operators terminate subscriber TCP connections at a proxy next
to the hub: the SYN is answered locally (so connection setup does not
pay the full end-to-end path), the space segment runs an operator-
tuned sender (large initial window, paced at the provisioned plan
rate), and a second connection is opened from the proxy to the real
server. This module implements that data path for real -- the proxy
impersonates the server toward the client and relays byte counts
between its two connections.

QUIC traffic is encrypted and authenticated end to end, so the PEP
must leave it alone -- exactly the property that motivated the
paper's use of QUIC for end-to-end measurements. The proxy also
mutates TCP header fields, which is what Tracebox detects (the paper
found no PEP on Starlink, Sec. 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.netsim.engine import Simulator
from repro.netsim.node import Router
from repro.netsim.packet import Packet, Protocol
from repro.transport.base import DatagramSocket
from repro.transport.tcp.connection import TcpConfig, TcpConnection
from repro.units import mbps


@dataclass(frozen=True)
class PepPolicy:
    """What the PEP does to TCP connections that cross it."""

    #: Terminate TCP and relay through a second connection.
    split_tcp: bool = True
    #: Space-segment sender: initial window (bytes) and pacing rate.
    #: A hub PEP knows the provisioned plan rate and paces to it.
    space_initial_window: int = 1_500_000
    space_pacing_rate_bps: float = mbps(95)
    #: The far-side handshake still completes before data flows; only
    #: the subscriber-visible SYN is accelerated.
    accelerates_handshake: bool = True
    #: TLS is end to end; the PEP cannot shortcut it.
    accelerates_tls: bool = False


class _SpoofSocket:
    """Socket facade that sends with a forged source address.

    The proxy's client-facing connection must look like the origin
    server, so its packets carry the server's address and port.
    """

    def __init__(self, node: "PepBox", spoof_addr: str, spoof_port: int):
        self._node = node
        self._spoof_addr = spoof_addr
        self.port = spoof_port
        self.on_receive: Callable[[Packet], None] | None = None

    @property
    def address(self) -> str:
        return self._spoof_addr

    def sendto(self, dst: str, dst_port: int, size: int,
               payload: Any = None,
               headers: dict[str, Any] | None = None) -> Packet:
        packet = Packet(
            src=self._spoof_addr, dst=dst, protocol=Protocol.TCP,
            size=size, src_port=self.port, dst_port=dst_port,
            payload=payload, headers=dict(headers or {}),
            created_at=self._node.sim.now)
        # The PEP rewrites options/sequence numbers; make the
        # mutation visible to header-comparison tools.
        packet.headers["tcp_options"] = "pep-rewritten"
        packet.headers["pep"] = self._node.name
        self._node.send(packet)
        return packet

    def close(self) -> None:
        """The proxy owns flow lifetime; nothing to release."""


class _ProxiedFlow:
    """One split TCP connection: client half + server half."""

    def __init__(self, pep: "PepBox", client_addr: str, client_port: int,
                 server_addr: str, server_port: int):
        policy = pep.policy
        space_config = TcpConfig(
            initial_window=policy.space_initial_window,
            pacing_rate_bps=policy.space_pacing_rate_bps)
        self.client_conn = TcpConnection(
            pep.sim, _SpoofSocket(pep, server_addr, server_port),
            client_addr, client_port, role="server", config=space_config)
        server_socket = DatagramSocket(pep, protocol=Protocol.TCP)
        self.server_conn = TcpConnection(
            pep.sim, server_socket, server_addr, server_port,
            role="client")
        server_socket.on_receive = self.server_conn._on_packet
        self._wire_relay()
        self.server_conn.connect()

    def _wire_relay(self) -> None:
        client, server = self.client_conn, self.server_conn
        client.on_bytes_delivered = lambda n: server.send(n)
        client.on_fin = lambda now: server.send(0, fin=True)
        server.on_bytes_delivered = lambda n: client.send(n)
        server.on_fin = lambda now: client.send(0, fin=True)


class PepBox(Router):
    """In-path middlebox that splits subscriber TCP connections.

    Sits between the SatCom hub and the Internet core. TCP packets
    arriving from the subscriber side are terminated at an internal
    proxy; everything else (QUIC/UDP, ICMP) is forwarded like a
    normal router. With ``policy.split_tcp`` False the box degrades
    to a header-mutating router (the Tracebox-visible PEP without the
    performance machinery -- an ablation mode).
    """

    def __init__(self, sim: Simulator, name: str, address: str,
                 policy: PepPolicy | None = None,
                 subscriber_side: str = "hub"):
        super().__init__(sim, name, address)
        self.policy = policy or PepPolicy()
        self.subscriber_side = subscriber_side
        self.flows: dict[tuple, _ProxiedFlow] = {}
        self.tcp_flows_touched = 0
        # Host-like port bindings for the proxy's own connections.
        self._bindings: dict[tuple[Protocol, int], Callable] = {}
        self._next_ephemeral = 52000

    # -- host-like API used by DatagramSocket ---------------------------

    def bind(self, protocol: Protocol, port: int, handler) -> None:
        """Register a local transport handler (proxy connections)."""
        key = (protocol, port)
        if key in self._bindings:
            raise ConfigurationError(
                f"{self.name}: port {port}/{protocol.value} already bound")
        self._bindings[key] = handler

    def unbind(self, protocol: Protocol, port: int) -> None:
        """Remove a local binding. Missing bindings are ignored."""
        self._bindings.pop((protocol, port), None)

    def allocate_port(self) -> int:
        """Fresh ephemeral port for a proxy-originated connection."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- forwarding/interception ----------------------------------------

    def receive(self, packet: Packet, pipe) -> None:
        if packet.dst == self.address:
            self.packets_received += 1
            handler = self._bindings.get((packet.protocol,
                                          packet.dst_port))
            if handler is not None:
                handler(packet)
            else:
                self._handle_local(packet)
            return
        from_subscriber = (pipe is not None and pipe.name.startswith(
            f"{self.subscriber_side}->"))
        if (packet.protocol is Protocol.TCP and self.policy.split_tcp
                and from_subscriber):
            self.packets_received += 1
            packet.ttl -= 1
            if packet.ttl <= 0:
                # TTL-limited probes expire here: the PEP is a
                # visible traceroute hop like any router.
                self._send_time_exceeded(packet)
                return
            self._intercept(packet)
            return
        super().receive(packet, pipe)

    def _intercept(self, packet: Packet) -> None:
        key = (packet.src, packet.src_port, packet.dst, packet.dst_port)
        flow = self.flows.get(key)
        if flow is None:
            kind = packet.payload[0] if packet.payload else ""
            if kind != "ctrl":
                return  # stray mid-connection packet; drop
            self.tcp_flows_touched += 1
            flow = _ProxiedFlow(self, packet.src, packet.src_port,
                                packet.dst, packet.dst_port)
            self.flows[key] = flow
        flow.client_conn._on_packet(packet)

    def mutate_forward(self, packet: Packet, pipe) -> bool:
        if packet.protocol is not Protocol.TCP:
            return True
        # Non-split mode: mutate headers in place (Tracebox-visible).
        self.tcp_flows_touched += 1
        packet.headers["tcp_options"] = "pep-rewritten"
        seq = packet.headers.get("tcp_seq")
        if isinstance(seq, int):
            packet.headers["tcp_seq"] = seq ^ 0x5A5A5A5A
        packet.headers["pep"] = self.name
        packet.refresh_checksum()
        return True
