"""Geostationary SatCom substrate (the paper's comparison access).

:mod:`satcom` builds the access network -- a ~36 000 km bent pipe with
a 100/10 Mbit/s plan -- and :mod:`pep` provides the split-TCP
performance-enhancing proxy that SatCom operators deploy (and that
Tracebox detects, Sec. 3.5 of the paper).
"""

from repro.geo.satcom import GeoSatComAccess, GeoParams, GeoPathModel
from repro.geo.pep import PepBox, PepPolicy

__all__ = [
    "GeoSatComAccess",
    "GeoParams",
    "GeoPathModel",
    "PepBox",
    "PepPolicy",
]
