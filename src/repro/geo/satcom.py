"""Geostationary SatCom access network.

The paper's comparison service is a reseller plan on a major European
GEO operator: up to 100 Mbit/s down, 10 Mbit/s up, with the classic
~600 ms minimum RTT that 35 786 km of altitude imposes. The model
derives the propagation delay from real geometry (terminal in Belgium,
satellite around 13 deg E, teleport in northern Italy) and adds
DVB-S2/RCS scheduling latency; bandwidth-on-demand makes the uplink
both slower and far more variable than the headline figure -- the
paper measured a median of only 4.5 Mbit/s up and 82 Mbit/s down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng
from repro.errors import ConfigurationError
from repro.geo.pep import PepBox, PepPolicy
from repro.leo.channel import CapacityProcess
from repro.leo.geometry import (
    GeoPoint,
    fiber_path_delay,
    slant_range,
)
from repro.netsim.engine import Simulator
from repro.netsim.loss import TimedGilbertElliottLoss
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import Network
from repro.units import GEO_ALTITUDE, SPEED_OF_LIGHT, gbps, kib, mbps, ms

#: Longitude of the serving geostationary satellite (KA-SAT-like).
GEO_SATELLITE = GeoPoint(0.0, 13.0, GEO_ALTITUDE)

#: The operator's European teleport (hub) location.
TELEPORT = GeoPoint(45.1, 7.7)  # Turin area

#: The subscriber terminal location (same campus as PC-Starlink).
TERMINAL = GeoPoint(50.668, 4.611)


@dataclass
class GeoParams:
    """Tunables of the GEO model, calibrated to the paper's plan."""

    #: Sellable plan: "up to" 100/10 Mbit/s.
    down_mean_bps: float = mbps(88)
    up_mean_bps: float = mbps(5.2)

    #: Hub + modem processing each way.
    processing_one_way_s: float = ms(10.0)

    #: DVB-RCS bandwidth-on-demand adds request/grant latency on the
    #: uplink; the downlink scheduler is smoother. Jitter is drawn
    #: once per grant cycle (frame), shared by packets in the frame.
    bod_shape_up: float = 2.0
    bod_scale_up_s: float = ms(14.0)
    sched_shape_down: float = 1.5
    sched_scale_down_s: float = ms(6.0)
    jitter_frame_s: float = ms(45.0)
    jitter_dither_s: float = ms(1.0)

    down_queue_bytes: int = kib(2200)
    up_queue_bytes: int = kib(192)

    lan_rate_bps: float = gbps(1)
    lan_delay_s: float = ms(0.2)

    #: Ka-band rain fade: rarer but longer than Starlink's fades.
    mean_good_s: float = 30.0
    mean_bad_s: float = 0.06


class GeoPathModel:
    """Analytic delay model of the GEO access (terminal <-> hub)."""

    def __init__(self, params: GeoParams | None = None, seed: int = 0):
        self.params = params or GeoParams()
        self.seed = seed
        sat = GEO_SATELLITE.to_ecef()
        up_leg = slant_range(TERMINAL.to_ecef(), sat)
        down_leg = slant_range(TELEPORT.to_ecef(), sat)
        #: UT -> satellite -> teleport, one way, propagation only.
        self.propagation_one_way = float(up_leg + down_leg) / SPEED_OF_LIGHT
        self._jitter_cache: dict[tuple[str, int], float] = {}

    def base_one_way(self, t: float) -> float:
        """Deterministic one-way delay terminal->hub, seconds."""
        return self.propagation_one_way + self.params.processing_one_way_s

    def jitter(self, rng: random.Random, direction: str,
               t: float | None = None) -> float:
        """Scheduling jitter for a packet sent at ``t``, seconds.

        Drawn once per grant cycle (time bucket) so packets within a
        cycle share it; ``rng`` adds only sub-millisecond dither.
        """
        p = self.params
        if t is None:
            draw = self._jitter_draw(rng, direction)
        else:
            frame = int(t / p.jitter_frame_s)
            key = (direction, frame)
            draw = self._jitter_cache.get(key)
            if draw is None:
                frame_rng = make_rng((self.seed, "geo-jit", direction,
                                      frame))
                draw = self._jitter_draw(frame_rng, direction)
                if len(self._jitter_cache) > 50_000:
                    self._jitter_cache.clear()
                self._jitter_cache[key] = draw
        return draw + rng.uniform(0, p.jitter_dither_s)

    def _jitter_draw(self, rng: random.Random, direction: str) -> float:
        p = self.params
        if direction == "up":
            return rng.gammavariate(p.bod_shape_up, p.bod_scale_up_s)
        return rng.gammavariate(p.sched_shape_down, p.sched_scale_down_s)

    def one_way_delay(self, t: float, rng: random.Random,
                      direction: str) -> float:
        """One-way delay including jitter, seconds."""
        return self.base_one_way(t) + self.jitter(rng, direction, t)

    def idle_rtt(self, t: float, rng: random.Random,
                 remote_rtt_s: float = 0.0) -> float:
        """One idle RTT sample, seconds."""
        return (2.0 * self.base_one_way(t) + self.jitter(rng, "up", t)
                + self.jitter(rng, "down", t) + remote_rtt_s)


class GeoSatComAccess:
    """Packet-level GEO access network for one experiment epoch.

    Topology: client -> modem NAT -> GEO link -> hub -> PEP -> core,
    with servers attached off the core. ``pep_enabled=False`` is the
    ablation knob (what would SatCom look like without its PEP?).
    """

    CLIENT_ADDRESS = "192.168.100.10"
    MODEM_ADDRESS = "192.168.100.1"
    HUB_ADDRESS = "185.12.0.1"
    PEP_ADDRESS = "185.12.0.2"

    def __init__(self, params: GeoParams | None = None, seed: int = 0,
                 epoch_t: float = 0.0, pep_enabled: bool = True,
                 pep_policy: PepPolicy | None = None,
                 capacity_share: float = 1.0):
        if not 0.0 < capacity_share <= 1.0:
            raise ConfigurationError(
                f"capacity_share must be within (0, 1], "
                f"got {capacity_share!r}")
        self.params = params or GeoParams()
        self.seed = seed
        self.epoch_t = epoch_t
        self.pep_enabled = pep_enabled
        self.pep_policy = pep_policy or PepPolicy()
        #: Fraction of the terminal's bandwidth-on-demand allocation
        #: this access instance models. Per-connection work-unit
        #: shards set ``1/N`` so N single-flow accesses stand in for
        #: N flows contending on one terminal; capacity means, their
        #: clamps, and the bufferbloat queues scale together so each
        #: flow sees its fair share of both rate and buffer.
        self.capacity_share = capacity_share
        self.path_model = GeoPathModel(self.params, seed=seed)
        share = capacity_share
        self.downlink = CapacityProcess(
            self.params.down_mean_bps * share, slot_cv=0.10,
            seed=seed * 11 + 3,
            min_rate=mbps(35) * share, max_rate=mbps(100) * share)
        self.uplink = CapacityProcess(
            self.params.up_mean_bps * share, slot_cv=0.35,
            seed=seed * 11 + 4,
            min_rate=mbps(0.8) * share, max_rate=mbps(10) * share)
        self.net = Network(Simulator(start_time=epoch_t))
        self._build()

    @property
    def sim(self):
        """The simulator driving this access network."""
        return self.net.sim

    @property
    def client(self):
        """PC-SatCom."""
        return self.net.host("client")

    @property
    def has_pep(self) -> bool:
        """Whether a PEP accelerates TCP on this access."""
        return self.pep_enabled

    def _build(self) -> None:
        p = self.params
        self.net.add_host("client", self.CLIENT_ADDRESS)
        self.net.add_nat("modem", self.MODEM_ADDRESS,
                         inside_neighbor="client")
        self.net.add_router("hub", self.HUB_ADDRESS)

        self.net.connect("client", "modem", rate_ab=p.lan_rate_bps,
                         rate_ba=p.lan_rate_bps, delay=p.lan_delay_s)

        up_rng = make_rng((self.seed, "geo-jitter", "up"))
        down_rng = make_rng((self.seed, "geo-jitter", "down"))

        def up_delay(now: float) -> float:
            return self.path_model.one_way_delay(now, up_rng, "up")

        def down_delay(now: float) -> float:
            return self.path_model.one_way_delay(now, down_rng, "down")

        share = self.capacity_share
        self.space_link = self.net.connect(
            "modem", "hub",
            rate_ab=self.uplink.rate_at, rate_ba=self.downlink.rate_at,
            delay=up_delay, delay_ba=down_delay,
            queue_ab=DropTailQueue(
                capacity_bytes=max(1, int(p.up_queue_bytes * share))),
            queue_ba=DropTailQueue(
                capacity_bytes=max(1, int(p.down_queue_bytes * share))),
            loss_ab=self._loss_model("up"), loss_ba=self._loss_model("down"))

        if self.pep_enabled:
            pep = PepBox(self.net.sim, "pep", self.PEP_ADDRESS,
                         policy=self.pep_policy)
            self.net.nodes["pep"] = pep
            self.net.connect("hub", "pep", rate_ab=gbps(10),
                             rate_ba=gbps(10), delay=ms(0.05))
            self._core_attach = "pep"
        else:
            self._core_attach = "hub"

    def _loss_model(self, direction: str) -> TimedGilbertElliottLoss:
        p = self.params
        return TimedGilbertElliottLoss(
            mean_good_s=p.mean_good_s, mean_bad_s=p.mean_bad_s,
            loss_bad=0.9,
            rng=make_rng((self.seed, "geo-loss", direction)))

    def add_remote_host(self, name: str, address: str,
                        location: GeoPoint,
                        access_rate_bps: float = gbps(1),
                        server_lan_delay_s: float = ms(0.3)):
        """Attach a server reachable through the hub-side core."""
        host = self.net.add_host(name, address)
        delay = fiber_path_delay(TELEPORT, location) + server_lan_delay_s
        self.net.connect(self._core_attach, name, rate_ab=access_rate_bps,
                         rate_ba=access_rate_bps, delay=delay)
        return host

    def finalize(self) -> None:
        """Install routes; call after all remote hosts are added."""
        self.net.finalize()

    def run(self, duration: float) -> None:
        """Run the simulation ``duration`` seconds past the epoch."""
        self.net.sim.run(until=self.net.sim.now + duration)
