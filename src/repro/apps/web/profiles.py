"""Access profiles for the browser engine.

Builders derive an :class:`~repro.apps.web.browser.AccessProfile`
from each access technology's path/capacity models, so browsing uses
the same latency and bandwidth processes as everything else.
"""

from __future__ import annotations

import random

from repro.apps.web.browser import AccessProfile
from repro.geo.satcom import GeoParams, GeoPathModel
from repro.leo.access import StarlinkParams, StarlinkPathModel
from repro.leo.channel import CapacityProcess
from repro.units import mbps, ms
from repro.wired.access import WiredParams, WiredPathModel

#: Typical web servers sit in well-connected data centres a few
#: milliseconds from the exit PoP / teleport / campus edge.
SERVER_EXTRA_RTT = ms(6.0)


def starlink_profile(epoch_t: float = 0.0, seed: int = 0,
                     params: StarlinkParams | None = None
                     ) -> AccessProfile:
    """Browser view of the Starlink access at a campaign epoch."""
    model = StarlinkPathModel(params=params, seed=seed)
    downlink = CapacityProcess(
        (params or StarlinkParams()).down_mean_bps,
        slot_cv=0.22, seed=seed * 7 + 1, min_rate=mbps(90),
        max_rate=mbps(400))
    scale = model.timeline.capacity_scale(epoch_t)

    def rtt(rng: random.Random) -> float:
        return model.idle_rtt(epoch_t + rng.uniform(0, 10.0), rng,
                              remote_rtt_s=SERVER_EXTRA_RTT)

    def bandwidth(rng: random.Random) -> float:
        return downlink.rate_at(epoch_t + rng.uniform(0, 15.0)) * scale

    return AccessProfile(
        name="starlink", rtt_sampler=rtt, bandwidth_sampler=bandwidth,
        uplink_bps=(params or StarlinkParams()).up_mean_bps,
        has_pep=False)


def satcom_profile(epoch_t: float = 0.0, seed: int = 0,
                   params: GeoParams | None = None,
                   pep: bool = True) -> AccessProfile:
    """Browser view of the GEO SatCom access."""
    model = GeoPathModel(params, seed=seed)
    params = params or GeoParams()
    downlink = CapacityProcess(
        params.down_mean_bps, slot_cv=0.10, seed=seed * 11 + 3,
        min_rate=mbps(35), max_rate=mbps(100))

    def rtt(rng: random.Random) -> float:
        return model.idle_rtt(epoch_t + rng.uniform(0, 10.0), rng,
                              remote_rtt_s=SERVER_EXTRA_RTT)

    def bandwidth(rng: random.Random) -> float:
        return downlink.rate_at(epoch_t + rng.uniform(0, 15.0))

    return AccessProfile(
        name="satcom", rtt_sampler=rtt, bandwidth_sampler=bandwidth,
        uplink_bps=params.up_mean_bps, has_pep=pep,
        # Legacy TLS negotiation is common through SatCom portals.
        tls_rtts=2.0)


def wired_profile(epoch_t: float = 0.0, seed: int = 0,
                  params: WiredParams | None = None) -> AccessProfile:
    """Browser view of the campus wired access."""
    model = WiredPathModel(params, seed=seed)
    params = params or WiredParams()

    def rtt(rng: random.Random) -> float:
        return model.idle_rtt(epoch_t + rng.uniform(0, 10.0), rng,
                              remote_rtt_s=SERVER_EXTRA_RTT)

    def bandwidth(rng: random.Random) -> float:
        return params.access_rate_bps * rng.uniform(0.7, 0.95)

    return AccessProfile(
        name="wired", rtt_sampler=rtt, bandwidth_sampler=bandwidth,
        uplink_bps=params.access_rate_bps, has_pep=False)
