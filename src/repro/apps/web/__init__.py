"""Web-browsing QoE measurement (BrowserTime stand-in).

A synthetic corpus of popular websites (:mod:`corpus`, :mod:`page`)
is visited by a flow-level browser engine (:mod:`browser`) over an
access profile derived from the simulated networks
(:mod:`profiles`); the engine computes onLoad and SpeedIndex, the
two QoE proxies the paper uses (Fig. 6).
"""

from repro.apps.web.page import Page, PageObject, ObjectKind
from repro.apps.web.corpus import build_corpus, top_sites
from repro.apps.web.browser import (
    AccessProfile,
    BrowserEngine,
    VisitResult,
)

__all__ = [
    "Page",
    "PageObject",
    "ObjectKind",
    "build_corpus",
    "top_sites",
    "AccessProfile",
    "BrowserEngine",
    "VisitResult",
]
