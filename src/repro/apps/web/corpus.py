"""Synthetic top-120 website corpus.

The paper visits the SimilarWeb top-120 websites for Belgium. We
cannot ship those pages, so we generate a corpus whose aggregate
statistics follow published web-measurement distributions (HTTP
Archive, circa 2022): median page weight ~2 MB, ~70 objects, ~15
connections per visit (the number the paper reports), lognormal
object sizes by content type.
"""

from __future__ import annotations

import math

from repro.apps.web.page import ObjectKind, Page, PageObject
from repro.rng import make_rng

#: Object-size lognormal parameters per kind: (median bytes, sigma).
SIZE_MODELS = {
    ObjectKind.HTML: (30_000, 0.9),
    ObjectKind.CSS: (18_000, 1.0),
    ObjectKind.JS: (45_000, 1.0),
    ObjectKind.FONT: (35_000, 0.6),
    ObjectKind.IMAGE: (18_000, 1.2),
    ObjectKind.MEDIA: (250_000, 1.0),
    ObjectKind.OTHER: (8_000, 1.0),
}


def _lognormal(rng, median: float, sigma: float) -> int:
    return max(200, int(median * math.exp(rng.gauss(0.0, sigma))))


def _site_name(rank: int) -> str:
    return f"site{rank:03d}.example.be"


def build_page(rank: int, seed: int = 0) -> Page:
    """Generate one deterministic synthetic page for a site rank."""
    rng = make_rng((seed, "page", rank))
    site = _site_name(rank)
    page = Page(url=f"https://www.{site}/", rank=rank)

    # Popular sites are a bit heavier and use more third parties.
    popularity = max(0.6, 1.4 - rank / 120.0)
    n_third_parties = max(2, int(rng.gauss(6, 2) * popularity))
    third_parties = [f"cdn{j}.thirdparty{j % 7}.example"
                     for j in range(n_third_parties)]

    # Wave 1: the document itself.
    page.objects.append(PageObject(
        ObjectKind.HTML, _lognormal(rng, *SIZE_MODELS[ObjectKind.HTML]),
        domain=site, wave=1, render_weight=0.1, above_fold=True))

    # Wave 2: render-critical subresources (CSS/JS/fonts).
    n_css = rng.randint(2, 6)
    n_js = max(3, int(rng.gauss(14, 5) * popularity))
    n_fonts = rng.randint(0, 4)
    for i in range(n_css):
        domain = site if rng.random() < 0.6 else rng.choice(third_parties)
        page.objects.append(PageObject(
            ObjectKind.CSS, _lognormal(rng, *SIZE_MODELS[ObjectKind.CSS]),
            domain=domain, wave=2, render_weight=0.08, above_fold=True))
    for i in range(n_js):
        domain = site if rng.random() < 0.4 else rng.choice(third_parties)
        page.objects.append(PageObject(
            ObjectKind.JS, _lognormal(rng, *SIZE_MODELS[ObjectKind.JS]),
            domain=domain, wave=2,
            render_weight=0.02 if rng.random() < 0.5 else 0.0,
            above_fold=rng.random() < 0.3))
    for i in range(n_fonts):
        page.objects.append(PageObject(
            ObjectKind.FONT,
            _lognormal(rng, *SIZE_MODELS[ObjectKind.FONT]),
            domain=rng.choice(third_parties), wave=2,
            render_weight=0.05, above_fold=True))

    # Wave 3: images, media, trackers.
    n_images = max(6, int(rng.gauss(30, 12) * popularity))
    for i in range(n_images):
        above = rng.random() < 0.35
        domain = site if rng.random() < 0.5 else rng.choice(third_parties)
        page.objects.append(PageObject(
            ObjectKind.IMAGE,
            _lognormal(rng, *SIZE_MODELS[ObjectKind.IMAGE]),
            domain=domain, wave=3,
            render_weight=0.25 / n_images * (3.0 if above else 1.0),
            above_fold=above))
    if rng.random() < 0.25:
        page.objects.append(PageObject(
            ObjectKind.MEDIA,
            _lognormal(rng, *SIZE_MODELS[ObjectKind.MEDIA]),
            domain=rng.choice(third_parties), wave=3,
            render_weight=0.05, above_fold=False))
    n_other = rng.randint(3, 12)
    for i in range(n_other):
        page.objects.append(PageObject(
            ObjectKind.OTHER,
            _lognormal(rng, *SIZE_MODELS[ObjectKind.OTHER]),
            domain=rng.choice(third_parties), wave=3))
    return page


def build_corpus(n_sites: int = 120, seed: int = 0) -> list[Page]:
    """The full synthetic top-N corpus (deterministic for a seed)."""
    return [build_page(rank, seed=seed) for rank in range(1, n_sites + 1)]


def top_sites(n: int = 120) -> list[str]:
    """Site hostnames, most popular first."""
    return [_site_name(rank) for rank in range(1, n + 1)]
