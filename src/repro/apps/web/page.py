"""Page model: objects, domains, discovery waves.

A page is a set of objects grouped in *waves*: the HTML document
(wave 1) references stylesheets/scripts/fonts (wave 2), which in turn
reveal images and media (wave 3). The wave structure is what makes
page loads latency-bound on high-RTT links: each wave costs at least
one round of requests, and new domains cost connection setups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ObjectKind(enum.Enum):
    """Content type of one page object."""

    HTML = "html"
    CSS = "css"
    JS = "js"
    FONT = "font"
    IMAGE = "image"
    MEDIA = "media"
    OTHER = "other"


@dataclass(frozen=True)
class PageObject:
    """One fetchable resource."""

    kind: ObjectKind
    size_bytes: int
    domain: str
    wave: int
    #: Contribution to visual completeness (SpeedIndex weighting).
    render_weight: float = 0.0
    above_fold: bool = False


@dataclass
class Page:
    """A synthetic website landing page."""

    url: str
    rank: int
    objects: list[PageObject] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Page weight."""
        return sum(obj.size_bytes for obj in self.objects)

    @property
    def domains(self) -> list[str]:
        """Distinct domains, in first-appearance order."""
        seen: list[str] = []
        for obj in self.objects:
            if obj.domain not in seen:
                seen.append(obj.domain)
        return seen

    @property
    def object_count(self) -> int:
        """Number of objects."""
        return len(self.objects)

    def wave_objects(self, wave: int) -> list[PageObject]:
        """Objects discovered in a given wave."""
        return [obj for obj in self.objects if obj.wave == wave]

    @property
    def max_wave(self) -> int:
        """Deepest discovery wave present."""
        return max(obj.wave for obj in self.objects)
