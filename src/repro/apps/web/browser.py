"""Flow-level browser engine.

Packet-level simulation of thousands of visits x dozens of objects
would dominate the compute budget, so visits are modelled at flow
level: per-connection setup latency (DNS + TCP + TLS, each costing
round trips sampled from the access path model), per-wave request
rounds, slow-start rounds when no PEP hides them, and bandwidth
sharing on the access bottleneck. DESIGN.md records this hybrid; a
packet-level single-page cross-check lives in the ablation bench.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.apps.outcome import MeasurementOutcome, outcome_field
from repro.apps.web.page import Page
from repro.rng import make_rng

#: HTTP/1.1 browsers open at most six connections per domain.
MAX_CONNECTIONS_PER_DOMAIN = 6

#: TCP initial window for slow-start round estimation, bytes.
INITIAL_WINDOW_BYTES = 10 * 1400


@dataclass
class AccessProfile:
    """What the browser sees of one access technology.

    ``rtt_sampler(rng)`` returns one fresh RTT sample to a typical
    web server (seconds); ``bandwidth_sampler(rng)`` one downlink
    capacity sample (bit/s). ``has_pep`` controls whether slow-start
    rounds are hidden by a split proxy.
    """

    name: str
    rtt_sampler: Callable[[random.Random], float]
    bandwidth_sampler: Callable[[random.Random], float]
    uplink_bps: float
    has_pep: bool = False
    #: Probability a DNS answer is already cached.
    dns_cache_hit: float = 0.5
    #: Server think time gamma parameters (shape, scale seconds).
    server_think: tuple[float, float] = (2.0, 0.030)
    #: Round trips spent in the TLS handshake (1.5 for TLS 1.3 with
    #: typical stacks; legacy paths negotiate closer to 2).
    tls_rtts: float = 1.5
    #: Browser parse/JS-execution time per wave: gamma (shape, scale)
    #: plus a per-object increment, seconds.
    cpu_per_wave: tuple[float, float] = (2.0, 0.050)
    cpu_per_object: float = 0.003
    #: Visit-level condition variability: every visit draws one
    #: lognormal factor applied to all its RTTs (time-of-visit load,
    #: CDN cache state, ...). Sigma in log space.
    visit_rtt_sigma: float = 0.22


@dataclass
class VisitResult:
    """Timing outcome of one page visit."""

    url: str
    onload_s: float
    speed_index_s: float
    first_paint_s: float
    n_connections: int
    #: Individual connection-setup durations (TCP+TLS), seconds.
    connection_setup_s: list[float] = field(default_factory=list)
    total_bytes: int = 0
    outcome: MeasurementOutcome = outcome_field()


class BrowserEngine:
    """Simulates page visits over an access profile.

    ``visit_deadline_s`` is the watchdog a real browser harness puts
    on each page load: a visit whose onload exceeds it is classified
    ``timed_out`` (metrics are still reported — data, not a crash).
    """

    def __init__(self, profile: AccessProfile, seed: int = 0,
                 visit_deadline_s: float | None = None):
        self.profile = profile
        self.seed = seed
        self.visit_deadline_s = visit_deadline_s

    def visit(self, page: Page, visit_id: int = 0) -> VisitResult:
        """One visit; deterministic for (page, visit_id, seed)."""
        rng = make_rng((self.seed, self.profile.name, page.url, visit_id))
        profile = self.profile
        bandwidth = max(1e5, profile.bandwidth_sampler(rng))
        visit_factor = rng.lognormvariate(0.0, profile.visit_rtt_sigma)
        base_sampler = profile.rtt_sampler
        self._rtt = lambda r: base_sampler(r) * visit_factor

        connected: set[str] = set()
        setup_times: list[float] = []
        completion_times: list[tuple[float, float]] = []  # (t, weight)
        n_connections = 0
        first_paint = None

        t = 0.0
        for wave in range(1, page.max_wave + 1):
            objects = page.wave_objects(wave)
            if not objects:
                continue
            by_domain: dict[str, list] = {}
            for obj in objects:
                by_domain.setdefault(obj.domain, []).append(obj)

            # Latency phase: per-domain setups and request rounds run
            # in parallel across domains; the wave's latency is the
            # slowest domain.
            wave_latency = 0.0
            wave_bytes = 0
            for domain, domain_objects in by_domain.items():
                latency = 0.0
                n_conns = min(MAX_CONNECTIONS_PER_DOMAIN,
                              len(domain_objects))
                if domain not in connected:
                    setup = self._connection_setup(rng)
                    setup_times.extend([setup] * n_conns)
                    n_connections += n_conns
                    connected.add(domain)
                    latency += self._dns(rng) + setup
                rounds = math.ceil(len(domain_objects) / n_conns)
                rtt = self._rtt(rng)
                think = rng.gammavariate(*profile.server_think)
                latency += rounds * (rtt + think)
                if not profile.has_pep:
                    # Slow-start rounds per connection for the bytes
                    # it must deliver in this wave.
                    per_conn = (sum(o.size_bytes for o in domain_objects)
                                / n_conns)
                    if per_conn > INITIAL_WINDOW_BYTES:
                        ss_rounds = math.log2(
                            per_conn / INITIAL_WINDOW_BYTES)
                        latency += min(ss_rounds, 8.0) * rtt
                wave_latency = max(wave_latency, latency)
                wave_bytes += sum(o.size_bytes for o in domain_objects)

            transfer = wave_bytes * 8.0 / bandwidth
            cpu = (rng.gammavariate(*profile.cpu_per_wave)
                   + profile.cpu_per_object * len(objects))
            wave_start = t
            t += wave_latency + transfer + cpu

            # Approximate per-object completion: objects complete
            # spread across the wave window, weighted by size order.
            window = t - wave_start
            total = max(1, wave_bytes)
            acc = 0
            for obj in sorted(objects, key=lambda o: o.size_bytes):
                acc += obj.size_bytes
                finish = wave_start + window * (0.5 + 0.5 * acc / total)
                if obj.render_weight > 0:
                    completion_times.append((finish, obj.render_weight))
            if wave == 2 and first_paint is None:
                first_paint = t
        if first_paint is None:
            first_paint = t

        onload = t + 0.05  # event dispatch overhead
        speed_index = self._speed_index(first_paint, completion_times)
        deadline = self.visit_deadline_s
        if deadline is not None and onload > deadline:
            outcome = MeasurementOutcome(
                "timed_out",
                detail=f"onload {onload:.1f}s exceeded the "
                       f"{deadline:.0f}s visit deadline",
                elapsed_s=deadline)
        else:
            outcome = MeasurementOutcome(elapsed_s=onload)
        return VisitResult(
            url=page.url, onload_s=onload, speed_index_s=speed_index,
            first_paint_s=first_paint, n_connections=n_connections,
            connection_setup_s=setup_times,
            total_bytes=page.total_bytes, outcome=outcome)

    # -- components -----------------------------------------------------

    def _dns(self, rng: random.Random) -> float:
        if rng.random() < self.profile.dns_cache_hit:
            return 0.0
        return self._rtt(rng)

    def _connection_setup(self, rng: random.Random) -> float:
        """TCP + TLS 1.3 setup: 2.5 RTT-equivalents plus overhead.

        This is the quantity the paper reports as 167 ms (Starlink)
        vs 2030 ms (SatCom) on average.
        """
        tcp = self._rtt(rng)
        tls = self.profile.tls_rtts * self._rtt(rng)
        return tcp + tls + rng.gammavariate(2.0, 0.008)

    @staticmethod
    def _speed_index(first_paint: float,
                     completions: list[tuple[float, float]]) -> float:
        """SpeedIndex = integral of (1 - visual completeness).

        Visual completeness jumps to a base level at first paint and
        then accrues with each render-weighted object completion.
        """
        base = 0.30
        if not completions:
            return first_paint
        total_weight = sum(w for _, w in completions)
        if total_weight <= 0:
            return first_paint
        si = base * first_paint
        remaining = 1.0 - base
        for finish, weight in sorted(completions):
            share = (weight / total_weight) * remaining
            si += share * max(first_paint, finish)
        return si
