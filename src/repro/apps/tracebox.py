"""Tracebox: middlebox detection via quoted-header comparison.

Tracebox sends TCP SYN probes with increasing TTL and compares the
headers quoted in the returning ICMP Time-Exceeded messages with what
it sent. A hop that changed a field sits between the previous hop and
the one whose quote first shows the change. On Starlink the paper
found only NAT checksum rewrites and no PEP; on classic SatCom a PEP
answers the SYN itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.apps.outcome import MeasurementOutcome, outcome_field
from repro.netsim.node import Host
from repro.netsim.packet import IcmpMessage, IcmpType, Packet, Protocol

_probe_idents = itertools.count(0x7000)

#: Fields Tracebox can compare between sent and quoted headers.
OBSERVABLE_FIELDS = ("checksum", "tcp_seq", "tcp_options", "src",
                     "src_port")


@dataclass
class TraceboxFinding:
    """Header modifications observed at one TTL."""

    ttl: int
    hop_address: str
    modified_fields: dict[str, tuple[object, object]] = field(
        default_factory=dict)

    @property
    def transparent(self) -> bool:
        """No modification visible at this hop."""
        return not self.modified_fields


@dataclass
class TraceboxReport:
    """Full probe outcome toward one destination."""

    target: str
    findings: list[TraceboxFinding]
    #: Whether the TCP handshake completed with the destination
    #: itself (False means something answered on its behalf -- a PEP).
    syn_ack_from_destination: bool = False
    syn_ack_source: str | None = None

    #: Header fields observed on the SYN-ACK itself.
    syn_ack_headers: dict = field(default_factory=dict)
    outcome: MeasurementOutcome = outcome_field()

    @property
    def pep_detected(self) -> bool:
        """A proxy interfered with TCP: the SYN-ACK was generated or
        rewritten by a middlebox, or quotes show seq/option rewrites."""
        if self.syn_ack_headers.get("pep"):
            return True
        if self.syn_ack_headers.get("tcp_options") == "pep-rewritten":
            return True
        return any("tcp_seq" in f.modified_fields
                   or "tcp_options" in f.modified_fields
                   for f in self.findings)

    @property
    def nat_levels(self) -> int:
        """Number of address-translation layers on the path.

        Each NAT rewrites the transport checksum, so the quoted
        checksum changes once per NAT as the TTL sweep crosses it.
        """
        levels = 0
        current = None   # sent value is per-TTL; track quoted stream
        for finding in self.findings:
            pair = finding.modified_fields.get("checksum")
            quoted = pair[1] if pair else "unmodified"
            if current is not None and quoted != current:
                levels += 1
            elif current is None and pair is not None:
                levels += 1
            current = quoted
        return levels


def tracebox(host: Host, target: str, target_port: int = 80,
             max_ttl: int = 16,
             probe_timeout: float = 4.0) -> TraceboxReport:
    """Probe the path to ``target`` with TTL-limited TCP SYNs."""
    sim = host.sim
    ident = next(_probe_idents)
    sent_headers: dict[int, dict] = {}
    findings: dict[int, TraceboxFinding] = {}
    syn_ack = {"from": None}

    def on_icmp(packet: Packet) -> None:
        message: IcmpMessage = packet.payload
        if message.icmp_type is not IcmpType.TIME_EXCEEDED:
            return
        quoted = message.quoted_headers or {}
        ttl = quoted.get("probe_ttl")
        if ttl is None or ttl in findings:
            return
        sent = sent_headers.get(ttl, {})
        modified = {}
        for fieldname in OBSERVABLE_FIELDS:
            if fieldname not in sent:
                continue
            if quoted.get(fieldname) != sent[fieldname]:
                modified[fieldname] = (sent[fieldname],
                                       quoted.get(fieldname))
        findings[ttl] = TraceboxFinding(
            ttl=ttl, hop_address=message.origin,
            modified_fields=modified)

    def on_tcp(packet: Packet) -> None:
        if packet.payload and packet.payload[0] == "ctrl" \
                and packet.payload[1] == "SYN-ACK":
            if syn_ack["from"] is None:
                syn_ack["from"] = packet.src
                syn_ack["headers"] = dict(packet.headers)

    start = sim.now
    host.bind_icmp(ident, on_icmp)
    local_port = host.allocate_port()
    host.bind(Protocol.TCP, local_port, on_tcp)
    try:
        for ttl in range(1, max_ttl + 1):
            headers = {
                "probe_ident": ident, "probe_ttl": ttl,
                "tcp_seq": 1_000_000 + ttl,
                "tcp_options": "mss;ws;sackOK;ts",
                "tcp_flags": "SYN",
            }
            packet = Packet(
                src=host.address, dst=target, protocol=Protocol.TCP,
                size=60, src_port=local_port, dst_port=target_port,
                ttl=ttl, payload=("ctrl", "SYN"), headers=headers)
            sent_headers[ttl] = dict(packet.headers)
            host.send(packet)
        sim.run(until=sim.now + probe_timeout)
    finally:
        # Unconditional unbind: a probe swallowed by a permanent
        # outage must not leave listeners behind.
        host.unbind_icmp(ident)
        host.unbind(Protocol.TCP, local_port)

    elapsed = sim.now - start
    if not findings and syn_ack["from"] is None:
        outcome = MeasurementOutcome(
            "unreachable",
            detail=f"no hop and no SYN-ACK within {probe_timeout:.0f}s",
            elapsed_s=elapsed)
    else:
        outcome = MeasurementOutcome(elapsed_s=elapsed)

    return TraceboxReport(
        target=target,
        findings=[findings[ttl] for ttl in sorted(findings)],
        syn_ack_from_destination=(syn_ack["from"] == target),
        syn_ack_source=syn_ack["from"],
        syn_ack_headers=syn_ack.get("headers", {}),
        outcome=outcome)
