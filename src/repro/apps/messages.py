"""Low-bitrate QUIC message workload.

The paper's second QUIC workload mimics real-time video traffic:
25 variable-length messages per second for two minutes, 5-25 kB per
message (~3 Mbit/s on average), far below the link capacities. Each
message rides its own stream; quiche's lack of pacing means a 25 kB
message leaves as a back-to-back burst of ~19 packets, which is what
inflates the upload RTT tail (Sec. 3.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.outcome import MeasurementOutcome, outcome_field
from repro.errors import MeasurementError
from repro.netsim.node import Host
from repro.rng import make_rng
from repro.transport.quic import QuicConfig, QuicServer, open_connection
from repro.units import kb, to_mbps

#: Paper parameters.
MESSAGES_PER_SECOND = 25
MESSAGE_MIN_BYTES = kb(5)
MESSAGE_MAX_BYTES = kb(25)
DEFAULT_DURATION_S = 120.0


@dataclass
class MessagesResult:
    """Measurements from one messages-workload run."""

    direction: str
    messages_sent: int
    messages_completed: int
    #: Per-message completion latency (send -> fully received).
    message_latencies_s: list[float] = field(default_factory=list)
    #: (time, rtt) per acknowledged packet on the sender.
    rtt_samples: list[tuple[float, float]] = field(default_factory=list)
    receiver_lost_pns: list[int] = field(default_factory=list)
    receiver_max_pn: int = 0
    loss_burst_lengths: list[int] = field(default_factory=list)
    loss_event_durations_s: list[float] = field(default_factory=list)
    bytes_sent: int = 0
    duration_s: float = 0.0
    outcome: MeasurementOutcome = outcome_field()

    @property
    def loss_ratio(self) -> float:
        """Receiver-observed loss ratio."""
        if self.receiver_max_pn <= 0:
            return 0.0
        return len(self.receiver_lost_pns) / (self.receiver_max_pn + 1)

    @property
    def average_bitrate_mbps(self) -> float:
        """Application send rate, Mbit/s."""
        if self.duration_s <= 0:
            return 0.0
        return to_mbps(self.bytes_sent * 8.0 / self.duration_s)


def run_messages_workload(client: Host, server: Host, direction: str,
                          duration_s: float = DEFAULT_DURATION_S,
                          rate_per_s: float = MESSAGES_PER_SECOND,
                          port: int = 4433, seed: int = 0,
                          tail_s: float = 3.0,
                          config: QuicConfig | None = None
                          ) -> MessagesResult:
    """Run the 25 msg/s workload in one direction.

    For downloads the server emits the messages (triggered by a tiny
    client request); for uploads the client does. Drives the
    simulator for ``duration_s`` plus a drain tail. ``config``
    applies to both endpoints (arrival recording is forced on — the
    loss analysis needs it).
    """
    if direction not in ("down", "up"):
        raise MeasurementError(
            f"messages workload: direction must be down/up, "
            f"got {direction!r}")
    sim = client.sim
    rng = make_rng((seed, "messages", direction))
    config = config or QuicConfig()
    config.record_arrivals = True

    state = {"sender": None, "receiver": None, "server_conn": None}
    completions: dict[int, float] = {}
    send_times: dict[int, float] = {}

    def on_server_connection(conn) -> None:
        state["server_conn"] = conn
        conn.on_stream_complete = on_complete

    def on_complete(stream_id: int, nbytes: int, now: float) -> None:
        completions[stream_id] = now

    q_server = QuicServer(server, port, config=config,
                          on_connection=on_server_connection)
    q_client = open_connection(client, server.address, port,
                               config=config)
    q_client.on_stream_complete = on_complete
    q_client.connect()

    sent = {"count": 0, "bytes": 0}
    start = sim.now

    def send_one() -> None:
        sender = q_client if direction == "up" else state["server_conn"]
        if sender is None or not sender.established:
            return
        size = rng.randint(MESSAGE_MIN_BYTES, MESSAGE_MAX_BYTES)
        stream_id = sender.open_stream()
        send_times[stream_id] = sim.now
        sender.stream_write(stream_id, size, fin=True)
        sent["count"] += 1
        sent["bytes"] += size

    interval = 1.0 / rate_per_s
    n_messages = int(duration_s * rate_per_s)
    for i in range(n_messages):
        # Tiny deterministic phase dither avoids pathological
        # alignment with the 15 ms scheduling frames.
        sim.schedule(0.05 + i * interval + rng.uniform(0, 1e-3),
                     send_one)
    sim.run(until=start + duration_s + tail_s)

    receiver = (state["server_conn"] if direction == "up" else q_client)
    result = MessagesResult(
        direction=direction, messages_sent=sent["count"],
        messages_completed=len(completions),
        bytes_sent=sent["bytes"], duration_s=duration_s)
    for stream_id, done_at in completions.items():
        started = send_times.get(stream_id)
        if started is not None:
            result.message_latencies_s.append(done_at - started)
    sender_conn = q_client if direction == "up" else state["server_conn"]
    if sender_conn is not None:
        result.rtt_samples = list(sender_conn.stats.acked_packet_rtts)
    if receiver is not None:
        result.receiver_lost_pns = receiver.receiver_lost_pns()
        max_pn = receiver.received_pns.max_value
        result.receiver_max_pn = max_pn if max_pn is not None else 0
        result.loss_burst_lengths = [
            length for _, length in receiver.received_pns.gap_runs()]
        arrival = dict(receiver.arrival_log)
        for gap_start, length in receiver.received_pns.gap_runs():
            before = arrival.get(gap_start - 1)
            after = arrival.get(gap_start + length)
            if before is not None and after is not None and after > before:
                result.loss_event_durations_s.append(after - before)

    # Outcome classification: the run window always terminates; what
    # can fail under adverse conditions is the connection (never
    # established -> nothing sent) or delivery (messages sent but
    # none completed inside the window).
    elapsed = sim.now - start
    if sent["count"] == 0:
        result.outcome = MeasurementOutcome(
            "unreachable",
            detail="connection never established; no message sent",
            elapsed_s=elapsed)
    elif not completions:
        result.outcome = MeasurementOutcome(
            "stalled",
            detail=f"{sent['count']} message(s) sent, none delivered",
            elapsed_s=elapsed)
    else:
        result.outcome = MeasurementOutcome(elapsed_s=elapsed)

    q_client.close()
    q_server.close()
    return result
