"""Wehe-style traffic-discrimination detection.

Wehe replays a recorded application trace (with its real payload
signatures, so DPI-based shapers classify it) and then replays the
same trace with randomized bytes (unclassifiable). A significant
throughput difference between the two replays exposes traffic
discrimination. The paper ran the full Wehe suite ten times over
Starlink and found no differentiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.node import Host
from repro.netsim.packet import Packet, Protocol

#: Replay traces of popular services (name, packet size, packets/s,
#: duration). Rates approximate streaming/call bitrates.
SERVICE_TRACES = {
    "netflix": (1200, 11_700, 8.0),    # ~14 Mbit/s HD stream
    "youtube": (1200, 8_300, 8.0),     # ~10 Mbit/s
    "zoom": (900, 2_800, 8.0),         # ~2.5 Mbit/s call
    "skype": (900, 2_200, 8.0),        # ~2.0 Mbit/s call
    "twitch": (1200, 6_700, 8.0),      # ~8 Mbit/s
}


@dataclass
class ReplayOutcome:
    """Delivery statistics of one replay."""

    service: str
    randomized: bool
    packets_sent: int
    packets_received: int
    bytes_received: int
    duration_s: float

    @property
    def throughput_bps(self) -> float:
        """Delivered rate, bit/s."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_received * 8.0 / self.duration_s


@dataclass
class WeheResult:
    """Paired original/randomized replays for one service."""

    service: str
    original: ReplayOutcome
    randomized: ReplayOutcome
    #: Relative throughput difference that flags discrimination.
    threshold: float = 0.20

    @property
    def differentiation_detected(self) -> bool:
        """True when the original replay is significantly slower."""
        rand_rate = self.randomized.throughput_bps
        if rand_rate <= 0:
            return False
        delta = (rand_rate - self.original.throughput_bps) / rand_rate
        return delta > self.threshold


def _replay(client: Host, server: Host, service: str,
            randomized: bool, port: int) -> ReplayOutcome:
    """Replay one trace downstream (server -> client) and count it at
    the client -- streaming traffic is downlink-dominated, and that
    is the direction Wehe's video replays exercise."""
    sim = client.sim
    size, count, duration = SERVICE_TRACES[service]
    interval = duration / count
    received = {"packets": 0, "bytes": 0}

    def on_packet(packet: Packet) -> None:
        received["packets"] += 1
        received["bytes"] += packet.size

    client.bind(Protocol.UDP, port, on_packet)
    src_port = server.allocate_port()

    def send_one() -> None:
        headers = {} if randomized else {"service": service}
        server.send(Packet(
            src=server.address, dst=client.address,
            protocol=Protocol.UDP, size=size, src_port=src_port,
            dst_port=port, headers=headers,
            payload=("wehe", service, randomized)))

    start = sim.now
    for i in range(count):
        sim.schedule(i * interval, send_one)
    sim.run(until=start + duration + 2.0)
    client.unbind(Protocol.UDP, port)
    return ReplayOutcome(
        service=service, randomized=randomized, packets_sent=count,
        packets_received=received["packets"],
        bytes_received=received["bytes"],
        duration_s=duration)


def run_wehe_test(client: Host, server: Host, service: str,
                  port: int = 8443) -> WeheResult:
    """Run the original + randomized replay pair for one service.

    The classifier of any in-path shaper sees the service signature
    only on the original replay (modelled as a header tag -- the
    stand-in for DPI-visible payload bytes).
    """
    if service not in SERVICE_TRACES:
        raise ValueError(f"unknown service {service!r}; "
                         f"choose from {sorted(SERVICE_TRACES)}")
    original = _replay(client, server, service, randomized=False,
                       port=port)
    randomized = _replay(client, server, service, randomized=True,
                         port=port + 1)
    return WeheResult(service=service, original=original,
                      randomized=randomized)
