"""Measurement applications (the paper's tooling).

* :mod:`ping` -- ICMP echo probes (the 5-month latency campaign);
* :mod:`traceroute` / :mod:`tracebox` -- path and middlebox discovery;
* :mod:`speedtest` -- Ookla-like multi-connection TCP throughput;
* :mod:`bulk` -- HTTP/3 100 MB transfers over QUIC;
* :mod:`messages` -- the 25 msg/s low-bitrate QUIC workload;
* :mod:`wehe` -- traffic-discrimination detection;
* :mod:`web` -- browser-visit simulation with onLoad / SpeedIndex.
"""

from repro.apps.ping import PingClient, PingResult, ping
from repro.apps.traceroute import traceroute, TracerouteHop
from repro.apps.tracebox import tracebox, TraceboxFinding
from repro.apps.speedtest import SpeedtestResult, run_speedtest
from repro.apps.bulk import BulkTransferResult, run_bulk_transfer
from repro.apps.messages import MessagesResult, run_messages_workload
from repro.apps.wehe import WeheResult, run_wehe_test

__all__ = [
    "PingClient",
    "PingResult",
    "ping",
    "traceroute",
    "TracerouteHop",
    "tracebox",
    "TraceboxFinding",
    "SpeedtestResult",
    "run_speedtest",
    "BulkTransferResult",
    "run_bulk_transfer",
    "MessagesResult",
    "run_messages_workload",
    "WeheResult",
    "run_wehe_test",
]
