"""HTTP/3 bulk transfers (the paper's QUIC workhorse).

Runs one 100 MB (configurable) H3 transfer over a given access
network and extracts everything the analysis needs: per-ACKed-packet
RTT samples, receiver-side missing packet numbers, sender-side loss
records and goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.node import Host
from repro.transport.quic import H3Client, H3Server, QuicConfig
from repro.units import mb, to_mbps


@dataclass
class BulkTransferResult:
    """Everything measured during one H3 bulk transfer."""

    direction: str               # "down" | "up"
    payload_bytes: int
    completed: bool
    duration_s: float | None
    handshake_rtt_s: float | None
    #: (time, rtt) per acknowledged packet, sender side (Fig. 3).
    rtt_samples: list[tuple[float, float]] = field(default_factory=list)
    #: Missing packet numbers on the receiver (Table 2 / Fig. 4).
    receiver_lost_pns: list[int] = field(default_factory=list)
    #: Largest packet number the receiver saw.
    receiver_max_pn: int = 0
    #: Duration of each loss event: time between the arrival of the
    #: packet preceding the gap and the packet following it (how the
    #: paper computes loss-event durations from client captures).
    loss_event_durations_s: list[float] = field(default_factory=list)
    #: Length (packets) of each loss burst on the receiver.
    loss_burst_lengths: list[int] = field(default_factory=list)

    @property
    def loss_ratio(self) -> float:
        """Receiver-observed loss ratio (paper's method)."""
        if self.receiver_max_pn <= 0:
            return 0.0
        return len(self.receiver_lost_pns) / (self.receiver_max_pn + 1)

    @property
    def goodput_mbps(self) -> float:
        """Application goodput, Mbit/s."""
        if not self.completed or not self.duration_s:
            return 0.0
        return to_mbps(self.payload_bytes * 8.0 / self.duration_s)


def run_bulk_transfer(client: Host, server: Host, direction: str,
                      payload_bytes: int = mb(100), port: int = 443,
                      timeout_s: float = 120.0,
                      config: QuicConfig | None = None
                      ) -> BulkTransferResult:
    """Run one H3 transfer and collect measurements.

    Drives the client's simulator until completion or ``timeout_s``.
    """
    if direction not in ("down", "up"):
        raise ValueError(f"direction must be down/up, got {direction!r}")
    sim = client.sim
    config = config or QuicConfig()
    config.record_arrivals = True
    h3_server = H3Server(server, port, resource_bytes=payload_bytes,
                         config=config)
    h3_client = H3Client(client, server.address, port, config=config)

    if direction == "down":
        result_handle = h3_client.get(payload_bytes)
    else:
        result_handle = h3_client.post(payload_bytes)
    start = sim.now
    deadline = start + timeout_s
    while sim.now < deadline and not result_handle.complete:
        sim.run(until=min(deadline, sim.now + 1.0))

    client_conn = h3_client.connection
    server_conn = next(iter(h3_server.connections.values()), None)

    if direction == "down":
        sender, receiver = server_conn, client_conn
    else:
        sender, receiver = client_conn, server_conn

    result = BulkTransferResult(
        direction=direction, payload_bytes=payload_bytes,
        completed=result_handle.complete,
        duration_s=(result_handle.duration
                    if result_handle.complete else None),
        handshake_rtt_s=client_conn.stats.handshake_rtt)
    if sender is not None:
        result.rtt_samples = list(sender.stats.acked_packet_rtts)
    if receiver is not None:
        result.receiver_lost_pns = receiver.receiver_lost_pns()
        max_pn = receiver.received_pns.max_value
        result.receiver_max_pn = max_pn if max_pn is not None else 0
        bursts, durations = _loss_events(receiver)
        result.loss_burst_lengths = bursts
        result.loss_event_durations_s = durations

    h3_client.close()
    h3_server.close()
    return result


def _loss_events(receiver) -> tuple[list[int], list[float]]:
    """Loss bursts and their durations from the receiver's capture.

    A burst is a run of consecutive missing packet numbers; its
    duration is the arrival-time distance between the packets that
    bracket the gap (what a client-side pcap shows).
    """
    bursts = [length for _, length in receiver.received_pns.gap_runs()]
    durations: list[float] = []
    log = receiver.arrival_log
    if log:
        # Map pn -> arrival for gap boundaries.
        arrival = dict(log)
        for gap_start, length in receiver.received_pns.gap_runs():
            before = arrival.get(gap_start - 1)
            after = arrival.get(gap_start + length)
            if before is not None and after is not None \
                    and after > before:
                durations.append(after - before)
    return bursts, durations
