"""HTTP/3 bulk transfers (the paper's QUIC workhorse).

Runs one 100 MB (configurable) H3 transfer over a given access
network and extracts everything the analysis needs: per-ACKed-packet
RTT samples, receiver-side missing packet numbers, sender-side loss
records and goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.outcome import MeasurementOutcome, outcome_field
from repro.errors import MeasurementError
from repro.netsim.node import Host
from repro.transport.quic import H3Client, H3Server, QuicConfig
from repro.units import mb, to_mbps


@dataclass
class BulkTransferResult:
    """Everything measured during one H3 bulk transfer."""

    direction: str               # "down" | "up"
    payload_bytes: int
    completed: bool
    duration_s: float | None
    handshake_rtt_s: float | None
    #: (time, rtt) per acknowledged packet, sender side (Fig. 3).
    rtt_samples: list[tuple[float, float]] = field(default_factory=list)
    #: Missing packet numbers on the receiver (Table 2 / Fig. 4).
    receiver_lost_pns: list[int] = field(default_factory=list)
    #: Largest packet number the receiver saw.
    receiver_max_pn: int = 0
    #: Duration of each loss event: time between the arrival of the
    #: packet preceding the gap and the packet following it (how the
    #: paper computes loss-event durations from client captures).
    loss_event_durations_s: list[float] = field(default_factory=list)
    #: Length (packets) of each loss burst on the receiver.
    loss_burst_lengths: list[int] = field(default_factory=list)
    #: Arrival time of the packet preceding each loss burst — when
    #: the burst *started* on the wire, used by the availability
    #: analysis to attribute bursts to 15 s reallocation boundaries.
    #: Digest-excluded: observability layered on the measured payload.
    loss_event_times_s: list[float] = field(
        default_factory=list, metadata={"digest": False})
    outcome: MeasurementOutcome = outcome_field()

    @property
    def loss_ratio(self) -> float:
        """Receiver-observed loss ratio (paper's method)."""
        if self.receiver_max_pn <= 0:
            return 0.0
        return len(self.receiver_lost_pns) / (self.receiver_max_pn + 1)

    @property
    def goodput_mbps(self) -> float:
        """Application goodput, Mbit/s."""
        if not self.completed or not self.duration_s:
            return 0.0
        return to_mbps(self.payload_bytes * 8.0 / self.duration_s)


def run_bulk_transfer(client: Host, server: Host, direction: str,
                      payload_bytes: int = mb(100), port: int = 443,
                      timeout_s: float = 120.0,
                      config: QuicConfig | None = None,
                      stall_timeout_s: float | None = 45.0
                      ) -> BulkTransferResult:
    """Run one H3 transfer and collect measurements.

    Drives the client's simulator until completion or ``timeout_s``.
    ``stall_timeout_s`` bounds how long the transfer may make zero
    receiver-side progress before the run is abandoned as stalled
    (long enough, by default, to ride out a two-slot satellite
    blackout and observe the recovery); ``None`` disables stall
    detection. The checks only *read* simulator state, so a transfer
    that never stalls is bit-identical to one run without them.
    """
    if direction not in ("down", "up"):
        raise MeasurementError(
            f"bulk transfer: direction must be down/up, "
            f"got {direction!r}")
    sim = client.sim
    config = config or QuicConfig()
    config.record_arrivals = True
    h3_server = H3Server(server, port, resource_bytes=payload_bytes,
                         config=config)
    h3_client = H3Client(client, server.address, port, config=config)

    if direction == "down":
        result_handle = h3_client.get(payload_bytes)
    else:
        result_handle = h3_client.post(payload_bytes)
    start = sim.now
    deadline = start + timeout_s

    def receiver_progress() -> int:
        conn = (h3_client.connection if direction == "down"
                else next(iter(h3_server.connections.values()), None))
        if conn is None:
            return -1
        max_pn = conn.received_pns.max_value
        return -1 if max_pn is None else max_pn

    stalled = False
    last_progress = receiver_progress()
    progress_at = start
    while sim.now < deadline and not result_handle.complete:
        sim.run(until=min(deadline, sim.now + 1.0))
        progress = receiver_progress()
        if progress != last_progress:
            last_progress = progress
            progress_at = sim.now
        elif stall_timeout_s is not None \
                and sim.now - progress_at >= stall_timeout_s:
            stalled = True
            break

    client_conn = h3_client.connection
    server_conn = next(iter(h3_server.connections.values()), None)

    if direction == "down":
        sender, receiver = server_conn, client_conn
    else:
        sender, receiver = client_conn, server_conn

    result = BulkTransferResult(
        direction=direction, payload_bytes=payload_bytes,
        completed=result_handle.complete,
        duration_s=(result_handle.duration
                    if result_handle.complete else None),
        handshake_rtt_s=client_conn.stats.handshake_rtt)
    if sender is not None:
        result.rtt_samples = list(sender.stats.acked_packet_rtts)
    if receiver is not None:
        result.receiver_lost_pns = receiver.receiver_lost_pns()
        max_pn = receiver.received_pns.max_value
        result.receiver_max_pn = max_pn if max_pn is not None else 0
        bursts, durations, times = _loss_events(receiver)
        result.loss_burst_lengths = bursts
        result.loss_event_durations_s = durations
        result.loss_event_times_s = times

    elapsed = sim.now - start
    if result_handle.complete:
        result.outcome = MeasurementOutcome(elapsed_s=elapsed)
    elif stalled:
        result.outcome = MeasurementOutcome(
            "stalled",
            detail=f"no receiver progress for {stall_timeout_s:.0f}s "
                   f"(last packet number {last_progress})",
            elapsed_s=elapsed)
    elif last_progress < 0 and client_conn.stats.handshake_rtt is None:
        result.outcome = MeasurementOutcome(
            "unreachable", detail="QUIC handshake never completed",
            elapsed_s=elapsed)
    else:
        result.outcome = MeasurementOutcome(
            "timed_out",
            detail=f"transfer incomplete after {timeout_s:.0f}s",
            elapsed_s=elapsed)

    h3_client.close()
    h3_server.close()
    return result


def _loss_events(receiver) -> tuple[list[int], list[float], list[float]]:
    """Loss bursts, their durations and start times, receiver capture.

    A burst is a run of consecutive missing packet numbers; its
    duration is the arrival-time distance between the packets that
    bracket the gap (what a client-side pcap shows) and its start
    time is the arrival of the packet preceding the gap.
    """
    bursts = [length for _, length in receiver.received_pns.gap_runs()]
    durations: list[float] = []
    times: list[float] = []
    log = receiver.arrival_log
    if log:
        # Map pn -> arrival for gap boundaries.
        arrival = dict(log)
        for gap_start, length in receiver.received_pns.gap_runs():
            before = arrival.get(gap_start - 1)
            after = arrival.get(gap_start + length)
            if before is not None and after is not None \
                    and after > before:
                durations.append(after - before)
                times.append(before)
    return bursts, durations, times
