"""Structured outcomes for hardened measurement apps.

Under adverse network conditions (rain fade, satellite blackouts,
route withdrawals, flash load) the measurement tools must yield
*data, not crashes or hangs*. Every app therefore classifies how its
run ended into a :class:`MeasurementOutcome` attached to its result
object:

* ``ok`` -- the measurement completed normally (possibly with loss;
  loss is data, not a failure);
* ``timed_out`` -- the per-measurement deadline expired while the
  measurement was still making progress;
* ``stalled`` -- progress ceased for longer than the stall window
  while the measurement was under way;
* ``unreachable`` -- the target never answered at all (no handshake,
  no reply, no hop).

Outcome fields ride on the result dataclasses with
``field(metadata={"digest": False})``: they are bookkeeping layered on
top of the measured payload, so dataset digests of undisturbed
(``clear_sky``) runs stay bit-identical to pre-outcome versions of
this library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The closed set of outcome states.
OUTCOME_STATUSES = ("ok", "timed_out", "stalled", "unreachable")


@dataclass(frozen=True)
class MeasurementOutcome:
    """How one measurement run ended."""

    status: str = "ok"
    #: Human-readable cause, e.g. ``"no handshake within 8.0s"``.
    detail: str = ""
    #: Wall-clock (simulated) seconds the measurement ran for.
    elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in OUTCOME_STATUSES:
            raise ValueError(
                f"outcome status must be one of {OUTCOME_STATUSES}, "
                f"got {self.status!r}")

    @property
    def is_ok(self) -> bool:
        """Whether the measurement completed normally."""
        return self.status == "ok"

    def __str__(self) -> str:
        if self.detail:
            return f"{self.status} ({self.detail})"
        return self.status


#: Shared default: a clean completion.
OK = MeasurementOutcome()


def outcome_field():
    """Dataclass field holding a result's :class:`MeasurementOutcome`.

    Digest-excluded (see module docstring) so that adding outcomes to
    a result type does not change the digest of undisturbed runs.
    """
    return field(default=OK, metadata={"digest": False})
