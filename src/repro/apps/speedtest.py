"""Ookla-style speed test: parallel TCP connections.

The CLI speedtest opens several parallel TCP connections to the
closest server and measures download then upload throughput over a
short window, discarding the ramp-up. That multi-connection design is
why the paper's TCP download numbers beat the single-connection QUIC
ones (Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.outcome import MeasurementOutcome, outcome_field
from repro.errors import MeasurementError
from repro.netsim.node import Host
from repro.transport.tcp import TcpConfig, TcpServer, tcp_connect
from repro.units import mb, to_mbps


@dataclass
class SpeedtestResult:
    """One speed-test outcome (a single direction)."""

    direction: str            # "down" | "up"
    connections: int
    measured_bytes: int
    measure_window_s: float
    handshake_rtts: list[float] = field(default_factory=list)
    outcome: MeasurementOutcome = outcome_field()

    @property
    def throughput_bps(self) -> float:
        """Measured rate, bit/s."""
        return self.measured_bytes * 8.0 / self.measure_window_s

    @property
    def throughput_mbps(self) -> float:
        """Measured rate, Mbit/s."""
        return to_mbps(self.throughput_bps)


def run_speedtest(client: Host, server: Host, direction: str,
                  connections: int = 4, warmup_s: float = 2.0,
                  measure_s: float = 5.0, port: int = 8080,
                  payload_bytes: int = mb(400),
                  config: TcpConfig | None = None) -> SpeedtestResult:
    """Run one Ookla-like test in one direction.

    Opens ``connections`` parallel TCP flows; the measurement window
    starts after ``warmup_s`` (excluding the slow-start ramp the way
    Ookla discards initial samples) and lasts ``measure_s``. Drives
    the host's simulator. ``config`` applies to both endpoints, so
    the bulk sender (server for ``down``, client for ``up``) uses its
    congestion controller.
    """
    sim = client.sim
    counters = {"bytes": 0, "counting": False}
    handshakes: list[float] = []

    def count(n: int) -> None:
        if counters["counting"]:
            counters["bytes"] += n

    if direction == "down":
        def on_server_conn(conn):
            conn.on_established = lambda: conn.send(payload_bytes)
        server_app = TcpServer(server, port,
                               on_connection=on_server_conn,
                               config=config)
        clients = []
        for _ in range(connections):
            conn = tcp_connect(client, server.address, port,
                               config=config)
            conn.on_bytes_delivered = count
            clients.append(conn)
    elif direction == "up":
        def on_server_conn(conn):
            conn.on_bytes_delivered = count
        server_app = TcpServer(server, port,
                               on_connection=on_server_conn,
                               config=config)
        clients = []
        for _ in range(connections):
            conn = tcp_connect(client, server.address, port,
                               config=config)
            conn.on_established = (
                lambda c=None, conn=None: None)  # placeholder
            clients.append(conn)
        for conn in clients:
            conn.on_established = (lambda conn=conn:
                                   conn.send(payload_bytes))
    else:
        raise MeasurementError(
            f"speedtest: direction must be down/up, got {direction!r}")

    start = sim.now

    def begin_measuring() -> None:
        counters["counting"] = True

    def end_measuring() -> None:
        counters["counting"] = False

    sim.schedule(warmup_s, begin_measuring)
    sim.schedule(warmup_s + measure_s, end_measuring)
    sim.run(until=start + warmup_s + measure_s)

    for conn in clients:
        if conn.stats.handshake_rtt is not None:
            handshakes.append(conn.stats.handshake_rtt)
        conn.close()
    server_app.close()

    # Outcome classification: the test window always terminates (the
    # simulator is driven to a fixed horizon), so the failure modes
    # are no-handshake (unreachable) and no-progress (stalled).
    elapsed = sim.now - start
    if counters["bytes"] > 0:
        outcome = MeasurementOutcome(elapsed_s=elapsed)
    elif not handshakes:
        outcome = MeasurementOutcome(
            "unreachable",
            detail=f"0/{connections} TCP handshakes completed",
            elapsed_s=elapsed)
    else:
        outcome = MeasurementOutcome(
            "stalled",
            detail="connections established but no byte delivered "
                   "inside the measurement window",
            elapsed_s=elapsed)

    return SpeedtestResult(
        direction=direction, connections=connections,
        measured_bytes=counters["bytes"], measure_window_s=measure_s,
        handshake_rtts=handshakes, outcome=outcome)
