"""ICMP echo measurement (ping).

The campaign pings 11 anchors every five minutes, three probes per
round (paper Sec. 2). :func:`ping` runs real ICMP echoes through a
packet-level access network; the five-month series instead samples
the analytic path models directly (see
:mod:`repro.core.campaign`), which is equivalent on an idle link.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.apps.outcome import MeasurementOutcome, outcome_field
from repro.netsim.node import Host
from repro.netsim.packet import IcmpMessage, IcmpType, Packet

_ping_idents = itertools.count(0x4000)

#: Standard ping payload: 56 data bytes + headers.
PING_PACKET_SIZE = 84


@dataclass
class PingResult:
    """Outcome of one ping run (possibly several probes)."""

    target: str
    sent: int = 0
    received: int = 0
    rtts: list[float] = field(default_factory=list)
    outcome: MeasurementOutcome = outcome_field()

    @property
    def loss_ratio(self) -> float:
        """Fraction of probes that got no reply."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent

    @property
    def min_rtt(self) -> float:
        """Fastest observed RTT, seconds."""
        return min(self.rtts)

    @property
    def avg_rtt(self) -> float:
        """Mean RTT, seconds."""
        return sum(self.rtts) / len(self.rtts)


class PingClient:
    """Sends echo probes from a host and collects replies."""

    def __init__(self, host: Host, target: str):
        self.host = host
        self.target = target
        self.ident = next(_ping_idents)
        self.result = PingResult(target=target)
        self._pending: dict[int, float] = {}
        host.bind_icmp(self.ident, self._on_reply)

    def send_probe(self, seq: int) -> None:
        """Emit one echo request."""
        message = IcmpMessage(IcmpType.ECHO_REQUEST, ident=self.ident,
                              seq=seq, timestamp=self.host.sim.now)
        self._pending[seq] = self.host.sim.now
        self.result.sent += 1
        self.host.send_icmp(IcmpType.ECHO_REQUEST, self.target, message,
                            size=PING_PACKET_SIZE)

    def _on_reply(self, packet: Packet) -> None:
        message: IcmpMessage = packet.payload
        if message.icmp_type is not IcmpType.ECHO_REPLY:
            return
        sent_at = self._pending.pop(message.seq, None)
        if sent_at is None:
            return
        self.result.received += 1
        self.result.rtts.append(self.host.sim.now - sent_at)

    def close(self) -> None:
        """Stop listening for replies."""
        self.host.unbind_icmp(self.ident)


def ping(host: Host, target: str, count: int = 3,
         interval: float = 1.0, timeout: float = 5.0) -> PingResult:
    """Run ``count`` echo probes and wait for replies.

    Drives the host's simulator; returns after all probes have been
    answered or ``timeout`` has elapsed past the last probe. The ICMP
    binding is released unconditionally — a permanent outage (no
    reply ever arrives) must not leave a listener behind, and late
    replies must not mutate a result that was already returned.
    """
    client = PingClient(host, target)
    sim = host.sim
    start = sim.now
    try:
        for seq in range(count):
            sim.schedule(seq * interval, client.send_probe, seq)
        sim.run(until=sim.now + (count - 1) * interval + timeout)
    finally:
        client.close()
    result = client.result
    if result.sent > 0 and result.received == 0:
        result.outcome = MeasurementOutcome(
            "unreachable",
            detail=f"{result.sent} probe(s) to {target}, no reply",
            elapsed_s=sim.now - start)
    else:
        result.outcome = MeasurementOutcome(elapsed_s=sim.now - start)
    return result
