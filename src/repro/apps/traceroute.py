"""Traceroute: TTL-limited UDP probes.

The paper's traceroutes revealed the Starlink access structure: the
dish router at 192.168.1.1 and a carrier-grade NAT at 100.64.0.1
before the exit PoP. This implementation sends the classic UDP
probes to high ports and collects ICMP Time-Exceeded origins.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.netsim.node import Host
from repro.netsim.packet import IcmpMessage, IcmpType, Packet, Protocol

_probe_idents = itertools.count(0x6000)

#: Classic traceroute destination port base.
TRACEROUTE_PORT = 33434


@dataclass
class TracerouteHop:
    """One responding hop."""

    ttl: int
    address: str
    rtt: float
    reached_destination: bool = False


def traceroute(host: Host, target: str, max_ttl: int = 16,
               probe_timeout: float = 3.0) -> list[TracerouteHop]:
    """Discover the path from ``host`` to ``target``.

    Sends one probe per TTL (the simulator is lossless for these
    control paths unless an outage is active). Returns hops in TTL
    order; stops at ``max_ttl`` or when the destination answers.
    """
    sim = host.sim
    ident = next(_probe_idents)
    hops: dict[int, TracerouteHop] = {}
    sent_at: dict[int, float] = {}
    done = {"reached": False}

    def on_icmp(packet: Packet) -> None:
        message: IcmpMessage = packet.payload
        if message.icmp_type is IcmpType.TIME_EXCEEDED:
            quoted = message.quoted_headers or {}
            ttl = quoted.get("probe_ttl")
            if ttl is None or ttl in hops:
                return
            hops[ttl] = TracerouteHop(
                ttl=ttl, address=message.origin,
                rtt=sim.now - sent_at.get(ttl, sim.now))
        elif message.icmp_type is IcmpType.DEST_UNREACHABLE:
            quoted = message.quoted_headers or {}
            ttl = quoted.get("probe_ttl")
            if ttl is not None and ttl not in hops:
                hops[ttl] = TracerouteHop(
                    ttl=ttl, address=message.origin,
                    rtt=sim.now - sent_at.get(ttl, sim.now),
                    reached_destination=(message.origin == target))
                done["reached"] = done["reached"] or (
                    message.origin == target)

    host.bind_icmp(ident, on_icmp)

    # Destination hosts answer the high-port probe with an ICMP
    # port-unreachable, which marks the trace as complete.
    for ttl in range(1, max_ttl + 1):
        packet = Packet(
            src=host.address, dst=target, protocol=Protocol.UDP,
            size=60, src_port=ident, dst_port=TRACEROUTE_PORT + ttl,
            ttl=ttl,
            headers={"probe_ident": ident, "probe_ttl": ttl})
        sent_at[ttl] = sim.now
        host.send(packet)
    sim.run(until=sim.now + probe_timeout)
    host.unbind_icmp(ident)
    path = []
    for ttl in sorted(hops):
        hop = hops[ttl]
        path.append(hop)
        if hop.reached_destination or hop.address == target:
            break
    return path
